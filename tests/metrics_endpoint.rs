//! Acceptance: a REPL session with the metrics endpoint enabled
//! serves Prometheus text exposition over plain HTTP containing the
//! session phase histograms, the store cache counters, and the NetCDF
//! I/O counters — and a statement over the slow-query threshold
//! produces a parseable JSON-lines record.

use std::io::{BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use aql::lang::repl::run_repl;
use aql::lang::session::{Session, SlowLogConfig};
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::format::VERSION_CLASSIC;
use aql::netcdf::synth::year_temp_file;
use aql::netcdf::write::write_file;
use aql::trace::json::Json;

/// An in-memory slow-log sink the test can read back.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// GET `path` from `addr` and return the full HTTP response.
fn http_get(addr: &str, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to metrics endpoint");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut resp = String::new();
    conn.read_to_string(&mut resp).expect("read response");
    resp
}

#[test]
fn repl_session_serves_prometheus_and_logs_slow_queries() {
    // A synthetic year of temperatures so the session exercises real
    // NetCDF I/O (hyperslab requests, chunk-cache traffic).
    let dir = std::env::temp_dir()
        .join(format!("aql-metrics-endpoint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("temp.nc");
    write_file(&year_temp_file().unwrap(), &path, VERSION_CLASSIC).unwrap();
    let p = path.to_str().unwrap();

    let sink = SharedSink::default();
    let mut s = Session::new();
    register_netcdf(&mut s);
    // Threshold zero: every statement is over the slow-query bar.
    s.enable_slow_log(
        Box::new(sink.clone()),
        SlowLogConfig { threshold: std::time::Duration::ZERO, sample_every: 0 },
    );

    // The acceptance session: start the endpoint, then three
    // statements — a NetCDF bind, a point probe, a windowed aggregate.
    let input = format!(
        "\\metrics serve 127.0.0.1:0;\n\
         readval \\T using NETCDF3 at (\"{p}\", \"temp\", (0, 0, 0), (8759, 4, 4));\n\
         T[5000, 2, 2];\n\
         max!{{ T[4000 + t, i, j] | \\t <- gen!100, \\i <- gen!5, \\j <- gen!5 }};\n"
    );
    let mut reader = BufReader::new(input.as_bytes());
    let mut out: Vec<u8> = Vec::new();
    let executed = run_repl(&mut s, &mut reader, &mut out).unwrap();
    assert_eq!(executed, 3, "three statements must run");
    let transcript = String::from_utf8(out).unwrap();
    let addr = transcript
        .lines()
        .find_map(|l| l.split("metrics: serving http://").nth(1))
        .and_then(|l| l.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("no serving line in {transcript}"))
        .to_string();

    // ---- the exposition ---------------------------------------------
    let resp = http_get(&addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert!(
        resp.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{resp}"
    );
    let body = resp.split("\r\n\r\n").nth(1).expect("response body");

    // The three counter families named by the acceptance criterion.
    assert!(
        body.contains("aql_session_phase_ns_bucket{"),
        "session phase histograms missing:\n{body}"
    );
    assert!(body.contains("aql_store_cache_misses_total"), "store counters missing:\n{body}");
    assert!(
        body.contains("aql_netcdf_hyperslab_requests_total"),
        "NetCDF I/O counters missing:\n{body}"
    );

    // Well-formed text exposition: every sample line is `series value`
    // with a numeric value, and its family was announced by `# TYPE`.
    let mut typed = std::collections::HashSet::new();
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let fam = parts.next().expect("family name");
            let kind = parts.next().expect("metric kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE `{kind}` in `{line}`"
            );
            typed.insert(fam.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in `{line}`"));
        let fam = series.split('{').next().expect("family");
        let fam = fam
            .strip_suffix("_bucket")
            .or_else(|| fam.strip_suffix("_sum"))
            .or_else(|| fam.strip_suffix("_count"))
            .unwrap_or(fam);
        assert!(typed.contains(fam), "sample `{line}` has no preceding # TYPE");
    }

    // Everything else 404s.
    assert!(http_get(&addr, "/other").starts_with("HTTP/1.1 404"), "non-/metrics paths 404");

    // ---- the slow-query log -----------------------------------------
    let bytes = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let log = String::from_utf8(bytes).expect("slow log must be UTF-8");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 3, "threshold 0 logs all three statements: {log}");
    for l in &lines {
        let rec = Json::parse(l).expect("each slow-log line must be valid JSON");
        assert_eq!(rec.get("schema_version").and_then(Json::as_u64), Some(2), "{l}");
        assert_eq!(rec.get("slow"), Some(&Json::Bool(true)), "{l}");
        assert!(rec.get("dur_ns").and_then(Json::as_u64).is_some(), "{l}");
        assert!(rec.get("phases").is_some(), "{l}");
        // v2 members: the incident link (null here — no incident dir is
        // configured) and the attributed prefetch traffic.
        assert_eq!(rec.get("incident"), Some(&Json::Null), "{l}");
        assert!(
            rec.get("cache")
                .and_then(|c| c.get("prefetched_bytes"))
                .and_then(Json::as_u64)
                .is_some(),
            "{l}"
        );
    }
    // The bind is attributed to `readval`, and the aggregate's cache
    // traffic lands on the statement that caused it.
    assert_eq!(
        Json::parse(lines[0]).unwrap().get("kind").and_then(Json::as_str),
        Some("readval")
    );
    let agg = Json::parse(lines[2]).unwrap();
    assert_eq!(agg.get("kind").and_then(Json::as_str), Some("query"));
    assert!(
        agg.get("cache")
            .and_then(|c| c.get("bytes_read"))
            .and_then(Json::as_u64)
            .is_some_and(|b| b > 0),
        "the windowed aggregate must show chunk-cache reads: {agg:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
