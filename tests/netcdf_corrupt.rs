//! Corrupt-file corpus for the NetCDF parser: every case must return
//! an `NcError` — never panic, never allocate beyond the source size.
//!
//! The corpus is built by mutating a valid serialized dataset:
//! truncation at *every* byte boundary, bad magic, oversized
//! ndims/nvars/string-length/value-count fields, out-of-range data
//! offsets, and dimension products that overflow 64-bit byte layout
//! arithmetic.

use aql::netcdf::format::{NcType, VERSION_64BIT, VERSION_CLASSIC};
use aql::netcdf::model::{NcAttr, NcError, NcFile, NcValues};
use aql::netcdf::read::{from_bytes_full, SlabReader};
use aql::netcdf::write::to_bytes;

/// A small but representative dataset: record + fixed variables,
/// attributes, several types.
fn sample_bytes(version: u8) -> Vec<u8> {
    let mut f = NcFile::new();
    let t = f.add_dim("time", 0);
    let lat = f.add_dim("lat", 2);
    let lon = f.add_dim("lon", 3);
    f.numrecs = 2;
    f.gattrs.push(NcAttr::text("title", "corpus"));
    f.add_var(
        "temp",
        vec![t, lat, lon],
        NcType::Float,
        vec![NcAttr::text("units", "degF")],
        NcValues::Float((0..12).map(|i| i as f32).collect()),
    )
    .unwrap();
    f.add_var("elev", vec![lat, lon], NcType::Int, vec![], NcValues::Int(vec![0; 6])).unwrap();
    to_bytes(&f, version).unwrap()
}

/// Parse must fail with an error — reaching this function at all
/// (rather than aborting) also proves no panic escaped.
fn assert_rejected(bytes: Vec<u8>, what: &str) {
    match from_bytes_full(bytes) {
        Err(_) => {}
        Ok(_) => panic!("{what}: corrupt input was accepted"),
    }
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    for version in [VERSION_CLASSIC, VERSION_64BIT] {
        let good = sample_bytes(version);
        // Chop at every prefix length, including 0. Every truncated
        // file must produce an error: the data region is fully
        // occupied by the two variables, so any cut removes bytes a
        // full read needs.
        for cut in 0..good.len() {
            let trunc = good[..cut].to_vec();
            match from_bytes_full(trunc) {
                Err(_) => {}
                Ok(_) => panic!("v{version}: truncation at byte {cut}/{} accepted", good.len()),
            }
        }
    }
}

#[test]
fn truncated_header_names_the_offset() {
    let good = sample_bytes(VERSION_CLASSIC);
    // Cut mid-header (inside the dim list).
    let err = from_bytes_full(good[..20].to_vec()).unwrap_err();
    match err {
        NcError::Corrupt { offset, .. } => assert!(offset <= 20, "offset {offset} out of range"),
        other => panic!("expected Corrupt with offset, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_bytes(VERSION_CLASSIC);
    for magic in [*b"HDF\x01", *b"CDF\x09", *b"CDF\x00", *b"\x00\x00\x00\x00"] {
        bytes[0..4].copy_from_slice(&magic);
        assert_rejected(bytes.clone(), "bad magic");
    }
}

/// Patch a big-endian u32 at `at`.
fn patch_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_be_bytes());
}

#[test]
fn oversized_ndims_is_rejected_cheaply() {
    // Layout: magic(4) numrecs(4) dim-tag(4) ndims(4) ...
    let mut bytes = sample_bytes(VERSION_CLASSIC);
    for huge in [u32::MAX, 1 << 30, 1 << 20] {
        patch_u32(&mut bytes, 12, huge);
        // Must reject (instead of trying to reserve `huge` entries).
        assert_rejected(bytes.clone(), "oversized ndims");
    }
}

#[test]
fn oversized_string_length_is_rejected() {
    // First dim name length sits right after ndims: offset 16.
    let mut bytes = sample_bytes(VERSION_CLASSIC);
    for huge in [u32::MAX, u32::MAX - 3, 1 << 28] {
        patch_u32(&mut bytes, 16, huge);
        assert_rejected(bytes.clone(), "oversized name length");
    }
}

#[test]
fn oversized_nvars_and_attr_counts_are_rejected() {
    let good = sample_bytes(VERSION_CLASSIC);
    // Fuzz every 4-byte-aligned word in the header region with huge
    // counts; the parser must reject or parse-differently, never
    // panic or over-allocate. (The header of this sample is well
    // under 300 bytes.)
    let header_span = good.len().min(300);
    for at in (4..header_span - 4).step_by(4) {
        for huge in [u32::MAX, 1 << 29] {
            let mut bytes = good.clone();
            patch_u32(&mut bytes, at, huge);
            // Either rejected or (if the word was plain data) still
            // readable — both fine; panics/aborts are the failure.
            let _ = from_bytes_full(bytes);
        }
    }
}

#[test]
fn data_offset_beyond_eof_is_rejected() {
    let good = sample_bytes(VERSION_CLASSIC);
    // Find the `begin` of the first variable by locating its name.
    // Cheaper: fuzz all words with a value larger than the file and
    // require that full reads never panic; the ones that hit a
    // `begin` field must error.
    let too_far = (good.len() as u32) + 1000;
    let mut any_rejected = false;
    for at in (4..good.len() - 4).step_by(4) {
        let mut bytes = good.clone();
        patch_u32(&mut bytes, at, too_far);
        if from_bytes_full(bytes).is_err() {
            any_rejected = true;
        }
    }
    assert!(any_rejected, "no mutation was rejected — begin validation is not firing");
}

#[test]
fn dim_product_overflow_is_rejected() {
    // Declare dims whose product overflows u64 when multiplied by the
    // element size. Build a valid file with small dims, then patch
    // the dim lengths to u32::MAX.
    let mut f = NcFile::new();
    let a = f.add_dim("a", 2);
    let b = f.add_dim("b", 2);
    let c = f.add_dim("c", 2);
    f.add_var(
        "v",
        vec![a, b, c],
        NcType::Double,
        vec![],
        NcValues::Double(vec![0.0; 8]),
    )
    .unwrap();
    let mut bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();

    // Each dim entry: name_len(4) + name(4, padded) + len(4).
    // dim list starts at 8 (tag) + 4 (count) = offset 12; entries at
    // 16. Patch every dim length word to u32::MAX.
    let mut at = 16;
    for _ in 0..3 {
        // name_len, name (1 char padded to 4), len
        let name_len = u32::from_be_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
            as usize;
        let padded = name_len.div_ceil(4) * 4;
        let len_at = at + 4 + padded;
        patch_u32(&mut bytes, len_at, u32::MAX);
        at = len_at + 4;
    }

    // Full read must fail (the slab would need ~2^96 bytes), not
    // panic or try to allocate it.
    assert_rejected(bytes.clone(), "dim product overflow");

    // And a targeted read_slab on the huge variable too.
    let mut r = SlabReader::from_bytes(bytes).expect("header itself parses");
    let huge = u32::MAX as u64;
    let err = r.read_slab("v", &[0, 0, 0], &[huge, huge, huge]).unwrap_err();
    assert!(
        matches!(err, NcError::Slab(_) | NcError::Corrupt { .. }),
        "got {err:?}"
    );
}

#[test]
fn corrupted_bytes_never_panic_parser() {
    // XOR-corrupt every single byte of the file, one at a time; the
    // parser may accept (data-only corruption) or reject, but must
    // never panic and never misbehave on allocation.
    for version in [VERSION_CLASSIC, VERSION_64BIT] {
        let good = sample_bytes(version);
        for at in 0..good.len() {
            let mut bytes = good.clone();
            bytes[at] ^= 0xFF;
            let _ = from_bytes_full(bytes);
        }
    }
}

#[test]
fn errors_carry_byte_offsets() {
    let good = sample_bytes(VERSION_CLASSIC);
    // Corrupt the dimension tag (offset 8): expect a Corrupt error
    // that names offset 8.
    let mut bytes = good.clone();
    patch_u32(&mut bytes, 8, 0xDEAD);
    let err = from_bytes_full(bytes).unwrap_err();
    match err {
        NcError::Corrupt { offset, ref message } => {
            assert_eq!(offset, 8, "message: {message}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let shown = format!("{err}");
    assert!(shown.contains("byte 8"), "display includes the offset: {shown}");
}
