//! Corrupt-file corpus for the AQF container: every case must yield a
//! classified [`StoreError`] — never a panic.
//!
//! The corpus is built by mutating a valid file: truncation at *every*
//! byte boundary, bad magic/version/dtype/flags/rank, out-of-range
//! table offsets and chunk-payload extents, table rows that disagree
//! with the layout, and single-byte rot everywhere — every byte of an
//! AQF file is covered by a structural check or a chunk checksum, so
//! every single-byte flip must be *detected*, not just survived.

use aql::format::{AqfFile, AqfWriter, MAGIC};
use aql::store::{ChunkLayout, ScalarBuf, ScalarKind, StoreError};

/// Write a small representative file: rank 2, edge chunks on both
/// axes (7×5 split 4×3), i64 data so the bit-packing codec engages.
fn sample(compress: bool) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!(
        "aql-aqfcorrupt-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("sample.aqf");
    let layout = ChunkLayout::new(vec![7, 5], vec![4, 3]).expect("layout");
    let mut w =
        AqfWriter::create(&path, layout.clone(), ScalarKind::I64, compress).expect("create");
    for id in 0..layout.num_chunks() {
        let n = layout.chunk_len(id).expect("chunk len");
        let buf = ScalarBuf::I64((0..n).map(|k| (id * 100 + k) as i64 - 7).collect());
        w.write_chunk(&buf).expect("write chunk");
    }
    w.finish().expect("finish");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

/// Open `bytes` (via a scratch file) and, if the structure passes,
/// read every chunk. Returns the first error, if any.
fn open_and_read_all(bytes: &[u8]) -> Result<(), StoreError> {
    let dir = std::env::temp_dir().join(format!(
        "aql-aqfcorrupt-case-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("case.aqf");
    std::fs::write(&path, bytes).expect("write case");
    let result = (|| {
        let mut f = AqfFile::open(&path)?;
        for id in 0..f.layout().num_chunks() {
            f.read_chunk_by_id(id)?;
        }
        Ok(())
    })();
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn assert_rejected(bytes: &[u8], what: &str) -> StoreError {
    match open_and_read_all(bytes) {
        Err(e) => e,
        Ok(()) => panic!("{what}: corrupt input was accepted"),
    }
}

#[test]
fn the_sample_itself_is_valid() {
    for compress in [false, true] {
        open_and_read_all(&sample(compress)).expect("pristine sample reads clean");
    }
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    for compress in [false, true] {
        let good = sample(compress);
        for cut in 0..good.len() {
            match open_and_read_all(&good[..cut]) {
                Err(_) => {}
                Ok(()) => panic!(
                    "compress={compress}: truncation at byte {cut}/{} accepted",
                    good.len()
                ),
            }
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    let good = sample(true);
    for magic in [*b"AQF2", *b"FQA1", *b"\x00\x00\x00\x00", *b"CDF\x01"] {
        let mut bytes = good.clone();
        bytes[0..4].copy_from_slice(&magic);
        let e = assert_rejected(&bytes, "bad magic");
        assert!(matches!(e, StoreError::Corrupt(_)), "classified Corrupt, got {e:?}");
    }
    // Sanity: the constant the format module exports is what's on disk.
    assert_eq!(&good[0..4], &MAGIC);
}

#[test]
fn bad_version_dtype_flags_rank_are_rejected() {
    let good = sample(false);
    // Version 2 (offset 4).
    let mut bytes = good.clone();
    bytes[4] = 2;
    let e = assert_rejected(&bytes, "future version");
    assert!(format!("{e}").contains("version"), "{e}");
    // Unknown dtype (offset 8).
    let mut bytes = good.clone();
    bytes[8] = 9;
    let e = assert_rejected(&bytes, "unknown dtype");
    assert!(format!("{e}").contains("dtype"), "{e}");
    // Unknown flag bits (offset 9).
    let mut bytes = good.clone();
    bytes[9] = 0x82;
    assert_rejected(&bytes, "unknown flags");
    // Nonzero reserved bytes (offset 10).
    let mut bytes = good.clone();
    bytes[10] = 1;
    assert_rejected(&bytes, "reserved bytes");
    // Rank 0 and rank 65 (offset 12, u32 LE).
    for rank in [0u32, 65, u32::MAX] {
        let mut bytes = good.clone();
        bytes[12..16].copy_from_slice(&rank.to_le_bytes());
        let e = assert_rejected(&bytes, "rank out of range");
        assert!(matches!(e, StoreError::Corrupt(_)), "got {e:?}");
    }
}

#[test]
fn out_of_range_table_offset_is_rejected() {
    let good = sample(false);
    for bogus in [0u64, 5, u64::MAX, good.len() as u64 + 1000] {
        let mut bytes = good.clone();
        bytes[16..24].copy_from_slice(&bogus.to_le_bytes());
        let e = assert_rejected(&bytes, "table offset out of range");
        assert!(matches!(e, StoreError::Corrupt(_)), "got {e:?}");
    }
}

#[test]
fn out_of_range_chunk_payload_is_rejected() {
    let good = sample(false);
    let table_offset =
        u64::from_le_bytes(good[16..24].try_into().unwrap()) as usize;
    // First table row starts after the 8-byte count; its first word is
    // the payload offset of chunk 0.
    let row0 = table_offset + 8;
    for bogus in [0u64, good.len() as u64, u64::MAX] {
        let mut bytes = good.clone();
        bytes[row0..row0 + 8].copy_from_slice(&bogus.to_le_bytes());
        let e = assert_rejected(&bytes, "payload offset out of range");
        let shown = format!("{e}");
        assert!(
            shown.contains("chunk 0") || shown.contains("overflow"),
            "error names the chunk: {shown}"
        );
    }
    // An elems word that disagrees with the layout (offset 16 in the
    // row) is caught at open, before any payload is read.
    let mut bytes = good.clone();
    bytes[row0 + 16..row0 + 24].copy_from_slice(&999u64.to_le_bytes());
    let e = assert_rejected(&bytes, "elems mismatch");
    assert!(format!("{e}").contains("element"), "{e}");
    // An unknown codec byte (offset 24 in the row).
    let mut bytes = good.clone();
    bytes[row0 + 24] = 0xEE;
    let e = assert_rejected(&bytes, "unknown codec");
    assert!(format!("{e}").contains("codec"), "{e}");
}

#[test]
fn checksum_rot_is_detected_on_read() {
    let good = sample(false);
    // Flip one payload byte (the data region starts right after the
    // rank-2 header: 24 + 16·2 = 56). `open` still succeeds — payload
    // verification happens on read — and the read reports a checksum
    // mismatch naming the chunk.
    let mut bytes = good.clone();
    bytes[56] ^= 0x01;
    let e = assert_rejected(&bytes, "payload rot");
    let shown = format!("{e}");
    assert!(shown.contains("checksum"), "checksum named: {shown}");
    assert!(shown.contains("chunk 0"), "chunk named: {shown}");
    // Rotting the stored checksum itself (row offset 25) is the same
    // failure from the other side.
    let table_offset = u64::from_le_bytes(good[16..24].try_into().unwrap()) as usize;
    let mut bytes = good.clone();
    bytes[table_offset + 8 + 25] ^= 0xFF;
    let e = assert_rejected(&bytes, "table checksum rot");
    assert!(format!("{e}").contains("checksum"), "{e}");
}

#[test]
fn every_single_byte_flip_is_detected() {
    // AQF leaves no slack bytes: the header and table are structurally
    // validated and every payload byte is covered by a chunk checksum,
    // so XOR-ing any single byte with 0xFF must surface an error at
    // open or at some chunk read. (Reaching the end of the loop also
    // proves no mutation panics.)
    for compress in [false, true] {
        let good = sample(compress);
        for at in 0..good.len() {
            let mut bytes = good.clone();
            bytes[at] ^= 0xFF;
            if open_and_read_all(&bytes).is_ok() {
                panic!("compress={compress}: flipping byte {at} went undetected");
            }
        }
    }
}

#[test]
fn errors_carry_byte_offsets() {
    let good = sample(false);
    let mut bytes = good.clone();
    bytes[8] = 7;
    let e = assert_rejected(&bytes, "dtype");
    let shown = format!("{e}");
    assert!(shown.contains("byte 8"), "display names the offset: {shown}");
    assert!(!e.is_transient(), "corruption is never retried");
}
