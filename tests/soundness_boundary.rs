//! The *boundary* of optimizer soundness, pinned as tests.
//!
//! §5 states the convention explicitly for `δ^p`: "this rule is sound
//! only if e1 is error-free". Our optimizer follows the paper: rules
//! that discard subexpressions change the meaning of programs whose
//! discarded parts evaluate to `⊥`. These tests document exactly where
//! the divergence lies — and that it never occurs for error-free
//! programs (the property suite in tests/properties.rs covers that
//! side).

use aql::core::eval::eval_closed;
use aql::core::expr::builder::*;
use aql::core::value::Value;
use aql::opt::optimize;

#[test]
fn delta_p_diverges_on_erroneous_bodies_as_the_paper_says() {
    // len([[1/0 | i < 5]]): raw evaluation tabulates, hits ⊥, and the
    // whole expression is ⊥. δ^p returns the bound 5 without looking.
    let e = len(tab1("i", nat(5), div(nat(1), nat(0))));
    assert_eq!(eval_closed(&e).unwrap(), Value::Bottom, "strict semantics");
    let o = optimize(&e);
    assert_eq!(
        eval_closed(&o).unwrap(),
        Value::Nat(5),
        "δ^p is applied in the error-free convention (§5)"
    );
}

#[test]
fn delta_p_agrees_on_error_free_bodies() {
    let e = len(tab1("i", nat(5), mul(var("i"), var("i"))));
    let o = optimize(&e);
    assert_eq!(eval_closed(&e).unwrap(), eval_closed(&o).unwrap());
}

#[test]
fn empty_head_discards_an_erroneous_source() {
    // ⋃{{} | x ∈ ⊥-producing set}: raw is ⊥; the rewrite yields {}.
    let src = big_union("y", gen(nat(3)), single(div(nat(1), nat(0))));
    let e = big_union("x", src, empty());
    assert_eq!(eval_closed(&e).unwrap(), Value::Bottom);
    let o = optimize(&e);
    assert_eq!(eval_closed(&o).unwrap(), Value::set(vec![]));
}

#[test]
fn beta_p_is_exactly_semantics_preserving() {
    // In contrast, β^p introduces the bound check itself and preserves
    // ⊥-semantics exactly — even the error cases agree.
    for (arr_n, idx) in [(5u64, 2u64), (5, 5), (5, 99), (0, 0)] {
        let e = sub(
            tab1("i", nat(arr_n), mul(var("i"), nat(3))),
            vec![nat(idx)],
        );
        let o = optimize(&e);
        assert_eq!(
            eval_closed(&e).unwrap(),
            eval_closed(&o).unwrap(),
            "n={arr_n}, idx={idx}"
        );
    }
    // And with an erroneous body at the demanded index.
    let e = sub(
        tab1("i", nat(3), div(nat(1), var("i"))), // 1/0 at index 0
        vec![nat(0)],
    );
    let o = optimize(&e);
    assert_eq!(eval_closed(&e).unwrap(), Value::Bottom);
    assert_eq!(eval_closed(&o).unwrap(), Value::Bottom);
}

#[test]
fn hoisting_can_evaluate_an_invariant_a_loop_never_runs() {
    // let-bound invariants are strict: hoisting out of a zero-trip
    // loop evaluates what the loop never would. Raw: {} (loop body
    // never runs). Optimized: the division by zero is hoisted and
    // evaluated once → ⊥. Again the error-free convention.
    let e = big_union(
        "x",
        empty(),
        single(add(var("x"), div(nat(1), nat(0)))),
    );
    assert_eq!(eval_closed(&e).unwrap(), Value::set(vec![]));
    // (The normalize phase already collapses the empty source here, so
    // the full pipeline is actually safe for this particular shape —
    // the divergence needs a source the optimizer cannot see through.)
    let o = optimize(&e);
    assert_eq!(eval_closed(&o).unwrap(), Value::set(vec![]));

    // An opaque source: a global the optimizer cannot inspect. Use the
    // raw engine to show the boundary precisely.
    use aql::core::expr::Expr;
    let inv = div(nat(1), nat(0));
    let loop_e = big_union("x", global("S"), single(add(var("x"), inv.clone())));
    let hoisted = aql::opt::rules::motion_phase().run(&loop_e, None);
    assert!(matches!(hoisted, Expr::Let(..)), "invariant must hoist");
    // With S = {} the raw loop is {}, the hoisted form is ⊥.
    let mut globals = std::collections::HashMap::new();
    globals.insert(aql::core::expr::name("S"), Value::set(vec![]));
    let exts = aql::core::prim::Extensions::new();
    let ctx = aql::core::eval::EvalCtx::new(&globals, &exts);
    assert_eq!(aql::core::eval::eval(&loop_e, &ctx).unwrap(), Value::set(vec![]));
    assert_eq!(aql::core::eval::eval(&hoisted, &ctx).unwrap(), Value::Bottom);
}

#[test]
fn error_free_programs_never_see_the_boundary() {
    // A composite query exercising every discarding rule on error-free
    // code: results agree.
    let q = len(tab1(
        "i",
        add(var("n"), nat(2)),
        sum("x", gen(var("n")), mul(var("x"), var("x"))),
    ));
    let o = optimize(&q);
    let mut globals = std::collections::HashMap::new();
    globals.insert(aql::core::expr::name("n"), Value::Nat(7));
    let exts = aql::core::prim::Extensions::new();
    let ctx = aql::core::eval::EvalCtx::new(&globals, &exts);
    assert_eq!(
        aql::core::eval::eval(&q, &ctx).unwrap(),
        aql::core::eval::eval(&o, &ctx).unwrap()
    );
}
