//! The chaos harness: seeded end-to-end runs of the query corpus
//! under randomized fault schedules (ISSUE 6 acceptance criteria).
//!
//! Invariants asserted on every fixed seed:
//!
//! * **zero panics** — any panic fails the test outright;
//! * **classified errors** — every surfaced failure is one of the
//!   taxonomy's variants (storage I/O, corruption, unavailability,
//!   budget, deadline, cancellation), never an internal error;
//! * **no cache poisoning** — a value served `Ok` always equals the
//!   fault-free ground truth, even right after corruption faults;
//! * **breaker recovery** — once the fault schedule clears, reads
//!   succeed again (the breaker closes via half-open probes);
//! * **session survival** — a statement killed by `ResourceExhausted`
//!   (or any fault) leaves the session able to answer the next one.
//!
//! Fault schedules are deterministic per seed (`ChunkFaultPlan`
//! decides per operation index), so failures reproduce exactly.
//! Tests serialize on [`GOV`]: the resource governor and the metrics
//! registry are process state.

use std::rc::Rc;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use aql_core::error::EvalError;
use aql_core::value::Value;
use aql_lang::errors::LangError;
use aql_lang::session::Session;
use aql_netcdf::driver::{register_netcdf, NetcdfSlabReader};
use aql_store::{
    governor, BreakerPolicy, ChunkFaultPlan, ChunkLayout, ChunkSource, FaultyChunkSource,
    LazyArray, ResiliencePolicy, ResilientSource, RetryPolicy, Scalar, ScalarBuf, ScalarKind,
    StoreError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The acceptance criteria ask for ≥ 3 fixed seeds.
const SEEDS: [u64; 3] = [1, 7, 42];

/// Serializes tests: the governor budget and metric counters are
/// process-wide.
static GOV: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let g = GOV.lock().unwrap_or_else(|e| e.into_inner());
    // A test that panicked mid-budget must not starve the rest of the
    // suite: every test starts from the unlimited default.
    governor::set_budget(None);
    g
}

/// Ground truth for the store-level array: row-major iota over 32×32.
fn truth(i: u64, j: u64) -> f64 {
    (i * 32 + j) as f64
}

/// A deterministic in-memory source over the ground-truth function.
struct IotaSource;

impl ChunkSource for IotaSource {
    fn read_chunk(&mut self, start: &[u64], count: &[u64]) -> Result<ScalarBuf, StoreError> {
        let mut out = Vec::with_capacity((count[0] * count[1]) as usize);
        for i in start[0]..start[0] + count[0] {
            for j in start[1]..start[1] + count[1] {
                out.push(truth(i, j));
            }
        }
        Ok(ScalarBuf::F64(out))
    }
}

/// Fast schedules for tests: no real sleeping in backoff.
fn fast_retry() -> RetryPolicy {
    RetryPolicy { base: Duration::ZERO, max: Duration::ZERO, jitter: 0.0, ..RetryPolicy::default() }
}

/// The full store-level chaos run for one seed.
fn store_chaos_run(seed: u64) {
    let plan = ChunkFaultPlan {
        seed,
        transient_rate: 0.25,
        corrupt_rate: 0.15,
        latency_rate: 0.02,
        latency: Duration::from_micros(200),
        clear_after: 600,
        ..ChunkFaultPlan::default()
    };
    let policy = ResiliencePolicy {
        retry: fast_retry(),
        breaker: Some(BreakerPolicy { threshold: 4, cooldown: Duration::ZERO }),
        verify_checksums: true,
    };
    let source = ResilientSource::new(
        FaultyChunkSource::new(IotaSource, plan),
        format!("chaos:iota:{seed}"),
        policy,
    );
    let layout = ChunkLayout::new(vec![32, 32], vec![8, 8]).unwrap();
    // Cache holds 4 of the 16 chunks: constant miss pressure keeps the
    // fault schedule advancing.
    let mut a = LazyArray::new(layout, ScalarKind::F64, Box::new(source), 4 * 8 * 8 * 8);

    let injected_before = aql_metrics::family_total("aql_store_chaos_injected_total");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(1000) + 1);
    let mut errors = 0u64;
    for _ in 0..400 {
        let (i, j) = (rng.gen_range(0..32u64), rng.gen_range(0..32u64));
        match a.get(&[i, j]) {
            Ok(Some(Scalar::F64(x))) => {
                assert_eq!(x, truth(i, j), "seed {seed}: wrong value served at ({i}, {j})");
            }
            Ok(other) => panic!("seed {seed}: in-bounds probe returned {other:?}"),
            // Classified-or-bust: shape errors or internal weirdness
            // would fall through to the panic arm.
            Err(
                StoreError::Io { .. } | StoreError::Corrupt(_) | StoreError::Unavailable { .. },
            ) => errors += 1,
            Err(other) => panic!("seed {seed}: unclassified failure {other}"),
        }
    }
    assert!(
        aql_metrics::family_total("aql_store_chaos_injected_total") > injected_before,
        "seed {seed}: the schedule injected no faults — the run proved nothing"
    );

    // Recovery: the schedule clears at op 600; every sweep advances the
    // op counter (≥12 misses per sweep with a 4-chunk cache), so a
    // bounded number of sweeps reaches the fault-free regime and the
    // breaker closes through its half-open probes.
    let mut clean = false;
    'sweeps: for _ in 0..100 {
        for i in 0..32 {
            for j in 0..32 {
                match a.get(&[i, j]) {
                    Ok(Some(Scalar::F64(x))) => {
                        assert_eq!(x, truth(i, j), "seed {seed}: poisoned value after faults");
                    }
                    Ok(other) => panic!("seed {seed}: in-bounds sweep returned {other:?}"),
                    Err(_) => continue 'sweeps,
                }
            }
        }
        clean = true;
        break;
    }
    assert!(clean, "seed {seed}: no clean sweep after the fault schedule cleared");
    let _ = errors; // error count is schedule-dependent; the invariants above are what matter
}

#[test]
fn store_chaos_classified_errors_no_poisoning_and_recovery() {
    let _g = lock();
    for seed in SEEDS {
        store_chaos_run(seed);
    }
}

/// Build a session with a 40×40 NetCDF file bound as ground truth and
/// return (session, file path, temp dir). Values are `i*7 + j`.
fn netcdf_session(tag: &str) -> (Session, String, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "aql-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grid.nc");
    let p = path.to_str().unwrap().to_string();
    let mut s = Session::new();
    // The outcome preview renders array entries, each costing a chunk
    // read; limit 0 still probes exactly one element. Tests below
    // account for that single bind-time read (fault-schedule op 0).
    s.display_limit = 0;
    register_netcdf(&mut s);
    s.run(&format!(
        "val \\M = [[ (i * 7 + j) | \\i < 40, \\j < 40 ]];
         writeval M using NETCDF at (\"{p}\", \"grid\");"
    ))
    .unwrap();
    (s, p, dir)
}

fn bind_chaos(s: &mut Session, p: &str, reader: NetcdfSlabReader) {
    s.register_reader("NETCDF2", Rc::new(reader));
    s.run(&format!(
        "readval \\T using NETCDF2 at (\"{p}\", \"grid\", (0, 0), (39, 39));"
    ))
    .unwrap();
}

/// Session-level chaos for one seed: randomized faults on the chunk
/// path, mixed query corpus, every error classified, every Ok value
/// exact, session survives everything.
fn session_chaos_run(seed: u64) {
    let (mut s, p, dir) = netcdf_session("rand");
    let mut reader = NetcdfSlabReader::lazy(2);
    reader.chaos = Some(ChunkFaultPlan {
        seed,
        transient_rate: 0.3,
        corrupt_rate: 0.2,
        clear_after: 40,
        ..ChunkFaultPlan::default()
    });
    reader.resilience = Some(ResiliencePolicy {
        retry: RetryPolicy { attempts: 2, ..fast_retry() },
        breaker: Some(BreakerPolicy { threshold: 3, cooldown: Duration::ZERO }),
        verify_checksums: true,
    });
    // Cache budget below the single 12.8 KB chunk is still fine (an
    // oversized chunk stays resident); what matters is that failed
    // loads are never cached, so every failing statement re-drives the
    // fault schedule.
    bind_chaos(&mut s, &p, reader);

    // The corpus: point probe, column projection, pure arithmetic.
    let corpus: [(&str, Value); 3] = [
        ("T[2, 3]", Value::Real(17.0)),
        ("len!(proj_col!(T, 0))", Value::Nat(40)),
        ("1 + 2", Value::Nat(3)),
    ];
    let mut failures = 0u64;
    let mut successes = 0u64;
    for round in 0..30 {
        let (q, want) = &corpus[round % corpus.len()];
        match s.eval_query(q) {
            Ok((_, v)) => {
                assert_eq!(&v, want, "seed {seed}: wrong answer for `{q}`");
                successes += 1;
            }
            Err(LangError::Eval(
                EvalError::Storage { .. }
                | EvalError::ResourceExhausted { .. }
                | EvalError::Deadline
                | EvalError::Cancelled,
            )) => failures += 1,
            Err(other) => panic!("seed {seed}: unclassified session error: {other}"),
        }
    }
    assert!(successes > 0, "seed {seed}: session never answered");
    // The schedule clears at op 40; by then the chunk is cached and
    // every statement must succeed.
    for (q, want) in &corpus {
        let (_, v) = s.eval_query(q).unwrap_or_else(|e| {
            panic!("seed {seed}: `{q}` still failing after faults cleared: {e}")
        });
        assert_eq!(&v, want, "seed {seed}: wrong answer after recovery for `{q}`");
    }
    let _ = failures;
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_chaos_survives_and_answers_exactly() {
    let _g = lock();
    for seed in SEEDS {
        session_chaos_run(seed);
    }
}

#[test]
fn breaker_trips_and_recovers_through_the_session() {
    let _g = lock();
    for seed in SEEDS {
        let (mut s, p, dir) = netcdf_session("breaker");
        let mut reader = NetcdfSlabReader::lazy(2);
        // Every chunk read fails until op 10, then the outage clears.
        reader.chaos = Some(ChunkFaultPlan {
            seed,
            transient_rate: 1.0,
            clear_after: 10,
            ..ChunkFaultPlan::default()
        });
        reader.resilience = Some(ResiliencePolicy {
            retry: RetryPolicy { attempts: 1, ..fast_retry() },
            breaker: Some(BreakerPolicy { threshold: 3, cooldown: Duration::ZERO }),
            verify_checksums: true,
        });
        bind_chaos(&mut s, &p, reader);

        let trips_before = aql_metrics::family_total("aql_store_breaker_trips_total");
        let probes_before = aql_metrics::family_total("aql_store_breaker_probes_total");
        let mut failures = 0u64;
        let mut recovered = None;
        for _ in 0..30 {
            match s.eval_query("T[1, 1]") {
                Ok((_, v)) => {
                    recovered = Some(v);
                    break;
                }
                Err(LangError::Eval(EvalError::Storage { .. })) => failures += 1,
                Err(other) => panic!("seed {seed}: unclassified error: {other}"),
            }
        }
        assert_eq!(recovered, Some(Value::Real(8.0)), "seed {seed}: no recovery");
        assert!(failures >= 3, "seed {seed}: outage too short to trip anything");
        assert!(
            aql_metrics::family_total("aql_store_breaker_trips_total") > trips_before,
            "seed {seed}: breaker never tripped"
        );
        assert!(
            aql_metrics::family_total("aql_store_breaker_probes_total") > probes_before,
            "seed {seed}: breaker never probed (recovery path untested)"
        );
        // Recovered for good: the chunk is cached, statements keep
        // answering.
        let (_, v) = s.eval_query("T[3, 4]").unwrap();
        assert_eq!(v, Value::Real(25.0));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resource_exhausted_kills_the_statement_not_the_session() {
    let _g = lock();
    let (mut s, p, dir) = netcdf_session("governor");
    bind_chaos(&mut s, &p, NetcdfSlabReader::lazy(2));
    // Sanity: the binding answers before the budget shrinks.
    let (_, v) = s.eval_query("T[0, 5]").unwrap();
    assert_eq!(v, Value::Real(5.0));

    governor::set_budget(Some(1024));
    // 100k elements × 8 bytes could never fit a 1 KiB process budget:
    // the statement dies with the classified error... (`val` forces
    // materialization; a bare `len!` of a comprehension gets rewritten
    // to its bound and never allocates.)
    let err = s.run("val \\X = [[ i | \\i < 100000 ]];").unwrap_err();
    match err {
        LangError::Eval(EvalError::ResourceExhausted { requested, budget }) => {
            assert_eq!(requested, 800_000);
            assert_eq!(budget, 1024);
        }
        other => panic!("expected ResourceExhausted, got {other}"),
    }
    governor::set_budget(None);
    // ...and the session, its bindings, and the cache all survive.
    let (_, v) = s.eval_query("T[2, 2]").unwrap();
    assert_eq!(v, Value::Real(16.0));
    let (_, v) = s.eval_query("len!([[ i | \\i < 100 ]])").unwrap();
    assert_eq!(v, Value::Nat(100));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_latency_cannot_outlive_the_deadline() {
    let _g = lock();
    let (mut s, p, dir) = netcdf_session("deadline");
    let mut reader = NetcdfSlabReader::lazy(2);
    // Binding a value renders a preview, which costs exactly one read
    // (op 0): fail it fast so nothing gets cached at bind time. Op 1 —
    // the first real probe — stalls 30 s; only the interrupt hooks can
    // save the statement.
    reader.chaos = Some(ChunkFaultPlan {
        transient_ops: [0u64].into_iter().collect(),
        latency_ops: [1u64].into_iter().collect(),
        latency: Duration::from_secs(30),
        ..ChunkFaultPlan::default()
    });
    reader.resilience = Some(ResiliencePolicy {
        retry: RetryPolicy { attempts: 1, ..fast_retry() },
        breaker: None,
        verify_checksums: true,
    });
    bind_chaos(&mut s, &p, reader);

    s.limits.timeout = Some(Duration::from_millis(20));
    let t0 = std::time::Instant::now();
    let err = s.eval_query("T[1, 0]").unwrap_err();
    assert!(
        matches!(err, LangError::Eval(EvalError::Deadline)),
        "expected Deadline, got {err}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the deadline fired late: {:?}",
        t0.elapsed()
    );
    // Op 2 is clean; with the deadline lifted the same statement
    // succeeds and the session moves on.
    s.limits.timeout = None;
    let (_, v) = s.eval_query("T[1, 0]").unwrap();
    assert_eq!(v, Value::Real(7.0));
    std::fs::remove_dir_all(&dir).ok();
}

/// End-to-end flight-recorder acceptance: an injected-fault chaos run
/// must dump an incident file, and `\doctor` on that file must name
/// the failing source label and the fault class — the full pipeline
/// from fault injection through retry exhaustion, journal capture,
/// incident dump, and offline analysis.
#[test]
fn chaos_incident_is_dumped_and_doctor_names_the_fault() {
    use aql_lang::session::IncidentConfig;

    let _g = lock();
    let (mut s, p, dir) = netcdf_session("doctor");
    let mut reader = NetcdfSlabReader::lazy(2);
    // A total outage: every chunk read (and every retry of it) fails
    // transiently, and the schedule never clears.
    reader.chaos = Some(ChunkFaultPlan {
        seed: 42,
        transient_rate: 1.0,
        ..ChunkFaultPlan::default()
    });
    reader.resilience = Some(ResiliencePolicy {
        retry: RetryPolicy { attempts: 2, ..fast_retry() },
        breaker: None,
        verify_checksums: true,
    });
    bind_chaos(&mut s, &p, reader);

    let inc_dir = dir.join("incidents");
    s.enable_incidents(IncidentConfig::new(&inc_dir));

    // The probe burns its retry budget and the statement dies with a
    // classified storage error...
    let err = s.run("T[5, 5];").unwrap_err();
    assert!(
        matches!(err, LangError::Eval(EvalError::Storage { .. })),
        "expected a classified storage error, got {err}"
    );

    // ...which must leave a self-contained incident file behind.
    let path = s.last_incident_path().expect("the failing statement must dump an incident");
    assert!(path.exists(), "incident file missing: {}", path.display());
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    assert!(
        name.starts_with("incident-") && name.ends_with("-error.json"),
        "unexpected incident file name: {name}"
    );
    let inc = aql_journal::incident::Incident::load(&path).expect("incident parses");
    assert_eq!(inc.kind, aql_journal::incident::IncidentKind::Error);
    assert!(inc.error.is_some(), "error incidents carry the message");

    // The doctor — same report offline as in the REPL — must name the
    // failing source and classify the fault.
    let report = aql_journal::doctor::diagnose(&inc);
    assert!(
        report.contains("netcdf:grid"),
        "doctor must name the failing source label:\n{report}"
    );
    assert!(
        report.contains("transient-io"),
        "doctor must classify the injected fault:\n{report}"
    );
    assert!(report.contains("fault class"), "report shape changed:\n{report}");

    // The session-side `\doctor` path reads the same dump.
    let via_session = s.doctor();
    assert!(via_session.contains("netcdf:grid"), "{via_session}");
    assert!(via_session.contains("transient-io"), "{via_session}");

    s.disable_incidents();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn preset_cancellation_stops_the_chunk_load() {
    let _g = lock();
    let (mut s, p, dir) = netcdf_session("cancel");
    let mut reader = NetcdfSlabReader::lazy(2);
    // Fail the bind-time preview read (op 0) so the chunk is not yet
    // cached when the cancelled statement runs.
    reader.chaos = Some(ChunkFaultPlan {
        transient_ops: [0u64].into_iter().collect(),
        ..ChunkFaultPlan::default()
    });
    reader.resilience = Some(ResiliencePolicy {
        retry: RetryPolicy { attempts: 1, ..fast_retry() },
        breaker: None,
        verify_checksums: true,
    });
    bind_chaos(&mut s, &p, reader);
    let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    s.limits.cancel = Some(flag.clone());
    // The first touch of the lazy binding is a cache miss, which polls
    // the interrupt hooks before loading.
    let err = s.eval_query("T[9, 9]").unwrap_err();
    assert!(
        matches!(err, LangError::Eval(EvalError::Cancelled)),
        "expected Cancelled, got {err}"
    );
    flag.store(false, std::sync::atomic::Ordering::Relaxed);
    let (_, v) = s.eval_query("T[9, 9]").unwrap();
    assert_eq!(v, Value::Real(72.0));
    std::fs::remove_dir_all(&dir).ok();
}
