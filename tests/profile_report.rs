//! Acceptance: profiling a NETCDF-backed query surfaces the whole
//! pipeline — the phase-timing tree includes `optimize` (with rule-fire
//! counters) and `eval` (with chunk-cache hits/misses and bytes read) —
//! and the same data round-trips through `QueryReport::to_json`. Also
//! the regression for per-statement stats attribution: cache deltas of
//! *non-final* statements in a multi-statement run are no longer lost.

use aql::lang::session::{QueryReport, Session};
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::format::VERSION_CLASSIC;
use aql::netcdf::synth::year_temp_file;
use aql::netcdf::write::write_file;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("aql-profile-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn profile_of_netcdf_query_shows_io_and_rules_and_round_trips() {
    let dir = tmpdir("nc");
    let path = dir.join("temp.nc");
    write_file(&year_temp_file().unwrap(), &path, VERSION_CLASSIC).unwrap();
    let p = path.to_str().unwrap();

    let mut s = Session::new();
    register_netcdf(&mut s);
    s.run(&format!(
        "readval \\T using NETCDF3 at (\"{p}\", \"temp\", (0, 0, 0), (8759, 4, 4));"
    ))
    .unwrap();

    // A fresh session's cache is cold, so the probe must do real I/O.
    let (outcomes, report) =
        s.profile("max!{ T[i * 100, 2, 2] | \\i <- gen!10 };").unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(report.statements.len(), 1);

    // Phase-timing tree: a statement root with optimize and eval
    // children, the optimizer's per-phase spans below optimize.
    let t = &report.trace;
    assert!(t.find("statement").is_some());
    for name in ["resolve", "typecheck", "optimize", "eval", "opt.phase", "opt.pass"] {
        assert!(t.find(name).is_some(), "span `{name}` missing from {t:?}");
    }
    // The optimizer reported work (pass counters; rule fires appear as
    // `fire:<phase>/<rule>` counters when any rule matches).
    assert!(t.total_counter("opt.passes") > 0);

    // The evaluator and the store reported work.
    assert!(t.total_counter("eval.steps") > 0);
    assert!(t.total_counter("eval.subscripts") >= 10, "10 point probes");
    assert!(t.total_counter("cache.misses") > 0, "cold cache ⇒ misses");
    assert!(t.total_counter("cache.bytes_read") > 0);
    assert!(t.total_counter("netcdf.hyperslab_requests") > 0);
    // ... and the trace agrees with the per-statement stats vector.
    let total = report.total();
    assert_eq!(t.total_counter("cache.bytes_read"), total.cache.bytes_read);
    assert!(total.cache.misses > 0);

    // Machine-readable export: the full report survives JSON.
    let json = report.to_json();
    let back = QueryReport::from_json(&json).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.total().cache.bytes_read, total.cache.bytes_read);

    // The rendered profile mentions the I/O counters, and its redacted
    // form is stable across renders.
    let rendered = report.render_profile(true);
    assert!(rendered.contains("cache.bytes_read="), "{rendered}");
    assert!(rendered.contains("eval (_)"), "{rendered}");
    assert_eq!(rendered, back.render_profile(true));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn non_final_statements_keep_their_cache_deltas() {
    let dir = tmpdir("multi");
    let path = dir.join("temp.nc");
    write_file(&year_temp_file().unwrap(), &path, VERSION_CLASSIC).unwrap();
    let p = path.to_str().unwrap();

    let mut s = Session::new();
    register_netcdf(&mut s);
    s.run(&format!(
        "readval \\T using NETCDF3 at (\"{p}\", \"temp\", (0, 0, 0), (8759, 4, 4));"
    ))
    .unwrap();

    // One run, two statements: the FIRST does the I/O (cold probe),
    // the second is pure arithmetic. The old `last_stats` kept only
    // the final statement and reported zero bytes for the run.
    s.run("T[5000, 2, 2]; 1 + 1;").unwrap();
    let per_stmt = s.statement_stats();
    assert_eq!(per_stmt.len(), 2);
    assert!(
        per_stmt[0].cache.bytes_read > 0,
        "the probe's I/O must be attributed to statement 0"
    );
    assert_eq!(
        per_stmt[1].cache.bytes_read, 0,
        "pure arithmetic does no chunk I/O"
    );
    assert!(
        s.last_stats().cache.bytes_read >= per_stmt[0].cache.bytes_read,
        "the run total must include the non-final statement's I/O"
    );

    std::fs::remove_dir_all(&dir).ok();
}
