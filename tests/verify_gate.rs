//! End-to-end test of the rewrite-soundness gate: a deliberately
//! unsound rule injected into the standard pipeline is caught by the
//! session's verify mode and attributed to its `(phase, rule)`.
//!
//! This is the acceptance check for the gate — the engine-level unit
//! tests live in `aql-opt`; here the violation travels the whole way
//! through `Session::run` and surfaces as `LangError::Unsound` while
//! the session itself stays usable.

use std::rc::Rc;

use aql::core::expr::Expr;
use aql::lang::{LangError, Session};
use aql::opt::Rule;

/// Rewrites the literal `7` to `true` — type-changing, unsound.
struct EvilTypeChange;

impl Rule for EvilTypeChange {
    fn name(&self) -> &'static str {
        "evil-type-change"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        matches!(e, Expr::Nat(7)).then_some(Expr::Bool(true))
    }
}

/// Rewrites the literal `41` to an unbound variable — scope-escaping.
struct EvilGhostVar;

impl Rule for EvilGhostVar {
    fn name(&self) -> &'static str {
        "evil-ghost-var"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        matches!(e, Expr::Nat(41)).then_some(Expr::Var("ghost".into()))
    }
}

fn session_with_rule(rule: Rc<dyn Rule>) -> Session {
    let mut s = Session::new();
    // Explicit: the default is debug-on/release-off, but this test must
    // exercise the gate in both profiles (CI runs it under AQL_VERIFY=1
    // in release too).
    s.verify = true;
    s.optimizer_mut()
        .phase_mut("normalize")
        .expect("standard pipeline has a normalize phase")
        .add_rule(rule);
    s
}

#[test]
fn type_changing_rewrite_is_caught_and_attributed() {
    let mut s = session_with_rule(Rc::new(EvilTypeChange));
    let err = s.run("7 + 0;").expect_err("the gate must reject the rewrite");
    let LangError::Unsound { phase, rule, message } = &err else {
        unreachable!("expected LangError::Unsound, got: {err}");
    };
    assert_eq!(phase, "normalize");
    assert_eq!(rule, "evil-type-change");
    assert!(
        message.contains("type"),
        "message explains the type change: {message}"
    );
    // Attribution is part of the rendered error.
    let text = err.to_string();
    assert!(text.contains("unsound rewrite by rule `evil-type-change`"), "{text}");
    assert!(text.contains("phase `normalize`"), "{text}");
    // The session survives and still answers untainted queries.
    let out = s.run("1 + 1;").expect("session stays usable");
    assert!(out[0].text.contains("val it = 2"), "{}", out[0].text);
}

#[test]
fn scope_escaping_rewrite_is_caught_under_binders() {
    let mut s = session_with_rule(Rc::new(EvilGhostVar));
    // The redex sits under the tabulation binder `i`; the gate must
    // still see that `ghost` is not in scope there.
    let err = s
        .run("[[ 41 + i | \\i < 3 ]][0];")
        .expect_err("the gate must reject the ghost variable");
    let LangError::Unsound { phase, rule, message } = &err else {
        unreachable!("expected LangError::Unsound, got: {err}");
    };
    assert_eq!(phase, "normalize");
    assert_eq!(rule, "evil-ghost-var");
    assert!(
        message.contains("ghost") || message.contains("unbound"),
        "message names the escape: {message}"
    );
}

#[test]
fn gate_off_lets_the_corruption_through() {
    // With verify off, the same evil rule corrupts the query — the
    // failure (if any) shows up later and is NOT attributed. This
    // documents what the gate buys.
    let mut s = Session::new();
    s.verify = false;
    s.optimizer_mut()
        .phase_mut("normalize")
        .expect("standard pipeline has a normalize phase")
        .add_rule(Rc::new(EvilTypeChange));
    match s.run("7 + 0;") {
        Ok(out) => assert!(
            !out[0].text.contains("val it = 7"),
            "the rewrite corrupted the answer yet it still printed 7: {}",
            out[0].text
        ),
        Err(e) => assert!(
            !matches!(e, LangError::Unsound { .. }),
            "without the gate there is nothing to attribute: {e}"
        ),
    }
}

#[test]
fn sound_sessions_run_clean_with_the_gate_on() {
    let mut s = Session::new();
    s.verify = true;
    let out = s.run("[[ i * i | \\i < 8 ]][3];").expect("sound pipeline passes the gate");
    assert!(out[0].text.contains("val it = 9"), "{}", out[0].text);
}
