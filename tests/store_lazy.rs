//! Acceptance: a `NETCDFk` read of a single point from a large
//! synthetic variable reads strictly fewer bytes than full
//! materialization, and the session reports the I/O cost through
//! `EvalStats`.

use aql::lang::session::Session;
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::format::VERSION_CLASSIC;
use aql::netcdf::synth::year_temp_file;
use aql::netcdf::write::write_file;
use aql_core::value::Value;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("aql-store-lazy-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// `temp(time, lat, lon)` = 8760 × 5 × 5 doubles — 1.752 MB of data.
const TEMP_ELEMS: u64 = 8760 * 5 * 5;
const TEMP_BYTES: u64 = TEMP_ELEMS * 8;

#[test]
fn point_read_touches_a_fraction_of_the_variable() {
    let dir = tmpdir("point");
    let path = dir.join("temp.nc");
    write_file(&year_temp_file().unwrap(), &path, VERSION_CLASSIC).unwrap();
    let p = path.to_str().unwrap();

    let global_before = aql_store::stats::global();

    let mut s = Session::new();
    register_netcdf(&mut s);
    s.run(&format!(
        "readval \\T using NETCDF3 at (\"{p}\", \"temp\", (0, 0, 0), (8759, 4, 4));"
    ))
    .unwrap();

    // Binding is lazy: the readval itself (plus the session echo of
    // the value's leading elements) must NOT have materialized the
    // variable.
    let bound_bytes = aql_store::stats::global().delta_since(&global_before).bytes_read;
    assert!(
        bound_bytes < TEMP_BYTES / 4,
        "binding read {bound_bytes} of {TEMP_BYTES} bytes — not lazy"
    );

    // A single point probe loads exactly the chunks it needs.
    let (_, v) = s.eval_query("T[5000, 2, 2]").unwrap();
    assert!(matches!(v, Value::Real(_)));
    let stats = s.last_stats();
    assert!(stats.steps > 0);
    assert!(
        stats.cache.bytes_read > 0,
        "the probed chunk was not yet resident, so bytes must move"
    );
    assert!(
        stats.cache.bytes_read < TEMP_BYTES,
        "point probe read {} bytes, full variable is {TEMP_BYTES}",
        stats.cache.bytes_read
    );

    // Re-probing the same chunk is served from cache: no new bytes.
    let (_, v2) = s.eval_query("T[5000, 2, 3]").unwrap();
    assert!(matches!(v2, Value::Real(_)));
    let stats2 = s.last_stats();
    assert_eq!(stats2.cache.bytes_read, 0, "second probe must hit the cache");
    assert!(stats2.cache.hits >= 1);

    // Across the WHOLE session — bind, echo, two probes — strictly
    // fewer bytes than one full materialization left disk.
    let total = aql_store::stats::global().delta_since(&global_before).bytes_read;
    assert!(
        total < TEMP_BYTES,
        "session read {total} bytes, full materialization is {TEMP_BYTES}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lazy_and_eager_agree_on_queries() {
    use aql::netcdf::driver::NetcdfSlabReader;
    use std::rc::Rc;

    let dir = tmpdir("agree");
    let path = dir.join("temp.nc");
    write_file(&year_temp_file().unwrap(), &path, VERSION_CLASSIC).unwrap();
    let p = path.to_str().unwrap();

    let mut s = Session::new();
    s.register_reader("NCLAZY", Rc::new(NetcdfSlabReader::lazy(3)));
    s.register_reader("NCEAGER", Rc::new(NetcdfSlabReader::eager(3)));
    s.run(&format!(
        "readval \\L using NCLAZY at (\"{p}\", \"temp\", (100, 0, 0), (199, 4, 4));
         readval \\E using NCEAGER at (\"{p}\", \"temp\", (100, 0, 0), (199, 4, 4));"
    ))
    .unwrap();

    // δ-rule / optimizer behavior is observably unchanged: the same
    // pipeline over a lazy and an eager binding of the same subslab
    // gives identical results.
    for q in [
        "L[17, 3, 1]",
        "dim_3!L",
        "max!{ L[0, i, j] | \\i <- gen!5, \\j <- gen!5 }",
        "[[ L[t, 0, 0] | \\t < 10 ]]",
    ] {
        let (_, vl) = s.eval_query(q).unwrap();
        let (_, ve) = s.eval_query(&q.replace('L', "E")).unwrap();
        assert_eq!(vl, ve, "query {q}");
    }
    // Equality across representations holds wholesale.
    let (_, eq) = s.eval_query("L = E").unwrap();
    assert_eq!(eq, Value::Bool(true));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn out_of_bounds_subscript_is_bottom_on_lazy_arrays() {
    let dir = tmpdir("oob");
    let path = dir.join("temp.nc");
    write_file(&year_temp_file().unwrap(), &path, VERSION_CLASSIC).unwrap();
    let p = path.to_str().unwrap();

    let mut s = Session::new();
    register_netcdf(&mut s);
    s.run(&format!(
        "readval \\T using NETCDF3 at (\"{p}\", \"temp\", (0, 0, 0), (99, 4, 4));"
    ))
    .unwrap();
    // §2: out-of-bounds subscripting is the error value, not a host
    // error — the lazy path must preserve that.
    let (_, v) = s.eval_query("T[100, 0, 0]").unwrap();
    assert_eq!(v, Value::Bottom);

    std::fs::remove_dir_all(&dir).ok();
}
