//! The workspace lint wall: no `panic!(`, `.unwrap()`, `todo!(`,
//! `unimplemented!(`, or `dbg!(` in non-test library code under
//! `crates/*/src`.
//!
//! Robustness is a stated goal (PR 1 made extension panics survivable;
//! this PR makes internal invariants report instead of abort) — the
//! wall keeps new aborts from creeping back in. Escapes:
//!
//! * test code — `#[cfg(test)]` modules are stripped before scanning;
//! * comments and doc examples — `//`-leading lines are skipped;
//! * deliberate aborts — annotate the line (or the line above) with
//!   `// lint-wall: allow` and a justification;
//! * the vendored `proptest-shim` is exempt (test-only by nature).
//!
//! CI runs the same check as a grep step; this test keeps it
//! enforceable locally with `cargo test`.

use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose sources are exempt wholesale.
const EXEMPT_CRATES: &[&str] = &["proptest-shim"];

/// The forbidden substrings. The last three keep scaffolding out of
/// shipped code: `todo!`/`unimplemented!` abort at runtime, and `dbg!`
/// writes to stderr from library internals.
const FORBIDDEN: &[&str] = &["panic!(", ".unwrap()", "todo!(", "unimplemented!(", "dbg!("];

/// Collect every `.rs` file under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}"));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// Drop `#[cfg(test)]`-gated items (modules or functions) by brace
/// counting from the attribute line. Returns `(line_number, line)`
/// pairs for what remains.
fn non_test_lines(text: &str) -> Vec<(usize, String)> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            let mut depth: i64 = 0;
            let mut started = false;
            while i < lines.len() {
                depth += lines[i].matches('{').count() as i64;
                depth -= lines[i].matches('}').count() as i64;
                if lines[i].contains('{') {
                    started = true;
                }
                i += 1;
                if started && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        out.push((i + 1, lines[i].to_string()));
        i += 1;
    }
    out
}

#[test]
fn no_panics_or_unwraps_in_library_code() {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut files = Vec::new();
    let entries = fs::read_dir(&crates).expect("crates/ exists");
    for entry in entries {
        let krate = entry.expect("dir entry").path();
        let name = krate.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if EXEMPT_CRATES.contains(&name) {
            continue;
        }
        let src = krate.join("src");
        if src.is_dir() {
            rust_files(&src, &mut files);
        }
    }
    assert!(files.len() > 10, "the scan must actually find the workspace sources");

    let mut violations = Vec::new();
    for path in &files {
        let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        let kept = non_test_lines(&text);
        for (k, (ln, line)) in kept.iter().enumerate() {
            let trimmed = line.trim_start();
            // Comments (incl. doc examples) are not reachable code.
            if trimmed.starts_with("//") {
                continue;
            }
            let allowed = line.contains("lint-wall: allow")
                || (k > 0 && kept[k - 1].1.contains("lint-wall: allow"));
            if allowed {
                continue;
            }
            for pat in FORBIDDEN {
                if line.contains(pat) {
                    violations.push(format!("{}:{}: {}", path.display(), ln, line.trim()));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "forbidden `panic!(`/`.unwrap()`/`todo!(`/`unimplemented!(`/`dbg!(` in library \
         code (add `// lint-wall: allow` \
         with a justification if the abort is deliberate):\n{}",
        violations.join("\n")
    );
}

#[test]
fn cfg_test_stripping_works() {
    let src = "fn a() { x.unwrap(); }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn b() { y.unwrap(); }\n\
               }\n\
               fn c() {}\n";
    let kept = non_test_lines(src);
    let text: Vec<&str> = kept.iter().map(|(_, l)| l.as_str()).collect();
    assert!(text.iter().any(|l| l.contains("fn a")));
    assert!(text.iter().any(|l| l.contains("fn c")));
    assert!(!text.iter().any(|l| l.contains("fn b")), "{text:?}");
}
