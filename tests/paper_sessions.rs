//! The paper's two worked examples, end-to-end through every crate:
//! surface parsing, Fig. 2 desugaring, typechecking, the §5 optimizer,
//! the evaluator, and the NetCDF driver over synthetic data.

use aql::externals::{register_heatindex, register_june_sunset};
use aql::lang::session::Session;
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::synth;
use aql_core::types::Type;
use aql_core::value::Value;

fn data_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("aql-it-{tag}-{}", std::process::id()))
}

fn june_session(tag: &str) -> Session {
    let dir = data_dir(tag);
    let (_, june) = synth::write_example_data(&dir).expect("synthetic data");
    let p = june.to_str().expect("utf-8");
    let mut s = Session::new();
    register_netcdf(&mut s);
    register_heatindex(&mut s);
    let hours = synth::JUNE_HOURS as u64;
    s.run(&format!(
        r#"readval \T using NETCDF1 at ("{p}", "T", 0, {th});
           readval \RH using NETCDF1 at ("{p}", "RH", 0, {th});
           readval \WS using NETCDF2 at ("{p}", "WS", (0, 0), ({wh}, {lh}));
           val \threshold = 96.0;"#,
        th = hours - 1,
        wh = 2 * hours - 1,
        lh = synth::WS_LEVELS - 1,
    ))
    .expect("setup");
    s
}

const HEAT_QUERY: &str = r#"{d | \d <- gen!30,
     \WS' == evenpos!(proj_col!(WS, 0)),
     \TRW == zip_3!(T, RH, WS'),
     \A == subseq!(TRW, d*24, d*24+23),
     heatindex!(A) > threshold}"#;

#[test]
fn section1_heat_query_finds_the_heatwaves() {
    let mut s = june_session("heat");
    let (ty, v) = s.eval_query(HEAT_QUERY).expect("query");
    assert_eq!(ty, Type::set(Type::Nat));
    let expect = Value::set(
        synth::HEATWAVE_DAYS
            .iter()
            .map(|&d| Value::Nat((d - 1) as u64))
            .collect(),
    );
    assert_eq!(v, expect);
}

#[test]
fn section1_heat_query_same_without_optimizer() {
    let mut s = june_session("heat-noopt");
    let (_, with) = s.eval_query(HEAT_QUERY).expect("optimized");
    s.optimize = false;
    let (_, without) = s.eval_query(HEAT_QUERY).expect("unoptimized");
    assert_eq!(with, without);
}

#[test]
fn section1_zip_subseq_order_is_irrelevant() {
    // The §1 discussion: exchanging zip and subseq yields the same
    // answer (and §5 shows the optimizer makes it the same *plan*).
    let mut s = june_session("flip");
    let flipped = r#"{d | \d <- gen!30,
         \WS' == evenpos!(proj_col!(WS, 0)),
         \A == zip_3!(subseq!(T, d*24, d*24+23),
                      subseq!(RH, d*24, d*24+23),
                      subseq!(WS', d*24, d*24+23)),
         heatindex!(A) > threshold}"#;
    let (_, a) = s.eval_query(HEAT_QUERY).expect("original");
    let (_, b) = s.eval_query(flipped).expect("flipped");
    assert_eq!(a, b);
}

#[test]
fn section42_sunset_session_verbatim() {
    let dir = data_dir("sunset");
    let (temp, _) = synth::write_example_data(&dir).expect("synthetic data");
    let p = temp.to_str().expect("utf-8");

    let mut s = Session::new();
    register_netcdf(&mut s);
    register_june_sunset(&mut s);

    // The session, statement for statement (§4.2).
    let months = s
        .run("val \\months = [[0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30]];")
        .expect("months");
    assert!(months[0].text.contains("typ months : [[nat]]_1"));

    let mac = s
        .run(
            "macro \\days_since_1_1 = fn (\\m, \\d, \\y) =>
                d + summap(fn \\i => months[i])!(gen!m) +
                (if m > 2 and y % 4 = 0 then 1 else 0);",
        )
        .expect("macro");
    assert!(mac[0].text.contains("typ days_since_1_1 : nat * nat * nat -> nat"));

    // The paper's date arithmetic.
    let (_, v) = s.eval_query("days_since_1_1!(6, 1, 95)").expect("date");
    assert_eq!(v, Value::Nat(152));

    s.run("val \\NYlat = 40.7; val \\NYlon = -74.0;").expect("coords");
    s.run("macro \\lat_index = fn \\x => 2; macro \\lon_index = fn \\x => 2;")
        .expect("index macros");

    let read = s
        .run(&format!(
            "readval \\T using NETCDF3 at
               (\"{p}\", \"temp\",
                (days_since_1_1!(6, 1, 95) * 24, lat_index!(NYlat), lon_index!(NYlon)),
                (days_since_1_1!(6, 30, 95) * 24, lat_index!(NYlat), lon_index!(NYlon)));"
        ))
        .expect("readval");
    assert_eq!(read[0].ty, Some(Type::array(Type::Real, 3)));

    let (ty, v) = s
        .eval_query(
            "{d | [(\\h, _, _) : \\t] <- T, \\d == h/24 + 1,
                  h > june_sunset!(NYlat, NYlon, d), t > 85.0}",
        )
        .expect("query");
    assert_eq!(ty, Type::set(Type::Nat));
    // The paper's own answer.
    assert_eq!(
        v,
        Value::set(vec![Value::Nat(25), Value::Nat(27), Value::Nat(28)])
    );
}

#[test]
fn netcdfinfo_lists_the_june_variables() {
    let dir = data_dir("info");
    let (_, june) = synth::write_example_data(&dir).expect("synthetic data");
    let mut s = Session::new();
    register_netcdf(&mut s);
    s.run(&format!(
        "readval \\info using NETCDFINFO at \"{}\";",
        june.display()
    ))
    .expect("info");
    let (_, names) = s.eval_query("{n | (\\n, _) <- info}").expect("names");
    assert_eq!(
        names,
        Value::set(vec![Value::str("RH"), Value::str("T"), Value::str("WS")])
    );
    // WS is 2-d with the extra altitude dimension (§1).
    let (_, dims) = s
        .eval_query("get!{d | (\"WS\", \\d) <- info}")
        .expect("dims");
    assert_eq!(
        dims,
        Value::array1(vec![
            Value::Nat(2 * synth::JUNE_HOURS as u64),
            Value::Nat(synth::WS_LEVELS as u64)
        ])
    );
}

#[test]
fn heat_query_respects_threshold_monotonicity() {
    let mut s = june_session("threshold");
    let (_, low) = s
        .eval_query(&HEAT_QUERY.replace("threshold", "80.0"))
        .expect("low threshold");
    let (_, high) = s
        .eval_query(&HEAT_QUERY.replace("threshold", "200.0"))
        .expect("high threshold");
    let low_days = low.as_set().expect("set").len();
    let high_days = high.as_set().expect("set").len();
    assert!(low_days >= 3, "a low threshold admits at least the heat waves");
    assert_eq!(high_days, 0, "an impossible threshold admits nothing");
}
