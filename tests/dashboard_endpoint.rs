//! Acceptance: the ops dashboard the metrics endpoint serves is real.
//! `GET /` returns the self-contained HTML page, `GET /stats.json`
//! returns parseable live statistics with the documented stable keys,
//! and `GET /profile?seconds=1` — while another thread is busy running
//! queries — returns non-empty folded stacks naming real phases.

use std::io::{BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aql::lang::repl::run_repl;
use aql::lang::session::Session;
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::format::VERSION_CLASSIC;
use aql::netcdf::synth::year_temp_file;
use aql::netcdf::write::write_file;
use aql::trace::json::Json;

/// GET `path` from `addr` and return the full HTTP response.
fn http_get(addr: &str, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to metrics endpoint");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut resp = String::new();
    conn.read_to_string(&mut resp).expect("read response");
    resp
}

fn body_of(resp: &str) -> &str {
    resp.split("\r\n\r\n").nth(1).expect("response body")
}

#[test]
fn dashboard_stats_and_profile_routes_serve_live_data() {
    let dir = std::env::temp_dir()
        .join(format!("aql-dashboard-endpoint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("temp.nc");
    write_file(&year_temp_file().unwrap(), &path, VERSION_CLASSIC).unwrap();
    let p = path.to_str().unwrap();

    // `\metrics serve` starts the endpoint AND installs the live
    // profile provider behind `/profile`. Run a few real statements so
    // the stats have something to show.
    let mut s = Session::new();
    register_netcdf(&mut s);
    let input = format!(
        "\\metrics serve 127.0.0.1:0;\n\
         readval \\T using NETCDF3 at (\"{p}\", \"temp\", (0, 0, 0), (8759, 4, 4));\n\
         max!{{ T[4000 + t, i, j] | \\t <- gen!100, \\i <- gen!5, \\j <- gen!5 }};\n"
    );
    let mut reader = BufReader::new(input.as_bytes());
    let mut out: Vec<u8> = Vec::new();
    let executed = run_repl(&mut s, &mut reader, &mut out).unwrap();
    assert_eq!(executed, 2, "both statements must run");
    let transcript = String::from_utf8(out).unwrap();
    let addr = transcript
        .lines()
        .find_map(|l| l.split("metrics: serving http://").nth(1))
        .and_then(|l| l.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("no serving line in {transcript}"))
        .to_string();
    assert!(
        transcript.contains("metrics: dashboard at http://"),
        "serve must advertise the dashboard: {transcript}"
    );

    // ---- GET / --------------------------------------------------------
    let resp = http_get(&addr, "/");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert!(resp.contains("Content-Type: text/html"), "{resp}");
    let html = body_of(&resp);
    assert!(
        html.trim_start().to_ascii_lowercase().starts_with("<!doctype html"),
        "dashboard must be a complete HTML document: {}",
        &html[..html.len().min(120)]
    );
    for needle in ["stats.json", "href=\"metrics\"", "</html>"] {
        assert!(html.contains(needle), "dashboard HTML must reference {needle}");
    }

    // ---- GET /stats.json ---------------------------------------------
    let stats = Json::parse(body_of(&http_get(&addr, "/stats.json")))
        .expect("stats.json must be strict JSON");
    assert_eq!(stats.get("schema_version").and_then(Json::as_u64), Some(1));
    for key in [
        "uptime_s",
        "statements_total",
        "errors_total",
        "slow_queries_total",
        "latency_ns",
        "cache",
        "governor",
        "journal_dropped_total",
        "breakers",
    ] {
        assert!(stats.get(key).is_some(), "stats.json missing key `{key}`");
    }
    assert!(
        stats.get("statements_total").and_then(Json::as_u64).is_some_and(|n| n >= 2),
        "both REPL statements must be counted: {stats:?}"
    );
    let lat = stats.get("latency_ns").expect("latency_ns");
    assert!(
        lat.get("count").and_then(Json::as_u64).is_some_and(|n| n >= 1),
        "latency histogram must have samples: {lat:?}"
    );
    for q in ["p50", "p95", "p99"] {
        assert!(lat.get(q).and_then(Json::as_f64).is_some(), "latency_ns.{q} missing");
    }
    let hits = stats.get("cache").and_then(|c| c.get("hits")).and_then(Json::as_u64);
    assert!(hits.is_some(), "cache.hits missing: {stats:?}");

    // ---- GET /profile?seconds=1 under load ---------------------------
    // Sessions are single-threaded, so the load thread builds its own;
    // the sampler observes every registered thread in the process.
    let stop = Arc::new(AtomicBool::new(false));
    let loader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut s = Session::new();
            let mut ran = 0u64;
            while !stop.load(Ordering::Relaxed) {
                s.eval_query("max!{ i * i | \\i <- gen!2000 }").expect("load query");
                ran += 1;
            }
            ran
        })
    };

    let resp = http_get(&addr, "/profile?seconds=1");
    stop.store(true, Ordering::Relaxed);
    let ran = loader.join().expect("load thread");
    assert!(ran > 0, "the load thread must actually have run queries");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    let folded = body_of(&resp);
    assert!(
        !folded.trim().is_empty(),
        "folded stacks must be non-empty while queries run"
    );
    // Every line is `path;frames count`, and the busy thread's
    // evaluation phase dominates somewhere in the set.
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line");
        assert!(!stack.is_empty(), "empty stack in `{line}`");
        count.parse::<u64>().unwrap_or_else(|_| panic!("bad count in `{line}`"));
    }
    assert!(
        folded.lines().any(|l| l.contains("statement")),
        "profile must name the statement phase: {folded}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
