//! Property: the optimizer pipeline preserves well-formedness and
//! type, as judged by `aql-verify`.
//!
//! For randomly composed well-typed terms (the array-pipeline fragment
//! also used by `tests/properties.rs`, plus comprehension shapes), the
//! full §5 optimizer must produce a term on which the verifier reports
//! zero diagnostics and whose checker-derived type is compatible with
//! the input's. This is the static half of the semantics-preservation
//! property — it holds for *every* rewrite sequence the phases chose,
//! not just the sampled evaluations.

use proptest::prelude::*;

use aql::core::check::typecheck_closed;
use aql::core::derived;
use aql::core::expr::builder::*;
use aql::core::expr::Expr;
use aql::opt::optimize;
use aql::verify::{type_compatible, verify_closed};

/// One symbolic step of a 1-d array pipeline.
#[derive(Debug, Clone)]
enum Step {
    Reverse,
    Evenpos,
    Subseq(f64, f64),
    Append(u8),
    MapAdd(u8),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Reverse),
        Just(Step::Evenpos),
        (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| Step::Subseq(a, b)),
        (0u8..4).prop_map(Step::Append),
        (0u8..9).prop_map(Step::MapAdd),
    ]
}

/// Apply a pipeline symbolically, tracking the length so slices stay
/// in bounds (mirrors `tests/properties.rs`).
fn build_pipeline(base: Vec<u64>, steps: &[Step]) -> Expr {
    let mut e = array1_lit(base.iter().map(|&x| nat(x)).collect());
    let mut len_now = base.len() as u64;
    for s in steps {
        match s {
            Step::Reverse => e = derived::reverse(e),
            Step::Evenpos => {
                e = derived::evenpos(e);
                len_now /= 2;
            }
            Step::Subseq(a, b) => {
                if len_now == 0 {
                    continue;
                }
                let lo = ((*a * (len_now - 1) as f64) as u64).min(len_now - 1);
                let hi = ((*b * (len_now - 1) as f64) as u64).clamp(lo, len_now - 1);
                e = derived::subseq(e, nat(lo), nat(hi));
                len_now = hi - lo + 1;
            }
            Step::Append(k) => {
                let extra: Vec<Expr> = (0..*k as u64).map(nat).collect();
                e = derived::append(e, array1_lit(extra));
                len_now += *k as u64;
            }
            Step::MapAdd(c) => {
                let f = {
                    let x = aql::core::expr::free::fresh("x");
                    lam(&x, add(var(&x), nat(*c as u64)))
                };
                e = derived::map_arr(f, e);
            }
        }
    }
    e
}

/// A closed comprehension-shaped query over a small literal set.
fn arb_set_query() -> impl Strategy<Value = Expr> {
    (prop::collection::vec(0u64..20, 0..5), 0u64..8, 0u64..4).prop_map(|(ns, cutoff, c)| {
        let s = ns
            .into_iter()
            .fold(Expr::Empty, |a, n| union(a, single(nat(n))));
        let x = aql::core::expr::free::fresh("x");
        big_union(
            &x,
            s,
            iff(
                lt(var(&x), nat(cutoff)),
                single(add(var(&x), nat(c))),
                Expr::Empty,
            ),
        )
    })
}

/// Assert the verifier finds nothing and the type survived.
fn assert_preserved(e: &Expr) {
    let t0 = typecheck_closed(e)
        .unwrap_or_else(|err| panic!("input does not typecheck: {err}\n{e}"));
    let d0 = verify_closed(e);
    assert!(d0.is_empty(), "verifier flags the INPUT {e}: {d0:?}");
    let opt = optimize(e);
    let d1 = verify_closed(&opt);
    assert!(
        d1.iter().all(|d| !d.is_error()),
        "optimizer produced a term the verifier rejects\ninput {e}\noutput {opt}\ndiags {d1:?}"
    );
    let t1 = typecheck_closed(&opt).unwrap_or_else(|err| {
        panic!("optimized term no longer typechecks: {err}\ninput {e}\noutput {opt}")
    });
    assert!(
        type_compatible(&t0, &t1),
        "optimizer changed the query type {t0} ~> {t1}\ninput {e}\noutput {opt}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimizer_preserves_types_on_array_pipelines(
        base in prop::collection::vec(0u64..100, 0..10),
        steps in prop::collection::vec(arb_step(), 1..5),
    ) {
        assert_preserved(&build_pipeline(base, &steps));
    }

    #[test]
    fn optimizer_preserves_types_on_set_queries(q in arb_set_query()) {
        assert_preserved(&q);
    }
}
