//! Property-based round-trip tests for AQF: random shapes and dtypes
//! — including edge chunks and zero extents — written with and
//! without compression must reopen value-identical.

use proptest::prelude::*;

use aql::core::value::{ArrayVal, Value};
use aql::format::{write_array, AqfReader};
use aql::lang::reader::Reader as _;
use aql::lang::session::Session;

/// A random array description: rank 1..=3, extents 0..6 (zero extents
/// make empty chunk grids), chunk target 1..48 elements (forcing edge
/// chunks), one of the three persisted dtypes.
#[derive(Debug, Clone)]
struct Spec {
    dims: Vec<u64>,
    chunk_elems: u64,
    dtype: u8, // 0 = real, 1 = nat, 2 = bool
    compress: bool,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec(0u64..6, 1..4),
        1u64..48,
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(dims, chunk_elems, dtype, compress)| Spec {
            dims,
            chunk_elems,
            dtype,
            compress,
        })
}

/// Deterministic data for a spec: values vary by position so chunk
/// mix-ups cannot cancel out.
fn build(spec: &Spec) -> ArrayVal {
    let len = spec.dims.iter().product::<u64>() as usize;
    let data: Vec<Value> = (0..len)
        .map(|i| match spec.dtype {
            0 => Value::Real(i as f64 * 0.375 - 11.0),
            1 => Value::Nat((i as u64).wrapping_mul(37) % 1000),
            _ => Value::Bool(i % 3 == 1),
        })
        .collect();
    ArrayVal::new(spec.dims.clone(), data).expect("build array")
}

/// Bit-exact scalar comparison: `Real` compares by `to_bits`, so NaN
/// round-trips count as equal and -0.0 ≠ 0.0 regressions are caught.
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Write `arr` to a scratch AQF file, reopen it through the lazy
/// reader, and compare dims, type and every element.
fn roundtrip(arr: &ArrayVal, compress: bool, chunk_elems: u64, what: &str) {
    let dir = std::env::temp_dir().join(format!(
        "aql-aqfrt-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("rt.aqf");
    let path_str = path.to_str().expect("utf-8 path");

    write_array(path_str, arr, compress, chunk_elems).expect("write");
    let (value, ty) = AqfReader::default().read(&Value::str(path_str)).expect("reopen");
    let back = value.as_array().expect("reopened as array");

    assert_eq!(back.dims(), arr.dims(), "{what}: dims");
    assert_eq!(back.rank(), arr.rank(), "{what}: rank");
    assert!(ty.is_some(), "{what}: reader declares its type");
    for off in 0..arr.len() {
        let want = arr.try_value_at(off).expect("original element").expect("in range");
        let got = back.try_value_at(off).expect("reopened element").expect("in range");
        assert!(
            same_value(&want, &got),
            "{what}: element {off} differs: wrote {want}, reread {got}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_arrays_roundtrip(spec in arb_spec()) {
        let arr = build(&spec);
        roundtrip(&arr, spec.compress, spec.chunk_elems, &format!("{spec:?}"));
    }
}

#[test]
fn zero_extent_arrays_roundtrip() {
    for dims in [vec![0], vec![0, 3], vec![4, 0, 2]] {
        let arr = ArrayVal::new(dims.clone(), vec![]).expect("empty array");
        roundtrip(&arr, true, 8, &format!("zero extents {dims:?}"));
    }
}

#[test]
fn special_reals_roundtrip_bit_exact() {
    let data = vec![
        Value::Real(f64::NAN),
        Value::Real(f64::INFINITY),
        Value::Real(f64::NEG_INFINITY),
        Value::Real(-0.0),
        Value::Real(f64::MIN_POSITIVE),
        Value::Real(1.0e300),
    ];
    let arr = ArrayVal::new(vec![6], data).expect("array");
    for compress in [false, true] {
        roundtrip(&arr, compress, 4, &format!("special reals, compress={compress}"));
    }
}

#[test]
fn large_nats_roundtrip_and_huge_nats_are_rejected() {
    let arr = ArrayVal::new(
        vec![3],
        vec![
            Value::Nat(0),
            Value::Nat(i64::MAX as u64),
            Value::Nat(12345),
        ],
    )
    .expect("array");
    roundtrip(&arr, true, 2, "nat at the i64 boundary");

    // A nat beyond i64::MAX has no representation in the format's I64
    // chunks: the writer must reject it, not wrap it.
    let dir = std::env::temp_dir().join(format!("aql-aqfrt-huge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("huge.aqf");
    let huge = ArrayVal::new(vec![1], vec![Value::Nat(u64::MAX)]).expect("array");
    let err = write_array(path.to_str().expect("utf-8"), &huge, true, 8).unwrap_err();
    assert!(format!("{err}").contains("integer range"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The spill round-trips at the session level too: a `nat` array saved
/// and reopened through `readval` rebinds at its original type.
#[test]
fn session_readval_rebinds_nat_arrays_as_nat() {
    let dir = std::env::temp_dir().join(format!("aql-aqfrt-sess-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("nats.aqf");
    let path_str = path.to_str().expect("utf-8");

    let mut s = Session::new();
    aql::format::register_aqf(&mut s);
    s.run("val \\N = [[ i * i | \\i < 10 ]];").expect("bind");
    let arr = s.val("N").expect("bound").as_array().expect("array").clone();
    write_array(path_str, &arr, true, 4).expect("write");

    let r = AqfReader::default();
    let (v, ty) = r.read(&Value::str(path_str)).expect("reopen");
    assert_eq!(format!("{}", ty.expect("declared")), "[[nat]]_1");
    let back = v.as_array().expect("array");
    for i in 0..10u64 {
        assert_eq!(back.get(&[i]).expect("in range"), Value::Nat(i * i));
    }

    // And through the statement surface: writeval + readval.
    s.run(&format!("writeval N using AQF at \"{path_str}\";")).expect("writeval");
    s.run(&format!("readval \\M using AQF at \"{path_str}\";")).expect("readval");
    let (_, eq) = s.eval_query("{ 0 | \\i <- gen!10, M[i] <> N[i] }").expect("compare");
    assert_eq!(format!("{}", aql::core::value::print::session_string(&eq, 10)), "{}");
    std::fs::remove_dir_all(&dir).ok();
}
