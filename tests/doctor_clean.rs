//! Acceptance: `\doctor;` on a clean session — no incidents, no
//! faults, no retries — produces a sensible "nothing wrong" report
//! instead of an unrecognized-fault diagnosis.
//!
//! This lives in its own test binary on purpose: the flight recorder
//! is process-wide, and unit tests elsewhere deliberately record
//! slow-query and retry events that would pollute a "clean session"
//! read from a shared process.

use aql::lang::repl::run_repl;
use aql::lang::session::Session;

fn transcript(input: &str) -> String {
    let mut s = Session::new();
    let mut reader = std::io::BufReader::new(input.as_bytes());
    let mut out = Vec::new();
    run_repl(&mut s, &mut reader, &mut out).expect("repl run");
    String::from_utf8(out).expect("utf-8 transcript")
}

#[test]
fn doctor_on_a_clean_session_reports_healthy() {
    // A few ordinary successful statements, then the checkup.
    let text = transcript(
        "val \\a = [[ i * i | \\i < 8 ]];\n\
         max!{ a[i] | \\i <- gen!8 };\n\
         \\doctor;\n",
    );
    assert!(!text.contains("error:"), "all statements must succeed: {text}");
    assert!(text.contains("live journal:"), "no incident dump → live reading: {text}");
    assert!(text.contains("fault class: healthy"), "{text}");
    assert!(text.contains("nothing wrong"), "{text}");
    assert!(text.contains("nothing to diagnose"), "{text}");
    assert!(
        text.contains("timeline: no retries, breaker events, or governor pressure recorded"),
        "{text}"
    );
    // None of the failure-mode advice leaks into a healthy report.
    for needle in ["unavailable", "corrupt", "exhausted", "deadline"] {
        assert!(
            !text.contains(&format!("fault class: {needle}")),
            "clean session misclassified as `{needle}`: {text}"
        );
    }
}

#[test]
fn doctor_stays_healthy_before_any_statement() {
    // The very first command of a fresh session.
    let text = transcript("\\doctor;\n");
    assert!(text.contains("fault class: healthy"), "{text}");
    assert!(text.contains("dominant cost source: none"), "{text}");
}
