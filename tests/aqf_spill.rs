//! End-to-end AQF acceptance: spilling a lazy NetCDF-backed binding
//! to AQF streams chunk-by-chunk (peak governed residency stays under
//! the cache budget, not the variable size), the reopened file serves
//! point probes from a single chunk, per-source I/O shows up in the
//! labeled metric series, and the REPL's `\store;` / `\save` commands
//! render deterministic (golden) reports.

use std::rc::Rc;
use std::sync::Mutex;

use aql::format::{register_aqf, SessionAqfExt as _};
use aql::lang::repl::run_repl;
use aql::lang::session::Session;
use aql::netcdf::driver::NetcdfSlabReader;
use aql::netcdf::format::VERSION_CLASSIC;
use aql::netcdf::synth::year_temp_file;
use aql::netcdf::write::write_file;
use aql::store::governor;

/// Bytes of the full synthetic `temp(8760, 5, 5)` variable.
const FULL_BYTES: u64 = 8760 * 5 * 5 * 8;
/// Cache budget for the lazy NetCDF binding in the spill test — small
/// enough that streaming is observable (≈ 15% of the variable).
const SPILL_BUDGET: u64 = 256 << 10;

/// The governor ledger is process-global; tests in this binary take
/// this lock so peak/in-use assertions see only their own traffic.
static GOVERNOR: Mutex<()> = Mutex::new(());

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aql-aqfspill-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// Write the synthetic weather file and return its path string.
fn synth_nc(dir: &std::path::Path) -> String {
    let path = dir.join("temp.nc");
    write_file(&year_temp_file().expect("synth"), &path, VERSION_CLASSIC).expect("write nc");
    path.to_str().expect("utf-8 path").to_string()
}

#[test]
fn spill_streams_reopens_and_probes_cheaply() {
    let _gov = GOVERNOR.lock().unwrap_or_else(|p| p.into_inner());
    let dir = tmpdir("e2e");
    let nc = synth_nc(&dir);
    let aqf = dir.join("temp.aqf").to_str().expect("utf-8").to_string();

    let mut s = Session::new();
    let mut r = NetcdfSlabReader::lazy(3);
    r.cache_budget = SPILL_BUDGET;
    s.register_reader("NC", Rc::new(r));
    register_aqf(&mut s);
    s.run(&format!(
        "readval \\T using NC at (\"{nc}\", \"temp\", (0, 0, 0), (8759, 4, 4));"
    ))
    .expect("bind");

    // The spill must stream: the governor's high-water mark over the
    // whole `writeval` stays bounded by the source cache budget (plus
    // one in-flight chunk of slack), nowhere near the variable size.
    governor::reset_peak();
    s.run(&format!("writeval T using AQF at \"{aqf}\";")).expect("spill");
    let peak = governor::peak_bytes();
    assert!(peak > 0, "the spill went through the governed cache");
    assert!(
        peak <= SPILL_BUDGET + (64 << 10),
        "peak governed residency {peak} exceeds the {SPILL_BUDGET}-byte cache budget — \
         the spill materialized instead of streaming"
    );
    assert!(peak < FULL_BYTES / 2, "peak {peak} is the wrong order of magnitude");

    // Reopen lazily and point-probe: the probe must read one chunk,
    // under 2% of the variable's bytes, and agree with the source.
    let (_, want) = s.eval_query("T[5000, 2, 2]").expect("source probe");
    s.run(&format!("readval \\A using AQF at \"{aqf}\";")).expect("reopen");
    let before = aql::store::stats::global();
    let (_, got) = s.eval_query("A[5000, 2, 2]").expect("aqf probe");
    let delta = aql::store::stats::global().delta_since(&before);
    assert_eq!(format!("{got}"), format!("{want}"), "probe values agree");
    assert!(delta.bytes_read > 0, "the probe was served from disk");
    assert!(
        delta.bytes_read * 50 < FULL_BYTES,
        "probe read {} bytes — 2% of the {FULL_BYTES}-byte variable or more",
        delta.bytes_read
    );

    // The reopened binding reports its residency, and the probe's I/O
    // landed in the per-source labeled metric series.
    let report = s.store_report();
    assert!(report.contains("source=aqf:temp.aqf"), "{report}");
    assert!(report.contains("prefetch issued="), "{report}");
    let labeled: Vec<(String, u64)> = aql::metrics::snapshot()
        .into_iter()
        .filter(|(k, _)| {
            k.starts_with("aql_store_cache_bytes_read_total{") && k.contains("aqf:temp.aqf")
        })
        .collect();
    assert!(
        labeled.iter().any(|(_, v)| *v > 0),
        "no labeled bytes_read series for the AQF source: {labeled:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spill_aqf_rebinds_in_place() {
    let _gov = GOVERNOR.lock().unwrap_or_else(|p| p.into_inner());
    let dir = tmpdir("api");
    let aqf = dir.join("squares.aqf").to_str().expect("utf-8").to_string();

    let mut s = Session::new();
    s.run("val \\S = [[ i * i | \\i < 50 ]];").expect("bind");
    assert!(s.val("S").expect("bound").as_array().expect("array").store_info().is_none());

    let summary = s.spill_aqf("S", &aqf).expect("spill");
    assert_eq!(summary.chunks, 1);
    assert_eq!(summary.raw_bytes, 50 * 8);

    // Same name, same values — but the binding is now lazy over the
    // file, with a store report to show for it.
    let arr = s.val("S").expect("still bound").as_array().expect("array").clone();
    let info = arr.store_info().expect("lazy after spill");
    assert_eq!(info.label.as_deref(), Some("aqf:squares.aqf"));
    let (_, v) = s.eval_query("S[7]").expect("probe");
    assert_eq!(format!("{v}"), "49");
    // save_aqf without rebinding leaves the binding alone.
    let again = dir.join("again.aqf").to_str().expect("utf-8").to_string();
    s.save_aqf("S", &again).expect("save");
    assert!(s.val("S").expect("bound").as_array().expect("array").is_lazy());
    std::fs::remove_dir_all(&dir).ok();
}

/// Drive a fresh session (with the AQF driver registered) through the
/// REPL and return the timing-redacted transcript.
fn redacted_transcript(input: &str) -> String {
    let mut s = Session::new();
    register_aqf(&mut s);
    let mut reader = std::io::BufReader::new(input.as_bytes());
    let mut out: Vec<u8> = Vec::new();
    run_repl(&mut s, &mut reader, &mut out).expect("repl");
    aql::trace::redact_timings(&String::from_utf8(out).expect("utf-8"))
}

#[test]
fn repl_store_and_save_goldens() {
    let _gov = GOVERNOR.lock().unwrap_or_else(|p| p.into_inner());
    let dir = tmpdir("repl");
    let aqf = dir.join("store.aqf").to_str().expect("utf-8").to_string();

    // Seed the file through the REPL itself: bind, \save, reopen,
    // probe, \store.
    let input = format!(
        "val \\G = [[ i + 2 * j | \\i < 20, \\j < 20 ]];\n\
         \\save G \"{aqf}\";\n\
         readval \\A using AQF at \"{aqf}\";\n\
         A[3, 4];\n\
         \\store;\n"
    );
    let text = redacted_transcript(&input);
    assert!(text.contains("val it = () written using AQF."), "{text}");
    assert!(text.contains("typ A : [[nat]]_2"), "{text}");
    assert!(text.contains("val it = 11"), "{text}");
    assert!(text.contains("store: 1 open chunk source(s)"), "{text}");
    assert!(text.contains("source=aqf:store.aqf"), "{text}");
    assert!(text.contains("prefetch issued="), "{text}");
    assert!(text.contains("governor: budget="), "{text}");
    // Golden: the whole transcript is deterministic across fresh
    // sessions (cache/residency counters included — same statements,
    // same chunks; the governor peak is monotonic and already at its
    // high-water mark after the first pass).
    assert_eq!(text, redacted_transcript(&input), "transcript is reproducible");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repl_save_requires_the_registered_writer() {
    let _gov = GOVERNOR.lock().unwrap_or_else(|p| p.into_inner());
    let dir = tmpdir("save-err");
    let aqf = dir.join("missing.aqf").to_str().expect("utf-8").to_string();
    // `\save` of an unbound val errors through the writeval path and
    // the REPL keeps running.
    let input = format!("\\save nosuch \"{aqf}\";\n1 + 1;\n");
    let text = redacted_transcript(&input);
    assert!(text.contains("error:"), "{text}");
    assert!(text.contains("val it = 2"), "{text}");
    assert!(!std::path::Path::new(&aqf).exists(), "no file for a failed save");
    std::fs::remove_dir_all(&dir).ok();
}
