//! Property-based tests for the NetCDF substrate: random datasets
//! roundtrip through the writer and reader (both CDF versions), and
//! random hyperslabs agree with slicing the full read.

use proptest::prelude::*;

use aql::netcdf::format::{NcType, VERSION_64BIT, VERSION_CLASSIC};
use aql::netcdf::model::{NcAttr, NcFile, NcValues};
use aql::netcdf::read::{from_bytes_full, SlabReader};
use aql::netcdf::write::to_bytes;

/// A random fixed-shape dataset description: up to 3 dims of extent
/// 1..5, 1..3 variables of random type.
#[derive(Debug, Clone)]
struct Spec {
    dims: Vec<u32>,
    vars: Vec<(NcType, Vec<usize>)>,
    record: bool,
    numrecs: u32,
}

fn arb_type() -> impl Strategy<Value = NcType> {
    prop_oneof![
        Just(NcType::Byte),
        Just(NcType::Short),
        Just(NcType::Int),
        Just(NcType::Float),
        Just(NcType::Double),
    ]
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec(1u32..5, 1..4),
        any::<bool>(),
        1u32..4,
    )
        .prop_flat_map(|(dims, record, numrecs)| {
            let ndims = dims.len();
            let var = (
                arb_type(),
                prop::collection::vec(0..ndims, 1..=ndims.min(3)),
            );
            prop::collection::vec(var, 1..4).prop_map(move |vars| Spec {
                dims: dims.clone(),
                vars,
                record,
                numrecs,
            })
        })
}

/// Materialise a spec into a dataset with deterministic data.
fn build(spec: &Spec) -> NcFile {
    let mut f = NcFile::new();
    // Optionally make dim 0 the record dimension.
    for (i, &d) in spec.dims.iter().enumerate() {
        if i == 0 && spec.record {
            f.add_dim("time", 0);
        } else {
            f.add_dim(&format!("d{i}"), d);
        }
    }
    f.numrecs = spec.numrecs;
    f.gattrs.push(NcAttr::text("title", "prop"));
    for (vi, (ty, raw_dimids)) in spec.vars.iter().cloned().enumerate() {
        // Sanitise: drop duplicate dims, and move the record dimension
        // (id 0, when enabled) to the front, as the format requires.
        let mut dimids: Vec<usize> = Vec::new();
        for d in raw_dimids {
            if !dimids.contains(&d) {
                dimids.push(d);
            }
        }
        if spec.record {
            if let Some(pos) = dimids.iter().position(|&d| d == 0) {
                dimids.remove(pos);
                dimids.insert(0, 0);
            }
        }
        if dimids.is_empty() {
            dimids.push(0);
        }
        let var = aql::netcdf::model::NcVar {
            name: format!("v{vi}"),
            dimids: dimids.clone(),
            attrs: vec![],
            ty,
        };
        let n = f.var_shape(&var).expect("shape").iter().product::<u64>() as usize;
        let data = match ty {
            NcType::Byte => NcValues::Byte((0..n).map(|i| (i % 127) as i8 - 50).collect()),
            NcType::Char => NcValues::Char((0..n).map(|i| (i % 26) as u8 + b'a').collect()),
            NcType::Short => NcValues::Short((0..n).map(|i| i as i16 - 100).collect()),
            NcType::Int => NcValues::Int((0..n).map(|i| i as i32 * 7 - 999).collect()),
            NcType::Float => NcValues::Float((0..n).map(|i| i as f32 * 0.25 - 3.0).collect()),
            NcType::Double => NcValues::Double((0..n).map(|i| i as f64 * 0.125 - 9.0).collect()),
        };
        f.add_var(&var.name, dimids, ty, vec![], data).expect("add_var");
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_both_versions(spec in arb_spec()) {
        let f = build(&spec);
        for version in [VERSION_CLASSIC, VERSION_64BIT] {
            let bytes = to_bytes(&f, version).expect("serialize");
            let back = from_bytes_full(bytes).expect("parse");
            prop_assert_eq!(&back.dims, &f.dims);
            prop_assert_eq!(&back.gattrs, &f.gattrs);
            prop_assert_eq!(back.vars.len(), f.vars.len());
            for i in 0..f.vars.len() {
                prop_assert_eq!(&back.vars[i], &f.vars[i]);
                prop_assert_eq!(&back.data[i], &f.data[i]);
            }
        }
    }

    #[test]
    fn hyperslab_agrees_with_full_read(
        spec in arb_spec(),
        frac in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3),
    ) {
        let f = build(&spec);
        let bytes = to_bytes(&f, VERSION_CLASSIC).expect("serialize");
        let mut r = SlabReader::from_bytes(bytes).expect("open");

        for (vi, var) in f.vars.iter().enumerate() {
            let shape = f.var_shape(var).expect("shape");
            // Derive an in-bounds start/count from the fractions.
            let mut start = Vec::new();
            let mut count = Vec::new();
            for (j, &extent) in shape.iter().enumerate() {
                let (a, b) = frac[j.min(frac.len() - 1)];
                let s = (a * extent as f64) as u64;
                let s = s.min(extent.saturating_sub(1));
                let maxc = extent - s;
                let c = ((b * maxc as f64) as u64).max(1).min(maxc);
                start.push(s);
                count.push(c);
            }
            if shape.contains(&0) {
                continue;
            }
            let slab = r.read_slab(&var.name, &start, &count).expect("slab");
            // Compare against slicing the in-memory data.
            let expect = slice_reference(&f.data[vi], &shape, &start, &count);
            prop_assert_eq!(slab, expect, "var {} start {:?} count {:?}", var.name, start, count);
        }
    }
}

/// Pinned reproduction of the checked-in proptest regression
/// (`tests/netcdf_roundtrip.proptest-regressions`): a single 1-d Byte
/// record variable, numrecs = 2, hyperslab start=[1] count=[1]. The
/// derived start/count below match what the recorded fractions
/// (0.5878…, 0.5201…) produce for shape [2].
#[test]
fn regression_record_byte_hyperslab() {
    let spec = Spec {
        dims: vec![1, 1],
        vars: vec![(NcType::Byte, vec![0, 0])],
        record: true,
        numrecs: 2,
    };
    let f = build(&spec);
    let var = &f.vars[0];
    let shape = f.var_shape(var).expect("shape");
    assert_eq!(shape, vec![2]);

    for version in [VERSION_CLASSIC, VERSION_64BIT] {
        let bytes = to_bytes(&f, version).expect("serialize");
        let back = from_bytes_full(bytes.clone()).expect("parse");
        assert_eq!(&back.data[0], &f.data[0], "full read, version {version}");

        let mut r = SlabReader::from_bytes(bytes).expect("open");
        let slab = r.read_slab(&var.name, &[1], &[1]).expect("slab");
        let expect = slice_reference(&f.data[0], &shape, &[1], &[1]);
        assert_eq!(slab, expect, "hyperslab, version {version}");
    }
}

/// Reference row-major slicing of in-memory values.
fn slice_reference(data: &NcValues, shape: &[u64], start: &[u64], count: &[u64]) -> NcValues {
    let k = shape.len();
    let mut strides = vec![1u64; k];
    for j in (0..k.saturating_sub(1)).rev() {
        strides[j] = strides[j + 1] * shape[j + 1];
    }
    let total: u64 = count.iter().product();
    let mut picks = Vec::with_capacity(total as usize);
    let mut idx = vec![0u64; k];
    for _ in 0..total {
        let off: u64 = idx
            .iter()
            .zip(start)
            .zip(&strides)
            .map(|((i, s), st)| (i + s) * st)
            .sum();
        picks.push(off as usize);
        for j in (0..k).rev() {
            idx[j] += 1;
            if idx[j] < count[j] {
                break;
            }
            idx[j] = 0;
        }
    }
    match data {
        NcValues::Byte(v) => NcValues::Byte(picks.iter().map(|&i| v[i]).collect()),
        NcValues::Char(v) => NcValues::Char(picks.iter().map(|&i| v[i]).collect()),
        NcValues::Short(v) => NcValues::Short(picks.iter().map(|&i| v[i]).collect()),
        NcValues::Int(v) => NcValues::Int(picks.iter().map(|&i| v[i]).collect()),
        NcValues::Float(v) => NcValues::Float(picks.iter().map(|&i| v[i]).collect()),
        NcValues::Double(v) => NcValues::Double(picks.iter().map(|&i| v[i]).collect()),
    }
}
