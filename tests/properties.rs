//! Property-based tests over the core data model and the optimizer.
//!
//! * the exchange format of §3 roundtrips every object value;
//! * the canonical order `≤_t` is a total order (antisymmetric,
//!   transitive) — the §6 results depend on it;
//! * `index` inverts `graph` up to singleton grouping (§2);
//! * the §6 object translation `°` roundtrips at every object type;
//! * the §5 optimizer is semantics-preserving on randomly composed
//!   array pipelines (the error-free fragment, per the paper's
//!   soundness convention).

use std::cmp::Ordering;

use proptest::prelude::*;

use aql::core::derived;
use aql::core::eval::eval_closed;
use aql::core::expr::builder::*;
use aql::core::expr::Expr;
use aql::core::rank::{decode_obj, encode_obj};
use aql::core::types::Type;
use aql::core::value::ord::canonical_cmp;
use aql::core::value::parse::parse_value;
use aql::core::value::Value;
use aql::opt::optimize;

// ---------------------------------------------------------------------
// Typed value generation: a random object type, then a value of it.
// ---------------------------------------------------------------------

/// A random object type of bounded depth.
fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Bool),
        Just(Type::Nat),
        Just(Type::Real),
        Just(Type::Str),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Type::tuple),
            inner.clone().prop_map(Type::set),
            inner.prop_map(Type::array1),
        ]
    })
}

/// A random value of the given type.
fn value_of(t: &Type) -> BoxedStrategy<Value> {
    match t {
        Type::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        Type::Nat => (0u64..1_000_000).prop_map(Value::Nat).boxed(),
        Type::Real => (-1.0e6f64..1.0e6)
            .prop_map(|r| Value::Real((r * 8.0).round() / 8.0))
            .boxed(),
        Type::Str => "[a-z]{0,6}".prop_map(|s| Value::str(&s)).boxed(),
        Type::Tuple(ts) => ts
            .iter()
            .map(value_of)
            .collect::<Vec<_>>()
            .prop_map(Value::tuple)
            .boxed(),
        Type::Set(elem) => prop::collection::vec(value_of(elem), 0..4)
            .prop_map(Value::set)
            .boxed(),
        Type::Array(elem, 1) => prop::collection::vec(value_of(elem), 0..4)
            .prop_map(Value::array1)
            .boxed(),
        other => panic!("no generator for {other}"),
    }
}

/// A `(type, value)` pair.
fn arb_typed_value() -> impl Strategy<Value = (Type, Value)> {
    arb_type().prop_flat_map(|t| {
        let vs = value_of(&t);
        vs.prop_map(move |v| (t.clone(), v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exchange_format_roundtrips((_t, v) in arb_typed_value()) {
        let printed = v.to_string();
        let back = parse_value(&printed)
            .unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        prop_assert_eq!(back, v);
    }

    #[test]
    fn canonical_order_is_total((t, _v) in arb_typed_value(),) {
        // Draw three values of the same type and check order laws.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let s = value_of(&t);
        let a = s.new_tree(&mut runner).unwrap().current();
        let b = s.new_tree(&mut runner).unwrap().current();
        let c = s.new_tree(&mut runner).unwrap().current();
        // Reflexivity and antisymmetry.
        prop_assert_eq!(canonical_cmp(&a, &a), Ordering::Equal);
        prop_assert_eq!(canonical_cmp(&a, &b), canonical_cmp(&b, &a).reverse());
        // Transitivity of ≤.
        if canonical_cmp(&a, &b) != Ordering::Greater
            && canonical_cmp(&b, &c) != Ordering::Greater
        {
            prop_assert_ne!(canonical_cmp(&a, &c), Ordering::Greater);
        }
    }

    #[test]
    fn object_translation_roundtrips((t, v) in arb_typed_value()) {
        let enc = encode_obj(&v).unwrap();
        let dec = decode_obj(&t, &enc).unwrap();
        prop_assert_eq!(dec, v);
    }

    #[test]
    fn index_inverts_graph(ns in prop::collection::vec(0u64..50, 0..12)) {
        // index_1(graph(A)) is the array of singletons {A[i]} (§2).
        let arr_expr = array1_lit(ns.iter().map(|&x| nat(x)).collect());
        let e = index(1, derived::graph1(arr_expr));
        let v = eval_closed(&e).unwrap();
        let got = v.as_array().unwrap();
        prop_assert_eq!(got.dims(), &[ns.len() as u64][..]);
        for (i, &x) in ns.iter().enumerate() {
            let cellv = got.get(&[i as u64]).unwrap();
            let cell = cellv.as_set().unwrap();
            prop_assert_eq!(cell.len(), 1);
            prop_assert!(cell.contains(&Value::Nat(x)));
        }
    }

    #[test]
    fn set_canonicalisation_is_idempotent(ns in prop::collection::vec(0u64..30, 0..20)) {
        let a = Value::set(ns.iter().map(|&x| Value::Nat(x)).collect());
        let b = Value::set(
            a.as_set().unwrap().iter().cloned().rev().collect::<Vec<_>>(),
        );
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Optimizer soundness on random array pipelines.
// ---------------------------------------------------------------------

/// One step of an array-to-array pipeline (kept within the error-free
/// fragment: slices stay in bounds).
#[derive(Debug, Clone)]
enum Step {
    Reverse,
    Evenpos,
    /// Fractions of the current length, lo ≤ hi.
    Subseq(f64, f64),
    /// Append `k` constant elements.
    Append(u8),
    /// Tabulated map (+c).
    MapAdd(u8),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Reverse),
        Just(Step::Evenpos),
        (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Step::Subseq(lo, hi)
        }),
        (1u8..4).prop_map(Step::Append),
        (0u8..10).prop_map(Step::MapAdd),
    ]
}

/// A random expression of type `{nat}` with the given recursion depth:
/// leaves are `gen`/literals, inner nodes are unions, comprehensions
/// (big unions with filters), singleton maps, and `rng` of tabulations
/// — every construct the set-monad rules rewrite.
fn arb_set_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u64..8).prop_map(|n| gen(nat(n))),
        Just(empty()),
        prop::collection::vec(0u64..20, 0..4)
            .prop_map(|ns| ns.into_iter().fold(empty(), |a, n| union(a, single(nat(n))))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub_strategy = arb_set_expr(depth - 1);
    prop_oneof![
        leaf,
        (sub_strategy.clone(), sub_strategy.clone())
            .prop_map(|(a, b)| union(a, b)),
        // ⋃{ {x + c} | x ∈ S }
        (sub_strategy.clone(), 0u64..5).prop_map(|(s, c)| {
            let x = aql::core::expr::free::fresh("x");
            big_union(&x, s, single(add(var(&x), nat(c))))
        }),
        // ⋃{ if x < c then {x} else {} | x ∈ S } — filter
        (sub_strategy.clone(), 0u64..10).prop_map(|(s, c)| {
            let x = aql::core::expr::free::fresh("x");
            big_union(&x, s, iff(lt(var(&x), nat(c)), single(var(&x)), empty()))
        }),
        // singleton-η shape: ⋃{ {x} | x ∈ S }
        sub_strategy.clone().prop_map(|s| {
            let x = aql::core::expr::free::fresh("x");
            big_union(&x, s, single(var(&x)))
        }),
        // rng of a tabulation over a count derived from the subtree
        sub_strategy.prop_map(|s| {
            let x = aql::core::expr::free::fresh("x");
            derived::rng(tab1(
                &x,
                sum(&aql::core::expr::free::fresh("c"), s, nat(1)),
                mul(var(&x), nat(3)),
            ))
        }),
    ]
    .boxed()
}

/// A random expression of type `{|nat|}` — the bag analogue of
/// [`arb_set_expr`], with duplicated elements so multiplicity bugs
/// show.
fn arb_bag_expr(depth: u32) -> BoxedStrategy<Expr> {
    use aql::core::expr::Expr as E;
    let leaf = prop_oneof![
        Just(E::BagEmpty),
        prop::collection::vec(0u64..6, 0..5).prop_map(|ns| ns
            .into_iter()
            .fold(E::BagEmpty, |a, n| bag_union(a, bag_single(nat(n))))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub_strategy = arb_bag_expr(depth - 1);
    prop_oneof![
        leaf,
        (sub_strategy.clone(), sub_strategy.clone()).prop_map(|(a, b)| bag_union(a, b)),
        (sub_strategy.clone(), 0u64..4).prop_map(|(s, c)| {
            let x = aql::core::expr::free::fresh("x");
            big_bag_union(&x, s, bag_single(modulo(var(&x), nat(c + 1))))
        }),
        (sub_strategy.clone(), 0u64..8).prop_map(|(s, c)| {
            let x = aql::core::expr::free::fresh("x");
            big_bag_union(
                &x,
                s,
                iff(lt(var(&x), nat(c)), bag_single(var(&x)), E::BagEmpty),
            )
        }),
        sub_strategy.prop_map(|s| {
            let x = aql::core::expr::free::fresh("x");
            big_bag_union(&x, s, bag_single(var(&x)))
        }),
    ]
    .boxed()
}

/// Apply a pipeline symbolically, tracking the length so slices stay
/// in bounds.
fn build_pipeline(base: Vec<u64>, steps: &[Step]) -> Expr {
    let mut e = array1_lit(base.iter().map(|&x| nat(x)).collect());
    let mut len_now = base.len() as u64;
    for s in steps {
        match s {
            Step::Reverse => e = derived::reverse(e),
            Step::Evenpos => {
                e = derived::evenpos(e);
                len_now /= 2;
            }
            Step::Subseq(a, b) => {
                if len_now == 0 {
                    continue;
                }
                let lo = ((*a * (len_now - 1) as f64) as u64).min(len_now - 1);
                let hi = ((*b * (len_now - 1) as f64) as u64).clamp(lo, len_now - 1);
                e = derived::subseq(e, nat(lo), nat(hi));
                len_now = hi - lo + 1;
            }
            Step::Append(k) => {
                let extra: Vec<Expr> = (0..*k as u64).map(nat).collect();
                e = derived::append(e, array1_lit(extra));
                len_now += *k as u64;
            }
            Step::MapAdd(c) => {
                let f = {
                    let x = aql::core::expr::free::fresh("x");
                    lam(&x, add(var(&x), nat(*c as u64)))
                };
                e = derived::map_arr(f, e);
            }
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_pipeline_semantics(
        base in prop::collection::vec(0u64..100, 0..10),
        steps in prop::collection::vec(arb_step(), 1..5),
    ) {
        let e = build_pipeline(base, &steps);
        let raw = eval_closed(&e).unwrap();
        let opt_e = optimize(&e);
        let opt = eval_closed(&opt_e).unwrap();
        prop_assert_eq!(raw, opt, "pipeline {:?}\nraw expr {}\nopt expr {}", steps, e, opt_e);
    }

    #[test]
    fn optimizer_preserves_matrix_queries(
        r in 1usize..4, c in 1usize..4,
        vals in prop::collection::vec(0u64..50, 16),
    ) {
        let data: Vec<Expr> = vals[..r * c].iter().map(|&x| nat(x)).collect();
        let m = array_lit(vec![nat(r as u64), nat(c as u64)], data);
        for q in [
            derived::transpose(m.clone()),
            derived::transpose(derived::transpose(m.clone())),
            derived::proj_col(m.clone(), nat(0)),
            derived::matmul(m.clone(), derived::transpose(m.clone())),
        ] {
            let raw = eval_closed(&q).unwrap();
            let opt = eval_closed(&optimize(&q)).unwrap();
            prop_assert_eq!(raw, opt);
        }
    }

    #[test]
    fn optimizer_preserves_aggregates(
        ns in prop::collection::vec(0u64..40, 0..12),
        bound in 0u64..30,
    ) {
        let arr = array1_lit(ns.iter().map(|&x| nat(x)).collect());
        let queries = vec![
            derived::count(derived::rng(arr.clone())),
            sum("x", gen(nat(bound)), mul(var("x"), var("x"))),
            derived::hist_indexed(arr.clone()),
            big_union("x", derived::rng(arr), iff(lt(var("x"), nat(20)), single(var("x")), empty())),
        ];
        for q in queries {
            let raw = eval_closed(&q).unwrap();
            let opt = eval_closed(&optimize(&q)).unwrap();
            prop_assert_eq!(raw, opt);
        }
    }

    #[test]
    fn optimizer_preserves_random_bag_trees(tree in arb_bag_expr(3)) {
        // The bag (NBC) monad laws must also preserve semantics —
        // including multiplicities, which set laws never see.
        let raw = eval_closed(&tree).unwrap();
        let opt_e = optimize(&tree);
        let opt = eval_closed(&opt_e).unwrap();
        prop_assert_eq!(raw, opt, "tree {}\nopt {}", tree, opt_e);
    }

    #[test]
    fn optimizer_preserves_random_set_trees(tree in arb_set_expr(3)) {
        // Random nested comprehension trees over {nat}: the optimizer
        // (fusion, filter promotion, η, unit laws, …) must preserve
        // their value.
        let raw = eval_closed(&tree).unwrap();
        let opt_e = optimize(&tree);
        let opt = eval_closed(&opt_e).unwrap();
        prop_assert_eq!(raw, opt, "tree {}\nopt {}", tree, opt_e);
    }

    #[test]
    fn zip_of_subseqs_always_commutes(
        a in prop::collection::vec(0u64..100, 0..16),
        b in prop::collection::vec(0u64..100, 0..16),
        lo in 0u64..16, hi in 0u64..16,
    ) {
        // Even with *out-of-range* slice bounds the two §1 pipelines
        // agree (both produce the same ⊥-or-array), optimized or not.
        let ea = array1_lit(a.iter().map(|&x| nat(x)).collect());
        let eb = array1_lit(b.iter().map(|&x| nat(x)).collect());
        let q1 = derived::zip(
            derived::subseq(ea.clone(), nat(lo), nat(hi)),
            derived::subseq(eb.clone(), nat(lo), nat(hi)),
        );
        let q2 = derived::subseq(derived::zip(ea, eb), nat(lo), nat(hi));
        let v1 = eval_closed(&q1).unwrap();
        let v2 = eval_closed(&q2).unwrap();
        prop_assert_eq!(&v1, &v2);
        prop_assert_eq!(eval_closed(&optimize(&q1)).unwrap(), v1);
        prop_assert_eq!(eval_closed(&optimize(&q2)).unwrap(), v2);
    }
}
