//! Cross-crate pipeline tests: a corpus of surface AQL queries run
//! through parse → desugar → typecheck → optimize → evaluate, checked
//! for (a) agreement with the unoptimized pipeline and (b) expected
//! answers and types.

use aql::lang::session::Session;
use aql_core::types::Type;
use aql_core::value::Value;

/// (query, expected type rendering, expected value rendering)
const CORPUS: &[(&str, &str, &str)] = &[
    // Sets, comprehensions, filters.
    ("{x | \\x <- gen!10, x % 3 = 0}", "{nat}", "{0, 3, 6, 9}"),
    ("{(x, y) | \\x <- gen!3, \\y <- gen!2}", "{nat * nat}",
     "{(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)}"),
    ("{x | \\x <- {3, 1, 4, 1, 5}, x > 2}", "{nat}", "{3, 4, 5}"),
    // Patterns incl. constants and non-binding occurrences.
    ("{z | (1, \\z) <- {(1, 10), (2, 20), (1, 30)}}", "{nat}", "{10, 30}"),
    ("{(a, c) | (\\a, \\b) <- {(1, 2), (3, 4)}, (b, \\c) <- {(2, 9), (5, 8)}}",
     "{nat * nat}", "{(1, 9)}"),
    // Arrays: tabulation, subscripting, dims, literals.
    ("[[ i * i | \\i < 5 ]]", "[[nat]]_1", "[[0, 1, 4, 9, 16]]"),
    ("[[ i + j | \\i < 2, \\j < 2 ]][1, 1]", "nat", "2"),
    ("len![[7, 8, 9]]", "nat", "3"),
    ("dim_2![[2, 3; 1, 2, 3, 4, 5, 6]]", "nat * nat", "(2, 3)"),
    ("[[9, 8, 7]][5]", "nat", "_|_"),
    // Derived operators (prelude macros).
    ("reverse![[1, 2, 3]]", "[[nat]]_1", "[[3, 2, 1]]"),
    ("evenpos![[0, 1, 2, 3, 4]]", "[[nat]]_1", "[[0, 2]]"),
    ("subseq!([[0, 10, 20, 30, 40]], 1, 3)", "[[nat]]_1", "[[10, 20, 30]]"),
    ("zip!([[1, 2]], [[true, false]])", "[[nat * bool]]_1",
     "[[(1, true), (2, false)]]"),
    ("append!([[1]], [[2, 3]])", "[[nat]]_1", "[[1, 2, 3]]"),
    ("transpose![[2, 2; 1, 2, 3, 4]]", "[[nat]]_2", "[[2, 2; 1, 3, 2, 4]]"),
    ("matmul!([[2, 2; 1, 0, 0, 1]], [[2, 2; 5, 6, 7, 8]])", "[[nat]]_2",
     "[[2, 2; 5, 6, 7, 8]]"),
    // Aggregates and numerics.
    ("summap(fn \\x => x)!(gen!101)", "nat", "5050"),
    ("count!{7, 7, 8}", "nat", "2"),
    ("min!{5, 2, 9}", "nat", "2"),
    ("max!(rng![[2, 7, 1]])", "nat", "7"),
    ("7 / 2", "nat", "3"),
    ("7 % 2", "nat", "1"),
    ("2 - 5", "nat", "0"),
    ("1.5 * 2.0", "real", "3.0"),
    ("1 / 0", "nat", "_|_"),
    // Booleans and conditionals.
    ("if 2 < 3 then \"yes\" else \"no\"", "string", "\"yes\""),
    ("not (true and false) or false", "bool", "true"),
    ("forall_in!(gen!5, fn \\x => x < 5)", "bool", "true"),
    ("exists_in!(gen!5, fn \\x => x > 3)", "bool", "true"),
    // index / get / member.
    ("get!{42}", "nat", "42"),
    ("get!{1, 2}", "nat", "_|_"),
    ("member(3, gen!10)", "bool", "true"),
    ("index_1!{(0, \"a\"), (2, \"b\")}", "[[{string}]]_1",
     "[[{\"a\"}, {}, {\"b\"}]]"),
    // Array generators.
    ("{i | [\\i : \\x] <- [[5, 50, 6, 60]], x > 10}", "{nat}", "{1, 3}"),
    ("{x | [(\\i, \\j) : \\x] <- [[2, 2; 1, 2, 3, 4]], i = j}", "{nat}", "{1, 4}"),
    // Blocks and lambdas.
    ("let val \\f = fn \\x => x * x in f!(f!2) end", "nat", "16"),
    ("(fn (\\a, \\b, \\c) => a + b * c)!(1, 2, 3)", "nat", "7"),
    // Bags.
    ("{|1, 1, 2|} bunion {|2|}", "{|nat|}", "{|1, 1, 2, 2|}"),
    ("{| x % 2 | \\x <- {|1, 2, 3|} |}", "{|nat|}", "{|0, 1, 1|}"),
    // Nesting.
    ("nest!{(1, \"a\"), (1, \"b\"), (2, \"c\")}", "{nat * {string}}",
     "{(1, {\"a\", \"b\"}), (2, {\"c\"})}"),
    // Multidimensional index (group-by over pair keys).
    ("index_2!{((0, 1), \"a\"), ((1, 0), \"b\")}", "[[{string}]]_2",
     "[[2, 2; {}, {\"a\"}, {\"b\"}, {}]]"),
    // ODMG primitives (§7) and reshaping (§1), as prelude macros.
    ("upd!([[5, 6, 7]], 0, 9)", "[[nat]]_1", "[[9, 6, 7]]"),
    ("insert_at!(remove_at!([[1, 2, 3]], 1), 1, 9)", "[[nat]]_1", "[[1, 9, 3]]"),
    ("reshape!([[1, 2, 3, 4]], 2, 2)", "[[nat]]_2", "[[2, 2; 1, 2, 3, 4]]"),
    ("flatten![[2, 2; 1, 2, 3, 4]]", "[[nat]]_1", "[[1, 2, 3, 4]]"),
    // Coordinate lookup (§7 future work).
    ("nearest!([[10.0, 20.0, 30.0]], 22.0)", "nat", "1"),
];

#[test]
fn corpus_answers_and_types() {
    let mut s = Session::new();
    for (query, ty, val) in CORPUS {
        let (t, v) = s
            .eval_query(query)
            .unwrap_or_else(|e| panic!("query `{query}` failed: {e}"));
        assert_eq!(&t.to_string(), ty, "type of `{query}`");
        assert_eq!(&v.to_string(), val, "value of `{query}`");
    }
}

#[test]
fn corpus_is_optimizer_invariant() {
    let mut with = Session::new();
    let mut without = Session::new();
    without.optimize = false;
    for (query, _, _) in CORPUS {
        let (_, a) = with.eval_query(query).unwrap_or_else(|e| panic!("{query}: {e}"));
        let (_, b) = without
            .eval_query(query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        assert_eq!(a, b, "optimizer changed `{query}`");
    }
}

#[test]
fn ill_typed_queries_rejected_with_messages() {
    let mut s = Session::new();
    for bad in [
        "1 + true",
        "{1} union {true}",
        "[[1, true]]",
        "gen!\"x\"",
        "[[1]][true]",
        "undefined_name!3",
        "{x | \\x <- 5}",
        "if 1 then 2 else 3",
        "min!{fn \\x => x}",
        "(fn \\x => x!x)!(fn \\x => x!x)", // occurs check
    ] {
        let err = s.eval_query(bad).expect_err(bad);
        let msg = err.to_string();
        assert!(msg.contains("type error"), "`{bad}` → {msg}");
    }
}

#[test]
fn parse_errors_are_reported_with_lines() {
    let mut s = Session::new();
    let err = s.run("val \\x = 1;\nval \\y = ((;\n").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
}

#[test]
fn session_state_accumulates_across_statements() {
    let mut s = Session::new();
    s.run("val \\base = 10;").unwrap();
    s.run("macro \\scaled = fn \\x => x * base;").unwrap();
    s.run("val \\v = scaled!5;").unwrap();
    // `it` is bound by *queries*, not by `val` statements.
    assert!(s.eval_query("v + it").is_err(), "no query has run yet");
    s.run("2;").unwrap();
    let (_, v) = s.eval_query("v + it").unwrap();
    assert_eq!(v, Value::Nat(52));
}

#[test]
fn global_rebinding_updates_queries() {
    let mut s = Session::new();
    s.run("val \\n = 3;").unwrap();
    let (_, a) = s.eval_query("gen!n").unwrap();
    assert_eq!(a.as_set().unwrap().len(), 3);
    s.run("val \\n = 5;").unwrap();
    let (_, b) = s.eval_query("gen!n").unwrap();
    assert_eq!(b.as_set().unwrap().len(), 5);
}

#[test]
fn comments_are_ignored_everywhere() {
    let mut s = Session::new();
    let (_, v) = s
        .eval_query("(* leading *) {x (* mid *) | \\x <- gen!3} (* trailing *)")
        .unwrap();
    assert_eq!(v.as_set().unwrap().len(), 3);
}

#[test]
fn deep_nesting_works() {
    let mut s = Session::new();
    // Sets of arrays of tuples of sets.
    let (t, v) = s
        .eval_query("{[[ ({i}, i) | \\i < 2 ]] | \\x <- gen!2}")
        .unwrap();
    assert_eq!(t, Type::set(Type::array1(Type::tuple(vec![
        Type::set(Type::Nat),
        Type::Nat,
    ]))));
    assert_eq!(v.as_set().unwrap().len(), 1, "both x produce the same array");
}

#[test]
fn large_tabulation_through_full_pipeline() {
    let mut s = Session::new();
    let (_, v) = s
        .eval_query("summap(fn \\i => [[ j | \\j < 1000 ]][i])!(gen!1000)")
        .unwrap();
    assert_eq!(v, Value::Nat(499_500));
}
