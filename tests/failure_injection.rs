//! Failure injection: every failure mode of the open architecture —
//! failing readers and writers, failing and ⊥-receiving external
//! primitives, resource exhaustion, hostile optimizer rules — must
//! surface as a reported error and leave the session usable.

use std::rc::Rc;

use aql::lang::errors::LangError;
use aql::lang::reader::{Reader, Writer};
use aql::lang::session::Session;
use aql_core::error::EvalError;
use aql_core::eval::Limits;
use aql_core::prim::NativeFn;
use aql_core::types::Type;
use aql_core::value::Value;

/// A reader that always fails.
struct BrokenReader;
impl Reader for BrokenReader {
    fn read(&self, _arg: &Value) -> Result<(Value, Option<Type>), LangError> {
        Err(LangError::session("device unplugged"))
    }
}

/// A writer that always fails.
struct BrokenWriter;
impl Writer for BrokenWriter {
    fn write(&self, _arg: &Value, _data: &Value) -> Result<(), LangError> {
        Err(LangError::session("disk full"))
    }
}

#[test]
fn failing_reader_leaves_session_usable() {
    let mut s = Session::new();
    s.register_reader("BROKEN", Rc::new(BrokenReader));
    let err = s.run("readval \\x using BROKEN at 0;").unwrap_err();
    assert!(err.to_string().contains("device unplugged"));
    // The failed readval bound nothing...
    assert!(s.eval_query("x").is_err());
    // ...and the session still evaluates.
    let (_, v) = s.eval_query("1 + 1").unwrap();
    assert_eq!(v, Value::Nat(2));
}

#[test]
fn failing_writer_reports_and_recovers() {
    let mut s = Session::new();
    s.register_writer("BROKEN", Rc::new(BrokenWriter));
    let err = s.run("writeval {1} using BROKEN at 0;").unwrap_err();
    assert!(err.to_string().contains("disk full"));
    let (_, v) = s.eval_query("2 * 2").unwrap();
    assert_eq!(v, Value::Nat(4));
}

#[test]
fn failing_external_is_attributed() {
    let mut s = Session::new();
    s.register_external(NativeFn::new(
        "flaky",
        Type::fun(Type::Nat, Type::Nat),
        |v| {
            let n = v.as_nat()?;
            if n > 5 {
                Err(EvalError::External {
                    name: "flaky".into(),
                    message: "input too large".into(),
                })
            } else {
                Ok(Value::Nat(n))
            }
        },
    ));
    let (_, v) = s.eval_query("flaky!3").unwrap();
    assert_eq!(v, Value::Nat(3));
    let err = s.eval_query("flaky!9").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("flaky") && msg.contains("input too large"), "{msg}");
    // An external that misuses its argument shape is attributed too.
    s.register_external(NativeFn::new(
        "confused",
        Type::fun(Type::Nat, Type::Nat),
        |v| v.as_bool().map(Value::Bool),
    ));
    let err = s.eval_query("confused!1").unwrap_err();
    assert!(err.to_string().contains("confused"), "{err}");
}

#[test]
fn externals_see_bottom_as_bottom() {
    // ⊥ short-circuits *before* host code runs: an external that would
    // crash on ⊥ is never entered.
    let mut s = Session::new();
    s.register_external(NativeFn::new(
        "fragile",
        Type::fun(Type::Nat, Type::Nat),
        |v| Ok(Value::Nat(v.as_nat()? + 1)),
    ));
    let (_, v) = s.eval_query("fragile!([[1]][9])").unwrap();
    assert!(v.is_bottom());
}

#[test]
fn resource_exhaustion_is_clean() {
    let mut s = Session::new();
    s.limits = Limits { max_elems: 1_000, max_steps: 1_000_000, ..Limits::default() };
    // Oversized tabulation.
    let err = s.eval_query("[[ i | \\i < 100000 ]]").unwrap_err();
    assert!(matches!(
        err,
        LangError::Eval(EvalError::ResourceLimit { .. })
    ));
    // Oversized gen inside a comprehension.
    let err = s.eval_query("{x | \\x <- gen!100000}").unwrap_err();
    assert!(matches!(
        err,
        LangError::Eval(EvalError::ResourceLimit { .. })
    ));
    // Step exhaustion.
    s.limits = Limits { max_elems: 1 << 20, max_steps: 100, ..Limits::default() };
    let err = s
        .eval_query("summap(fn \\x => x)!(gen!1000)")
        .unwrap_err();
    assert!(matches!(err, LangError::Eval(EvalError::StepLimit)));
    // Recovery after raising limits.
    s.limits = Limits::default();
    let (_, v) = s.eval_query("summap(fn \\x => x)!(gen!10)").unwrap();
    assert_eq!(v, Value::Nat(45));
}

#[test]
fn overflow_reported_not_wrapped() {
    let mut s = Session::new();
    s.run("val \\big = 18446744073709551615;").unwrap();
    let err = s.eval_query("big + 1").unwrap_err();
    assert!(matches!(err, LangError::Eval(EvalError::Overflow)));
    let err = s.eval_query("big * 2").unwrap_err();
    assert!(matches!(err, LangError::Eval(EvalError::Overflow)));
    // Monus saturates rather than overflowing (the paper's ∸).
    let (_, v) = s.eval_query("0 - big").unwrap();
    assert_eq!(v, Value::Nat(0));
}

#[test]
fn hostile_optimizer_rule_is_contained() {
    use aql::opt::{Phase, Rule};
    use aql_core::expr::Expr;

    /// Rewrites forever by flipping operands.
    struct Flip;
    impl Rule for Flip {
        fn name(&self) -> &'static str {
            "flip"
        }
        fn apply(&self, e: &Expr) -> Option<Expr> {
            match e {
                Expr::Arith(op, a, b) => Some(Expr::Arith(*op, b.clone(), a.clone())),
                _ => None,
            }
        }
    }

    let mut s = Session::new();
    let mut phase = Phase::new("hostile");
    phase.add_rule(Rc::new(Flip));
    s.optimizer_mut().add_phase(phase);
    // The engine's bounds keep this terminating; + is commutative on
    // nat, so the answer is even still right.
    let (_, v) = s.eval_query("20 + 22").unwrap();
    assert_eq!(v, Value::Nat(42));
}

/// A reader that panics instead of returning an error.
struct PanickyReader;
impl Reader for PanickyReader {
    fn read(&self, _arg: &Value) -> Result<(Value, Option<Type>), LangError> {
        panic!("reader exploded mid-read")
    }
}

/// A writer that panics instead of returning an error.
struct PanickyWriter;
impl Writer for PanickyWriter {
    fn write(&self, _arg: &Value, _data: &Value) -> Result<(), LangError> {
        panic!("writer exploded mid-write")
    }
}

#[test]
fn panicking_reader_is_contained_and_named() {
    let mut s = Session::new();
    s.register_reader("KABOOM", Rc::new(PanickyReader));
    let err = s.run("readval \\x using KABOOM at 0;").unwrap_err();
    match &err {
        LangError::ExtensionPanic { kind, name, message } => {
            assert_eq!(*kind, "reader");
            assert_eq!(name, "KABOOM");
            assert!(message.contains("exploded mid-read"), "{message}");
        }
        other => panic!("expected ExtensionPanic, got {other:?}"),
    }
    assert!(err.to_string().contains("KABOOM"), "{err}");
    // Nothing was bound; the session still answers.
    assert!(s.eval_query("x").is_err());
    let (_, v) = s.eval_query("1 + 1").unwrap();
    assert_eq!(v, Value::Nat(2));
}

#[test]
fn panicking_writer_is_contained_and_named() {
    let mut s = Session::new();
    s.register_writer("KABOOM", Rc::new(PanickyWriter));
    let err = s.run("writeval {1} using KABOOM at 0;").unwrap_err();
    match &err {
        LangError::ExtensionPanic { kind, name, message } => {
            assert_eq!(*kind, "writer");
            assert_eq!(name, "KABOOM");
            assert!(message.contains("exploded mid-write"), "{message}");
        }
        other => panic!("expected ExtensionPanic, got {other:?}"),
    }
    let (_, v) = s.eval_query("2 * 3").unwrap();
    assert_eq!(v, Value::Nat(6));
}

#[test]
fn panicking_external_is_contained_and_named() {
    let mut s = Session::new();
    s.register_external(NativeFn::new(
        "crashy",
        Type::fun(Type::Nat, Type::Nat),
        |_| panic!("host bug"),
    ));
    let err = s.eval_query("crashy!1").unwrap_err();
    match &err {
        LangError::Eval(EvalError::External { name, message }) => {
            assert_eq!(name, "crashy");
            assert!(message.contains("panicked") && message.contains("host bug"), "{message}");
        }
        other => panic!("expected External, got {other:?}"),
    }
    // The session is still usable, including the panicky primitive's
    // short-circuit path.
    let (_, v) = s.eval_query("10 - 3").unwrap();
    assert_eq!(v, Value::Nat(7));
}

#[test]
fn panicking_optimizer_rule_is_contained_and_named() {
    use aql::opt::{Phase, Rule};
    use aql_core::expr::Expr;

    /// A rule that panics whenever it sees arithmetic.
    struct Grenade;
    impl Rule for Grenade {
        fn name(&self) -> &'static str {
            "grenade"
        }
        fn apply(&self, e: &Expr) -> Option<Expr> {
            match e {
                Expr::Arith(..) => panic!("rule exploded"),
                _ => None,
            }
        }
    }

    let mut s = Session::new();
    s.run("val \\n = 20;").unwrap();
    let mut phase = Phase::new("booby-trapped");
    phase.add_rule(Rc::new(Grenade));
    s.optimizer_mut().add_phase(phase);
    // A global operand keeps the addition from constant-folding away
    // before the booby-trapped phase runs.
    let err = s.eval_query("n + 22").unwrap_err();
    match &err {
        LangError::ExtensionPanic { kind, name, message } => {
            assert_eq!(*kind, "optimizer rule");
            assert_eq!(name, "grenade");
            assert!(message.contains("rule exploded"), "{message}");
            assert!(message.contains("booby-trapped"), "{message}");
        }
        other => panic!("expected ExtensionPanic, got {other:?}"),
    }
    // Queries the rule leaves alone still work.
    let (_, v) = s.eval_query("{1, 2, 3}").unwrap();
    assert_eq!(v.as_set().unwrap().len(), 3);
    // And `explain` (the traced path) is contained too.
    assert!(matches!(
        s.explain("n + 1").unwrap_err(),
        LangError::ExtensionPanic { .. }
    ));
}

#[test]
fn deadline_exceeded_leaves_session_usable() {
    use std::time::Duration;
    let mut s = Session::new();
    s.limits = Limits { timeout: Some(Duration::ZERO), ..Limits::default() };
    let err = s
        .eval_query("summap(fn \\x => x)!(gen!100000)")
        .unwrap_err();
    assert!(matches!(err, LangError::Eval(EvalError::Deadline)), "{err:?}");
    // Restore the limits: the session evaluates again.
    s.limits = Limits::default();
    let (_, v) = s.eval_query("summap(fn \\x => x)!(gen!10)").unwrap();
    assert_eq!(v, Value::Nat(45));
}

#[test]
fn cancellation_flag_stops_query() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let mut s = Session::new();
    let flag = Arc::new(AtomicBool::new(false));
    s.limits = Limits { cancel: Some(flag.clone()), ..Limits::default() };
    // Flag clear: evaluation proceeds.
    let (_, v) = s.eval_query("1 + 1").unwrap();
    assert_eq!(v, Value::Nat(2));
    // Flag set (as a watchdog thread would): evaluation stops.
    flag.store(true, Ordering::Relaxed);
    let err = s.eval_query("summap(fn \\x => x)!(gen!100000)").unwrap_err();
    assert!(matches!(err, LangError::Eval(EvalError::Cancelled)), "{err:?}");
    flag.store(false, Ordering::Relaxed);
    let (_, v) = s.eval_query("2 + 2").unwrap();
    assert_eq!(v, Value::Nat(4));
}

#[test]
fn reshape_macros_guard_against_shape_lies() {
    let mut s = Session::new();
    // Exact reshape works; flatten inverts.
    let (_, v) = s
        .eval_query("flatten!(reshape!([[1, 2, 3, 4, 5, 6]], 2, 3))")
        .unwrap();
    let ns: Vec<u64> = v
        .as_array()
        .unwrap()
        .data()
        .iter()
        .map(|x| x.as_nat().unwrap())
        .collect();
    assert_eq!(ns, vec![1, 2, 3, 4, 5, 6]);
    // Reshaping beyond the source is ⊥ (out-of-bounds read poisons).
    let (_, v) = s.eval_query("reshape!([[1, 2]], 2, 3)").unwrap();
    assert!(v.is_bottom());
}
