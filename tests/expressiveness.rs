//! Executable content of §6: adding arrays ≡ adding ranking.
//!
//! Theorem 6.1: `NRCA ≡ NRC^aggr(gen)` via the object translation `°`.
//! Theorem 6.2: `NRC_r` and `NBC_r` (ranked unions over sets and bags)
//! have the same power. These tests run the translations and ranked
//! queries against the native array semantics.

use aql::core::derived;
use aql::core::eval::eval_closed;
use aql::core::expr::builder::*;
use aql::core::rank;
use aql::core::types::Type;
use aql::core::value::Value;
use aql::lang::session::Session;
use proptest::prelude::*;

fn nats_arr(ns: &[u64]) -> Value {
    Value::array1(ns.iter().map(|&n| Value::Nat(n)).collect())
}

fn lit(ns: &[u64]) -> aql::core::expr::Expr {
    array1_lit(ns.iter().map(|&n| nat(n)).collect())
}

#[test]
fn rank_assigns_canonical_positions() {
    // rank(X) = ∪_r{{(x,i)} | x_i ∈ X} (§6).
    let x = union(union(single(strlit("b")), single(strlit("a"))), single(strlit("c")));
    let v = eval_closed(&rank::rank_expr(x)).unwrap();
    assert_eq!(
        v,
        Value::set(vec![
            Value::tuple(vec![Value::str("a"), Value::Nat(1)]),
            Value::tuple(vec![Value::str("b"), Value::Nat(2)]),
            Value::tuple(vec![Value::str("c"), Value::Nat(3)]),
        ])
    );
}

#[test]
fn ranking_builds_arrays_from_sets() {
    // The arrays-from-ranking direction of Thm 6.2: a set becomes the
    // sorted array of its elements.
    let x = union(union(single(nat(9)), single(nat(2))), single(nat(5)));
    let v = eval_closed(&rank::set_to_array(x)).unwrap();
    assert_eq!(v, nats_arr(&[2, 5, 9]));
}

#[test]
fn array_queries_run_on_the_graph_encoding() {
    // The arrays-to-NRC direction: evenpos and reverse computed purely
    // on graphs agree with the native array semantics.
    for ns in [&[5u64, 7, 9, 11, 13][..], &[][..], &[42][..]] {
        let arr_v = nats_arr(ns);
        let g = rank::graph_value(arr_v.as_array().unwrap()).unwrap();
        let genv = set_value_to_expr(&g);

        let native_even = eval_closed(&derived::evenpos(lit(ns))).unwrap();
        let graph_even = eval_closed(&rank::evenpos_on_graph(genv.clone())).unwrap();
        assert_eq!(
            graph_even,
            rank::graph_value(native_even.as_array().unwrap()).unwrap(),
            "evenpos on {ns:?}"
        );

        let native_rev = eval_closed(&derived::reverse(lit(ns))).unwrap();
        let graph_rev = eval_closed(&rank::reverse_on_graph(genv)).unwrap();
        assert_eq!(
            graph_rev,
            rank::graph_value(native_rev.as_array().unwrap()).unwrap(),
            "reverse on {ns:?}"
        );
    }
}

#[test]
fn bag_ranking_gives_consecutive_ranks() {
    // NBC_r (§6): equal occurrences get consecutive ranks.
    let b = bag_union(
        bag_union(bag_single(nat(7)), bag_single(nat(7))),
        bag_union(bag_single(nat(7)), bag_single(nat(2))),
    );
    let v = eval_closed(&rank::rank_bag(b)).unwrap();
    let bag = v.as_bag().unwrap();
    assert_eq!(bag.total_len(), 4);
    for (val, rk) in [(2u64, 1u64), (7, 2), (7, 3), (7, 4)] {
        assert_eq!(
            bag.count(&Value::tuple(vec![Value::Nat(val), Value::Nat(rk)])),
            1,
            "expected ({val}, {rk})"
        );
    }
}

#[test]
fn nat_simulation_in_bags() {
    // §6: "the number n can be simulated as a bag of n identical
    // elements". Ranking such a bag exposes n as the maximum rank:
    // ⨄_r{| {|i|} | x_i ∈ B |} on a 3-copy bag yields {|1, 2, 3|}.
    let b = bag_union(
        bag_union(bag_single(nat(0)), bag_single(nat(0))),
        bag_single(nat(0)),
    );
    let ranks_e = {
        let x = aql::core::expr::free::fresh("x");
        let i = aql::core::expr::free::fresh("i");
        big_bag_union_rank(&x, &i, b, bag_single(var(&i)))
    };
    let v = eval_closed(&ranks_e).unwrap();
    let bag = v.as_bag().unwrap();
    assert_eq!(bag.total_len(), 3);
    let max_rank = bag
        .iter()
        .map(|(r, _)| r.as_nat().unwrap())
        .max()
        .unwrap();
    assert_eq!(max_rank, 3, "the simulated natural is recovered as the top rank");
}

#[test]
fn surface_language_reaches_bag_ranking_power() {
    // The same counting power expressed at the surface: comprehensions
    // plus Σ subsume the rank-based count on sets.
    let mut s = Session::new();
    let (_, v) = s.eval_query("count!{x | \\x <- gen!100, x < 3}").unwrap();
    assert_eq!(v, Value::Nat(3));
}

#[test]
fn histogram_with_ranking_matches_index_version() {
    // A §6-flavoured consistency check: hist' (which uses index, i.e.
    // implicit ranking by key) matches a direct count per value.
    let ns = [3u64, 1, 3, 0, 3, 1];
    let h = eval_closed(&derived::hist_indexed(lit(&ns))).unwrap();
    let counts: Vec<u64> = h
        .as_array()
        .unwrap()
        .data()
        .iter()
        .map(|v| v.as_nat().unwrap())
        .collect();
    assert_eq!(counts, vec![1, 2, 0, 3]);
}

#[test]
fn encode_obj_types_align_with_theorem() {
    // The translation sends [[nat]] into {({nat} × nat)} — check the
    // encoded value really has that shape. (The error flag is an empty
    // set for ordinary values, so it is typed separately.)
    let v = nats_arr(&[4, 5]);
    let enc = rank::encode_obj(&v).unwrap();
    let pair = enc.as_tuple().unwrap();
    let core_t = aql::core::value::tyof::type_of_value(&pair[0]).unwrap();
    assert_eq!(
        core_t,
        Type::set(Type::tuple(vec![Type::set(Type::Nat), Type::Nat]))
    );
    assert!(pair[1].as_set().unwrap().is_empty(), "no error flag");
}

/// Embed a set-of-(nat, nat) value as a literal expression.
fn set_value_to_expr(v: &Value) -> aql::core::expr::Expr {
    let mut e = empty();
    for item in v.as_set().unwrap().iter() {
        let t = item.as_tuple().unwrap();
        e = union(
            e,
            single(tuple(vec![
                nat(t[0].as_nat().unwrap()),
                nat(t[1].as_nat().unwrap()),
            ])),
        );
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn set_to_array_is_sorted_dedup(ns in prop::collection::vec(0u64..64, 0..12)) {
        let set_e = ns.iter().fold(empty(), |acc, &n| union(acc, single(nat(n))));
        let v = eval_closed(&rank::set_to_array(set_e)).unwrap();
        let got: Vec<u64> = v
            .as_array()
            .unwrap()
            .data()
            .iter()
            .map(|x| x.as_nat().unwrap())
            .collect();
        let mut expect: Vec<u64> = ns.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn graph_roundtrip_via_rank(ns in prop::collection::vec(0u64..64, 0..12)) {
        // set_to_array(dom-ordered graph values) rebuilds the array:
        // index+get over the ranked graph is the identity.
        let arr = lit(&ns);
        let rebuilt = derived::map_arr(
            {
                let g = aql::core::expr::free::fresh("g");
                lam(&g, get(var(&g)))
            },
            index(1, derived::graph1(arr.clone())),
        );
        prop_assert_eq!(
            eval_closed(&rebuilt).unwrap(),
            eval_closed(&arr).unwrap()
        );
    }
}
