//! An interactive AQL read-eval-print loop (§4).
//!
//! Run with `cargo run --example repl`, then type statements ending in
//! `;`. The prompt mirrors the paper's transcript (`:` with `::`
//! continuation lines). `quit;`-free exit: type `quit` or press
//! Ctrl-D.
//!
//! The session starts with the prelude macros, the `COFILE` driver,
//! the `NETCDF1..4`/`NETCDFINFO` drivers, and the `heatindex` /
//! `june_sunset` externals registered. Synthetic datasets are written
//! to a temp directory and announced at startup, so paper queries can
//! be typed directly.

use std::io::{BufReader, Write};

use aql::externals::{register_heatindex, register_june_sunset};
use aql::lang::repl::run_repl;
use aql::lang::session::Session;
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::synth;

fn main() {
    let dir = std::env::temp_dir().join("aql-repl-data");
    let (temp, june) = synth::write_example_data(&dir).expect("write synthetic data");

    let mut session = Session::new();
    register_netcdf(&mut session);
    register_heatindex(&mut session);
    register_june_sunset(&mut session);

    println!("AQL — a query language for multidimensional arrays (SIGMOD '96)");
    println!("Statements end with `;`. Type `quit` or Ctrl-D to exit.\n");
    println!("Registered readers: COFILE, NETCDF1..NETCDF4, NETCDFINFO");
    println!("Registered externals: heatindex, june_sunset");
    println!("Prelude macros: {}\n", session.macro_names().join(", "));
    println!("Synthetic data:");
    println!("  year of hourly temps : {}", temp.display());
    println!("  June weather (T/RH/WS): {}\n", june.display());
    println!("Try:");
    println!("  {{x * x | \\x <- gen!10, x % 2 = 0}};");
    println!(
        "  readval \\info using NETCDFINFO at \"{}\";",
        june.display()
    );
    println!(
        "  readval \\T using NETCDF1 at (\"{}\", \"T\", 0, 719);",
        june.display()
    );
    println!("  max!(rng!T);\n");

    let stdin = std::io::stdin();
    let mut input = BufReader::new(stdin.lock());
    let stdout = std::io::stdout();
    let mut output = stdout.lock();
    let n = run_repl(&mut session, &mut input, &mut output).expect("repl I/O");
    let _ = writeln!(output, "\n{n} statement(s) executed. Goodbye.");
}
