//! An interactive AQL read-eval-print loop (§4).
//!
//! Run with `cargo run --example repl`, then type statements ending in
//! `;`. The prompt mirrors the paper's transcript (`:` with `::`
//! continuation lines). `quit;`-free exit: type `quit` or press
//! Ctrl-D.
//!
//! The session starts with the prelude macros, the `COFILE` driver,
//! the `NETCDF1..4`/`NETCDFINFO` drivers, and the `heatindex` /
//! `june_sunset` externals registered. Synthetic datasets are written
//! to a temp directory and announced at startup, so paper queries can
//! be typed directly.
//!
//! Observability flags:
//! * `--metrics-addr <addr>` serves Prometheus text exposition on
//!   `<addr>` (e.g. `127.0.0.1:9187`) for the life of the process —
//!   same as typing `\metrics serve <addr>;` at the prompt;
//! * `--slow-log <path>` appends a JSON-lines record for every
//!   statement at or over the slow-query threshold;
//! * `--slow-threshold-ms <n>` sets that threshold (default 100).

use std::io::{BufReader, Write};
use std::time::Duration;

use aql::externals::{register_heatindex, register_june_sunset};
use aql::lang::repl::run_repl;
use aql::lang::session::{Session, SlowLogConfig};
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::synth;

/// The value following `flag` on the command line, if present.
fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let dir = std::env::temp_dir().join("aql-repl-data");
    let (temp, june) = synth::write_example_data(&dir).expect("write synthetic data");

    let mut session = Session::new();
    register_netcdf(&mut session);
    register_heatindex(&mut session);
    register_june_sunset(&mut session);

    if let Some(addr) = flag_value("--metrics-addr") {
        let server = aql::metrics::http::serve(&*addr).expect("bind metrics endpoint");
        println!("Serving metrics on http://{}/metrics", server.addr());
    }
    if let Some(path) = flag_value("--slow-log") {
        let threshold_ms = flag_value("--slow-threshold-ms")
            .map(|v| v.parse().expect("--slow-threshold-ms takes milliseconds"))
            .unwrap_or(100);
        let sink = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open slow-query log");
        session.enable_slow_log(
            Box::new(sink),
            SlowLogConfig {
                threshold: Duration::from_millis(threshold_ms),
                sample_every: 0,
            },
        );
        println!("Slow-query log ({threshold_ms}ms threshold): {path}");
    }

    println!("AQL — a query language for multidimensional arrays (SIGMOD '96)");
    println!("Statements end with `;`. Type `quit` or Ctrl-D to exit.\n");
    println!("Registered readers: COFILE, NETCDF1..NETCDF4, NETCDFINFO");
    println!("Registered externals: heatindex, june_sunset");
    println!("Prelude macros: {}\n", session.macro_names().join(", "));
    println!("Synthetic data:");
    println!("  year of hourly temps : {}", temp.display());
    println!("  June weather (T/RH/WS): {}\n", june.display());
    println!("Try:");
    println!("  {{x * x | \\x <- gen!10, x % 2 = 0}};");
    println!(
        "  readval \\info using NETCDFINFO at \"{}\";",
        june.display()
    );
    println!(
        "  readval \\T using NETCDF1 at (\"{}\", \"T\", 0, 719);",
        june.display()
    );
    println!("  max!(rng!T);\n");

    let stdin = std::io::stdin();
    let mut input = BufReader::new(stdin.lock());
    let stdout = std::io::stdout();
    let mut output = stdout.lock();
    let n = run_repl(&mut session, &mut input, &mut output).expect("repl I/O");
    let _ = writeln!(output, "\n{n} statement(s) executed. Goodbye.");
}
