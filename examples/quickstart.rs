//! Quickstart: a guided tour of AQL.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Walks through the language exactly as §2–§3 of the paper introduce
//! it: values, comprehensions, patterns, arrays as functions
//! (tabulate / subscript / dim), the `index` group-by, macros, and the
//! exchange-format I/O — printing each statement and the session's
//! `typ`/`val` echo.

use aql::lang::session::Session;

fn show(session: &mut Session, src: &str) {
    println!(": {}", src.trim());
    match session.run(src) {
        Ok(outcomes) => {
            for o in outcomes {
                println!("{}", o.text);
            }
        }
        Err(e) => println!("error: {e}"),
    }
    println!();
}

fn main() {
    let mut s = Session::new();

    println!("=== AQL quickstart ===\n");

    println!("--- complex objects: sets, tuples, comprehensions ---");
    show(&mut s, "val \\R = {(1, \"one\"), (2, \"two\"), (3, \"three\")};");
    show(&mut s, "{n | (\\n, _) <- R, n % 2 = 1};");
    show(&mut s, "{(x, y) | \\x <- gen!3, \\y <- gen!3, x < y};");

    println!("--- patterns: the natural join of §3 ---");
    show(&mut s, "val \\S = {(1, 10.5), (3, 30.5)};");
    show(&mut s, "{(x, name, v) | (\\x, \\name) <- R, (x, \\v) <- S};");

    println!("--- arrays are functions: tabulate, subscript, dim ---");
    show(&mut s, "val \\squares = [[ i * i | \\i < 10 ]];");
    show(&mut s, "squares[7];");
    show(&mut s, "len!squares;");
    show(&mut s, "val \\M = [[2, 3; 1, 2, 3, 4, 5, 6]];");
    show(&mut s, "M[1, 2];");
    show(&mut s, "transpose!M;");

    println!("--- the derived operators of §2 (prelude macros) ---");
    show(&mut s, "evenpos![[0, 1, 2, 3, 4, 5, 6, 7]];");
    show(&mut s, "reverse![[1, 2, 3]];");
    show(&mut s, "zip!([[1, 2, 3]], [[\"a\", \"b\"]]);");
    show(&mut s, "subseq!([[10, 20, 30, 40, 50]], 1, 3);");
    show(
        &mut s,
        "matmul!([[2, 2; 1, 2, 3, 4]], [[2, 2; 5, 6, 7, 8]]);",
    );

    println!("--- array generators and the index group-by of §2 ---");
    show(&mut s, "{i | [\\i : \\x] <- squares, x > 50};");
    show(&mut s, "index_1!{(1, \"a\"), (3, \"b\"), (1, \"c\")};");

    println!("--- aggregates via summation ---");
    show(&mut s, "summap(fn \\x => x * x)!(gen!5);");
    show(&mut s, "count!(rng![[3, 1, 4, 1, 5, 9, 2, 6]]);");

    println!("--- user macros ---");
    show(
        &mut s,
        "macro \\dot = fn (\\a, \\b) => summap(fn \\i => a[i] * b[i])!(dom!a);",
    );
    show(&mut s, "dot!([[1, 2, 3]], [[4, 5, 6]]);");

    println!("--- exchange-format I/O (readval / writeval, §4) ---");
    let dir = std::env::temp_dir().join("aql-quickstart");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("result.co");
    let p = path.to_str().expect("utf-8 path");
    show(&mut s, &format!("writeval {{x * 2 | \\x <- gen!5}} using COFILE at \"{p}\";"));
    show(&mut s, &format!("readval \\back using COFILE at \"{p}\";"));
    show(&mut s, "max!back;");
    std::fs::remove_dir_all(&dir).ok();

    println!("=== done ===");
}
