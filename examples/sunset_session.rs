//! The paper's §4.2 sample session, statement for statement:
//!
//! > *What days last June was it hotter than 85° after sunset in NYC?*
//!
//! Run with `cargo run --example sunset_session`.
//!
//! The session registers the `june_sunset` external (the paper's
//! `RegisterCO` call), defines the `months` val and `days_since_1_1`
//! macro, reads the June subslab of a year's hourly temperature from
//! `temp.nc` through the `NETCDF3` reader, and runs the array-generator
//! query — whose answer on the synthetic data is the paper's own
//! `{25, 27, 28}`.

use aql::externals::register_june_sunset;
use aql::lang::session::Session;
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::synth;
use aql_core::value::Value;

fn show(session: &mut Session, src: &str) {
    for line in src.trim().lines() {
        println!(": {}", line.trim());
    }
    match session.run(src) {
        Ok(outcomes) => {
            for o in outcomes {
                println!("{}", o.text);
            }
        }
        Err(e) => println!("error: {e}"),
    }
    println!();
}

fn main() {
    let dir = std::env::temp_dir().join("aql-sunset-data");
    let (temp, _) = synth::write_example_data(&dir).expect("write synthetic data");
    let temp_path = temp.to_str().expect("utf-8 path");

    let mut s = Session::new();
    register_netcdf(&mut s);

    println!("=== §4.2: the sunset session ===\n");
    println!("- (SML top level) registering external `june_sunset` ... done\n");
    register_june_sunset(&mut s);

    // The paper's months table and date macro, verbatim.
    show(
        &mut s,
        "val \\months = [[0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30]];",
    );
    show(
        &mut s,
        "macro \\days_since_1_1 = fn (\\m, \\d, \\y) =>
            d + summap(fn \\i => months[i])!(gen!m) +
            (if m > 2 and y % 4 = 0 then 1 else 0);",
    );

    // Index-computing macros for this NetCDF file (the paper assumes
    // `lat_index`/`lon_index` were defined earlier for the file).
    let nylat_i = synth::nearest_index(&synth::LAT_GRID, 40.7);
    let nylon_i = synth::nearest_index(&synth::LON_GRID, -74.0);
    show(&mut s, "val \\NYlat = 40.7; val \\NYlon = -74.0;");
    show(&mut s, &format!("macro \\lat_index = fn \\x => {nylat_i};"));
    show(&mut s, &format!("macro \\lon_index = fn \\x => {nylon_i};"));

    // Read June's hourly NYC temperatures — a 3-d subslab.
    show(
        &mut s,
        &format!(
            "readval \\T using NETCDF3 at
               (\"{temp_path}\", \"temp\",
                (days_since_1_1!(6, 1, 95) * 24, lat_index!(NYlat), lon_index!(NYlon)),
                (days_since_1_1!(6, 30, 95) * 24, lat_index!(NYlat), lon_index!(NYlon)));"
        ),
    );

    // The query, verbatim (§4.2).
    let query = "{d | [(\\h, _, _) : \\t] <- T, \\d == h/24 + 1,
           h > june_sunset!(NYlat, NYlon, d), t > 85.0};";
    show(&mut s, query);

    let (_, v) = s.eval_query("it").expect("last result");
    let expect = Value::set(vec![Value::Nat(25), Value::Nat(27), Value::Nat(28)]);
    assert_eq!(v, expect, "the session must answer the paper's {{25, 27, 28}}");
    println!("Confirmed: three days in June were hotter than 85° after sunset — {{25, 27, 28}},");
    println!("matching the paper's own session output.");
}
