//! The paper's motivating query (§1):
//!
//! > *On which days last June was it unbearably hot in NYC?*
//!
//! Run with `cargo run --example heatwave`.
//!
//! The three inputs have different dimensionalities and griddings —
//! `T` and `RH` are hourly 1-d arrays, `WS` is a half-hourly 2-d array
//! over altitudes — and the query correlates them exactly as the paper
//! writes it: `evenpos` fixes the grid, `proj_col` drops the altitude
//! dimension, `zip_3` combines, `subseq` slices days, and the external
//! `heatindex` primitive measures unbearability.

use aql::externals::register_heatindex;
use aql::lang::session::Session;
use aql::netcdf::driver::register_netcdf;
use aql::netcdf::synth;

fn main() {
    // Synthetic June data, written as a real NetCDF classic file (the
    // substitution for the paper's 1995 NYC observations).
    let dir = std::env::temp_dir().join("aql-heatwave-data");
    let (_, june) = synth::write_example_data(&dir).expect("write synthetic data");
    let june_path = june.to_str().expect("utf-8 path");

    let mut s = Session::new();
    register_netcdf(&mut s);
    register_heatindex(&mut s);

    println!("=== §1: the heat-index query ===\n");

    // Load the month's data through the NetCDF drivers.
    let hours = synth::JUNE_HOURS as u64;
    let setup = format!(
        r#"
        readval \T using NETCDF1 at ("{june_path}", "T", 0, {t_hi});
        readval \RH using NETCDF1 at ("{june_path}", "RH", 0, {t_hi});
        readval \WS using NETCDF2 at ("{june_path}", "WS", (0, 0), ({w_hi}, {l_hi}));
        val \threshold = 96.0;
        "#,
        t_hi = hours - 1,
        w_hi = 2 * hours - 1,
        l_hi = synth::WS_LEVELS - 1,
    );
    for o in s.run(&setup).expect("setup") {
        // Print just the `typ` line for the big arrays.
        println!("{}", o.text.lines().next().unwrap_or_default());
    }

    // The query, verbatim from the paper (§1).
    let query = r#"
        {d | \d <- gen!30,                          (* for each day in June *)
             \WS' == evenpos!(proj_col!(WS, 0)),    (* adjust WS grid and dim *)
             \TRW == zip_3!(T, RH, WS'),            (* combine the readings *)
             \A == subseq!(TRW, d*24, d*24+23),     (* extract day d readings *)
             heatindex!(A) > threshold};            (* filter for unbearability *)
    "#;
    println!("\n{}", query.trim());
    let outcomes = s.run(query).expect("query");
    println!("\n{}", outcomes[0].text);

    let got = outcomes[0].value.clone().expect("query value");
    let expect: Vec<u64> = synth::HEATWAVE_DAYS.iter().map(|&d| (d - 1) as u64).collect();
    let got_days: Vec<u64> = got
        .as_set()
        .expect("a set of days")
        .iter()
        .map(|v| v.as_nat().expect("day numbers"))
        .collect();
    assert_eq!(
        got_days, expect,
        "the engineered heat waves must be exactly the unbearable days"
    );
    println!(
        "\nConfirmed: the unbearable days are the engineered heat waves \
         (0-based days {got_days:?} = June {:?}).",
        synth::HEATWAVE_DAYS
    );

    // The §1 discussion: zip∘subseq vs subseq∘zip — the optimizer makes
    // the order irrelevant. Demonstrate by flipping the pipeline.
    let flipped = r#"
        {d | \d <- gen!30,
             \WS' == evenpos!(proj_col!(WS, 0)),
             \A == zip_3!(subseq!(T, d*24, d*24+23),
                          subseq!(RH, d*24, d*24+23),
                          subseq!(WS', d*24, d*24+23)),
             heatindex!(A) > threshold};
    "#;
    let flipped_result = s.run(flipped).expect("flipped query");
    assert_eq!(
        flipped_result[0].value, Some(got),
        "zip∘(subseq,…) and subseq∘zip must agree (§1/§5)"
    );
    println!("zip∘(subseq,subseq,subseq) agrees with subseq∘zip_3, as §5 promises.");
}
