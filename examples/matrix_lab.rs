//! Matrix laboratory: the optimizer at work (§5).
//!
//! Run with `cargo run --example matrix_lab`.
//!
//! Shows the §5 machinery on real queries: the transpose rule derived
//! from β/δ^p/π/β^p plus check elimination (with the full rewrite
//! trace), β^p avoiding materialisation, δ^p computing lengths without
//! tabulating, the histogram pair of §2, and a user-injected rewrite
//! rule through the open rule registry.

use std::rc::Rc;

use aql::core::derived;
use aql::core::eval::eval_closed;
use aql::core::expr::builder::*;
use aql::core::expr::Expr;
use aql::opt::{normalize_and_eliminate, optimize_traced, Phase, Rule};

fn main() {
    println!("=== §5: the optimizer laboratory ===\n");

    // ---- 1. The transpose derivation --------------------------------
    println!("--- deriving the transpose rule from the core rules ---");
    let tabbed = tab(
        vec![("i", var("m")), ("j", var("n"))],
        add(mul(var("i"), nat(10)), var("j")),
    );
    let e = derived::transpose(tabbed);
    println!("input:      {e}");
    let (opt, trace) = optimize_traced(&e);
    println!("normalized: {opt}\n");
    println!("rewrite trace ({} steps):", trace.len());
    println!("{}", trace.render());

    // ---- 2. β^p avoids materialisation -------------------------------
    println!("--- β^p: one element of a million-element tabulation ---");
    let e = sub(
        tab1("i", nat(1_000_000), mul(var("i"), var("i"))),
        vec![nat(1234)],
    );
    println!("input:     {e}");
    let (opt, trace) = optimize_traced(&e);
    println!("optimized: {opt}");
    println!(
        "(β^p fired {} time(s); the tabulation is gone — no array is ever built)\n",
        trace.count("beta-p")
    );

    // ---- 3. δ^p computes lengths without tabulating -------------------
    println!("--- δ^p: the length of a tabulation is its bound ---");
    let e = len(tab1("i", add(var("n"), nat(5)), mul(var("i"), var("i"))));
    println!("input:     {e}");
    let opt = normalize_and_eliminate().optimize(&e);
    println!("optimized: {opt}\n");

    // ---- 4. The two histograms of §2 ----------------------------------
    println!("--- hist (O(n·m)) vs hist' via index (O(m + n log n)) ---");
    let data: Vec<Expr> = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        .iter()
        .map(|&x| nat(x))
        .collect();
    let arr = array1_lit(data);
    let h1 = eval_closed(&derived::hist(arr.clone())).expect("hist");
    let h2 = eval_closed(&derived::hist_indexed(arr)).expect("hist'");
    println!("hist  = {h1}");
    println!("hist' = {h2}");
    println!("(both count occurrences; hist' groups via the index construct)\n");

    // ---- 5. Openness: inject a user rewrite rule -----------------------
    println!("--- injecting a domain rule: reverse(reverse A) ⤳ A ---");
    /// The user's rule: recognise the *macro-expanded* double reversal
    /// is too hard syntactically (Prop. 5.1!), so domain rules match
    /// their own marker primitives. Here we mark with an external call.
    struct DoubleReverse;
    impl Rule for DoubleReverse {
        fn name(&self) -> &'static str {
            "double-reverse"
        }
        fn apply(&self, e: &Expr) -> Option<Expr> {
            // rev(rev(x)) with rev spelled as an Ext call.
            if let Expr::App(f, a) = e {
                if matches!(&**f, Expr::Ext(n) if &**n == "rev") {
                    if let Expr::App(g, inner) = &**a {
                        if matches!(&**g, Expr::Ext(n) if &**n == "rev") {
                            return Some((**inner).clone());
                        }
                    }
                }
            }
            None
        }
    }
    let mut opt = aql::opt::standard();
    let mut phase = Phase::new("domain-rules");
    phase.add_rule(Rc::new(DoubleReverse));
    opt.add_phase(phase);
    let e = app(ext("rev"), app(ext("rev"), var("A")));
    println!("input:     {e}");
    let rewritten = opt.optimize(&e);
    println!("optimized: {rewritten}");
    assert_eq!(rewritten, var("A"));
    println!("(rule bases are extensible at run time, as §4–§5 describe)");
}
