//! `\doctor` as a command-line tool: incident analysis offline.
//!
//! Usage:
//!
//! ```text
//! cargo run --example doctor -- <incident-file.json>   analyze one dump
//! cargo run --example doctor -- --dir <incident-dir>   analyze the newest dump
//! cargo run --example doctor -- --demo                 self-contained walkthrough
//! cargo run --example doctor -- --json <file-or-mode>  machine-readable output
//! ```
//!
//! With a file or directory argument the tool loads the incident and
//! prints the same report the REPL's `\doctor;` renders: dominant cost
//! source, cache behavior, retry/breaker timeline, fault class, and a
//! plain-language diagnosis.
//!
//! `--json` (which may precede any of the other forms) switches the
//! report to one stable-key JSON object per incident — see
//! [`doctor::diagnose_json`] for the key contract — so the output can
//! be piped into `jq` or an alerting hook.
//!
//! `--demo` runs a session against a fault-injected chunk source so a
//! fresh checkout can see the whole pipeline — statement fails, an
//! incident file appears, the doctor names the failing source — without
//! needing a broken disk.

use std::path::{Path, PathBuf};

use aql::journal::{doctor, incident};

fn analyze(path: &Path, json: bool) -> Result<(), String> {
    let inc = incident::Incident::load(path)?;
    if json {
        println!("{}", doctor::diagnose_json(&inc));
    } else {
        println!("incident: {}", path.display());
        print!("{}", doctor::diagnose(&inc));
    }
    Ok(())
}

fn newest_in(dir: &Path) -> Result<PathBuf, String> {
    incident::list_incidents(dir)
        .into_iter()
        .next()
        .ok_or_else(|| format!("no incident files in {}", dir.display()))
}

/// Build a session over a deterministically faulty chunk source, run a
/// scan that trips the retry path into a hard failure, and doctor the
/// resulting incident file.
fn demo(json: bool) -> Result<(), String> {
    use aql::core::types::Type;
    use aql::core::value::array::ArrayVal;
    use aql::core::value::Value;
    use aql::lang::session::{IncidentConfig, Session};
    use aql::store::{
        ChunkFaultPlan, ChunkLayout, FaultyChunkSource, LazyArray, MemChunkSource,
        ResiliencePolicy, ResilientSource, ScalarBuf, ScalarKind,
    };

    let dir = std::env::temp_dir().join(format!("aql-doctor-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

    let n = 64u64;
    let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mem = MemChunkSource::new(vec![n], ScalarBuf::F64(data)).map_err(|e| e.to_string())?;
    // The 8th read and every retry of it fail transiently: the retry
    // budget burns out and the statement errors.
    let plan = ChunkFaultPlan {
        transient_ops: (7..16).collect(),
        ..ChunkFaultPlan::none()
    };
    let faulty = FaultyChunkSource::new(Box::new(mem), plan);
    let resilient = ResilientSource::new(
        Box::new(faulty),
        "demo:flaky-disk",
        ResiliencePolicy::default(),
    );
    let layout = ChunkLayout::new(vec![n], vec![4]).map_err(|e| e.to_string())?;
    let lazy = LazyArray::labeled(
        layout,
        ScalarKind::F64,
        Box::new(resilient),
        1 << 20,
        "demo:flaky-disk",
    );
    let av = ArrayVal::lazy(lazy).map_err(|e| format!("{e:?}"))?;

    let mut s = Session::new();
    s.bind_val_typed("sst", Value::Array(std::rc::Rc::new(av)), Type::array1(Type::Real));
    s.enable_incidents(IncidentConfig::new(&dir));

    if !json {
        println!("demo: scanning a 64-element array whose chunk 7 always fails...\n");
    }
    match s.run("reverse!sst;") {
        Ok(_) if !json => println!("demo: unexpectedly succeeded (no incident)"),
        Err(e) if !json => println!("statement failed as planned: {e}\n"),
        _ => {}
    }
    let path = s
        .last_incident_path()
        .ok_or("the failing statement must dump an incident")?;
    analyze(&path, json)?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.first().map(String::as_str) == Some("--json");
    if json {
        args.remove(0);
    }
    let result = match args.first().map(String::as_str) {
        Some("--demo") => demo(json),
        Some("--dir") => match args.get(1) {
            Some(d) => newest_in(Path::new(d)).and_then(|p| analyze(&p, json)),
            None => Err("usage: doctor [--json] --dir <incident-dir>".to_string()),
        },
        Some(file) => analyze(Path::new(file), json),
        None => Err(
            "usage: doctor [--json] <incident-file.json> | --dir <incident-dir> | --demo"
                .to_string(),
        ),
    };
    if let Err(e) = result {
        eprintln!("doctor: {e}");
        std::process::exit(1);
    }
}
