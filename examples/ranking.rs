//! The expressiveness story of §6, interactively:
//! *adding arrays to a complex-object language is exactly adding
//! ranking*.
//!
//! Run with `cargo run --example ranking`.

use aql::core::derived;
use aql::core::eval::eval_closed;
use aql::core::expr::builder::*;
use aql::core::rank;
use aql::core::types::Type;
use aql::core::value::tyof::type_of_value;

fn main() {
    println!("=== §6: arrays ≡ ranking ===\n");

    // 1. The ranked union ∪_r assigns canonical positions.
    println!("--- rank(X) = ∪_r{{ {{(x, i)}} | x_i ∈ X }} ---");
    let x = union(
        union(single(strlit("carol")), single(strlit("alice"))),
        single(strlit("bob")),
    );
    let ranked = eval_closed(&rank::rank_expr(x.clone())).expect("rank");
    println!("rank({{\"carol\", \"alice\", \"bob\"}}) = {ranked}\n");

    // 2. Ranking gives arrays: a set becomes the sorted array of its
    //    elements (the arrays-from-ranks direction of Thm 6.2).
    println!("--- set_to_array: ranking constructs arrays ---");
    let arr = eval_closed(&rank::set_to_array(x)).expect("set_to_array");
    println!("set_to_array(…) = {arr}\n");

    // 3. Arrays give ranking: the graph of an array is a ranked set,
    //    and array queries run on the encoding (the other direction).
    println!("--- the ° encoding: array queries on graphs ---");
    let a = array1_lit(vec![nat(10), nat(20), nat(30), nat(40), nat(50)]);
    let native = eval_closed(&derived::evenpos(a.clone())).expect("native");
    println!("evenpos([[10,20,30,40,50]])      = {native}");
    let g = eval_closed(&derived::graph1(a)).expect("graph");
    println!("graph of the input               = {g}");
    let g_expr = {
        // Re-embed the graph value as a literal for the NRC_r query.
        let mut e = empty();
        for p in g.as_set().expect("set").iter() {
            let t = p.as_tuple().expect("pair");
            e = union(
                e,
                single(tuple(vec![
                    nat(t[0].as_nat().expect("idx")),
                    nat(t[1].as_nat().expect("val")),
                ])),
            );
        }
        e
    };
    let on_graph = eval_closed(&rank::evenpos_on_graph(g_expr)).expect("encoded");
    println!("evenpos on the graph (pure NRC)  = {on_graph}\n");

    // 4. The object translation ° of Theorem 6.1, with its error flag.
    println!("--- the object translation ° (Thm 6.1) ---");
    let v = aql::core::value::Value::array1(vec![
        aql::core::value::Value::Nat(7),
        aql::core::value::Value::Nat(9),
    ]);
    let enc = rank::encode_obj(&v).expect("encode");
    println!("[[7, 9]]°                        = {enc}");
    let dec = rank::decode_obj(&Type::array1(Type::Nat), &enc).expect("decode");
    println!("decoded back                     = {dec}");
    assert_eq!(dec, v);
    let bot = rank::encode_obj(&aql::core::value::Value::Bottom).expect("encode ⊥");
    println!("⊥°                               = {bot}  (error flag set)\n");

    // 5. Encoded values live in pure NRC^aggr types.
    let core_ty = type_of_value(&enc.as_tuple().expect("pair")[0].clone())
        .expect("typed");
    println!("the encoding's core type: {core_ty}");
    println!("— arrays are gone; only sets, tuples and naturals remain,");
    println!("  which is Theorem 6.1: NRCA ≡ NRC^aggr(gen).");
}
