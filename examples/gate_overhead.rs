//! Measure the rewrite-soundness gate's cost on the optimizer.
//!
//! Times a rewrite-heavy 1-d array pipeline through the standard §5
//! optimizer with the gate off (the release default) and with per-fire
//! verification on. Run with:
//!
//! ```text
//! cargo run --release --example gate_overhead
//! ```
//!
//! Representative numbers (release, one container): gate off is
//! statistically indistinguishable from the pre-gate engine (the off
//! path adds one branch per rule fire plus binder-scope bookkeeping
//! dwarfed by the rewrites' term cloning); per-fire verification costs
//! ~1.4x optimizer time — which is why it defaults on only in debug
//! builds, where the whole test corpus doubles as a soundness corpus.

use std::time::Instant;

use aql::core::derived;
use aql::core::expr::builder::*;
use aql::opt::Gate;

fn main() {
    let base: Vec<_> = (0..64u64).map(nat).collect();
    let mut e = array1_lit(base);
    for _ in 0..4 {
        let x = aql::core::expr::free::fresh("x");
        e = derived::map_arr(lam(&x, add(var(&x), nat(1))), derived::reverse(e));
    }
    let opt = aql::opt::standard();
    const N: usize = 300;
    for _ in 0..50 {
        std::hint::black_box(opt.try_optimize(&e).expect("no rule panics"));
    }
    let t0 = Instant::now();
    for _ in 0..N {
        std::hint::black_box(opt.try_optimize(&e).expect("no rule panics"));
    }
    let off = t0.elapsed();
    for _ in 0..50 {
        std::hint::black_box(
            opt.try_optimize_verified(&e, &Gate::local()).expect("pipeline is sound"),
        );
    }
    let t1 = Instant::now();
    for _ in 0..N {
        std::hint::black_box(
            opt.try_optimize_verified(&e, &Gate::local()).expect("pipeline is sound"),
        );
    }
    let on = t1.elapsed();
    println!(
        "gate off: {:?}/iter   gate on (per-fire): {:?}/iter   ratio {:.2}x",
        off / N as u32,
        on / N as u32,
        on.as_secs_f64() / off.as_secs_f64()
    );
}
