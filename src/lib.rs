//! # aql — umbrella crate
//!
//! Re-exports the full AQL system: the NRCA core calculus
//! ([`aql_core`]), the surface language and session ([`aql_lang`]),
//! the optimizer ([`aql_opt`]), the abstract-interpretation framework
//! ([`aql_analysis`]), the IR verifier and lint pass
//! ([`aql_verify`]), the NetCDF driver ([`aql_netcdf`]), the
//! query-lifecycle tracer ([`aql_trace`]), the process-lifetime
//! metrics registry ([`aql_metrics`]) and the always-on flight
//! recorder with incident dumps ([`aql_journal`]).
//!
//! This is a from-scratch Rust reproduction of *Libkin, Machlin &
//! Wong, "A Query Language for Multidimensional Arrays: Design,
//! Implementation, and Optimization Techniques" (SIGMOD 1996)*.
//! See the repository README for a tour and `examples/` for runnable
//! programs.

pub mod externals;

pub use aql_analysis as analysis;
pub use aql_core as core;
pub use aql_format as format;
pub use aql_journal as journal;
pub use aql_lang as lang;
pub use aql_metrics as metrics;
pub use aql_netcdf as netcdf;
pub use aql_opt as opt;
pub use aql_store as store;
pub use aql_trace as trace;
pub use aql_verify as verify;
