//! Domain-specific external primitives for the paper's two worked
//! examples.
//!
//! §1 and §4.2 assume "computation-intensive algorithms are handled by
//! domain-specific external primitives written in GPPLs" — there the
//! host language is SML, here it is Rust. [`register_heatindex`] and
//! [`register_june_sunset`] are the Rust counterparts of the paper's
//! `TopEnv.RegisterCO` calls.

use aql_core::prim::NativeFn;
use aql_core::types::Type;
use aql_core::value::Value;
use aql_lang::session::Session;

/// The NOAA (Rothfusz) heat-index regression for temperature (°F) and
/// relative humidity (%). Below 80 °F the index is just the
/// temperature.
pub fn heat_index(t: f64, rh: f64) -> f64 {
    if t < 80.0 {
        return t;
    }
    -42.379 + 2.04901523 * t + 10.14333127 * rh
        - 0.22475541 * t * rh
        - 6.83783e-3 * t * t
        - 5.481717e-2 * rh * rh
        + 1.22874e-3 * t * t * rh
        + 8.5282e-4 * t * rh * rh
        - 1.99e-6 * t * t * rh * rh
}

/// The "unbearability" measure the §1 query calls `heatindex`: given a
/// day's worth of hourly `(temperature, humidity, wind-speed)` triples,
/// the maximum hourly heat index, discounted slightly by wind relief.
pub fn day_heat_index(readings: &[(f64, f64, f64)]) -> f64 {
    readings
        .iter()
        .map(|&(t, rh, ws)| heat_index(t, rh) - 0.3 * ws)
        .fold(f64::MIN, f64::max)
}

/// Register `heatindex : [[real * real * real]] -> real` on a session
/// (the §1 external: input is a one-dimensional array of a day's
/// hourly (temperature, relative humidity, wind speed) readings).
pub fn register_heatindex(session: &mut Session) {
    let ty = Type::fun(
        Type::array1(Type::tuple(vec![Type::Real, Type::Real, Type::Real])),
        Type::Real,
    );
    session.register_external(NativeFn::new("heatindex", ty, |v| {
        let arr = v.as_array()?;
        let mut readings = Vec::with_capacity(arr.len());
        for item in arr.data().iter() {
            let t = item.as_tuple()?;
            readings.push((t[0].as_real()?, t[1].as_real()?, t[2].as_real()?));
        }
        if readings.is_empty() {
            return Ok(Value::Bottom);
        }
        Ok(Value::Real(day_heat_index(&readings)))
    }));
}

/// Approximate sunset hour (local standard time, whole hours) for a
/// given latitude/longitude and day of June, via solar declination and
/// the sunset hour angle.
pub fn sunset_hour(lat_deg: f64, lon_deg: f64, june_day: u64) -> u64 {
    // Day of year for June `june_day` (non-leap year).
    let n = (31 + 28 + 31 + 30 + 31 + june_day) as f64;
    let decl = 23.44f64.to_radians() * (std::f64::consts::TAU * (284.0 + n) / 365.0).sin();
    let lat = lat_deg.to_radians();
    let cos_h = (-lat.tan() * decl.tan()).clamp(-1.0, 1.0);
    let h_deg = cos_h.acos().to_degrees();
    // Solar noon in the Eastern (UTC-5) zone the paper's NYC data uses.
    let solar_noon = 12.0 - (lon_deg + 75.0) / 15.0;
    let sunset = solar_noon + h_deg / 15.0;
    sunset.floor().max(0.0) as u64
}

/// Register `june_sunset : real * real * nat -> nat` (the §4.2
/// external): given latitude, longitude and a June day number, the
/// *absolute hour index within June* of sunset on that day — the form
/// the session's query compares against its hour index `h`.
pub fn register_june_sunset(session: &mut Session) {
    let ty = Type::fun(
        Type::tuple(vec![Type::Real, Type::Real, Type::Nat]),
        Type::Nat,
    );
    session.register_external(NativeFn::new("june_sunset", ty, |v| {
        let t = v.as_tuple()?;
        let lat = t[0].as_real()?;
        let lon = t[1].as_real()?;
        let day = t[2].as_nat()?;
        if day == 0 {
            return Ok(Value::Bottom);
        }
        Ok(Value::Nat((day - 1) * 24 + sunset_hour(lat, lon, day)))
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_index_matches_noaa_reference() {
        // NOAA reference point: 90 °F / 70 % RH → ≈ 105.4.
        let hi = heat_index(90.0, 70.0);
        assert!((hi - 105.4).abs() < 1.0, "got {hi}");
        // Below 80 the index is the temperature.
        assert_eq!(heat_index(75.0, 90.0), 75.0);
        // Humidity raises the index.
        assert!(heat_index(92.0, 80.0) > heat_index(92.0, 40.0));
    }

    #[test]
    fn day_heat_index_takes_the_max() {
        let day = vec![(70.0, 50.0, 0.0), (95.0, 60.0, 0.0), (80.0, 40.0, 0.0)];
        let v = day_heat_index(&day);
        assert!(v > 100.0, "the 95° hour dominates, got {v}");
        // Wind gives relief.
        let windy = vec![(95.0, 60.0, 20.0)];
        assert!(day_heat_index(&windy) < day_heat_index(&[(95.0, 60.0, 0.0)]));
    }

    #[test]
    fn nyc_june_sunset_is_evening() {
        // NYC: sunset in June around 19:25 EST (≈ 20:25 EDT).
        let h = sunset_hour(40.7, -74.0, 21);
        assert!((19..=20).contains(&h), "got {h}");
        // Absolute hour for day d lands in day d's range.
        let mut s = Session::new();
        register_june_sunset(&mut s);
        let (_, v) = s.eval_query("june_sunset!(40.7, -74.0, 3)").unwrap();
        let abs = v.as_nat().unwrap();
        assert!((48..72).contains(&abs), "got {abs}");
    }

    #[test]
    fn externals_reject_bad_input() {
        let mut s = Session::new();
        register_heatindex(&mut s);
        register_june_sunset(&mut s);
        // Empty day → ⊥.
        let (_, v) = s
            .eval_query("heatindex!(subseq!([[ (90.0, 60.0, 5.0) ]], 5, 4))")
            .unwrap();
        assert!(v.is_bottom());
        // Day 0 → ⊥.
        let (_, v) = s.eval_query("june_sunset!(40.7, -74.0, 0)").unwrap();
        assert!(v.is_bottom());
    }
}
