//! Shape/bounds lints: constant-extent propagation over well-typed
//! terms.
//!
//! An abstract interpretation on a small fact domain — nat-value
//! ranges, known array extents, tuples of facts, and "definitely ⊥" —
//! propagated through tabulations (an index variable `i` of
//! `[[… | i < 10]]` is known to lie in `[0, 9]`), literal dimensions,
//! `let`/β-redex bindings, and arithmetic on constants. Three
//! warnings come out of it:
//!
//! * **L001** — a subscript that is *provably* out of bounds on some
//!   axis (index lower bound ≥ known extent): the subscript always
//!   evaluates to ⊥;
//! * **L002** — a tabulation bound or literal dimension that is
//!   constantly zero: the array can hold no elements;
//! * **L003** — a conditional whose condition is the literal `⊥` or a
//!   constant boolean: a branch (or the whole expression) is dead.
//!
//! Two further warnings come from the `aql-analysis` abstract
//! interpreter, which runs alongside the fact pass and can reason
//! *symbolically* (in terms of `dim(A, k)` and cross-variable
//! arithmetic) where the constant domain above cannot:
//!
//! * **L004** — a subscript the symbolic domain proves out of bounds
//!   (e.g. `A[i + dim(A)]` under `i < dim(A)`), where no constant
//!   extent was available for L001;
//! * **L005** — a comprehension or sum over a provably empty source:
//!   its head is dead code.
//!
//! Everything is conservative: a fact is only as strong as the
//! constants that reach it, and `Top` kills propagation. The lints
//! never fire on merely-possible failures — only on certainties, per
//! the paper's convention that out-of-bounds access *is* a value (⊥),
//! not an error. Output goes through [`crate::diag::normalize`], so it
//! is duplicate-free and byte-stable across runs.

use aql_analysis::{Analysis, SubVerdict};
use aql_core::expr::{Expr, Name};

use crate::diag::{normalize, Diagnostic, Severity};

/// What is statically known about a subterm's value.
#[derive(Debug, Clone, PartialEq)]
enum Fact {
    /// A natural in `[lo, hi]` (`hi = None`: unbounded above).
    Nat { lo: u64, hi: Option<u64> },
    /// An array with per-axis extents (known or unknown).
    Arr { dims: Vec<Option<u64>> },
    /// A tuple of facts.
    Tup(Vec<Fact>),
    /// Definitely ⊥.
    Bot,
    /// No information.
    Top,
}

impl Fact {
    fn exact(n: u64) -> Fact {
        Fact::Nat { lo: n, hi: Some(n) }
    }

    /// The exactly-known value, if any.
    fn constant(&self) -> Option<u64> {
        match self {
            Fact::Nat { lo, hi: Some(h) } if lo == h => Some(*lo),
            _ => None,
        }
    }
}

/// Least upper bound (for joining `if` branches).
fn join(a: &Fact, b: &Fact) -> Fact {
    match (a, b) {
        (Fact::Bot, x) | (x, Fact::Bot) => x.clone(),
        (Fact::Nat { lo: l1, hi: h1 }, Fact::Nat { lo: l2, hi: h2 }) => Fact::Nat {
            lo: (*l1).min(*l2),
            hi: h1.zip(*h2).map(|(x, y)| x.max(y)),
        },
        (Fact::Arr { dims: d1 }, Fact::Arr { dims: d2 }) if d1.len() == d2.len() => Fact::Arr {
            dims: d1
                .iter()
                .zip(d2)
                .map(|(x, y)| if x == y { *x } else { None })
                .collect(),
        },
        (Fact::Tup(xs), Fact::Tup(ys)) if xs.len() == ys.len() => {
            Fact::Tup(xs.iter().zip(ys).map(|(x, y)| join(x, y)).collect())
        }
        _ => Fact::Top,
    }
}

/// Run the lint pass over a (resolved, well-typed) term.
pub fn lint_expr(e: &Expr) -> Vec<Diagnostic> {
    // The symbolic pass keys its verdicts by node address, so it must
    // run over the very tree the Linter walks.
    let analysis = aql_analysis::analyze(e, &std::collections::BTreeMap::new());
    let mut l = Linter { diags: Vec::new(), path: Vec::new(), analysis: &analysis };
    let mut env = Vec::new();
    l.infer(&mut env, e);
    normalize(l.diags)
}

struct Linter<'a> {
    diags: Vec<Diagnostic>,
    path: Vec<&'static str>,
    analysis: &'a Analysis,
}

type Env = Vec<(Name, Fact)>;

impl Linter<'_> {
    fn warn(&mut self, code: &'static str, message: impl Into<String>) {
        self.diags.push(Diagnostic::new(code, Severity::Warning, &self.path, message));
    }

    /// L005: the abstract interpreter proved this comprehension/sum
    /// iterates an empty source, so its head is dead code.
    fn empty_source_lint(&mut self, e: &Expr) {
        if let Some(what) = self.analysis.empty_at(e) {
            self.warn(
                "L005",
                format!("{what} source is provably empty: the head is dead code"),
            );
        }
    }

    fn child(&mut self, seg: &'static str, env: &mut Env, e: &Expr) -> Fact {
        self.path.push(seg);
        let f = self.infer(env, e);
        self.path.pop();
        f
    }

    fn infer(&mut self, env: &mut Env, e: &Expr) -> Fact {
        match e {
            Expr::Nat(n) => Fact::exact(*n),
            Expr::Bottom => Fact::Bot,
            Expr::Var(x) => env
                .iter()
                .rev()
                .find(|(n, _)| n == x)
                .map(|(_, f)| f.clone())
                .unwrap_or(Fact::Top),
            Expr::Let(x, bound, body) => {
                let fb = self.child("let.bound", env, bound);
                env.push((x.clone(), fb));
                let f = self.child("let.body", env, body);
                env.pop();
                f
            }
            // A β-redex binds like `let` — macros expand to these, so
            // facts flow through e.g. `subseq!(a, i, j)`.
            Expr::App(f, a) if matches!(**f, Expr::Lam(..)) => {
                let fa = self.child("app.arg", env, a);
                let Expr::Lam(x, body) = &**f else { unreachable!() };
                env.push((x.clone(), fa));
                let r = self.child("app.fun", env, body);
                env.pop();
                r
            }
            Expr::Tuple(items) => {
                let fs = items.iter().map(|it| self.child("tuple.item", env, it)).collect();
                Fact::Tup(fs)
            }
            Expr::Proj(i, k, inner) => {
                let f = self.child("proj", env, inner);
                match f {
                    Fact::Tup(fs) if fs.len() == *k && *i >= 1 && i <= k => fs[*i - 1].clone(),
                    _ => Fact::Top,
                }
            }
            Expr::Arith(op, a, b) => {
                let fa = self.child("arith.lhs", env, a);
                let fb = self.child("arith.rhs", env, b);
                arith_fact(*op, &fa, &fb)
            }
            Expr::Tab { head, idx } => {
                let mut bound_facts = Vec::with_capacity(idx.len());
                for (j, (_, b)) in idx.iter().enumerate() {
                    let f = self.child("tab.bound", env, b);
                    if f.constant() == Some(0) {
                        self.warn(
                            "L002",
                            format!(
                                "tabulation bound {} is constantly zero: the array has no \
                                 elements",
                                j + 1
                            ),
                        );
                    }
                    bound_facts.push(f);
                }
                for ((n, _), f) in idx.iter().zip(&bound_facts) {
                    // i < bound, so i ∈ [0, hi(bound) - 1].
                    let hi = match f {
                        Fact::Nat { hi: Some(h), .. } if *h > 0 => Some(h - 1),
                        _ => None,
                    };
                    env.push((n.clone(), Fact::Nat { lo: 0, hi }));
                }
                self.child("tab.head", env, head);
                for _ in idx {
                    env.pop();
                }
                Fact::Arr { dims: bound_facts.iter().map(Fact::constant).collect() }
            }
            Expr::ArrayLit { dims, items } => {
                let mut ds = Vec::with_capacity(dims.len());
                for (j, d) in dims.iter().enumerate() {
                    let f = self.child("arraylit.dim", env, d);
                    if f.constant() == Some(0) {
                        self.warn(
                            "L002",
                            format!("array literal dimension {} is zero", j + 1),
                        );
                    }
                    ds.push(f.constant());
                }
                for it in items {
                    self.child("arraylit.item", env, it);
                }
                Fact::Arr { dims: ds }
            }
            Expr::Sub(arr, idx) => {
                let fa = self.child("sub.array", env, arr);
                // A single tuple-literal index addresses each axis.
                let axis_facts: Vec<Fact> = if idx.len() == 1 {
                    match self.child("sub.index", env, &idx[0]) {
                        Fact::Tup(fs) => fs,
                        f => vec![f],
                    }
                } else {
                    idx.iter().map(|i| self.child("sub.index", env, i)).collect()
                };
                let mut oob = false;
                if let Fact::Arr { dims } = &fa {
                    if dims.len() == axis_facts.len() {
                        for (j, (d, f)) in dims.iter().zip(&axis_facts).enumerate() {
                            if let (Some(extent), Fact::Nat { lo, .. }) = (d, f) {
                                if lo >= extent {
                                    oob = true;
                                    self.warn(
                                        "L001",
                                        format!(
                                            "subscript along dimension {} is provably out of \
                                             bounds (index >= {lo}, extent {extent}): the \
                                             subscript always evaluates to bottom",
                                            j + 1
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                // The symbolic domain catches proofs the constant
                // domain cannot (cross-variable, `dim(·)`-relative);
                // suppressed when L001 already fired at this site.
                if !oob && self.analysis.verdict_of(e) == Some(SubVerdict::ProvablyOut) {
                    oob = true;
                    self.warn(
                        "L004",
                        "subscript is provably out of bounds by symbolic extent analysis: \
                         the subscript always evaluates to bottom",
                    );
                }
                if oob {
                    Fact::Bot
                } else {
                    Fact::Top
                }
            }
            Expr::Dim(k, inner) => {
                let f = self.child("dim", env, inner);
                match f {
                    Fact::Arr { dims } if dims.len() == *k => {
                        let facts: Vec<Fact> = dims
                            .iter()
                            .map(|d| match d {
                                Some(n) => Fact::exact(*n),
                                None => Fact::Nat { lo: 0, hi: None },
                            })
                            .collect();
                        if *k == 1 {
                            facts.into_iter().next().unwrap_or(Fact::Top)
                        } else {
                            Fact::Tup(facts)
                        }
                    }
                    _ => Fact::Top,
                }
            }
            Expr::If(c, t, f) => {
                self.child("if.cond", env, c);
                match &**c {
                    Expr::Bottom => {
                        self.warn(
                            "L003",
                            "`if` condition is the literal bottom: both branches are dead and \
                             the expression always evaluates to bottom",
                        );
                        self.child("if.then", env, t);
                        self.child("if.else", env, f);
                        Fact::Bot
                    }
                    Expr::Bool(b) => {
                        self.warn(
                            "L003",
                            format!(
                                "`if` condition is constantly {b}: the {} branch is dead",
                                if *b { "else" } else { "then" }
                            ),
                        );
                        let ft = self.child("if.then", env, t);
                        let ff = self.child("if.else", env, f);
                        if *b {
                            ft
                        } else {
                            ff
                        }
                    }
                    _ => {
                        let ft = self.child("if.then", env, t);
                        let ff = self.child("if.else", env, f);
                        join(&ft, &ff)
                    }
                }
            }
            // Remaining binder forms: the bound variable carries no
            // usable fact; recurse for nested lints.
            Expr::Lam(x, body) => {
                env.push((x.clone(), Fact::Top));
                self.child("lam.body", env, body);
                env.pop();
                Fact::Top
            }
            Expr::BigUnion { head, var, src }
            | Expr::BigBagUnion { head, var, src }
            | Expr::Sum { head, var, src } => {
                self.empty_source_lint(e);
                self.child("src", env, src);
                env.push((var.clone(), Fact::Top));
                self.child("head", env, head);
                env.pop();
                if matches!(e, Expr::Sum { .. }) {
                    Fact::Nat { lo: 0, hi: None }
                } else {
                    Fact::Top
                }
            }
            Expr::BigUnionRank { head, var, rank, src }
            | Expr::BigBagUnionRank { head, var, rank, src } => {
                self.empty_source_lint(e);
                self.child("src", env, src);
                env.push((var.clone(), Fact::Top));
                env.push((rank.clone(), Fact::Nat { lo: 0, hi: None }));
                self.child("head", env, head);
                env.pop();
                env.pop();
                Fact::Top
            }
            // Everything else: no facts, but visit all children so
            // nested terms still lint.
            Expr::Global(_)
            | Expr::Ext(_)
            | Expr::Empty
            | Expr::BagEmpty
            | Expr::Bool(_)
            | Expr::Real(_)
            | Expr::Str(_) => Fact::Top,
            Expr::App(f, a) => {
                self.child("app.fun", env, f);
                self.child("app.arg", env, a);
                Fact::Top
            }
            Expr::Single(inner)
            | Expr::BagSingle(inner)
            | Expr::Gen(inner)
            | Expr::Index(_, inner)
            | Expr::Get(inner) => {
                self.child("arg", env, inner);
                Fact::Top
            }
            Expr::Union(a, b) | Expr::BagUnion(a, b) => {
                self.child("lhs", env, a);
                self.child("rhs", env, b);
                Fact::Top
            }
            Expr::Cmp(_, a, b) => {
                self.child("cmp.lhs", env, a);
                self.child("cmp.rhs", env, b);
                Fact::Top
            }
            Expr::Prim(_, args) => {
                for a in args {
                    self.child("prim.arg", env, a);
                }
                Fact::Top
            }
        }
    }
}

/// Range arithmetic on nat facts (saturating/checked, conservative).
fn arith_fact(op: aql_core::expr::ArithOp, a: &Fact, b: &Fact) -> Fact {
    use aql_core::expr::ArithOp::*;
    let (Fact::Nat { lo: l1, hi: h1 }, Fact::Nat { lo: l2, hi: h2 }) = (a, b) else {
        return Fact::Top;
    };
    match op {
        Add => Fact::Nat {
            lo: l1.saturating_add(*l2),
            hi: h1.zip(*h2).and_then(|(x, y)| x.checked_add(y)),
        },
        Mul => Fact::Nat {
            lo: l1.saturating_mul(*l2),
            hi: h1.zip(*h2).and_then(|(x, y)| x.checked_mul(y)),
        },
        // Monus saturates at zero.
        Monus => Fact::Nat {
            lo: h2.map_or(0, |h| l1.saturating_sub(h)),
            hi: h1.map(|h| h.saturating_sub(*l2)),
        },
        // x / y ≤ x for y ≥ 1; y = 0 may be ⊥, so stay conservative.
        Div => Fact::Nat { lo: 0, hi: if *l2 >= 1 { *h1 } else { None } },
        // x % y < y for y ≥ 1.
        Mod => Fact::Nat {
            lo: 0,
            hi: h2.and_then(|h| if *l2 >= 1 { Some(h - 1) } else { None }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::builder::*;

    fn warns(e: &Expr) -> Vec<Diagnostic> {
        lint_expr(e)
    }

    #[test]
    fn provable_oob_subscript_is_l001() {
        // [[ i | i < 10 ]][12]
        let e = sub(tab1("i", nat(10), var("i")), vec![nat(12)]);
        let ds = warns(&e);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L001");
        assert!(ds[0].render().contains("index >= 12, extent 10"), "{}", ds[0]);
        // In-bounds and unknown-bound subscripts stay quiet.
        assert!(warns(&sub(tab1("i", nat(10), var("i")), vec![nat(9)])).is_empty());
        assert!(warns(&lam(
            "n",
            sub(tab1("i", var("n"), var("i")), vec![nat(12)])
        ))
        .is_empty());
    }

    #[test]
    fn literal_dims_feed_the_bounds_check() {
        // [[1, 2]][5]
        let e = sub(array1_lit(vec![nat(1), nat(2)]), vec![nat(5)]);
        let ds = warns(&e);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "L001");
        // Multi-dimensional: [[2,2; …]][0, 7] flags axis 2 only.
        let m = array_lit(vec![nat(2), nat(2)], vec![nat(1), nat(2), nat(3), nat(4)]);
        let ds = warns(&sub(m, vec![nat(0), nat(7)]));
        assert_eq!(ds.len(), 1);
        assert!(ds[0].render().contains("dimension 2"), "{}", ds[0]);
    }

    #[test]
    fn index_ranges_flow_through_arithmetic() {
        // [[ a[i + 5] | i < 10 ]] over a 12-array: max index 14 but the
        // *lower* bound is 5 < 12, so no certainty, no warning.
        let a = || array1_lit((0..12).map(nat).collect());
        let e = tab1("i", nat(10), sub(a(), vec![add(var("i"), nat(5))]));
        assert!(warns(&e).is_empty());
        // [[ a[i + 12] | i < 10 ]]: lower bound 12 ≥ 12 — certain ⊥.
        let e = tab1("i", nat(10), sub(a(), vec![add(var("i"), nat(12))]));
        let ds = warns(&e);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L001");
        assert_eq!(ds[0].path, "tab.head");
    }

    #[test]
    fn zero_extents_are_l002() {
        let ds = warns(&tab1("i", nat(0), var("i")));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "L002");
        let ds = warns(&array_lit(vec![nat(0)], vec![]));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "L002");
        // A dynamic bound is not provably zero.
        assert!(warns(&lam("n", tab1("i", var("n"), var("i")))).is_empty());
    }

    #[test]
    fn dead_branches_are_l003() {
        let ds = warns(&iff(bottom(), nat(1), nat(2)));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "L003");
        assert!(ds[0].render().contains("both branches are dead"), "{}", ds[0]);
        let ds = warns(&iff(Expr::Bool(true), nat(1), nat(2)));
        assert_eq!(ds.len(), 1);
        assert!(ds[0].render().contains("else branch is dead"), "{}", ds[0]);
        assert!(warns(&iff(eq(var("x"), nat(1)), nat(1), nat(2))).is_empty());
    }

    #[test]
    fn facts_flow_through_let_and_beta() {
        // let n = 3 in [[ i | i < 10 ]][n * 4] — 12 ≥ 10.
        let e = let_(
            "n",
            nat(3),
            sub(tab1("i", nat(10), var("i")), vec![mul(var("n"), nat(4))]),
        );
        let ds = warns(&e);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L001");
        // (λj. A[j]) 99 over a 2-array.
        let e = app(
            lam("j", sub(array1_lit(vec![nat(1), nat(2)]), vec![var("j")])),
            nat(99),
        );
        let ds = warns(&e);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L001");
    }

    #[test]
    fn dim_of_known_array_is_constant() {
        // [[ x | x < len(A) ]][2] over a 2-array: bound = 2, index 2 ≥ 2.
        let a = array1_lit(vec![nat(7), nat(8)]);
        let e = sub(tab1("x", len(a), var("x")), vec![nat(2)]);
        let ds = warns(&e);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L001");
    }

    #[test]
    fn symbolic_oob_is_l004() {
        // [[ A[i + dim(A)] | i < dim(A) ]] — no constant extent anywhere,
        // so L001 is blind; the symbolic domain proves index ≥ dim(A,0).
        let e = tab1(
            "i",
            dim(1, global("A")),
            sub(global("A"), vec![add(var("i"), dim(1, global("A")))]),
        );
        let ds = warns(&e);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L004");
        assert_eq!(ds[0].path, "tab.head");
        // The in-bounds twin stays quiet.
        let ok = tab1("i", dim(1, global("A")), sub(global("A"), vec![var("i")]));
        assert!(warns(&ok).is_empty());
        // When a constant extent made L001 fire, L004 stays suppressed
        // even though the symbolic domain also proves it.
        let both = sub(tab1("i", nat(10), var("i")), vec![nat(12)]);
        let ds = warns(&both);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L001");
    }

    #[test]
    fn empty_comprehension_sources_are_l005() {
        // ⋃{ {x} | x ∈ gen(0) }
        let e = big_union("x", gen(nat(0)), single(var("x")));
        let ds = warns(&e);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L005");
        assert!(ds[0].render().contains("set comprehension"), "{}", ds[0]);
        // Σ{ x | x ∈ gen(0) }
        let e = sum("x", gen(nat(0)), var("x"));
        let ds = warns(&e);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "L005");
        assert!(ds[0].render().contains("sum"), "{}", ds[0]);
        // A non-empty source stays quiet.
        assert!(warns(&sum("x", gen(nat(3)), var("x"))).is_empty());
    }

    #[test]
    fn diagnostics_are_ordered_and_deduped() {
        // Two identical zero-bound tabulations inside one tuple produce
        // identical (code, path, message) findings — collapsed to one —
        // and repeated runs yield byte-identical renderings.
        let mk = || {
            tuple(vec![
                tab1("i", nat(0), var("i")),
                tab1("i", nat(0), var("i")),
                sub(tab1("j", nat(5), var("j")), vec![nat(9)]),
            ])
        };
        let first = warns(&mk());
        assert_eq!(first.len(), 2, "{first:?}");
        assert_eq!(first[0].code, "L002");
        assert_eq!(first[1].code, "L001");
        let golden: Vec<String> = first.iter().map(|d| d.render()).collect();
        for _ in 0..3 {
            let again: Vec<String> = warns(&mk()).iter().map(|d| d.render()).collect();
            assert_eq!(again, golden, "lint output must be byte-stable");
        }
    }
}
