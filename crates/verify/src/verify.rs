//! The term verifier: unification-free bottom-up type re-derivation
//! over the named AST.
//!
//! Unlike the typechecker (`aql_core::check`) the verifier never
//! fails-fast and never unifies: it derives a `VTy` for every
//! subterm, treats unknowns as `Any`, and *collects* diagnostics for
//! every concrete violation of Fig. 1 it can prove. This makes it
//! cheap enough to run after every optimizer rule fire and total
//! enough to describe arbitrarily broken terms.

use std::collections::HashMap;

use aql_core::expr::free::free_vars;
use aql_core::expr::{Expr, Name, Prim};
use aql_core::prim::Extensions;
use aql_core::types::Type;

use crate::diag::{Diagnostic, Severity};
use crate::vty::VTy;

/// How free names are resolved.
enum Names<'a> {
    /// Full session knowledge: `val` types and registered externals.
    /// Unknown globals are V001 errors.
    Known(&'a HashMap<Name, Type>, &'a Extensions),
    /// Open mode (used by the rewrite gate, which has no session):
    /// the listed names are in scope with unknown type; `Global` and
    /// `Ext` references are assumed well-typed elsewhere.
    Open(&'a [Name]),
}

struct Verifier<'a> {
    names: Names<'a>,
    diags: Vec<Diagnostic>,
    path: Vec<&'static str>,
}

/// Verify a term against a session environment. Returns every
/// diagnostic found (empty for a well-formed term). Free variables
/// resolve through `globals` like the typechecker's; unknown names are
/// `V001` errors.
pub fn verify_expr(
    e: &Expr,
    globals: &HashMap<Name, Type>,
    externals: &Extensions,
) -> Vec<Diagnostic> {
    let mut v = Verifier {
        names: Names::Known(globals, externals),
        diags: Vec::new(),
        path: Vec::new(),
    };
    let mut env = Vec::new();
    v.infer(&mut env, e);
    crate::diag::normalize(v.diags)
}

/// Verify a closed term (no globals, no externals).
pub fn verify_closed(e: &Expr) -> Vec<Diagnostic> {
    verify_expr(e, &HashMap::new(), &Extensions::new())
}

/// Verify an open term: names in `assume` (plus `Global`/`Ext`
/// references) are taken as bound with unknown type. This is the
/// engine-side mode — the optimizer rewrites subterms under binders it
/// tracks but cannot type.
pub fn verify_open(e: &Expr, assume: &[Name]) -> Vec<Diagnostic> {
    crate::diag::normalize(verify_open_typed(e, assume).1)
}

fn verify_open_typed(e: &Expr, assume: &[Name]) -> (VTy, Vec<Diagnostic>) {
    let mut v = Verifier { names: Names::Open(assume), diags: Vec::new(), path: Vec::new() };
    let mut env = Vec::new();
    let t = v.infer(&mut env, e);
    (t, v.diags)
}

/// The per-fire rewrite-soundness check: is replacing `before` by
/// `after`, under the lexical binders `scope`, locally sound?
///
/// Rejects the rewrite when `after`
///
/// * refers to a variable bound neither in `scope` nor free in
///   `before` (a rule invented or captured a name),
/// * is internally inconsistent (any `V…` diagnostic), or
/// * has a locally-derived type incompatible with `before`'s — e.g. a
///   rule turning a `nat` redex into a `bool`, or changing an array's
///   rank.
///
/// Binder types are unknown at the engine level, so this is a
/// *compatibility* check: it cannot prove full type preservation (the
/// session's phase-level gate re-runs the real typechecker for that)
/// but it attributes concrete violations to the exact rule fire.
pub fn check_rewrite(before: &Expr, after: &Expr, scope: &[Name]) -> Result<(), String> {
    let mut allowed: Vec<Name> = scope.to_vec();
    for n in free_vars(before) {
        if !allowed.contains(&n) {
            allowed.push(n);
        }
    }
    let (t_after, diags) = verify_open_typed(after, &allowed);
    if let Some(d) = diags.iter().find(|d| d.is_error()) {
        return Err(format!("rewrite produced an ill-formed term: {}", d.render()));
    }
    let (t_before, _) = verify_open_typed(before, &allowed);
    if t_before.meet(&t_after).is_none() {
        return Err(format!(
            "rewrite changed the redex's type: {t_before} ~> {t_after}"
        ));
    }
    Ok(())
}

impl<'a> Verifier<'a> {
    fn report(&mut self, code: &'static str, message: impl Into<String>) {
        self.diags.push(Diagnostic::new(code, Severity::Error, &self.path, message));
    }

    fn child(&mut self, seg: &'static str, env: &mut Vec<(Name, VTy)>, e: &Expr) -> VTy {
        self.path.push(seg);
        let t = self.infer(env, e);
        self.path.pop();
        t
    }

    /// Meet two types at the current path; a clash reports `code` with
    /// `what` in the message and recovers with the non-`Any` side.
    fn expect(&mut self, code: &'static str, what: &str, got: &VTy, want: &VTy) -> VTy {
        match got.meet(want) {
            Some(t) => t,
            None => {
                self.report(code, format!("{what}: expected {want}, got {got}"));
                want.clone()
            }
        }
    }

    /// Destructure a set type, reporting V002 otherwise. Returns the
    /// element type (`Any` when unknown).
    fn expect_set(&mut self, what: &str, got: &VTy) -> VTy {
        match got {
            VTy::Set(e) => (**e).clone(),
            VTy::Any => VTy::Any,
            other => {
                self.report("V002", format!("{what}: expected a set, got {other}"));
                VTy::Any
            }
        }
    }

    /// Destructure a bag type, reporting V002 otherwise.
    fn expect_bag(&mut self, what: &str, got: &VTy) -> VTy {
        match got {
            VTy::Bag(e) => (**e).clone(),
            VTy::Any => VTy::Any,
            other => {
                self.report("V002", format!("{what}: expected a bag, got {other}"));
                VTy::Any
            }
        }
    }

    /// An element stored in a set/bag/array must be an object type.
    fn require_object(&mut self, what: &str, t: &VTy) {
        if t.contains_arrow() {
            self.report("V005", format!("{what} has function type {t}"));
        }
    }

    fn lookup(&mut self, env: &[(Name, VTy)], x: &Name) -> VTy {
        if let Some((_, t)) = env.iter().rev().find(|(n, _)| n == x) {
            return t.clone();
        }
        match &self.names {
            Names::Known(globals, _) => match globals.get(x) {
                Some(t) => VTy::from_type(t),
                None => {
                    self.report("V001", format!("unbound variable `{x}`"));
                    VTy::Any
                }
            },
            Names::Open(assume) => {
                if assume.contains(x) {
                    VTy::Any
                } else {
                    self.report("V001", format!("unbound variable `{x}`"));
                    VTy::Any
                }
            }
        }
    }

    fn infer(&mut self, env: &mut Vec<(Name, VTy)>, e: &Expr) -> VTy {
        match e {
            Expr::Var(x) => self.lookup(env, x),
            Expr::Global(x) => match &self.names {
                Names::Known(globals, _) => match globals.get(x) {
                    Some(t) => VTy::from_type(t),
                    None => {
                        self.report("V001", format!("unbound global `{x}`"));
                        VTy::Any
                    }
                },
                Names::Open(_) => VTy::Any,
            },
            Expr::Ext(x) => match &self.names {
                Names::Known(_, externals) => match externals.type_of(x) {
                    Some(t) => VTy::from_type(t),
                    None => {
                        self.report("V001", format!("unknown external `{x}`"));
                        VTy::Any
                    }
                },
                Names::Open(_) => VTy::Any,
            },
            Expr::Lam(x, body) => {
                env.push((x.clone(), VTy::Any));
                let t = self.child("lam.body", env, body);
                env.pop();
                VTy::Fun(Box::new(VTy::Any), Box::new(t))
            }
            Expr::App(f, a) => {
                let tf = self.child("app.fun", env, f);
                let ta = self.child("app.arg", env, a);
                match tf {
                    VTy::Fun(p, r) => {
                        if p.meet(&ta).is_none() {
                            self.report(
                                "V002",
                                format!("argument type {ta} does not match parameter type {p}"),
                            );
                        }
                        *r
                    }
                    VTy::Any => VTy::Any,
                    other => {
                        self.report("V002", format!("applied a non-function of type {other}"));
                        VTy::Any
                    }
                }
            }
            Expr::Let(x, bound, body) => {
                let tb = self.child("let.bound", env, bound);
                env.push((x.clone(), tb));
                let t = self.child("let.body", env, body);
                env.pop();
                t
            }
            Expr::Tuple(items) => {
                if items.len() < 2 {
                    self.report(
                        "V008",
                        format!("tuple of arity {} (products need arity >= 2)", items.len()),
                    );
                }
                let ts: Vec<VTy> =
                    items.iter().map(|it| self.child("tuple.item", env, it)).collect();
                VTy::Tuple(ts)
            }
            Expr::Proj(i, k, inner) => {
                let te = self.child("proj", env, inner);
                if *k < 2 || *i < 1 || i > k {
                    self.report("V003", format!("malformed projection pi_{i}_{k}"));
                    return VTy::Any;
                }
                match te {
                    VTy::Tuple(ts) => {
                        if ts.len() != *k {
                            self.report(
                                "V003",
                                format!("pi_{i}_{k} applied to a {}-tuple", ts.len()),
                            );
                            VTy::Any
                        } else {
                            ts[*i - 1].clone()
                        }
                    }
                    VTy::Any => VTy::Any,
                    other => {
                        self.report("V002", format!("pi_{i}_{k} applied to non-tuple {other}"));
                        VTy::Any
                    }
                }
            }
            Expr::Empty => VTy::Set(Box::new(VTy::Any)),
            Expr::Single(inner) => {
                let t = self.child("single", env, inner);
                self.require_object("set element", &t);
                VTy::Set(Box::new(t))
            }
            Expr::Union(a, b) => {
                let ta = self.child("union.lhs", env, a);
                let tb = self.child("union.rhs", env, b);
                let ea = self.expect_set("union operand", &ta);
                let eb = self.expect_set("union operand", &tb);
                let e = self.expect("V002", "union operands", &ea, &eb);
                VTy::Set(Box::new(e))
            }
            Expr::BigUnion { head, var, src } => {
                let ts = self.child("bigunion.src", env, src);
                let elem = self.expect_set("big-union source", &ts);
                env.push((var.clone(), elem));
                let th = self.child("bigunion.head", env, head);
                env.pop();
                let out = self.expect_set("big-union head", &th);
                VTy::Set(Box::new(out))
            }
            Expr::BigUnionRank { head, var, rank, src } => {
                let ts = self.child("bigunion.src", env, src);
                let elem = self.expect_set("ranked big-union source", &ts);
                env.push((var.clone(), elem));
                env.push((rank.clone(), VTy::Nat));
                let th = self.child("bigunion.head", env, head);
                env.pop();
                env.pop();
                let out = self.expect_set("ranked big-union head", &th);
                VTy::Set(Box::new(out))
            }
            Expr::BagEmpty => VTy::Bag(Box::new(VTy::Any)),
            Expr::BagSingle(inner) => {
                let t = self.child("bagsingle", env, inner);
                self.require_object("bag element", &t);
                VTy::Bag(Box::new(t))
            }
            Expr::BagUnion(a, b) => {
                let ta = self.child("bagunion.lhs", env, a);
                let tb = self.child("bagunion.rhs", env, b);
                let ea = self.expect_bag("bag-union operand", &ta);
                let eb = self.expect_bag("bag-union operand", &tb);
                let e = self.expect("V002", "bag-union operands", &ea, &eb);
                VTy::Bag(Box::new(e))
            }
            Expr::BigBagUnion { head, var, src } => {
                let ts = self.child("bigbagunion.src", env, src);
                let elem = self.expect_bag("big bag-union source", &ts);
                env.push((var.clone(), elem));
                let th = self.child("bigbagunion.head", env, head);
                env.pop();
                let out = self.expect_bag("big bag-union head", &th);
                VTy::Bag(Box::new(out))
            }
            Expr::BigBagUnionRank { head, var, rank, src } => {
                let ts = self.child("bigbagunion.src", env, src);
                let elem = self.expect_bag("ranked big bag-union source", &ts);
                env.push((var.clone(), elem));
                env.push((rank.clone(), VTy::Nat));
                let th = self.child("bigbagunion.head", env, head);
                env.pop();
                env.pop();
                let out = self.expect_bag("ranked big bag-union head", &th);
                VTy::Bag(Box::new(out))
            }
            Expr::Bool(_) => VTy::Bool,
            Expr::If(c, t, f) => {
                let tc = self.child("if.cond", env, c);
                self.path.push("if.cond");
                self.expect("V002", "`if` condition", &tc, &VTy::Bool);
                self.path.pop();
                let tt = self.child("if.then", env, t);
                let tf = self.child("if.else", env, f);
                self.expect("V002", "`if` branches", &tt, &tf)
            }
            Expr::Cmp(_, a, b) => {
                let ta = self.child("cmp.lhs", env, a);
                let tb = self.child("cmp.rhs", env, b);
                let t = self.expect("V002", "comparison operands", &ta, &tb);
                self.require_object("comparison operand", &t);
                VTy::Bool
            }
            Expr::Nat(_) => VTy::Nat,
            Expr::Real(_) => VTy::Real,
            Expr::Str(_) => VTy::Str,
            Expr::Arith(op, a, b) => {
                let ta = self.child("arith.lhs", env, a);
                let tb = self.child("arith.rhs", env, b);
                let t = self.expect("V002", "arithmetic operands", &ta, &tb);
                if t.definitely_non_numeric() {
                    self.report("V002", format!("arithmetic `{op:?}` on non-numeric type {t}"));
                    return VTy::Any;
                }
                t
            }
            Expr::Gen(inner) => {
                let t = self.child("gen", env, inner);
                self.expect("V002", "`gen` argument", &t, &VTy::Nat);
                VTy::Set(Box::new(VTy::Nat))
            }
            Expr::Sum { head, var, src } => {
                let ts = self.child("sum.src", env, src);
                let elem = self.expect_set("summation source", &ts);
                env.push((var.clone(), elem));
                let th = self.child("sum.head", env, head);
                env.pop();
                if th.definitely_non_numeric() {
                    self.report("V002", format!("summation head has non-numeric type {th}"));
                    return VTy::Any;
                }
                th
            }
            Expr::Tab { head, idx } => {
                if idx.is_empty() {
                    self.report("V004", "tabulation with no index bounds (rank 0)");
                }
                for (_, b) in idx {
                    let tb = self.child("tab.bound", env, b);
                    self.expect("V002", "tabulation bound", &tb, &VTy::Nat);
                }
                for (n, _) in idx {
                    env.push((n.clone(), VTy::Nat));
                }
                let th = self.child("tab.head", env, head);
                for _ in idx {
                    env.pop();
                }
                self.require_object("array element", &th);
                VTy::Array(Box::new(th), idx.len().max(1))
            }
            Expr::Sub(arr, idx) => {
                let ta = self.child("sub.array", env, arr);
                let known_rank = if idx.is_empty() {
                    self.report("V004", "subscript with no indices");
                    None
                } else if idx.len() >= 2 {
                    for i in idx {
                        let ti = self.child("sub.index", env, i);
                        self.expect("V002", "subscript index", &ti, &VTy::Nat);
                    }
                    Some(idx.len())
                } else {
                    // Single index of type N^k subscripts a k-d array.
                    let ti = self.child("sub.index", env, &idx[0]);
                    match ti {
                        VTy::Tuple(comps) => {
                            for c in &comps {
                                self.expect("V002", "subscript index component", c, &VTy::Nat);
                            }
                            Some(comps.len())
                        }
                        VTy::Nat => Some(1),
                        VTy::Any => None,
                        other => {
                            self.report(
                                "V002",
                                format!("subscript index of non-index type {other}"),
                            );
                            None
                        }
                    }
                };
                match (ta, known_rank) {
                    (VTy::Array(elem, k), Some(r)) => {
                        if k != r {
                            self.report(
                                "V004",
                                format!("{r} subscript(s) into a rank-{k} array"),
                            );
                        }
                        *elem
                    }
                    (VTy::Array(elem, _), None) => *elem,
                    (VTy::Any, _) => VTy::Any,
                    (other, _) => {
                        self.report("V002", format!("subscripted a non-array of type {other}"));
                        VTy::Any
                    }
                }
            }
            Expr::Dim(k, inner) => {
                let te = self.child("dim", env, inner);
                if *k == 0 {
                    self.report("V004", "dim_0 (arrays have rank >= 1)");
                    return VTy::Any;
                }
                match te {
                    VTy::Array(_, r) if r != *k => {
                        self.report("V004", format!("dim_{k} applied to a rank-{r} array"));
                    }
                    VTy::Array(..) | VTy::Any => {}
                    other => {
                        self.report("V002", format!("dim_{k} applied to non-array {other}"));
                    }
                }
                VTy::nat_power(*k)
            }
            Expr::ArrayLit { dims, items } => {
                if dims.is_empty() {
                    self.report("V004", "array literal with no dimensions (rank 0)");
                }
                for d in dims {
                    let td = self.child("arraylit.dim", env, d);
                    self.expect("V002", "array literal dimension", &td, &VTy::Nat);
                }
                let mut elem = VTy::Any;
                for it in items {
                    let ti = self.child("arraylit.item", env, it);
                    elem = self.expect("V002", "array literal elements", &elem, &ti);
                }
                let static_dims: Option<Vec<u64>> = dims
                    .iter()
                    .map(|d| match d {
                        Expr::Nat(n) => Some(*n),
                        _ => None,
                    })
                    .collect();
                if let Some(ds) = static_dims {
                    let expect: u64 = ds.iter().product();
                    if expect != items.len() as u64 {
                        self.report(
                            "V006",
                            format!(
                                "array literal declares {expect} element(s) but has {}",
                                items.len()
                            ),
                        );
                    }
                }
                self.require_object("array element", &elem);
                VTy::Array(Box::new(elem), dims.len().max(1))
            }
            Expr::Index(k, inner) => {
                let te = self.child("index", env, inner);
                if *k == 0 {
                    self.report("V004", "index_0 (arrays have rank >= 1)");
                    return VTy::Any;
                }
                let elem = self.expect_set("index argument", &te);
                let val = match elem {
                    VTy::Tuple(ref comps) if comps.len() == 2 => {
                        self.expect(
                            "V002",
                            "index key",
                            &comps[0],
                            &VTy::nat_power(*k),
                        );
                        comps[1].clone()
                    }
                    VTy::Any => VTy::Any,
                    other => {
                        self.report(
                            "V002",
                            format!("index_{k} needs a set of (N^{k}, value) pairs, got {{{other}}}"),
                        );
                        VTy::Any
                    }
                };
                VTy::Array(Box::new(VTy::Set(Box::new(val))), *k)
            }
            Expr::Get(inner) => {
                let t = self.child("get", env, inner);
                self.expect_set("`get` argument", &t)
            }
            Expr::Bottom => VTy::Any,
            Expr::Prim(p, args) => {
                if args.len() != p.arity() {
                    self.report(
                        "V007",
                        format!(
                            "primitive `{}` expects {} argument(s), got {}",
                            p.name(),
                            p.arity(),
                            args.len()
                        ),
                    );
                    for a in args {
                        self.child("prim.arg", env, a);
                    }
                    return VTy::Any;
                }
                match p {
                    Prim::Member => {
                        let tx = self.child("prim.arg", env, &args[0]);
                        let ts = self.child("prim.arg", env, &args[1]);
                        let elem = self.expect_set("membership set", &ts);
                        self.expect("V002", "membership operands", &tx, &elem);
                        VTy::Bool
                    }
                    Prim::MinSet | Prim::MaxSet => {
                        let ts = self.child("prim.arg", env, &args[0]);
                        self.expect_set("min/max argument", &ts)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::builder::*;
    use aql_core::expr::name;

    fn errs(e: &Expr) -> Vec<String> {
        verify_closed(e).iter().map(|d| d.render()).collect()
    }

    #[test]
    fn well_formed_terms_are_clean() {
        let e = tab1("i", nat(10), mul(var("i"), var("i")));
        assert!(errs(&e).is_empty(), "{:?}", errs(&e));
        let e = big_union("x", gen(nat(5)), single(add(var("x"), nat(1))));
        assert!(errs(&e).is_empty(), "{:?}", errs(&e));
        let e = lam("A", sub(var("A"), vec![nat(0)]));
        assert!(errs(&e).is_empty(), "{:?}", errs(&e));
    }

    #[test]
    fn unbound_variables_are_v001() {
        let ds = verify_closed(&var("nope"));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "V001");
        assert!(ds[0].render().contains("unbound variable `nope`"), "{}", ds[0]);
        // A bound occurrence is fine; an escaped one is not.
        let e = app(lam("x", var("x")), var("y"));
        let ds = verify_closed(&e);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].render().contains("`y`"));
        assert_eq!(ds[0].path, "app.arg");
    }

    #[test]
    fn concrete_type_clashes_are_v002() {
        let e = add(nat(1), Expr::Bool(true));
        let ds = verify_closed(&e);
        assert!(ds.iter().any(|d| d.code == "V002"), "{ds:?}");
        let e = iff(nat(3), nat(1), nat(2));
        let ds = verify_closed(&e);
        assert!(ds.iter().any(|d| d.code == "V002" && d.path == "if.cond"), "{ds:?}");
        let e = iff(Expr::Bool(true), nat(1), strlit("x"));
        assert!(verify_closed(&e).iter().any(|d| d.code == "V002"));
    }

    #[test]
    fn arity_and_rank_violations() {
        let ds = verify_closed(&Expr::Proj(0, 5, nat(1).boxed()));
        assert!(ds.iter().any(|d| d.code == "V003"), "{ds:?}");
        let ds = verify_closed(&proj(1, 3, tuple(vec![nat(1), nat(2), nat(3)])));
        assert!(ds.is_empty(), "pi_1_3 of a 3-tuple is well-formed: {ds:?}");
        let ds = verify_closed(&Expr::Proj(1, 2, tuple(vec![nat(1), nat(2), nat(3)]).boxed()));
        assert!(ds.iter().any(|d| d.code == "V003"), "{ds:?}");
        // Two subscripts into a 1-d tabulation.
        let e = sub(tab1("i", nat(4), var("i")), vec![nat(0), nat(1)]);
        let ds = verify_closed(&e);
        assert!(ds.iter().any(|d| d.code == "V004"), "{ds:?}");
        // dim_2 of a 1-d array.
        let ds = verify_closed(&dim_ik(2, 2, tab1("i", nat(4), var("i"))));
        assert!(ds.iter().any(|d| d.code == "V004"), "{ds:?}");
        let ds = verify_closed(&Expr::Prim(Prim::MinSet, vec![nat(1), nat(2)]));
        assert!(ds.iter().any(|d| d.code == "V007"), "{ds:?}");
    }

    #[test]
    fn function_elements_are_v005() {
        let ds = verify_closed(&single(lam("x", var("x"))));
        assert!(ds.iter().any(|d| d.code == "V005"), "{ds:?}");
    }

    #[test]
    fn literal_shape_mismatch_is_v006() {
        let e = array_lit(vec![nat(2), nat(2)], vec![nat(1)]);
        let ds = verify_closed(&e);
        assert!(ds.iter().any(|d| d.code == "V006"), "{ds:?}");
    }

    #[test]
    fn open_mode_assumes_names() {
        let e = add(var("x"), nat(1));
        assert!(!verify_open(&e, &[]).is_empty());
        assert!(verify_open(&e, &[name("x")]).is_empty());
        // Globals and externals are trusted in open mode.
        assert!(verify_open(&global("g"), &[]).is_empty());
        assert!(verify_open(&ext("f"), &[]).is_empty());
    }

    #[test]
    fn check_rewrite_accepts_sound_and_rejects_unsound() {
        // β: (λx. x + 1) 2 ~> 2 + 1 — sound.
        let before = app(lam("x", add(var("x"), nat(1))), nat(2));
        let after = add(nat(2), nat(1));
        assert!(check_rewrite(&before, &after, &[]).is_ok());
        // A rule that invents a variable.
        let bad = add(var("ghost"), nat(1));
        let err = check_rewrite(&before, &bad, &[]).unwrap_err();
        assert!(err.contains("V001"), "{err}");
        // A rule that changes the type.
        let err = check_rewrite(&before, &Expr::Bool(true), &[]).unwrap_err();
        assert!(err.contains("changed the redex's type"), "{err}");
        // Free variables of the redex stay legal in the contractum.
        let before = add(var("x"), nat(0));
        assert!(check_rewrite(&before, &var("x"), &[]).is_ok());
        // Binders tracked by the engine are in scope.
        assert!(check_rewrite(&nat(0), &var("i"), &[name("i")]).is_ok());
    }

    #[test]
    fn globals_resolve_through_the_session_env() {
        let mut globals = HashMap::new();
        globals.insert(name("A"), Type::array1(Type::Nat));
        let ext = Extensions::new();
        // A[true] — index type clash against the known global type.
        let e = sub(global("A"), vec![Expr::Bool(true)]);
        let ds = verify_expr(&e, &globals, &ext);
        assert!(ds.iter().any(|d| d.code == "V002"), "{ds:?}");
        let ok = sub(global("A"), vec![nat(3)]);
        assert!(verify_expr(&ok, &globals, &ext).is_empty());
        let ds = verify_expr(&global("missing"), &globals, &ext);
        assert_eq!(ds[0].code, "V001");
    }
}
