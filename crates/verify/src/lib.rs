//! # aql-verify — static analysis for NRCA terms
//!
//! The optimizer of §5 is a rewrite system whose whole contract is
//! *type and semantics preservation*; this crate supplies the machine
//! checks behind that contract:
//!
//! * a **term verifier** ([`verify_expr`] / [`verify_open`]) — a fast,
//!   unification-free pass over the named AST that re-derives types
//!   bottom-up on a compatibility lattice (`Any` ⊑ everything) and
//!   reports structured [`Diagnostic`]s for scope errors, type
//!   mismatches, and arity/rank violations;
//! * a **compiled-form verifier** ([`verify_compiled`]) — checks the
//!   de-Bruijn form produced by `aql_core::eval::compile` for
//!   out-of-range indices and malformed constructors;
//! * a **rewrite-soundness check** ([`check_rewrite`]) — the per-fire
//!   half of the `aql-opt` gate: given the redex and the contractum of
//!   a rule application, rejects rewrites that introduce unbound
//!   variables, produce internally inconsistent terms, or change the
//!   redex's (locally derivable) type;
//! * a **shape/bounds lint pass** ([`lint_expr`]) — constant-extent
//!   propagation through tabulations and literal dimensions that flags
//!   statically-provable out-of-bounds subscripts (guaranteed ⊥),
//!   zero-extent dimensions, and dead conditional branches. The pass
//!   also consults the `aql-analysis` abstract interpreter for
//!   *symbolic* proofs: cross-variable out-of-bounds subscripts (L004)
//!   and provably-empty comprehension sources (L005).
//!
//! Diagnostic codes are stable (golden tests rely on them); the table
//! lives in [`diag`] and DESIGN.md §10. Every entry point returns its
//! findings through [`diag::normalize`]: duplicates collapsed, errors
//! before warnings, source order within each class — byte-stable
//! across runs.

#![warn(missing_docs)]

pub mod compiled;
pub mod diag;
pub mod lint;
mod vty;
pub mod verify;

pub use compiled::verify_compiled;
pub use diag::{normalize, Diagnostic, Severity};
pub use lint::lint_expr;
pub use verify::{check_rewrite, verify_closed, verify_expr, verify_open};

use aql_core::types::Type;

/// Are two checker-produced types compatible up to inference
/// variables? The unifier numbers its variables per run, so the
/// pre-optimization snapshot and a post-rewrite re-check can disagree
/// on `Var` identities while describing the same type; a `Var` on
/// either side therefore matches anything. Used by the session's
/// phase-level gate to assert type preservation.
pub fn type_compatible(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Var(_), _) | (_, Type::Var(_)) => true,
        (Type::Bool, Type::Bool)
        | (Type::Nat, Type::Nat)
        | (Type::Real, Type::Real)
        | (Type::Str, Type::Str) => true,
        (Type::Base(x), Type::Base(y)) => x == y,
        (Type::Tuple(xs), Type::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| type_compatible(x, y))
        }
        (Type::Set(x), Type::Set(y)) | (Type::Bag(x), Type::Bag(y)) => type_compatible(x, y),
        (Type::Array(x, j), Type::Array(y, k)) => j == k && type_compatible(x, y),
        (Type::Fun(xa, xr), Type::Fun(ya, yr)) => {
            type_compatible(xa, ya) && type_compatible(xr, yr)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_is_a_wildcard() {
        assert!(type_compatible(&Type::Var(0), &Type::Nat));
        assert!(type_compatible(&Type::set(Type::Var(3)), &Type::set(Type::Bool)));
        assert!(!type_compatible(&Type::Nat, &Type::Bool));
        assert!(!type_compatible(
            &Type::array(Type::Nat, 2),
            &Type::array(Type::Nat, 1)
        ));
        assert!(type_compatible(
            &Type::fun(Type::Var(1), Type::Nat),
            &Type::fun(Type::Real, Type::Nat)
        ));
        assert!(!type_compatible(
            &Type::tuple(vec![Type::Nat, Type::Nat]),
            &Type::tuple(vec![Type::Nat, Type::Nat, Type::Nat])
        ));
    }
}
