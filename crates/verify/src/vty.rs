//! The verifier's type lattice.
//!
//! The full typechecker pins λ-parameters through unification; the
//! verifier must stay cheap and single-pass, so it works on `Type`
//! extended with a top element `Any` (introduced at λ-parameters, `⊥`,
//! empty collections, and unresolvable positions). Two derived types
//! are compatible when their *meet* exists: `Any` meets everything,
//! concrete constructors must agree. This catches every concrete
//! clash — `nat` vs `bool`, rank-2 vs rank-1, 2-tuple vs 3-tuple —
//! without unifier state.

use std::fmt;
use std::rc::Rc;

use aql_core::types::Type;

/// A partially-known NRCA type.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum VTy {
    /// Unknown: compatible with anything.
    Any,
    Bool,
    Nat,
    Real,
    Str,
    Base(Rc<str>),
    Tuple(Vec<VTy>),
    Set(Box<VTy>),
    Bag(Box<VTy>),
    Array(Box<VTy>, usize),
    Fun(Box<VTy>, Box<VTy>),
}

impl VTy {
    /// Embed a concrete checker type. Inference variables (left over
    /// only in genuinely ambiguous terms) map to `Any`.
    pub(crate) fn from_type(t: &Type) -> VTy {
        match t {
            Type::Bool => VTy::Bool,
            Type::Nat => VTy::Nat,
            Type::Real => VTy::Real,
            Type::Str => VTy::Str,
            Type::Base(b) => VTy::Base(b.clone()),
            Type::Tuple(ts) => VTy::Tuple(ts.iter().map(VTy::from_type).collect()),
            Type::Set(e) => VTy::Set(Box::new(VTy::from_type(e))),
            Type::Bag(e) => VTy::Bag(Box::new(VTy::from_type(e))),
            Type::Array(e, k) => VTy::Array(Box::new(VTy::from_type(e)), *k),
            Type::Fun(a, b) => {
                VTy::Fun(Box::new(VTy::from_type(a)), Box::new(VTy::from_type(b)))
            }
            Type::Var(_) => VTy::Any,
        }
    }

    /// `N^k` as a verifier type.
    pub(crate) fn nat_power(k: usize) -> VTy {
        if k <= 1 {
            VTy::Nat
        } else {
            VTy::Tuple(vec![VTy::Nat; k])
        }
    }

    /// The greatest lower bound, or `None` when the two types are
    /// incompatible (a concrete constructor clash somewhere).
    pub(crate) fn meet(&self, other: &VTy) -> Option<VTy> {
        match (self, other) {
            (VTy::Any, t) => Some(t.clone()),
            (t, VTy::Any) => Some(t.clone()),
            (VTy::Bool, VTy::Bool) => Some(VTy::Bool),
            (VTy::Nat, VTy::Nat) => Some(VTy::Nat),
            (VTy::Real, VTy::Real) => Some(VTy::Real),
            (VTy::Str, VTy::Str) => Some(VTy::Str),
            (VTy::Base(x), VTy::Base(y)) if x == y => Some(VTy::Base(x.clone())),
            (VTy::Tuple(xs), VTy::Tuple(ys)) if xs.len() == ys.len() => {
                let ms: Option<Vec<VTy>> =
                    xs.iter().zip(ys).map(|(x, y)| x.meet(y)).collect();
                Some(VTy::Tuple(ms?))
            }
            (VTy::Set(x), VTy::Set(y)) => Some(VTy::Set(Box::new(x.meet(y)?))),
            (VTy::Bag(x), VTy::Bag(y)) => Some(VTy::Bag(Box::new(x.meet(y)?))),
            (VTy::Array(x, j), VTy::Array(y, k)) if j == k => {
                Some(VTy::Array(Box::new(x.meet(y)?), *j))
            }
            (VTy::Fun(xa, xr), VTy::Fun(ya, yr)) => {
                Some(VTy::Fun(Box::new(xa.meet(ya)?), Box::new(xr.meet(yr)?)))
            }
            _ => None,
        }
    }

    /// Does the type *definitely* contain a function arrow? (`Any`
    /// positions might, but the verifier only flags certainties.)
    pub(crate) fn contains_arrow(&self) -> bool {
        match self {
            VTy::Fun(..) => true,
            VTy::Any | VTy::Bool | VTy::Nat | VTy::Real | VTy::Str | VTy::Base(_) => false,
            VTy::Tuple(ts) => ts.iter().any(VTy::contains_arrow),
            VTy::Set(t) | VTy::Bag(t) | VTy::Array(t, _) => t.contains_arrow(),
        }
    }

    /// Is the type definitely *not* numeric (`nat`/`real`)?
    pub(crate) fn definitely_non_numeric(&self) -> bool {
        !matches!(self, VTy::Any | VTy::Nat | VTy::Real)
    }
}

impl fmt::Display for VTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VTy::Any => write!(f, "_"),
            VTy::Bool => write!(f, "bool"),
            VTy::Nat => write!(f, "nat"),
            VTy::Real => write!(f, "real"),
            VTy::Str => write!(f, "string"),
            VTy::Base(b) => write!(f, "{b}"),
            VTy::Tuple(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    match t {
                        VTy::Tuple(_) | VTy::Fun(..) => write!(f, "({t})")?,
                        _ => write!(f, "{t}")?,
                    }
                }
                Ok(())
            }
            VTy::Set(t) => write!(f, "{{{t}}}"),
            VTy::Bag(t) => write!(f, "{{|{t}|}}"),
            VTy::Array(t, k) => write!(f, "[[{t}]]_{k}"),
            VTy::Fun(s, t) => match &**s {
                VTy::Fun(..) => write!(f, "({s}) -> {t}"),
                _ => write!(f, "{s} -> {t}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meet_laws() {
        let nat = VTy::Nat;
        assert_eq!(VTy::Any.meet(&nat), Some(VTy::Nat));
        assert_eq!(nat.meet(&VTy::Any), Some(VTy::Nat));
        assert_eq!(nat.meet(&VTy::Bool), None);
        // Rank and arity clashes are concrete.
        let a1 = VTy::Array(Box::new(VTy::Any), 1);
        let a2 = VTy::Array(Box::new(VTy::Nat), 2);
        assert_eq!(a1.meet(&a2), None);
        let t2 = VTy::Tuple(vec![VTy::Nat, VTy::Any]);
        let t3 = VTy::Tuple(vec![VTy::Nat, VTy::Nat, VTy::Nat]);
        assert_eq!(t2.meet(&t3), None);
        // Meets refine unknowns component-wise.
        let m = t2.meet(&VTy::Tuple(vec![VTy::Any, VTy::Real])).unwrap();
        assert_eq!(m, VTy::Tuple(vec![VTy::Nat, VTy::Real]));
    }

    #[test]
    fn from_type_maps_vars_to_any() {
        let t = Type::set(Type::Var(7));
        assert_eq!(VTy::from_type(&t), VTy::Set(Box::new(VTy::Any)));
        assert_eq!(VTy::from_type(&Type::nat_power(3)), VTy::nat_power(3));
    }

    #[test]
    fn arrow_and_numeric_classification() {
        assert!(VTy::Set(Box::new(VTy::Fun(Box::new(VTy::Nat), Box::new(VTy::Nat))))
            .contains_arrow());
        assert!(!VTy::Set(Box::new(VTy::Any)).contains_arrow());
        assert!(!VTy::Any.definitely_non_numeric());
        assert!(VTy::Str.definitely_non_numeric());
    }
}
