//! Structured diagnostics with stable codes.
//!
//! Verifier errors (`V…`) mean the term violates the NRCA typing or
//! well-formedness rules of Fig. 1 — a term that would make the
//! evaluator produce garbage, not just ⊥. Lints (`L…`) are warnings
//! about well-typed terms whose evaluation is statically known to be
//! partially or wholly wasted.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | V001 | error    | unbound variable |
//! | V002 | error    | type mismatch |
//! | V003 | error    | projection arity violation |
//! | V004 | error    | array rank violation |
//! | V005 | error    | function value where an object type is required |
//! | V006 | error    | array literal shape mismatch |
//! | V007 | error    | primitive arity mismatch |
//! | V008 | error    | malformed tuple (arity < 2) |
//! | V010 | error    | de-Bruijn index out of range (compiled form) |
//! | L001 | warning  | provable out-of-bounds subscript (guaranteed ⊥) |
//! | L002 | warning  | zero-extent dimension |
//! | L003 | warning  | dead conditional branch |
//! | L004 | warning  | subscript provably out of bounds by symbolic extent analysis |
//! | L005 | warning  | comprehension over a provably empty source |
//!
//! Codes are append-only: golden tests and CI greps depend on them.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The term is ill-formed; evaluating it is meaningless.
    Error,
    /// The term is well-formed but statically wasteful or ⊥-bound.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding of the verifier or the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`V001`, `L001`, …); see the module table.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Path into the term, root-relative (e.g. `tab.head/sub.index`).
    /// Empty for the root.
    pub path: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic from a traversal path.
    pub(crate) fn new(
        code: &'static str,
        severity: Severity,
        path: &[&'static str],
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic { code, severity, path: path.join("/"), message: message.into() }
    }

    /// Is this an error (as opposed to a lint warning)?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// The one-line rendering used by `\lint` and gate messages:
    /// `V001 error: unbound variable `x` (at lam.body)`.
    pub fn render(&self) -> String {
        if self.path.is_empty() {
            format!("{} {}: {}", self.code, self.severity, self.message)
        } else {
            format!("{} {}: {} (at {})", self.code, self.severity, self.message, self.path)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Canonicalize a diagnostic list for presentation: exact duplicates
/// are collapsed (first occurrence wins) and errors surface before
/// warnings, with each class keeping the traversal order — which *is*
/// source order, since the walkers visit subterms left to right. Both
/// the verifier entry points and [`crate::lint::lint_expr`] pass their
/// output through this, so `\lint` renderings are byte-stable across
/// runs.
pub fn normalize(ds: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut seen = std::collections::HashSet::new();
    let mut out: Vec<Diagnostic> = Vec::with_capacity(ds.len());
    for d in ds {
        if seen.insert((d.code, d.severity == Severity::Error, d.path.clone(), d.message.clone()))
        {
            out.push(d);
        }
    }
    // Stable sort: only the error/warning rank moves, source order is
    // preserved inside each class.
    out.sort_by_key(|d| !d.is_error());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_stable() {
        let d = Diagnostic::new(
            "V001",
            Severity::Error,
            &["lam.body", "app.fun"],
            "unbound variable `x`",
        );
        assert_eq!(d.render(), "V001 error: unbound variable `x` (at lam.body/app.fun)");
        assert_eq!(d.to_string(), d.render());
        let root = Diagnostic::new("L002", Severity::Warning, &[], "zero-extent dimension");
        assert_eq!(root.render(), "L002 warning: zero-extent dimension");
        assert!(!root.is_error());
    }

    #[test]
    fn normalize_dedups_and_orders() {
        let w1 = Diagnostic::new("L002", Severity::Warning, &["tab.bound"], "zero extent");
        let w2 = Diagnostic::new("L002", Severity::Warning, &["tab.bound"], "zero extent");
        let w3 = Diagnostic::new("L001", Severity::Warning, &["sub.index"], "always ⊥");
        let e1 = Diagnostic::new("V001", Severity::Error, &["lam.body"], "unbound `x`");
        let got = normalize(vec![w1.clone(), w2, w3.clone(), e1.clone()]);
        // Duplicate collapsed, error hoisted, warnings keep source order.
        assert_eq!(got, vec![e1, w1, w3]);
    }
}
