//! Verification of the compiled de-Bruijn form.
//!
//! `aql_core::eval::compile` turns names into positional indices; a
//! bug there (or a hand-built [`CExpr`]) can reference a binder that
//! does not exist, which the evaluator would only discover at run
//! time, deep inside a query. This pass re-walks the compiled term
//! with a static binder-depth count and flags every index that
//! escapes, plus the same constructor-shape violations the named-form
//! verifier checks (projection bounds, primitive arity, empty ranks).

use aql_core::eval::CExpr;

use crate::diag::{Diagnostic, Severity};

/// Verify a compiled term that sits under `depth` enclosing binders
/// (`0` for a closed program).
pub fn verify_compiled(c: &CExpr, depth: usize) -> Vec<Diagnostic> {
    let mut w = Walker { diags: Vec::new(), path: Vec::new() };
    w.walk(c, depth);
    crate::diag::normalize(w.diags)
}

struct Walker {
    diags: Vec<Diagnostic>,
    path: Vec<&'static str>,
}

impl Walker {
    fn report(&mut self, code: &'static str, message: String) {
        self.diags.push(Diagnostic::new(code, Severity::Error, &self.path, message));
    }

    fn child(&mut self, seg: &'static str, c: &CExpr, depth: usize) {
        self.path.push(seg);
        self.walk(c, depth);
        self.path.pop();
    }

    fn walk(&mut self, c: &CExpr, depth: usize) {
        match c {
            CExpr::Var(i) => {
                if *i >= depth {
                    self.report(
                        "V010",
                        format!("de-Bruijn index {i} out of range (depth {depth})"),
                    );
                }
            }
            CExpr::Global(_)
            | CExpr::Ext(_)
            | CExpr::Empty
            | CExpr::BagEmpty
            | CExpr::Bool(_)
            | CExpr::Nat(_)
            | CExpr::Real(_)
            | CExpr::Str(_)
            | CExpr::Bottom => {}
            CExpr::Lam(b) => self.child("lam.body", b, depth + 1),
            CExpr::App(f, a) => {
                self.child("app.fun", f, depth);
                self.child("app.arg", a, depth);
            }
            CExpr::Let(bound, body) => {
                self.child("let.bound", bound, depth);
                self.child("let.body", body, depth + 1);
            }
            CExpr::Tuple(items) => {
                if items.len() < 2 {
                    self.report("V008", format!("tuple of arity {}", items.len()));
                }
                for it in items {
                    self.child("tuple.item", it, depth);
                }
            }
            CExpr::Proj(i, k, inner) => {
                if *k < 2 || *i < 1 || i > k {
                    self.report("V003", format!("malformed projection pi_{i}_{k}"));
                }
                self.child("proj", inner, depth);
            }
            CExpr::Single(e) => self.child("single", e, depth),
            CExpr::Union(a, b) => {
                self.child("union.lhs", a, depth);
                self.child("union.rhs", b, depth);
            }
            CExpr::BigUnion { head, src } | CExpr::BigBagUnion { head, src } => {
                self.child("bigunion.src", src, depth);
                self.child("bigunion.head", head, depth + 1);
            }
            CExpr::BigUnionRank { head, src } | CExpr::BigBagUnionRank { head, src } => {
                self.child("bigunion.src", src, depth);
                self.child("bigunion.head", head, depth + 2);
            }
            CExpr::BagSingle(e) => self.child("bagsingle", e, depth),
            CExpr::BagUnion(a, b) => {
                self.child("bagunion.lhs", a, depth);
                self.child("bagunion.rhs", b, depth);
            }
            CExpr::If(c2, t, f) => {
                self.child("if.cond", c2, depth);
                self.child("if.then", t, depth);
                self.child("if.else", f, depth);
            }
            CExpr::Cmp(_, a, b) => {
                self.child("cmp.lhs", a, depth);
                self.child("cmp.rhs", b, depth);
            }
            CExpr::Arith(_, a, b) => {
                self.child("arith.lhs", a, depth);
                self.child("arith.rhs", b, depth);
            }
            CExpr::Gen(e) => self.child("gen", e, depth),
            CExpr::Sum { head, src } => {
                self.child("sum.src", src, depth);
                self.child("sum.head", head, depth + 1);
            }
            CExpr::Tab { head, bounds } => {
                if bounds.is_empty() {
                    self.report("V004", "tabulation with no index bounds (rank 0)".into());
                }
                // Bounds evaluate outside the index binders; the head
                // sees one binder per bound (last index = 0).
                for b in bounds {
                    self.child("tab.bound", b, depth);
                }
                self.child("tab.head", head, depth + bounds.len());
            }
            CExpr::Sub(arr, idx, _elide) => {
                if idx.is_empty() {
                    self.report("V004", "subscript with no indices".into());
                }
                self.child("sub.array", arr, depth);
                for i in idx {
                    self.child("sub.index", i, depth);
                }
            }
            CExpr::Dim(k, e) => {
                if *k == 0 {
                    self.report("V004", "dim_0 (arrays have rank >= 1)".into());
                }
                self.child("dim", e, depth);
            }
            CExpr::ArrayLit { dims, items } => {
                if dims.is_empty() {
                    self.report("V004", "array literal with no dimensions (rank 0)".into());
                }
                for d in dims {
                    self.child("arraylit.dim", d, depth);
                }
                for it in items {
                    self.child("arraylit.item", it, depth);
                }
            }
            CExpr::Index(k, e) => {
                if *k == 0 {
                    self.report("V004", "index_0 (arrays have rank >= 1)".into());
                }
                self.child("index", e, depth);
            }
            CExpr::Get(e) => self.child("get", e, depth),
            CExpr::Prim(p, args) => {
                if args.len() != p.arity() {
                    self.report(
                        "V007",
                        format!(
                            "primitive `{}` expects {} argument(s), got {}",
                            p.name(),
                            p.arity(),
                            args.len()
                        ),
                    );
                }
                for a in args {
                    self.child("prim.arg", a, depth);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::eval::compile;
    use aql_core::expr::builder::*;
    use std::rc::Rc;

    #[test]
    fn compiled_programs_are_clean() {
        let e = lam("x", lam("y", add(var("x"), var("y"))));
        let c = compile(&e).unwrap();
        assert!(verify_compiled(&c, 0).is_empty());
        let e = tab(
            vec![("i", nat(3)), ("j", nat(4))],
            add(var("i"), var("j")),
        );
        let c = compile(&e).unwrap();
        assert!(verify_compiled(&c, 0).is_empty());
    }

    #[test]
    fn escaped_indices_are_v010() {
        // λ. #1 — references a binder that does not exist.
        let c = CExpr::Lam(Rc::new(CExpr::Var(1)));
        let ds = verify_compiled(&c, 0);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "V010");
        assert_eq!(ds[0].path, "lam.body");
        // The same term under one outer binder is fine.
        assert!(verify_compiled(&c, 1).is_empty());
    }

    #[test]
    fn tab_binder_arithmetic() {
        // Bounds must not see the index binders; the head sees all.
        let ok = CExpr::Tab {
            head: Rc::new(CExpr::Var(1)),
            bounds: vec![CExpr::Nat(2), CExpr::Nat(3)],
        };
        assert!(verify_compiled(&ok, 0).is_empty());
        let bad = CExpr::Tab {
            head: Rc::new(CExpr::Var(2)),
            bounds: vec![CExpr::Var(0), CExpr::Nat(3)],
        };
        let ds = verify_compiled(&bad, 0);
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert!(ds.iter().all(|d| d.code == "V010"));
    }

    #[test]
    fn malformed_constructors_are_flagged() {
        let ds = verify_compiled(
            &CExpr::Proj(0, 1, Rc::new(CExpr::Nat(0))),
            0,
        );
        assert!(ds.iter().any(|d| d.code == "V003"), "{ds:?}");
        let ds = verify_compiled(&CExpr::Tuple(vec![CExpr::Nat(0)]), 0);
        assert!(ds.iter().any(|d| d.code == "V008"), "{ds:?}");
        let ds = verify_compiled(
            &CExpr::Tab { head: Rc::new(CExpr::Nat(0)), bounds: vec![] },
            0,
        );
        assert!(ds.iter().any(|d| d.code == "V004"), "{ds:?}");
    }
}
