//! Property tests for histogram bucket arithmetic and a multi-thread
//! stress test for the sharded registry.
//!
//! The bucket properties pin down the log2 scheme: every value round
//! trips through `bucket_of` / `bounds_of`, buckets tile `u64` without
//! gaps or overlaps, and estimated quantiles are monotone in `q` and
//! bracketed by the observed extremes' buckets. The stress test proves
//! the headline claim of the sharded counters: no increment is ever
//! lost under concurrency.

use aql_metrics::{
    bounds_of, bucket_of, counter, histogram, BUCKETS, HistogramSnapshot,
};
use proptest::prelude::*;

proptest! {
    /// value → bucket → bounds round trip: every value lies inside the
    /// bounds of the bucket it maps to.
    #[test]
    fn bucket_bounds_contain_value(v in 0u64..u64::MAX) {
        let b = bucket_of(v);
        prop_assert!(b < BUCKETS);
        let (lo, hi) = bounds_of(b);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] (bucket {b})");
    }

    /// Bucket bounds tile the u64 line: bucket i+1 starts exactly one
    /// past where bucket i ends.
    #[test]
    fn buckets_tile_without_gaps(i in 0usize..BUCKETS - 1) {
        let (_, hi) = bounds_of(i);
        let (lo_next, _) = bounds_of(i + 1);
        prop_assert_eq!(lo_next, hi + 1);
    }

    /// Boundary values land in the right bucket: a bucket's lower and
    /// upper bound both map back to it.
    #[test]
    fn bucket_boundaries_map_to_self(i in 0usize..BUCKETS) {
        let (lo, hi) = bounds_of(i);
        prop_assert_eq!(bucket_of(lo), i);
        prop_assert_eq!(bucket_of(hi), i);
    }

    /// Quantile estimates are monotone in q, and bounded by the
    /// buckets of the observed minimum and maximum.
    #[test]
    fn quantiles_monotone_and_bracketed(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut snap = HistogramSnapshot { buckets: [0; BUCKETS], sum: 0 };
        for &v in &values {
            snap.buckets[bucket_of(v)] += 1;
            snap.sum += v;
        }
        prop_assert_eq!(snap.count(), values.len() as u64);

        let qs = [0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];
        let mut prev = 0u64;
        for &q in &qs {
            let est = snap.quantile(q).expect("nonempty histogram");
            prop_assert!(est >= prev, "quantile({q}) = {est} < {prev}");
            prev = est;
        }
        let min = *values.iter().min().expect("nonempty");
        let max = *values.iter().max().expect("nonempty");
        let p0 = snap.quantile(0.0).expect("nonempty");
        let p100 = snap.quantile(1.0).expect("nonempty");
        prop_assert!(p0 >= bounds_of(bucket_of(min)).0, "{p0} vs min {min}");
        prop_assert!(p100 <= bounds_of(bucket_of(max)).1, "{p100} vs max {max}");
    }

    /// With every observation in one bucket, the estimate stays inside
    /// that bucket for every q.
    #[test]
    fn single_bucket_quantiles_stay_inside(v in 0u64..u64::MAX, n in 1u64..50) {
        let mut snap = HistogramSnapshot { buckets: [0; BUCKETS], sum: 0 };
        let b = bucket_of(v);
        snap.buckets[b] = n;
        let (lo, hi) = bounds_of(b);
        for &q in &[0.0, 0.5, 0.95, 1.0] {
            let est = snap.quantile(q).expect("nonempty");
            prop_assert!(lo <= est && est <= hi, "q={q}: {est} outside [{lo}, {hi}]");
        }
    }
}

/// The sharded registry loses no increments under concurrency: many
/// threads hammering the same counter and histogram sum exactly.
#[test]
fn concurrent_increments_are_never_lost() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let c = counter("t_stress_total", "Stress counter.");
    let h = histogram("t_stress_hist", "Stress histogram.");
    let before_c = c.get();
    let before_h = h.snapshot();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    c.add(1);
                    // Spread observations over many buckets.
                    h.observe((t as u64 + 1) * (i % 1024));
                }
            });
        }
    });

    assert_eq!(
        c.get() - before_c,
        THREADS as u64 * PER_THREAD,
        "lost counter increments"
    );
    let after = h.snapshot();
    assert_eq!(
        after.count() - before_h.count(),
        THREADS as u64 * PER_THREAD,
        "lost histogram observations"
    );
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| (t + 1) * (i % 1024)).sum::<u64>())
        .sum();
    assert_eq!(after.sum - before_h.sum, expected_sum, "lost histogram sum");
}

/// Registration from many threads at once converges on one metric per
/// name (and never deadlocks or poisons the registry).
#[test]
fn concurrent_registration_is_safe() {
    const THREADS: usize = 8;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for i in 0..32 {
                    // Leak-bounded: the same 32 names every thread.
                    let name = format!("t_reg_race_{i}_total");
                    counter(&name, "Race-registered.").add(1);
                }
            });
        }
    });
    for i in 0..32 {
        let name = format!("t_reg_race_{i}_total");
        assert_eq!(counter(&name, "Race-registered.").get(), THREADS as u64);
    }
}
