//! # aql-metrics — process-lifetime metrics
//!
//! The aggregate counterpart of `aql-trace`: where a trace describes
//! *one* query in full detail and dies with it, this crate keeps
//! **durable, process-wide aggregates** — the numbers an operator of a
//! long-running session needs (total statements, cache hit ratios,
//! I/O fault rates, phase latency distributions) without profiling
//! anything.
//!
//! Three metric kinds live in one global registry:
//!
//! * [`Counter`] — a monotonically increasing `u64`, **sharded** over
//!   cache-line-padded atomics so concurrent writers on different
//!   threads do not contend (reads sum the shards).
//! * [`Gauge`] — a settable `i64` (last write wins).
//! * [`Histogram`] — log2-bucketed `u64` samples (bucket *i* ≥ 1 holds
//!   values in `[2^(i-1), 2^i)`; bucket 0 holds zero) with a sharded
//!   sum, supporting [`Histogram::quantile`] estimation (p50/p95/p99)
//!   by interpolation inside the bucket containing the rank.
//!
//! ## Overhead contract
//!
//! Recording against a cached handle ([`LazyCounter`],
//! [`LazyHistogram`]) is one relaxed atomic flag read, one `OnceLock`
//! deref, and one relaxed `fetch_add` — no locking, no allocation, no
//! formatting. [`set_enabled]`(false)` turns every record into the
//! flag read alone; the `store_bench --metrics-overhead` gate asserts
//! the end-to-end cost of metrics-on vs metrics-off stays under 3%.
//! Registration (first use of a name) takes a mutex and leaks the
//! metric: handles are `&'static` and live for the process.
//!
//! ## Cardinality rules
//!
//! Label values must come from small closed sets (pipeline phase
//! names, optimizer rule names, statement kinds). Never label by
//! query text, file path, or anything user-controlled — each distinct
//! label set is a new time series that lives forever.
//!
//! ## Exposition
//!
//! [`render_prometheus`] renders the whole registry in the Prometheus
//! text format (version 0.0.4); [`http::serve`] exposes it over a
//! dependency-free `GET /metrics` endpoint.
//!
//! ```
//! use aql_metrics as m;
//! static QUERIES: m::LazyCounter =
//!     m::LazyCounter::new("doc_queries_total", "Queries served.");
//! QUERIES.add(1);
//! assert!(m::render_prometheus().contains("doc_queries_total 1"));
//! ```

#![warn(missing_docs)]

pub(crate) mod dashboard;
pub mod http;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Number of write shards per counter / histogram sum. Eight padded
/// slots cover typical worker-thread counts without false sharing.
pub const SHARDS: usize = 8;

/// Number of histogram buckets: one for zero plus one per power of
/// two up to `2^64`.
pub const BUCKETS: usize = 65;

// ---- enable switch ---------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is metric recording on? (One relaxed load; the default is on.)
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable recording. Handles keep working either
/// way; a disabled record is a single flag read. Used by the
/// `--metrics-overhead` gate to measure the cost of the hooks.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---- shard selection -------------------------------------------------

/// Each thread gets a fixed shard slot, assigned round-robin at first
/// use, so a thread's increments always hit the same cache line.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SLOT.with(|s| *s)
}

/// A cache-line-padded atomic, so adjacent shards never share a line.
#[repr(align(64))]
#[derive(Default)]
struct Pad(AtomicU64);

// ---- metric kinds ----------------------------------------------------

/// A monotonically increasing counter, sharded across padded atomics.
#[derive(Default)]
pub struct Counter {
    shards: [Pad; SHARDS],
}

impl Counter {
    /// Add `delta`. No-op when recording is disabled or `delta == 0`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if delta == 0 || !enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over shards).
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins signed gauge.
#[derive(Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Set the gauge. No-op when recording is disabled.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.v.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.v.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// The bucket index a value falls into: bucket 0 holds exactly zero;
/// bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive `[lo, hi]` range of values recorded in bucket `i`.
/// Inverse of [`bucket_of`]: `bounds_of(bucket_of(v))` contains `v`.
pub fn bounds_of(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A log2-bucketed histogram of `u64` samples.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: [Pad; SHARDS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: Default::default(),
        }
    }
}

/// A point-in-time copy of a histogram, for rank arithmetic that must
/// not tear against concurrent writers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
}

impl Histogram {
    /// Record one sample. No-op when recording is disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum[shard_index()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Copy out the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.iter().map(|s| s.0.load(Ordering::Relaxed)).sum(),
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), or `None` when empty.
    /// See [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): find the bucket holding
    /// the rank-`⌈q·n⌉` observation and interpolate inside its
    /// `[lo, hi]` bounds, placing the rank-th observation at the
    /// midpoint of its `1/c` slice (so one observation reads as the
    /// bucket midpoint, not the bucket's upper bound). Never off by
    /// more than the bucket width (a factor of two). Monotone in `q`
    /// by construction: the rank, the bucket scan, and the in-bucket
    /// offset are each non-decreasing in `q`. Returns `None` when no
    /// observations were recorded; a NaN `q` is treated as the median.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.5 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bounds_of(i);
                let within = rank - seen; // 1 ..= c
                let frac = (within as f64 - 0.5) / c as f64;
                // Saturate and clamp: the f64 round trip can round the
                // top bucket's width up past `hi`.
                let off = ((hi - lo) as f64 * frac) as u64;
                return Some(lo.saturating_add(off).min(hi));
            }
            seen += c;
        }
        // Unreachable in practice (rank ≤ n); cover it conservatively.
        Some(bounds_of(BUCKETS - 1).1)
    }
}

// ---- the registry ----------------------------------------------------

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// One registered time series: the metric family name, its (sorted)
/// label pairs, and the help text given at registration.
struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// Full key of a series: `family` or `family{k="v",…}` with labels
/// sorted by key — the exact string exposition uses.
fn series_key(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut ls: Vec<_> = labels.to_vec();
    ls.sort();
    let body: Vec<String> =
        ls.iter().map(|(k, v)| format!("{k}={:?}", v)).collect();
    format!("{family}{{{}}}", body.join(","))
}

fn registry() -> MutexGuard<'static, HashMap<String, Entry>> {
    static REG: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn register_with<T>(
    family: &str,
    labels: &[(&str, &str)],
    help: &str,
    make: impl Fn() -> Metric,
    pick: impl Fn(&Metric) -> Option<T>,
) -> T {
    let key = series_key(family, labels);
    let mut reg = registry();
    let entry = reg.entry(key).or_insert_with(|| {
        let mut ls: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        ls.sort();
        Entry {
            family: family.to_string(),
            labels: ls,
            help: help.to_string(),
            metric: make(),
        }
    });
    // A name re-registered as a different kind yields a fresh detached
    // metric rather than a panic: the misuse is visible (the detached
    // handle never appears in exposition) but can't take the host down.
    pick(&entry.metric).unwrap_or_else(|| {
        let m = make();
        pick(&m).unwrap_or_else(|| unreachable!("make and pick agree on the kind")) // lint-wall: allow
    })
}

/// Get or register the counter `name` (no labels).
pub fn counter(name: &str, help: &str) -> &'static Counter {
    counter_with(name, &[], help)
}

/// Get or register the counter `name{labels…}`. Label values must be
/// low-cardinality (see the module docs).
pub fn counter_with(name: &str, labels: &[(&str, &str)], help: &str) -> &'static Counter {
    register_with(
        name,
        labels,
        help,
        || Metric::Counter(Box::leak(Box::default())),
        |m| match m {
            Metric::Counter(c) => Some(*c),
            _ => None,
        },
    )
}

/// Get or register the gauge `name`.
pub fn gauge(name: &str, help: &str) -> &'static Gauge {
    register_with(
        name,
        &[],
        help,
        || Metric::Gauge(Box::leak(Box::default())),
        |m| match m {
            Metric::Gauge(g) => Some(*g),
            _ => None,
        },
    )
}

/// Get or register the histogram `name` (no labels).
pub fn histogram(name: &str, help: &str) -> &'static Histogram {
    histogram_with(name, &[], help)
}

/// Get or register the histogram `name{labels…}`.
pub fn histogram_with(name: &str, labels: &[(&str, &str)], help: &str) -> &'static Histogram {
    register_with(
        name,
        labels,
        help,
        || Metric::Histogram(Box::leak(Box::default())),
        |m| match m {
            Metric::Histogram(h) => Some(*h),
            _ => None,
        },
    )
}

/// Sum of every counter series in `family` (e.g. all
/// `aql_opt_rule_fires_total{phase,rule}` series). Zero if none.
pub fn family_total(family: &str) -> u64 {
    registry()
        .values()
        .filter(|e| e.family == family)
        .filter_map(|e| match e.metric {
            Metric::Counter(c) => Some(c.get()),
            _ => None,
        })
        .sum()
}

// ---- cached handles for hot call sites -------------------------------

/// A `static`-friendly counter handle: the registry lookup happens
/// once, on first use, after which [`LazyCounter::add`] is a flag read
/// plus one sharded `fetch_add`.
pub struct LazyCounter {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Declare a counter bound lazily to `name`.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        LazyCounter { name, help, cell: OnceLock::new() }
    }

    /// Resolve the underlying counter (registering it if needed).
    pub fn counter(&self) -> &'static Counter {
        self.cell.get_or_init(|| counter(self.name, self.help))
    }

    /// Add `delta`; no-op when disabled or zero.
    #[inline]
    pub fn add(&self, delta: u64) {
        if delta == 0 || !enabled() {
            return;
        }
        self.counter().add(delta);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.counter().get()
    }
}

/// A `static`-friendly histogram handle; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Declare a histogram bound lazily to `name`.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        LazyHistogram { name, help, cell: OnceLock::new() }
    }

    /// Resolve the underlying histogram (registering it if needed).
    pub fn histogram(&self) -> &'static Histogram {
        self.cell.get_or_init(|| histogram(self.name, self.help))
    }

    /// Record one sample; no-op when disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.histogram().observe(v);
    }
}

// ---- snapshots and exposition ----------------------------------------

/// A flat numeric snapshot of the registry: every counter and gauge as
/// its series key, every histogram as `<key>_count` / `<key>_sum` /
/// `<key>_p50` / `<key>_p95` / `<key>_p99`. Sorted by key; gauges
/// clamp below zero. This is what `QueryReport` embeds.
pub fn snapshot() -> Vec<(String, u64)> {
    let reg = registry();
    let mut out: Vec<(String, u64)> = Vec::with_capacity(reg.len());
    for (key, e) in reg.iter() {
        match e.metric {
            Metric::Counter(c) => out.push((key.clone(), c.get())),
            Metric::Gauge(g) => out.push((key.clone(), g.get().max(0) as u64)),
            Metric::Histogram(h) => {
                let s = h.snapshot();
                out.push((format!("{key}_count"), s.count()));
                out.push((format!("{key}_sum"), s.sum));
                for (q, tag) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
                    out.push((format!("{key}_{tag}"), s.quantile(q).unwrap_or(0)));
                }
            }
        }
    }
    out.sort();
    out
}

/// Render the whole registry in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers per family, one line
/// per series, histograms as cumulative `_bucket{le=…}` plus `_sum`
/// and `_count`. Output is sorted (family, then labels) so it is
/// deterministic for a fixed registry state.
pub fn render_prometheus() -> String {
    use std::fmt::Write as _;
    let reg = registry();
    // Sort by (family, series key) so every family's series are
    // contiguous and get exactly one HELP/TYPE header, even when one
    // family name is a prefix of another.
    let mut keys: Vec<(&String, &String)> =
        reg.iter().map(|(k, e)| (&e.family, k)).collect();
    keys.sort();
    let mut out = String::new();
    let mut last_family = String::new();
    for (_, key) in keys {
        let Some(e) = reg.get(key) else { continue };
        if e.family != last_family {
            let kind = match e.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            let help = if e.help.is_empty() { "(no help)" } else { &e.help };
            let _ = writeln!(out, "# HELP {} {}", e.family, help);
            let _ = writeln!(out, "# TYPE {} {}", e.family, kind);
            last_family = e.family.clone();
        }
        match e.metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{key} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{key} {}", g.get());
            }
            Metric::Histogram(h) => {
                let s = h.snapshot();
                let highest =
                    s.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
                let mut cum = 0u64;
                for (i, &c) in s.buckets.iter().enumerate().take(highest + 1) {
                    cum += c;
                    let le = bounds_of(i).1;
                    let _ = writeln!(
                        out,
                        "{} {cum}",
                        series_with(&e.family, &e.labels, "_bucket", Some(&le.to_string()))
                    );
                }
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_with(&e.family, &e.labels, "_bucket", Some("+Inf")),
                    s.count()
                );
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_with(&e.family, &e.labels, "_sum", None),
                    s.sum
                );
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_with(&e.family, &e.labels, "_count", None),
                    s.count()
                );
            }
        }
    }
    out
}

/// `family<suffix>{labels…,le="…"}` — a histogram component series.
fn series_with(
    family: &str,
    labels: &[(String, String)],
    suffix: &str,
    le: Option<&str>,
) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
    if let Some(le) = le {
        parts.push(format!("le={le:?}"));
    }
    if parts.is_empty() {
        format!("{family}{suffix}")
    } else {
        format!("{family}{suffix}{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let a = counter("t_lib_hits_total", "Test counter.");
        let b = counter("t_lib_hits_total", "Test counter.");
        let before = a.get();
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), before + 7);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let x = counter_with("t_lib_fires_total", &[("rule", "beta")], "f");
        let y = counter_with("t_lib_fires_total", &[("rule", "delta")], "f");
        x.add(2);
        y.add(5);
        assert_eq!(family_total("t_lib_fires_total"), 7);
        // Label order does not matter for identity.
        let x2 = counter_with(
            "t_lib_two_labels_total",
            &[("b", "2"), ("a", "1")],
            "f",
        );
        let x3 = counter_with(
            "t_lib_two_labels_total",
            &[("a", "1"), ("b", "2")],
            "f",
        );
        x2.add(1);
        assert_eq!(x3.get(), 1);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = gauge("t_lib_gauge", "g");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = histogram("t_lib_hist_ns", "h");
        for v in [0u64, 1, 1, 2, 3, 900, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.sum, 1907);
        assert_eq!(s.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(s.buckets[1], 2, "ones in [1,1]");
        assert_eq!(s.buckets[2], 2, "2 and 3 in [2,3]");
        assert_eq!(s.buckets[10], 2, "900 and 1000 in [512,1023]");
        // Quantiles are within the containing bucket's bounds.
        let p99 = s.quantile(0.99).expect("nonempty");
        assert!((512..=1023).contains(&p99), "{p99}");
        assert_eq!(histogram("t_lib_empty_hist", "h").quantile(0.5), None);
    }

    #[test]
    fn quantile_zero_samples_is_none_for_all_q() {
        let h = histogram("t_q_empty_ns", "h");
        for q in [0.0, 0.5, 0.95, 0.99, 1.0, f64::NAN, -1.0, 2.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
    }

    #[test]
    fn quantile_single_sample_is_flat_and_in_bucket() {
        let h = histogram("t_q_single_ns", "h");
        h.observe(700); // bucket [512, 1023]
        let s = h.snapshot();
        let p50 = s.quantile(0.5).expect("nonempty");
        // With one observation every quantile is the same estimate…
        assert_eq!(s.quantile(0.95), Some(p50));
        assert_eq!(s.quantile(0.99), Some(p50));
        assert_eq!(s.quantile(0.0), Some(p50));
        assert_eq!(s.quantile(1.0), Some(p50));
        // …and it sits inside the sample's bucket, at its midpoint
        // rather than pinned to the bucket's upper bound.
        assert!((512..=1023).contains(&p50), "{p50}");
        assert_eq!(p50, 512 + (1023 - 512) / 2);
    }

    #[test]
    fn quantile_all_in_one_bucket_is_monotone_within_bounds() {
        let h = histogram("t_q_onebucket_ns", "h");
        for _ in 0..100 {
            h.observe(3000); // bucket [2048, 4095]
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5).expect("nonempty");
        let p95 = s.quantile(0.95).expect("nonempty");
        let p99 = s.quantile(0.99).expect("nonempty");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        for p in [p50, p95, p99] {
            assert!((2048..=4095).contains(&p), "{p}");
        }
        // Degenerate bucket 0 (all zeros) stays exact.
        let hz = histogram("t_q_zeros_ns", "h");
        for _ in 0..10 {
            hz.observe(0);
        }
        assert_eq!(hz.quantile(0.5), Some(0));
        assert_eq!(hz.quantile(0.99), Some(0));
    }

    #[test]
    fn quantile_is_monotone_in_q_and_nan_is_median() {
        let h = histogram("t_q_monotone_ns", "h");
        for v in [1u64, 5, 9, 80, 700, 700, 6000, 50_000, 50_000, 1 << 40] {
            h.observe(v);
        }
        let s = h.snapshot();
        let mut last = 0u64;
        for i in 0..=100 {
            let v = s.quantile(i as f64 / 100.0).expect("nonempty");
            assert!(v >= last, "q={i}%: {v} < {last}");
            last = v;
        }
        assert_eq!(s.quantile(f64::NAN), s.quantile(0.5));
        // Out-of-range q clamps to the extremes.
        assert_eq!(s.quantile(-3.0), s.quantile(0.0));
        assert_eq!(s.quantile(7.0), s.quantile(1.0));
    }

    #[test]
    fn disabled_records_nothing() {
        let c = counter("t_lib_disabled_total", "c");
        set_enabled(false);
        c.add(10);
        set_enabled(true);
        c.add(1);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        counter("t_expo_a_total", "A test counter.").add(2);
        let h = histogram_with("t_expo_lat_ns", &[("phase", "eval")], "Latency.");
        h.observe(3);
        h.observe(100);
        let text = render_prometheus();
        assert!(text.contains("# HELP t_expo_a_total A test counter."), "{text}");
        assert!(text.contains("# TYPE t_expo_a_total counter"), "{text}");
        assert!(text.contains("t_expo_a_total 2"), "{text}");
        assert!(text.contains("# TYPE t_expo_lat_ns histogram"), "{text}");
        assert!(
            text.contains("t_expo_lat_ns_bucket{phase=\"eval\",le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("t_expo_lat_ns_bucket{phase=\"eval\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("t_expo_lat_ns_sum{phase=\"eval\"} 103"), "{text}");
        assert!(text.contains("t_expo_lat_ns_count{phase=\"eval\"} 2"), "{text}");
    }

    #[test]
    fn snapshot_is_sorted_and_covers_histograms() {
        counter("t_snap_c_total", "c").add(1);
        histogram("t_snap_h_ns", "h").observe(7);
        let snap = snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "snapshot must be sorted");
        assert!(snap.iter().any(|(k, v)| k == "t_snap_c_total" && *v >= 1));
        assert!(snap.iter().any(|(k, _)| k == "t_snap_h_ns_count"));
        assert!(snap.iter().any(|(k, _)| k == "t_snap_h_ns_p99"));
    }

    #[test]
    fn lazy_handles_resolve_once() {
        static C: LazyCounter = LazyCounter::new("t_lazy_total", "lazy");
        C.add(2);
        C.inc();
        assert_eq!(C.get(), 3);
        static H: LazyHistogram = LazyHistogram::new("t_lazy_ns", "lazy");
        H.observe(5);
        assert_eq!(H.histogram().snapshot().count(), 1);
    }

    #[test]
    fn bucket_bounds_invert() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let (lo, hi) = bounds_of(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}]");
        }
    }
}
