//! A dependency-free Prometheus scrape endpoint and live dashboard.
//!
//! [`serve`] binds a `std::net::TcpListener`, spawns one responder
//! thread, and answers six routes:
//!
//! * `GET /` — a self-contained live HTML dashboard (inline CSS/JS, no
//!   external assets) polling `/stats.json`;
//! * `GET /stats.json` — the operator's digest: latency quantiles,
//!   statement and error totals, cache hit ratio, governor residency,
//!   journal drops, breaker counters (stable keys; see the
//!   `dashboard` module docs);
//! * `GET /metrics` — [`render_prometheus`](crate::render_prometheus)
//!   exposition;
//! * `GET /healthz` — a JSON liveness probe: status, uptime, and the
//!   flight recorder's `aql_journal_dropped_total` (read back from the
//!   registry, so this crate stays dependency-free);
//! * `GET /incidents` — a JSON listing of recent incident files in the
//!   directory registered via [`set_incident_dir`], newest first;
//! * `GET /profile?seconds=N` — folded span stacks sampled over a live
//!   window, delegated to the provider registered via
//!   [`set_profile_provider`] (503 when none is installed — the
//!   profiler lives in `aql-profile`, and this crate stays
//!   dependency-free).
//!
//! Anything else gets a 404. One request per connection
//! (`Connection: close`), which is exactly the Prometheus scrape model;
//! there is no TLS, no keep-alive, no routing — operators who need
//! those put a real proxy in front.
//!
//! The returned [`MetricsServer`] does **not** stop the endpoint when
//! dropped — metrics are process-lifetime, and the REPL hands the
//! handle around freely. Call [`MetricsServer::stop`] for an orderly
//! shutdown (tests do; long-running sessions typically never do).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The liveness anchor: first touched when a server binds (or on the
/// first `/healthz` probe), so uptime measures "how long has this
/// process been serving".
static STARTED: OnceLock<Instant> = OnceLock::new();

/// The incident directory `/incidents` lists, when one is registered.
static INCIDENT_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Register (or clear, with `None`) the directory `GET /incidents`
/// lists. `Session::enable_incidents` calls this so the endpoint and
/// the dump pipeline stay pointed at the same place.
pub fn set_incident_dir(dir: Option<PathBuf>) {
    *INCIDENT_DIR.lock().unwrap_or_else(|p| p.into_inner()) = dir;
}

/// A live-profile callback: given a window in seconds, return folded
/// span stacks (`path;to;frame count` lines). See
/// [`set_profile_provider`].
pub type ProfileProvider = Box<dyn Fn(u64) -> String + Send + Sync>;

/// The provider `GET /profile?seconds=N` delegates to.
static PROFILE_PROVIDER: Mutex<Option<ProfileProvider>> = Mutex::new(None);

/// Register (or clear, with `None`) the live-profile provider behind
/// `GET /profile?seconds=N`. This crate has no profiler of its own —
/// `aql-profile` owns the sampler, and hosts wire the two together
/// (the REPL's `\metrics serve` does) exactly like [`set_incident_dir`]
/// keeps the incident pipeline decoupled.
pub fn set_profile_provider(provider: Option<ProfileProvider>) {
    *PROFILE_PROVIDER.lock().unwrap_or_else(|p| p.into_inner()) = provider;
}

/// Window bounds for `/profile?seconds=N`: at least one second, capped
/// so one request cannot occupy the responder thread for minutes.
const PROFILE_MAX_SECONDS: u64 = 30;

/// The `/profile` response, or `None` when no provider is registered.
/// The provider call blocks for the sampling window — acceptable on
/// the single-request-per-connection responder thread.
fn profile_body(query: &str) -> Option<String> {
    let seconds = query
        .split('&')
        .find_map(|kv| kv.strip_prefix("seconds="))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
        .clamp(1, PROFILE_MAX_SECONDS);
    let guard = PROFILE_PROVIDER.lock().unwrap_or_else(|p| p.into_inner());
    guard.as_ref().map(|p| p(seconds))
}

/// Seconds since the liveness anchor.
fn uptime_s() -> u64 {
    STARTED.get_or_init(Instant::now).elapsed().as_secs()
}

/// The `/healthz` body: a flat JSON object — liveness, uptime, and the
/// flight recorder's drop counter (0 when no journal is linked in).
fn healthz_body() -> String {
    format!(
        "{{\"status\":\"ok\",\"uptime_s\":{},\"journal_dropped_total\":{}}}\n",
        uptime_s(),
        crate::family_total("aql_journal_dropped_total"),
    )
}

/// JSON-escape for the path-ish strings `/incidents` and `/stats.json`
/// emit.
pub(crate) fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The `/incidents` body: the registered directory (or null) and up to
/// 100 `incident-*.json` file names, newest first (names embed the
/// statement sequence number, so lexicographic descending is age
/// descending).
fn incidents_body() -> String {
    let dir = INCIDENT_DIR.lock().unwrap_or_else(|p| p.into_inner()).clone();
    let mut names: Vec<String> = Vec::new();
    if let Some(d) = &dir {
        if let Ok(entries) = std::fs::read_dir(d) {
            for e in entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                if name.starts_with("incident-") && name.ends_with(".json") {
                    names.push(name);
                }
            }
        }
    }
    names.sort();
    names.reverse();
    names.truncate(100);
    let dir_json = match &dir {
        Some(d) => format!("\"{}\"", json_escape(&d.display().to_string())),
        None => "null".to_string(),
    };
    let items: Vec<String> =
        names.iter().map(|n| format!("\"{}\"", json_escape(n))).collect();
    format!("{{\"dir\":{dir_json},\"incidents\":[{}]}}\n", items.join(","))
}

/// Handle to a running exposition endpoint.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl MetricsServer {
    /// The address actually bound (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the responder thread to exit. Idempotent; the thread wakes
    /// via a self-connection, so a stopped server releases its port
    /// promptly.
    pub fn stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` so the thread observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
/// serve `GET /metrics` from a background thread.
pub fn serve(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
    STARTED.get_or_init(Instant::now);
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    std::thread::Builder::new()
        .name("aql-metrics-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = respond(stream);
                }
            }
        })?;
    Ok(MetricsServer { addr: local, stop })
}

/// Read one request head (bounded) and write the response.
fn respond(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the request head, or 8 KiB.
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request_line = std::str::from_utf8(&head)
        .ok()
        .and_then(|s| s.lines().next())
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method == "GET"
        && (path == "/metrics" || path.starts_with("/metrics?"))
    {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::render_prometheus(),
        )
    } else if method == "GET" && path == "/healthz" {
        ("200 OK", "application/json; charset=utf-8", healthz_body())
    } else if method == "GET" && path == "/incidents" {
        ("200 OK", "application/json; charset=utf-8", incidents_body())
    } else if method == "GET" && (path == "/" || path == "/index.html") {
        (
            "200 OK",
            "text/html; charset=utf-8",
            crate::dashboard::DASHBOARD_HTML.to_string(),
        )
    } else if method == "GET"
        && (path == "/stats.json" || path.starts_with("/stats.json?"))
    {
        (
            "200 OK",
            "application/json; charset=utf-8",
            crate::dashboard::stats_json(uptime_s()),
        )
    } else if method == "GET"
        && (path == "/profile" || path.starts_with("/profile?"))
    {
        let query = path.split_once('?').map_or("", |(_, q)| q);
        match profile_body(query) {
            Some(folded) => ("200 OK", "text/plain; charset=utf-8", folded),
            None => (
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                "profile: no provider registered (serve from a session \
                 with aql-profile wired in)\n"
                    .to_string(),
            ),
        }
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try GET /, /stats.json, /metrics, /healthz, \
             /incidents or /profile?seconds=N\n"
                .to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One full HTTP exchange against `addr`; returns the raw response.
    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        crate::counter("t_http_requests_total", "Test.").add(3);
        let server = serve("127.0.0.1:0").expect("bind");
        let ok = fetch(server.addr(), "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("t_http_requests_total 3"), "{ok}");
        let missing = fetch(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn healthz_reports_liveness_and_drop_count() {
        let server = serve("127.0.0.1:0").expect("bind");
        let resp = fetch(server.addr(), "/healthz");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("application/json"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"uptime_s\":"), "{body}");
        assert!(body.contains("\"journal_dropped_total\":"), "{body}");
        server.stop();
    }

    #[test]
    fn incidents_lists_the_registered_directory() {
        let dir = std::env::temp_dir()
            .join(format!("aql-metrics-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("incident-000001-aa-error.json"), "{}").expect("write");
        std::fs::write(dir.join("incident-000002-bb-slow.json"), "{}").expect("write");
        std::fs::write(dir.join("not-an-incident.txt"), "x").expect("write");
        let server = serve("127.0.0.1:0").expect("bind");
        // No directory registered: empty listing, not an error.
        set_incident_dir(None);
        let empty = fetch(server.addr(), "/incidents");
        assert!(empty.contains("\"dir\":null"), "{empty}");
        assert!(empty.contains("\"incidents\":[]"), "{empty}");
        // Registered: newest first, non-incident files filtered out.
        set_incident_dir(Some(dir.clone()));
        let resp = fetch(server.addr(), "/incidents");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let pos2 = body.find("incident-000002-bb-slow.json").expect("newest listed");
        let pos1 = body.find("incident-000001-aa-error.json").expect("oldest listed");
        assert!(pos2 < pos1, "newest first: {body}");
        assert!(!body.contains("not-an-incident"), "{body}");
        set_incident_dir(None);
        server.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_releases_the_port_for_rebinding() {
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let _ = fetch(addr, "/healthz");
        server.stop();
        // The self-connection unblocks `accept`, the thread drops the
        // listener, and the port must be bindable again promptly. A
        // short retry loop absorbs the thread's exit latency; a leaked
        // listener would keep EADDRINUSE forever.
        let deadline = Instant::now() + Duration::from_secs(2);
        let rebound = loop {
            match TcpListener::bind(addr) {
                Ok(l) => break Some(l),
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break None,
            }
        };
        assert!(rebound.is_some(), "port {addr} not released after stop()");
    }

    #[test]
    fn dashboard_and_stats_routes_serve() {
        let server = serve("127.0.0.1:0").expect("bind");
        let page = fetch(server.addr(), "/");
        assert!(page.starts_with("HTTP/1.1 200 OK\r\n"), "{page}");
        assert!(page.contains("text/html"), "{page}");
        assert!(page.contains("<!doctype html>"), "{page}");
        let stats = fetch(server.addr(), "/stats.json");
        assert!(stats.starts_with("HTTP/1.1 200 OK\r\n"), "{stats}");
        let body = stats.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.starts_with("{\"schema_version\":1,"), "{body}");
        assert!(body.contains("\"latency_ns\":{"), "{body}");
        server.stop();
    }

    #[test]
    fn profile_route_uses_the_registered_provider() {
        let server = serve("127.0.0.1:0").expect("bind");
        set_profile_provider(None);
        let off = fetch(server.addr(), "/profile?seconds=1");
        assert!(off.starts_with("HTTP/1.1 503"), "{off}");
        set_profile_provider(Some(Box::new(|secs| {
            format!("statement;eval {secs}\n")
        })));
        // Malformed / missing / huge windows clamp instead of erroring.
        let got = fetch(server.addr(), "/profile?seconds=9999");
        assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "{got}");
        assert!(got.ends_with("statement;eval 30\n"), "{got}");
        let default = fetch(server.addr(), "/profile");
        assert!(default.ends_with("statement;eval 1\n"), "{default}");
        set_profile_provider(None);
        server.stop();
    }

    #[test]
    fn content_length_matches_body() {
        let server = serve("127.0.0.1:0").expect("bind");
        let resp = fetch(server.addr(), "/metrics");
        let (head, body) = resp.split_once("\r\n\r\n").expect("head/body");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .parse()
            .expect("numeric");
        assert_eq!(len, body.len());
        server.stop();
    }
}
