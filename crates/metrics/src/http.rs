//! A dependency-free Prometheus scrape endpoint.
//!
//! [`serve`] binds a `std::net::TcpListener`, spawns one responder
//! thread, and answers `GET /metrics` with
//! [`render_prometheus`](crate::render_prometheus) output. Anything
//! else gets a 404. One request per connection (`Connection: close`),
//! which is exactly the Prometheus scrape model; there is no TLS, no
//! keep-alive, no routing — operators who need those put a real proxy
//! in front.
//!
//! The returned [`MetricsServer`] does **not** stop the endpoint when
//! dropped — metrics are process-lifetime, and the REPL hands the
//! handle around freely. Call [`MetricsServer::stop`] for an orderly
//! shutdown (tests do; long-running sessions typically never do).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running exposition endpoint.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl MetricsServer {
    /// The address actually bound (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the responder thread to exit. Idempotent; the thread wakes
    /// via a self-connection, so a stopped server releases its port
    /// promptly.
    pub fn stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` so the thread observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
/// serve `GET /metrics` from a background thread.
pub fn serve(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    std::thread::Builder::new()
        .name("aql-metrics-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = respond(stream);
                }
            }
        })?;
    Ok(MetricsServer { addr: local, stop })
}

/// Read one request head (bounded) and write the response.
fn respond(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the request head, or 8 KiB.
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request_line = std::str::from_utf8(&head)
        .ok()
        .and_then(|s| s.lines().next())
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method == "GET"
        && (path == "/metrics" || path.starts_with("/metrics?"))
    {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::render_prometheus(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try GET /metrics\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One full HTTP exchange against `addr`; returns the raw response.
    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        crate::counter("t_http_requests_total", "Test.").add(3);
        let server = serve("127.0.0.1:0").expect("bind");
        let ok = fetch(server.addr(), "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("t_http_requests_total 3"), "{ok}");
        let missing = fetch(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn content_length_matches_body() {
        let server = serve("127.0.0.1:0").expect("bind");
        let resp = fetch(server.addr(), "/metrics");
        let (head, body) = resp.split_once("\r\n\r\n").expect("head/body");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .parse()
            .expect("numeric");
        assert_eq!(len, body.len());
        server.stop();
    }
}
