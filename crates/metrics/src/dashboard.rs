//! The live ops dashboard: the `GET /stats.json` snapshot and the
//! zero-dependency HTML page `GET /` serves.
//!
//! `stats_json` distills the full registry [`snapshot`](crate::snapshot)
//! into the handful of numbers an operator watches: statement latency
//! quantiles, statement/error totals, cache hit ratio, governor
//! residency, journal drops, and per-source breaker counters. Keys are
//! stable — dashboards and scrapers may depend on them. The statement
//! *rate* is deliberately absent: it is a derivative, and the page
//! computes it client-side from successive `statements_total` readings.
//!
//! The HTML page is a single self-contained document (inline CSS and
//! JS, no external assets, no frameworks) that polls `stats.json` every
//! two seconds and can fetch `profile?seconds=N` on demand.

/// The flat snapshot as a key → value map lookup helper.
struct Snap(Vec<(String, u64)>);

impl Snap {
    fn get(&self, key: &str) -> u64 {
        self.0
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .map(|i| self.0[i].1)
            .unwrap_or(0)
    }

    /// All `{source="…"}` label values of series in `family`, with the
    /// series value, sorted by source.
    fn by_source(&self, family: &str) -> Vec<(String, u64)> {
        let prefix = format!("{family}{{source=\"");
        self.0
            .iter()
            .filter_map(|(k, v)| {
                let rest = k.strip_prefix(&prefix)?;
                let src = rest.strip_suffix("\"}")?;
                Some((src.to_string(), *v))
            })
            .collect()
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Build the `GET /stats.json` body. Stable keys; see module docs.
pub(crate) fn stats_json(uptime_s: u64) -> String {
    let snap = Snap(crate::snapshot());
    let hits = crate::family_total("aql_store_cache_hits_total");
    let misses = crate::family_total("aql_store_cache_misses_total");
    let budget = snap.get("aql_store_governor_budget_bytes");
    let peak = snap.get("aql_store_governor_peak_bytes");
    let mut breakers: Vec<(String, u64)> =
        snap.by_source("aql_store_breaker_trips_total");
    breakers.sort();
    let breaker_items: Vec<String> = breakers
        .iter()
        .map(|(src, trips)| {
            let probes = snap
                .get(&format!("aql_store_breaker_probes_total{{source=\"{src}\"}}"));
            let fast_fails = snap.get(&format!(
                "aql_store_breaker_fast_fails_total{{source=\"{src}\"}}"
            ));
            format!(
                "{{\"source\":\"{}\",\"trips\":{trips},\"probes\":{probes},\
                 \"fast_fails\":{fast_fails}}}",
                crate::http::json_escape(src),
            )
        })
        .collect();
    format!(
        "{{\"schema_version\":1,\
         \"uptime_s\":{uptime_s},\
         \"statements_total\":{stmts},\
         \"errors_total\":{errs},\
         \"slow_queries_total\":{slow},\
         \"latency_ns\":{{\"count\":{lc},\"sum\":{ls},\"p50\":{p50},\
         \"p95\":{p95},\"p99\":{p99}}},\
         \"cache\":{{\"hits\":{hits},\"misses\":{misses},\
         \"hit_ratio\":{hit_ratio:.4}}},\
         \"governor\":{{\"budget_bytes\":{budget},\"peak_bytes\":{peak},\
         \"residency\":{residency:.4},\"sheds\":{sheds},\"denials\":{denials}}},\
         \"journal_dropped_total\":{dropped},\
         \"breakers\":[{breakers}]}}\n",
        stmts = crate::family_total("aql_session_statements_total"),
        errs = crate::family_total("aql_session_errors_total"),
        slow = crate::family_total("aql_session_slow_queries_total"),
        lc = snap.get("aql_session_statement_ns_count"),
        ls = snap.get("aql_session_statement_ns_sum"),
        p50 = snap.get("aql_session_statement_ns_p50"),
        p95 = snap.get("aql_session_statement_ns_p95"),
        p99 = snap.get("aql_session_statement_ns_p99"),
        hit_ratio = ratio(hits, hits + misses),
        residency = ratio(peak, budget),
        sheds = crate::family_total("aql_store_governor_sheds_total"),
        denials = crate::family_total("aql_store_governor_denials_total"),
        dropped = crate::family_total("aql_journal_dropped_total"),
        breakers = breaker_items.join(","),
    )
}

/// The dashboard page served at `GET /`. Self-contained: inline style
/// and script, polls `stats.json` every 2 s, renders the statement
/// rate from successive totals, and fetches `profile?seconds=N` into a
/// `<pre>` on demand.
pub(crate) const DASHBOARD_HTML: &str = r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>aql live dashboard</title>
<style>
  body { font: 14px/1.5 monospace; margin: 2em auto; max-width: 72em;
         color: #222; background: #fcfcf7; }
  h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
  table { border-collapse: collapse; margin: 0.5em 0; }
  td, th { border: 1px solid #bbb; padding: 0.25em 0.75em; text-align: right; }
  th { background: #eee8d8; }
  td:first-child, th:first-child { text-align: left; }
  #err { color: #a00; }
  pre { background: #f4f0e4; padding: 0.75em; overflow-x: auto; }
  button { font: inherit; }
</style>
</head>
<body>
<h1>aql live dashboard</h1>
<p>uptime <span id="uptime">–</span> s · statements <span id="stmts">–</span>
 · <b><span id="rate">–</span>/s</b> · errors <span id="errs">–</span>
 · slow <span id="slow">–</span> · journal drops <span id="drops">–</span>
 <span id="err"></span></p>
<h2>statement latency</h2>
<table><tr><th>count</th><th>p50</th><th>p95</th><th>p99</th></tr>
<tr><td id="lc">–</td><td id="p50">–</td><td id="p95">–</td><td id="p99">–</td></tr></table>
<h2>chunk cache &amp; governor</h2>
<table><tr><th>cache hits</th><th>misses</th><th>hit ratio</th>
<th>governor residency</th><th>sheds</th><th>denials</th></tr>
<tr><td id="hits">–</td><td id="misses">–</td><td id="ratio">–</td>
<td id="resid">–</td><td id="sheds">–</td><td id="denials">–</td></tr></table>
<h2>circuit breakers</h2>
<table id="breakers"><tr><th>source</th><th>trips</th><th>probes</th><th>fast fails</th></tr></table>
<h2>profile</h2>
<p><button id="prof">sample 1 s</button> folded span stacks from the live engine</p>
<pre id="folded">(press the button while queries run)</pre>
<p><a href="metrics">prometheus exposition</a> · <a href="healthz">healthz</a>
 · <a href="incidents">incidents</a></p>
<script>
"use strict";
var last = null;
function ns(v) {
  if (v >= 1e9) return (v / 1e9).toFixed(2) + " s";
  if (v >= 1e6) return (v / 1e6).toFixed(2) + " ms";
  if (v >= 1e3) return (v / 1e3).toFixed(1) + " µs";
  return v + " ns";
}
function put(id, text) { document.getElementById(id).textContent = text; }
function tick() {
  fetch("stats.json").then(function (r) { return r.json(); }).then(function (s) {
    put("err", "");
    put("uptime", s.uptime_s);
    put("stmts", s.statements_total);
    put("errs", s.errors_total);
    put("slow", s.slow_queries_total);
    put("drops", s.journal_dropped_total);
    var now = Date.now();
    if (last) {
      var dt = (now - last.t) / 1000;
      var d = s.statements_total - last.n;
      put("rate", dt > 0 ? (d / dt).toFixed(1) : "–");
    }
    last = { t: now, n: s.statements_total };
    put("lc", s.latency_ns.count);
    put("p50", ns(s.latency_ns.p50));
    put("p95", ns(s.latency_ns.p95));
    put("p99", ns(s.latency_ns.p99));
    put("hits", s.cache.hits);
    put("misses", s.cache.misses);
    put("ratio", (100 * s.cache.hit_ratio).toFixed(1) + "%");
    put("resid", (100 * s.governor.residency).toFixed(1) + "%");
    put("sheds", s.governor.sheds);
    put("denials", s.governor.denials);
    var tbl = document.getElementById("breakers");
    while (tbl.rows.length > 1) tbl.deleteRow(1);
    s.breakers.forEach(function (b) {
      var row = tbl.insertRow();
      [b.source, b.trips, b.probes, b.fast_fails].forEach(function (v) {
        row.insertCell().textContent = v;
      });
    });
  }).catch(function (e) { put("err", " — " + e); });
}
document.getElementById("prof").addEventListener("click", function () {
  put("folded", "sampling 1 s…");
  fetch("profile?seconds=1").then(function (r) { return r.text(); })
    .then(function (t) { put("folded", t.trim() || "(no samples — engine idle)"); })
    .catch(function (e) { put("folded", "error: " + e); });
});
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_has_stable_keys_and_balances() {
        crate::counter_with(
            "aql_store_breaker_trips_total",
            &[("source", "t-dash-src")],
            "t",
        )
        .add(2);
        let body = stats_json(7);
        for key in [
            "\"schema_version\":1",
            "\"uptime_s\":7",
            "\"statements_total\":",
            "\"errors_total\":",
            "\"slow_queries_total\":",
            "\"latency_ns\":{\"count\":",
            "\"p50\":",
            "\"p95\":",
            "\"p99\":",
            "\"cache\":{\"hits\":",
            "\"hit_ratio\":",
            "\"governor\":{\"budget_bytes\":",
            "\"residency\":",
            "\"journal_dropped_total\":",
            "\"breakers\":[",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        // The labeled breaker series shows up under its source label.
        assert!(body.contains("\"source\":\"t-dash-src\""), "{body}");
        assert!(body.contains("\"trips\":2"), "{body}");
    }

    #[test]
    fn ratios_are_defined_on_empty_registries() {
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(3, 4), 0.75);
    }

    #[test]
    fn dashboard_page_is_self_contained() {
        assert!(DASHBOARD_HTML.starts_with("<!doctype html>"));
        assert!(DASHBOARD_HTML.contains("stats.json"));
        assert!(DASHBOARD_HTML.contains("profile?seconds=1"));
        // No external asset references.
        assert!(!DASHBOARD_HTML.contains("http://"));
        assert!(!DASHBOARD_HTML.contains("https://"));
        assert!(!DASHBOARD_HTML.contains("src="));
    }
}
