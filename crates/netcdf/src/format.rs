//! Constants and primitive encodings of the NetCDF *classic* file
//! format (CDF-1, and CDF-2 with 64-bit offsets), implemented from the
//! published format specification. All multi-byte quantities are
//! big-endian; names and value blocks are padded to 4-byte boundaries.

/// Magic bytes `CDF` followed by the version byte.
pub const MAGIC: &[u8; 3] = b"CDF";
/// Version byte for the classic format (32-bit offsets).
pub const VERSION_CLASSIC: u8 = 1;
/// Version byte for the 64-bit-offset variant.
pub const VERSION_64BIT: u8 = 2;

/// Tag introducing the dimension list.
pub const NC_DIMENSION: u32 = 0x0A;
/// Tag introducing a variable list.
pub const NC_VARIABLE: u32 = 0x0B;
/// Tag introducing an attribute list.
pub const NC_ATTRIBUTE: u32 = 0x0C;
/// The `numrecs` value meaning "streaming" (record count unknown).
pub const STREAMING: u32 = 0xFFFF_FFFF;

/// The external data types of the classic format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NcType {
    /// 8-bit signed integer (`NC_BYTE` = 1).
    Byte,
    /// 8-bit character (`NC_CHAR` = 2).
    Char,
    /// 16-bit signed integer (`NC_SHORT` = 3).
    Short,
    /// 32-bit signed integer (`NC_INT` = 4).
    Int,
    /// 32-bit IEEE float (`NC_FLOAT` = 5).
    Float,
    /// 64-bit IEEE float (`NC_DOUBLE` = 6).
    Double,
}

impl NcType {
    /// The on-disk type code.
    pub fn code(self) -> u32 {
        match self {
            NcType::Byte => 1,
            NcType::Char => 2,
            NcType::Short => 3,
            NcType::Int => 4,
            NcType::Float => 5,
            NcType::Double => 6,
        }
    }

    /// Decode a type code.
    pub fn from_code(c: u32) -> Option<NcType> {
        Some(match c {
            1 => NcType::Byte,
            2 => NcType::Char,
            3 => NcType::Short,
            4 => NcType::Int,
            5 => NcType::Float,
            6 => NcType::Double,
            _ => return None,
        })
    }

    /// Size in bytes of one external value.
    pub fn size(self) -> u64 {
        match self {
            NcType::Byte | NcType::Char => 1,
            NcType::Short => 2,
            NcType::Int | NcType::Float => 4,
            NcType::Double => 8,
        }
    }
}

/// Round a byte count up to a 4-byte boundary.
pub fn pad4(n: u64) -> u64 {
    n.div_ceil(4) * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            NcType::Byte,
            NcType::Char,
            NcType::Short,
            NcType::Int,
            NcType::Float,
            NcType::Double,
        ] {
            assert_eq!(NcType::from_code(t.code()), Some(t));
        }
        assert_eq!(NcType::from_code(0), None);
        assert_eq!(NcType::from_code(7), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(NcType::Byte.size(), 1);
        assert_eq!(NcType::Short.size(), 2);
        assert_eq!(NcType::Float.size(), 4);
        assert_eq!(NcType::Double.size(), 8);
    }

    #[test]
    fn padding() {
        assert_eq!(pad4(0), 0);
        assert_eq!(pad4(1), 4);
        assert_eq!(pad4(4), 4);
        assert_eq!(pad4(5), 8);
        assert_eq!(pad4(13), 16);
    }
}
