//! AQL data drivers for NetCDF (§4.1).
//!
//! The paper registers "a series of readers for inputting arrays of
//! various dimensions": `NETCDF3` "takes a file name, a variable name,
//! a triple giving a lower bound index, and a triple giving an upper
//! bound index, and returns the subslab of the given variable bounded
//! by the given indices". [`register_netcdf`] registers `NETCDF1`
//! through `NETCDF4` (k = 1…4) plus a metadata reader `NETCDFINFO`.
//!
//! Following the paper's own future-work note about avoiding the byte
//! stream, these drivers deposit values *directly* as complex objects
//! (no textual exchange step). Numeric external types are widened to
//! `real`.
//!
//! Transient I/O failures (timeouts, interrupted calls — see
//! [`crate::model::NcError::is_transient`]) are retried with bounded
//! exponential backoff via [`crate::io::retry`]; each attempt reopens
//! the source so no partial state leaks between attempts. Persistent
//! failures propagate immediately with their original context.

use std::rc::Rc;

use aql_core::types::Type;
use aql_core::value::{ArrayVal, Value};
use aql_lang::errors::LangError;
use aql_lang::reader::Reader;
use aql_lang::session::Session;

use aql_store::{
    ChunkFaultPlan, ChunkLayout, ChunkSource, FaultyChunkSource, LazyArray, ResiliencePolicy,
    ResilientSource, ScalarKind,
};

use crate::chunk::NcChunkSource;
use crate::io::{retry, IoSource};
use crate::model::{NcError, NcValues};
use crate::read::SlabReader;

/// Read a hyperslab through a freshly-opened source per attempt,
/// retrying transient I/O errors with bounded backoff. `open` is
/// called once per attempt so a failed attempt leaves no partial
/// reader state behind. Exposed so tests can drive the retry loop
/// with instrumented sources ([`crate::io::FaultyIo`]).
pub fn read_slab_retrying<S, F>(
    mut open: F,
    var: &str,
    start: &[u64],
    count: &[u64],
) -> Result<NcValues, NcError>
where
    S: IoSource,
    F: FnMut() -> Result<S, NcError>,
{
    static M_HYPERSLABS: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
        "aql_netcdf_hyperslab_requests_total",
        "Hyperslab read requests issued to NetCDF sources.",
    );
    let _span = aql_trace::span("netcdf.hyperslab");
    aql_trace::count("netcdf.hyperslab_requests", 1);
    M_HYPERSLABS.inc();
    aql_trace::note("var", || var.to_string());
    // Lazily bound sources get retry events from the resilience stack;
    // the eager path retries here, so it stamps the flight recorder
    // itself — `\doctor`'s retry timeline covers both modes.
    let mut attempt: u64 = 0;
    retry(|| {
        attempt += 1;
        if attempt > 1 && aql_journal::enabled() {
            let label = aql_journal::intern(&format!("netcdf:{var}"));
            aql_journal::record(aql_journal::Tag::Retry, label, attempt, 0);
        }
        let mut reader = SlabReader::from_source(open()?)?;
        reader.read_slab(var, start, count)
    })
}

/// Target chunk size for lazily bound variables, in elements: 4096
/// doubles = 32 KiB per chunk, small enough that a point probe reads
/// a tiny fraction of a large variable, large enough to amortize the
/// per-read header parse.
pub const DEFAULT_CHUNK_ELEMS: u64 = 4096;

/// Default per-array chunk-cache budget: 4 MiB.
pub const DEFAULT_CACHE_BUDGET: u64 = 4 << 20;

/// A `NETCDFk` reader: binds a k-dimensional subslab as `[[real]]_k`.
///
/// In the default *lazy* mode the reader validates the request
/// against the file header, then binds a chunked
/// [`LazyArray`] whose cache misses re-open the
/// file and read one chunk-sized hyperslab — so only the chunks a
/// query touches ever leave disk. The *eager* mode materializes the
/// whole subslab at `readval` time (the historical behavior; still
/// useful when the file will be deleted before the values are used).
///
/// Lazily bound chunk sources are wrapped in the `aql-store`
/// resilience stack by default ([`ResilientSource`]: retry with
/// jittered backoff, a per-source circuit breaker labelled
/// `netcdf:{variable}`, checksum verification when available); set
/// [`resilience`](NetcdfSlabReader::resilience) to `None` to bind the
/// raw source. The [`chaos`](NetcdfSlabReader::chaos) plan — injected
/// *inside* the resilience wrapper — exists for the chaos harness and
/// fault-tolerance tests; production readers leave it `None`.
pub struct NetcdfSlabReader {
    /// The dimensionality this reader serves.
    pub k: usize,
    /// Bind lazily (chunked, on-demand) rather than materializing.
    pub lazy: bool,
    /// Chunk-cache byte budget for lazily bound arrays.
    pub cache_budget: u64,
    /// Resilience stack for lazily bound sources; `None` binds raw.
    pub resilience: Option<ResiliencePolicy>,
    /// Chunk-level fault injection between the resilience stack and
    /// the real source (tests only).
    pub chaos: Option<ChunkFaultPlan>,
}

impl NetcdfSlabReader {
    /// A lazily binding reader for dimensionality `k` with the
    /// default cache budget.
    pub fn lazy(k: usize) -> NetcdfSlabReader {
        NetcdfSlabReader {
            k,
            lazy: true,
            cache_budget: DEFAULT_CACHE_BUDGET,
            resilience: Some(ResiliencePolicy::default()),
            chaos: None,
        }
    }

    /// An eagerly materializing reader for dimensionality `k`.
    pub fn eager(k: usize) -> NetcdfSlabReader {
        NetcdfSlabReader { lazy: false, ..NetcdfSlabReader::lazy(k) }
    }
    fn parse_bound(v: &Value, k: usize, which: &str) -> Result<Vec<u64>, LangError> {
        let idx = v
            .as_index()
            .map_err(|e| LangError::session(format!("NETCDF{k}: bad {which} bound: {e}")))?;
        if idx.len() != k {
            return Err(LangError::session(format!(
                "NETCDF{k}: {which} bound must have {k} component(s), got {}",
                idx.len()
            )));
        }
        Ok(idx)
    }
}

impl Reader for NetcdfSlabReader {
    fn read(&self, arg: &Value) -> Result<(Value, Option<Type>), LangError> {
        let k = self.k;
        let items = arg
            .as_tuple()
            .map_err(|_| LangError::session(format!(
                "NETCDF{k} expects (file, variable, lower, upper)"
            )))?;
        if items.len() != 4 {
            return Err(LangError::session(format!(
                "NETCDF{k} expects (file, variable, lower, upper), got a {}-tuple",
                items.len()
            )));
        }
        let file = match &items[0] {
            Value::Str(s) => s.to_string(),
            other => {
                return Err(LangError::session(format!(
                    "NETCDF{k}: file name must be a string, got {other}"
                )))
            }
        };
        let varname = match &items[1] {
            Value::Str(s) => s.to_string(),
            other => {
                return Err(LangError::session(format!(
                    "NETCDF{k}: variable name must be a string, got {other}"
                )))
            }
        };
        let lo = Self::parse_bound(&items[2], k, "lower")?;
        let hi = Self::parse_bound(&items[3], k, "upper")?;
        let mut count = Vec::with_capacity(k);
        for j in 0..k {
            if hi[j] < lo[j] {
                return Err(LangError::session(format!(
                    "NETCDF{k}: dimension {j}: upper bound {} below lower bound {}",
                    hi[j], lo[j]
                )));
            }
            // Bounds are inclusive, as in the paper's sample session.
            count.push(hi[j] - lo[j] + 1);
        }

        // Validate the binding against the header up front, so a bad
        // file / variable / bound fails at `readval` time in both
        // modes (a lazy array must not defer *request* errors to
        // first touch).
        let sess_err = |e: NcError| LangError::session(format!("NETCDF{k}: {e}"));
        let reader = retry(|| SlabReader::open(&file)).map_err(sess_err)?;
        let meta = reader.header.find(&varname).map_err(sess_err)?;
        if meta.var.ty == crate::format::NcType::Char {
            return Err(LangError::session(format!(
                "NETCDF{k}: NC_CHAR variables cannot be read as real arrays"
            )));
        }
        let shape = reader.header.shape(&meta.var).map_err(sess_err)?;
        if shape.len() != k {
            return Err(LangError::session(format!(
                "NETCDF{k}: variable `{varname}` has {} dimension(s)",
                shape.len()
            )));
        }
        for j in 0..k {
            if hi[j] >= shape[j] {
                return Err(LangError::session(format!(
                    "NETCDF{k}: dimension {j}: upper bound {} outside extent {}",
                    hi[j], shape[j]
                )));
            }
        }
        drop(reader);

        if !self.lazy {
            let vals = read_slab_retrying(
                || {
                    Ok(std::io::BufReader::new(
                        std::fs::File::open(&file).map_err(NcError::from)?,
                    ))
                },
                &varname,
                &lo,
                &count,
            )
            .map_err(sess_err)?;
            let arr = values_to_array(&vals, &count)
                .map_err(|m| LangError::session(format!("NETCDF{k}: {m}")))?;
            return Ok((arr, Some(Type::array(Type::Real, k))));
        }

        let layout = ChunkLayout::row_major(count, DEFAULT_CHUNK_ELEMS)
            .map_err(|e| LangError::session(format!("NETCDF{k}: {e}")))?;
        let label = format!("netcdf:{varname}");
        let mut source: Box<dyn ChunkSource> = Box::new(NcChunkSource::new(
            move || {
                Ok(std::io::BufReader::new(std::fs::File::open(&file).map_err(NcError::from)?))
            },
            varname,
            lo,
        ));
        // Chaos injection sits *inside* the resilience stack, so the
        // stack is what the injected faults exercise.
        if let Some(plan) = self.chaos.clone() {
            source = Box::new(FaultyChunkSource::new(source, plan));
        }
        if let Some(policy) = self.resilience.clone() {
            source = Box::new(ResilientSource::new(source, label.clone(), policy));
        }
        let lazy =
            LazyArray::labeled(layout, ScalarKind::F64, source, self.cache_budget, label);
        let arr = ArrayVal::lazy(lazy)
            .map_err(|e| LangError::session(format!("NETCDF{k}: {e}")))?;
        Ok((Value::Array(Rc::new(arr)), Some(Type::array(Type::Real, k))))
    }
}

/// Convert external values to a `[[real]]_k` complex object.
fn values_to_array(vals: &NcValues, dims: &[u64]) -> Result<Value, String> {
    let mut data = Vec::with_capacity(vals.len());
    for i in 0..vals.len() {
        let x = vals
            .get_f64(i)
            .ok_or_else(|| "NC_CHAR variables cannot be read as real arrays".to_string())?;
        data.push(Value::Real(x));
    }
    let arr = ArrayVal::new(dims.to_vec(), data).map_err(|e| e.to_string())?;
    Ok(Value::Array(Rc::new(arr)))
}

/// A metadata reader: `readval \info using NETCDFINFO at "file.nc"`
/// yields `{(variable-name, [[dim-lengths]])}`.
pub struct NetcdfInfoReader;

impl Reader for NetcdfInfoReader {
    fn read(&self, arg: &Value) -> Result<(Value, Option<Type>), LangError> {
        let file = match arg {
            Value::Str(s) => s.to_string(),
            other => {
                return Err(LangError::session(format!(
                    "NETCDFINFO: file name must be a string, got {other}"
                )))
            }
        };
        let reader = retry(|| SlabReader::open(&file))
            .map_err(|e| LangError::session(format!("NETCDFINFO: {e}")))?;
        let mut rows = Vec::new();
        for m in &reader.header.vars {
            let shape = reader
                .header
                .shape(&m.var)
                .map_err(|e| LangError::session(format!("NETCDFINFO: {e}")))?;
            let dims = Value::array1(shape.into_iter().map(Value::Nat).collect());
            rows.push(Value::tuple(vec![Value::str(&m.var.name), dims]));
        }
        let ty = Type::set(Type::tuple(vec![Type::Str, Type::array1(Type::Nat)]));
        Ok((Value::set(rows), Some(ty)))
    }
}

/// A writer: `writeval A using NETCDF at ("file.nc", "varname")`
/// serialises a `[[real]]_k` array as a NetCDF classic dataset with
/// one double variable (dimensions `dim0`, `dim1`, …). Together with
/// the `NETCDFk` readers this closes the I/O loop the paper's
/// `writeval` command sketches.
pub struct NetcdfArrayWriter;

impl aql_lang::reader::Writer for NetcdfArrayWriter {
    fn write(&self, arg: &Value, data: &Value) -> Result<(), LangError> {
        let items = arg
            .as_tuple()
            .map_err(|_| LangError::session("NETCDF writer expects (file, variable)"))?;
        if items.len() != 2 {
            return Err(LangError::session(format!(
                "NETCDF writer expects (file, variable), got a {}-tuple",
                items.len()
            )));
        }
        let (file, varname) = match (&items[0], &items[1]) {
            (Value::Str(f), Value::Str(v)) => (f.to_string(), v.to_string()),
            _ => {
                return Err(LangError::session(
                    "NETCDF writer: file and variable names must be strings",
                ))
            }
        };
        let arr = data
            .as_array()
            .map_err(|_| LangError::session("NETCDF writer: the value must be an array"))?;
        let mut doubles = Vec::with_capacity(arr.len());
        for v in arr.data().iter() {
            let x = match v {
                Value::Real(r) => *r,
                Value::Nat(n) => *n as f64,
                other => {
                    return Err(LangError::session(format!(
                        "NETCDF writer: elements must be numeric, got {other}"
                    )))
                }
            };
            doubles.push(x);
        }
        let mut f = crate::model::NcFile::new();
        let dimids: Vec<usize> = arr
            .dims()
            .iter()
            .enumerate()
            .map(|(i, &d)| f.add_dim(&format!("dim{i}"), d as u32))
            .collect();
        f.add_var(
            &varname,
            dimids,
            crate::format::NcType::Double,
            vec![crate::model::NcAttr::text("source", "aql writeval")],
            crate::model::NcValues::Double(doubles),
        )
        .map_err(|e| LangError::session(format!("NETCDF writer: {e}")))?;
        crate::write::write_file(&f, &file, crate::format::VERSION_CLASSIC)
            .map_err(|e| LangError::session(format!("NETCDF writer: {e}")))
    }
}

/// Register the NetCDF drivers on a session: readers `NETCDF1` …
/// `NETCDF4` and `NETCDFINFO`, and the writer `NETCDF`.
pub fn register_netcdf(session: &mut Session) {
    for k in 1..=4usize {
        session.register_reader(&format!("NETCDF{k}"), Rc::new(NetcdfSlabReader::lazy(k)));
    }
    session.register_reader("NETCDFINFO", Rc::new(NetcdfInfoReader));
    session.register_writer("NETCDF", Rc::new(NetcdfArrayWriter));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{NcType, VERSION_CLASSIC};
    use crate::model::{NcFile, NcValues};
    use crate::write::write_file;

    fn write_sample(path: &std::path::Path) {
        let mut f = NcFile::new();
        let t = f.add_dim("time", 4);
        let x = f.add_dim("x", 3);
        f.add_var(
            "temp",
            vec![t, x],
            NcType::Float,
            vec![],
            NcValues::Float((0..12).map(|i| i as f32).collect()),
        )
        .unwrap();
        write_file(&f, path, VERSION_CLASSIC).unwrap();
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "aql-ncdriver-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn netcdf2_reads_inclusive_subslab() {
        let dir = tmpdir();
        let path = dir.join("t.nc");
        write_sample(&path);

        // Both binding modes must agree on the values.
        for r in [NetcdfSlabReader::lazy(2), NetcdfSlabReader::eager(2)] {
            let arg = Value::tuple(vec![
                Value::str(path.to_str().unwrap()),
                Value::str("temp"),
                Value::tuple(vec![Value::Nat(1), Value::Nat(0)]),
                Value::tuple(vec![Value::Nat(2), Value::Nat(1)]),
            ]);
            let (v, ty) = r.read(&arg).unwrap();
            assert_eq!(ty, Some(Type::array(Type::Real, 2)));
            let a = v.as_array().unwrap();
            assert_eq!(a.is_lazy(), r.lazy);
            assert_eq!(a.dims(), &[2, 2]);
            assert_eq!(a.get(&[0, 0]).unwrap(), Value::Real(3.0));
            assert_eq!(a.get(&[1, 1]).unwrap(), Value::Real(7.0));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bound_validation() {
        let dir = tmpdir();
        let path = dir.join("t.nc");
        write_sample(&path);
        let r = NetcdfSlabReader::lazy(2);
        // Upper below lower.
        let arg = Value::tuple(vec![
            Value::str(path.to_str().unwrap()),
            Value::str("temp"),
            Value::tuple(vec![Value::Nat(2), Value::Nat(0)]),
            Value::tuple(vec![Value::Nat(1), Value::Nat(1)]),
        ]);
        assert!(r.read(&arg).is_err());
        // Wrong arity bound.
        let arg = Value::tuple(vec![
            Value::str(path.to_str().unwrap()),
            Value::str("temp"),
            Value::Nat(0),
            Value::Nat(1),
        ]);
        assert!(r.read(&arg).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_reader_lists_variables() {
        let dir = tmpdir();
        let path = dir.join("t.nc");
        write_sample(&path);
        let (v, _) = NetcdfInfoReader
            .read(&Value::str(path.to_str().unwrap()))
            .unwrap();
        let s = v.as_set().unwrap();
        assert_eq!(s.len(), 1);
        let row = s.iter().next().unwrap().as_tuple().unwrap();
        assert_eq!(row[0], Value::str("temp"));
        assert_eq!(
            row[1],
            Value::array1(vec![Value::Nat(4), Value::Nat(3)])
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_roundtrips_through_reader() {
        let dir = tmpdir();
        let path = dir.join("w.nc");
        let p = path.to_str().unwrap();
        let mut s = Session::new();
        register_netcdf(&mut s);
        // Write a computed 2-d array, read it back, compare host-side.
        s.run(&format!(
            "val \\M = [[ (i * 10 + j) | \\i < 3, \\j < 4 ]];
             writeval M using NETCDF at (\"{p}\", \"grid\");
             readval \\Back using NETCDF2 at (\"{p}\", \"grid\", (0, 0), (2, 3));"
        ))
        .unwrap();
        let back = s.val("Back").expect("Back bound").clone();
        let arr = back.as_array().unwrap();
        assert_eq!(arr.dims(), &[3, 4]);
        for i in 0..3u64 {
            for j in 0..4u64 {
                assert_eq!(
                    arr.get(&[i, j]).unwrap(),
                    Value::Real((i * 10 + j) as f64),
                    "at ({i}, {j})"
                );
            }
        }
        // Info reflects the written shape.
        s.run(&format!("readval \\info using NETCDFINFO at \"{p}\";"))
            .unwrap();
        let (_, dims) = s.eval_query("get!{d | (\"grid\", \\d) <- info}").unwrap();
        assert_eq!(dims, Value::array1(vec![Value::Nat(3), Value::Nat(4)]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_rejects_bad_input() {
        let w = NetcdfArrayWriter;
        use aql_lang::reader::Writer as _;
        assert!(w.write(&Value::Nat(1), &Value::Nat(2)).is_err());
        let arg = Value::tuple(vec![Value::str("/tmp/x.nc"), Value::str("v")]);
        assert!(w.write(&arg, &Value::Nat(2)).is_err(), "not an array");
        let strings = Value::array1(vec![Value::str("a")]);
        assert!(w.write(&arg, &strings).is_err(), "non-numeric elements");
    }

    #[test]
    fn transient_faults_recover_via_retry() {
        use crate::io::{FaultPlan, FaultyIo};
        use crate::write::to_bytes;
        let mut f = NcFile::new();
        let x = f.add_dim("x", 4);
        f.add_var("v", vec![x], NcType::Int, vec![], NcValues::Int(vec![1, 2, 3, 4])).unwrap();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();

        // First attempt hits an injected transient error; the retry
        // reopens a clean source and succeeds.
        let mut attempts = 0;
        let vals = read_slab_retrying(
            || {
                attempts += 1;
                let plan = if attempts == 1 {
                    FaultPlan::new().transient_at(0)
                } else {
                    FaultPlan::new()
                };
                Ok(FaultyIo::new(std::io::Cursor::new(bytes.clone()), plan))
            },
            "v",
            &[1],
            &[2],
        )
        .unwrap();
        assert_eq!(vals, NcValues::Int(vec![2, 3]));
        assert_eq!(attempts, 2);

        // The retried attempt must land in the flight recorder with
        // the variable's label, so `\doctor` can see eager-mode
        // retries, not just the resilience stack's.
        let snap = aql_journal::snapshot();
        assert!(
            snap.events.iter().any(|e| {
                e.tag == aql_journal::Tag::Retry && e.a == 2 && e.label_str() == "netcdf:v"
            }),
            "eager retry missing from the journal: {:?}",
            snap.events
        );
    }

    #[test]
    fn persistent_faults_fail_after_bounded_attempts() {
        use crate::io::{FaultPlan, FaultyIo, RETRY_ATTEMPTS};
        use crate::write::to_bytes;
        let mut f = NcFile::new();
        let x = f.add_dim("x", 2);
        f.add_var("v", vec![x], NcType::Int, vec![], NcValues::Int(vec![7, 8])).unwrap();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();

        // Every read fails transiently: the retry loop must give up
        // after its bounded attempt budget with the original context.
        let mut attempts = 0u32;
        let err = read_slab_retrying(
            || {
                attempts += 1;
                let plan = FaultPlan::new().transient_at(0).transient_at(1).transient_at(2);
                Ok(FaultyIo::new(std::io::Cursor::new(bytes.clone()), plan))
            },
            "v",
            &[0],
            &[2],
        )
        .unwrap_err();
        assert_eq!(attempts, RETRY_ATTEMPTS);
        assert!(err.is_transient(), "final error keeps its classification: {err}");

        // Non-transient failures are not retried at all.
        let mut attempts = 0u32;
        let err = read_slab_retrying(
            || {
                attempts += 1;
                Ok(FaultyIo::new(
                    std::io::Cursor::new(bytes.clone()),
                    FaultPlan::new().persistent_from(0),
                ))
            },
            "v",
            &[0],
            &[2],
        )
        .unwrap_err();
        assert_eq!(attempts, 1);
        assert!(!err.is_transient());
        assert!(err.to_string().contains("injected persistent"), "context kept: {err}");
    }

    #[test]
    fn chaos_faults_are_absorbed_by_resilience() {
        let dir = tmpdir();
        let path = dir.join("c.nc");
        write_sample(&path);
        let mut r = NetcdfSlabReader::lazy(2);
        // Op 0 fails transiently, op 1 serves corrupted bytes; the
        // resilience stack retries through both (checksum verification
        // catches the corruption) and op 2 serves clean data.
        r.chaos = Some(ChunkFaultPlan {
            transient_ops: [0u64].into_iter().collect(),
            corrupt_ops: [1u64].into_iter().collect(),
            ..ChunkFaultPlan::default()
        });
        let arg = Value::tuple(vec![
            Value::str(path.to_str().unwrap()),
            Value::str("temp"),
            Value::tuple(vec![Value::Nat(0), Value::Nat(0)]),
            Value::tuple(vec![Value::Nat(3), Value::Nat(2)]),
        ]);
        let (v, _) = r.read(&arg).unwrap();
        let a = v.as_array().unwrap();
        assert!(a.is_lazy());
        for i in 0..4u64 {
            for j in 0..3u64 {
                assert_eq!(
                    a.get(&[i, j]).unwrap(),
                    Value::Real((i * 3 + j) as f64),
                    "clean value served at ({i}, {j}) despite injected faults"
                );
            }
        }
        // Same faults with the resilience stack stripped: the first
        // touch surfaces the raw injected error instead.
        let mut raw = NetcdfSlabReader::lazy(2);
        raw.resilience = None;
        raw.chaos = Some(ChunkFaultPlan {
            transient_ops: [0u64].into_iter().collect(),
            ..ChunkFaultPlan::default()
        });
        let (v, _) = raw.read(&arg).unwrap();
        let a = v.as_array().unwrap();
        assert!(a.try_get(&[0, 0]).is_err(), "no retry without the stack");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_integration() {
        let dir = tmpdir();
        let path = dir.join("t.nc");
        write_sample(&path);

        let mut s = Session::new();
        register_netcdf(&mut s);
        let p = path.to_str().unwrap();
        s.run(&format!(
            "readval \\T using NETCDF2 at (\"{p}\", \"temp\", (0, 0), (3, 2));"
        ))
        .unwrap();
        let (_, v) = s.eval_query("T[2, 1]").unwrap();
        assert_eq!(v, Value::Real(7.0));
        // Subslabs compose with AQL macros.
        let (_, v) = s.eval_query("len!(proj_col!(T, 0))").unwrap();
        assert_eq!(v, Value::Nat(4));
        std::fs::remove_dir_all(&dir).ok();
    }
}
