//! Synthetic weather data.
//!
//! The paper's examples run against real NYC observations (`temp.nc`
//! etc.) which we do not have; per the reproduction's substitution
//! policy, this module generates *deterministic* synthetic datasets
//! with the same shapes and realistic structure (diurnal and seasonal
//! cycles, heat waves, anti-correlated humidity), written as genuine
//! NetCDF classic files so the whole driver code path is exercised.
//!
//! Determinism comes from a small xorshift PRNG with a fixed seed —
//! examples, tests and benches all see identical data.

use std::f64::consts::TAU;
use std::path::{Path, PathBuf};

use crate::format::{NcType, VERSION_CLASSIC};
use crate::model::{NcAttr, NcError, NcFile, NcValues};
use crate::write::write_file;

/// Deterministic xorshift64* generator.
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeded generator.
    pub fn new(seed: u64) -> Xorshift {
        Xorshift(seed.max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [-a, a].
    pub fn jitter(&mut self, a: f64) -> f64 {
        (self.unit() * 2.0 - 1.0) * a
    }
}

/// Days in June (the §1 query's month).
pub const JUNE_DAYS: usize = 30;
/// Hours in the June datasets.
pub const JUNE_HOURS: usize = JUNE_DAYS * 24;
/// Altitude levels of the wind-speed array (§1: "ranging over various
/// altitudes"; index 0 is the surface level the query projects).
pub const WS_LEVELS: usize = 5;
/// The June days (1-based) made "unbearably hot" by construction, so
/// the §1 heat-index query has a known answer.
pub const HEATWAVE_DAYS: [usize; 3] = [11, 18, 26];

/// Hourly surface temperature for June (°F): diurnal cycle around a
/// slowly rising base, with strong heat waves on [`HEATWAVE_DAYS`].
pub fn june_temp() -> Vec<f64> {
    let mut rng = Xorshift::new(0xA71);
    (0..JUNE_HOURS)
        .map(|h| {
            let day = h / 24;
            let hour = (h % 24) as f64;
            let base = 72.0 + 6.0 * (day as f64 / JUNE_DAYS as f64);
            let diurnal = 9.0 * ((hour - 14.0) / 24.0 * TAU).cos();
            let wave = if HEATWAVE_DAYS.contains(&(day + 1)) { 14.0 } else { 0.0 };
            base + diurnal + wave + rng.jitter(1.0)
        })
        .collect()
}

/// Hourly relative humidity for June (%): anti-correlated with the
/// diurnal temperature cycle, extra-humid on heat-wave days (which is
/// what pushes the heat index over the threshold).
pub fn june_rh() -> Vec<f64> {
    let mut rng = Xorshift::new(0xB52);
    (0..JUNE_HOURS)
        .map(|h| {
            let day = h / 24;
            let hour = (h % 24) as f64;
            let diurnal = -18.0 * ((hour - 14.0) / 24.0 * TAU).cos();
            let wave = if HEATWAVE_DAYS.contains(&(day + 1)) { 18.0 } else { 0.0 };
            (55.0 + diurnal + wave + rng.jitter(4.0)).clamp(15.0, 100.0)
        })
        .collect()
}

/// Half-hourly wind speed over altitude levels (mph), row-major
/// `(time, level)`: `2 · JUNE_HOURS` half-hour steps × [`WS_LEVELS`]
/// levels. Calm on heat-wave days; speed grows with altitude.
pub fn june_ws() -> Vec<f64> {
    let mut rng = Xorshift::new(0xC93);
    let steps = JUNE_HOURS * 2;
    let mut out = Vec::with_capacity(steps * WS_LEVELS);
    for s in 0..steps {
        let day = s / 48;
        let calm = if HEATWAVE_DAYS.contains(&(day + 1)) { 0.25 } else { 1.0 };
        let breeze = 8.0 + 3.0 * ((s as f64 / 48.0) * TAU / 7.0).sin();
        for level in 0..WS_LEVELS {
            let altitude_gain = 1.0 + 0.35 * level as f64;
            out.push((breeze * calm * altitude_gain + rng.jitter(1.2)).max(0.0));
        }
    }
    out
}

/// Build the June dataset (`T`, `RH`, `WS`) as a NetCDF file in
/// memory: exactly the three §1 inputs, with their differing
/// dimensionalities and griddings.
pub fn june_weather_file() -> Result<NcFile, NcError> {
    let mut f = NcFile::new();
    let time = f.add_dim("time", JUNE_HOURS as u32);
    let time_half = f.add_dim("time_half", (JUNE_HOURS * 2) as u32);
    let level = f.add_dim("level", WS_LEVELS as u32);
    f.gattrs.push(NcAttr::text("title", "synthetic NYC June weather"));
    f.gattrs.push(NcAttr::text("convention", "paper §1 inputs T, RH, WS"));
    f.add_var(
        "T",
        vec![time],
        NcType::Double,
        vec![NcAttr::text("units", "degF")],
        NcValues::Double(june_temp()),
    )?;
    f.add_var(
        "RH",
        vec![time],
        NcType::Double,
        vec![NcAttr::text("units", "percent")],
        NcValues::Double(june_rh()),
    )?;
    f.add_var(
        "WS",
        vec![time_half, level],
        NcType::Double,
        vec![NcAttr::text("units", "mph")],
        NcValues::Double(june_ws()),
    )?;
    Ok(f)
}

/// Latitude grid for the year file (NYC at index 2).
pub const LAT_GRID: [f64; 5] = [40.20, 40.45, 40.70, 40.95, 41.20];
/// Longitude grid for the year file (NYC at index 2).
pub const LON_GRID: [f64; 5] = [-74.50, -74.25, -74.00, -73.75, -73.50];

/// Index of the grid point nearest a coordinate.
pub fn nearest_index(grid: &[f64], x: f64) -> usize {
    let mut best = 0;
    for (i, g) in grid.iter().enumerate() {
        if (g - x).abs() < (grid[best] - x).abs() {
            best = i;
        }
    }
    best
}

/// A year's worth of hourly temperature over a small lat/lon grid —
/// the `temp.nc` of the §4.2 session. `temp(time, lat, lon)` with
/// `time` the record dimension (8760 records). Seasonal + diurnal
/// cycles; the evenings of a few specific June days stay hot (so the
/// "hotter than 85° after sunset" query has a known answer).
pub fn year_temp_file() -> Result<NcFile, NcError> {
    let hours = 365 * 24;
    let mut f = NcFile::new();
    let time = f.add_dim("time", 0); // record dimension
    let lat = f.add_dim("lat", LAT_GRID.len() as u32);
    let lon = f.add_dim("lon", LON_GRID.len() as u32);
    f.numrecs = hours as u32;
    f.gattrs.push(NcAttr::text("title", "synthetic yearly temperature"));

    f.add_var(
        "lat",
        vec![lat],
        NcType::Double,
        vec![NcAttr::text("units", "degrees_north")],
        NcValues::Double(LAT_GRID.to_vec()),
    )?;
    f.add_var(
        "lon",
        vec![lon],
        NcType::Double,
        vec![NcAttr::text("units", "degrees_east")],
        NcValues::Double(LON_GRID.to_vec()),
    )?;

    let mut rng = Xorshift::new(0xD14);
    let nlat = LAT_GRID.len();
    let nlon = LON_GRID.len();
    let mut data = Vec::with_capacity(hours * nlat * nlon);
    for h in 0..hours {
        let day = h / 24;
        let hour = (h % 24) as f64;
        // Season peaks mid-July (day ~200).
        let season = 55.0 + 25.0 * (((day as f64 - 200.0) / 365.0) * TAU).cos();
        let diurnal = 8.0 * ((hour - 14.0) / 24.0 * TAU).cos();
        // Hot June evenings placed so that the §4.2 session's query —
        // run *verbatim*, with the paper's own `days_since_1_1` macro,
        // which indexes days of the year 1-based — answers {25,27,28}.
        // Under that convention, query-day d corresponds to day-of-year
        // (0-based) `days_before_june() + d`.
        let paper_june_day = day as i64 - days_before_june() as i64;
        let hot_evening = if [25, 27, 28].contains(&paper_june_day) && hour >= 18.0 {
            16.0
        } else {
            0.0
        };
        for la in 0..nlat {
            for lo in 0..nlon {
                let coastal = 0.6 * (la as f64 - 2.0) - 0.4 * (lo as f64 - 2.0);
                data.push(season + diurnal + hot_evening + coastal + rng.jitter(0.8));
            }
        }
    }
    f.add_var(
        "temp",
        vec![time, lat, lon],
        NcType::Double,
        vec![NcAttr::text("units", "degF")],
        NcValues::Double(data),
    )?;
    Ok(f)
}

/// Days before June 1 in a non-leap year (the §4.2 session uses 1995).
pub fn days_before_june() -> usize {
    31 + 28 + 31 + 30 + 31
}

/// Write both synthetic datasets into `dir`, returning
/// `(temp.nc, wx_june.nc)` paths. Files are only rewritten when
/// missing, so repeated example/bench runs are cheap.
pub fn write_example_data(dir: &Path) -> Result<(PathBuf, PathBuf), NcError> {
    std::fs::create_dir_all(dir)?;
    let temp = dir.join("temp.nc");
    let june = dir.join("wx_june.nc");
    if !temp.exists() {
        write_file(&year_temp_file()?, &temp, VERSION_CLASSIC)?;
    }
    if !june.exists() {
        write_file(&june_weather_file()?, &june, VERSION_CLASSIC)?;
    }
    Ok((temp, june))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::from_bytes_full;
    use crate::write::to_bytes;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(june_temp(), june_temp());
        assert_eq!(june_rh(), june_rh());
        assert_eq!(june_ws(), june_ws());
    }

    #[test]
    fn june_shapes_match_the_paper() {
        let f = june_weather_file().unwrap();
        let (_, t) = f.find_var("T").unwrap();
        assert_eq!(f.var_shape(t).unwrap(), vec![720]);
        let (_, ws) = f.find_var("WS").unwrap();
        // Extra altitude dimension, half-hourly gridding (§1).
        assert_eq!(f.var_shape(ws).unwrap(), vec![1440, 5]);
    }

    #[test]
    fn heatwave_days_are_hotter() {
        let t = june_temp();
        let day_max = |d: usize| -> f64 {
            (0..24).map(|h| t[(d - 1) * 24 + h]).fold(f64::MIN, f64::max)
        };
        for &d in &HEATWAVE_DAYS {
            assert!(day_max(d) > 88.0, "heat-wave day {d} max {}", day_max(d));
        }
        // A quiet day stays cooler than every heat-wave day.
        assert!(day_max(5) < day_max(HEATWAVE_DAYS[0]) - 8.0);
    }

    #[test]
    fn rh_is_in_range() {
        assert!(june_rh().iter().all(|&x| (15.0..=100.0).contains(&x)));
        assert!(june_ws().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn june_file_roundtrips() {
        let f = june_weather_file().unwrap();
        let back = from_bytes_full(to_bytes(&f, VERSION_CLASSIC).unwrap()).unwrap();
        assert_eq!(back.vars.len(), 3);
        assert_eq!(back.data[0], f.data[0]);
        assert_eq!(back.data[2], f.data[2]);
    }

    #[test]
    fn year_file_has_hot_june_evenings() {
        let f = year_temp_file().unwrap();
        let (vi, var) = f.find_var("temp").unwrap();
        let shape = f.var_shape(var).unwrap();
        assert_eq!(shape, vec![8760, 5, 5]);
        let data = match &f.data[vi] {
            NcValues::Double(v) => v,
            _ => panic!("type"),
        };
        let nyc = |h: usize| data[h * 25 + 2 * 5 + 2];
        // Paper-day 25 at 22:00 vs paper-day 24 at 22:00.
        let h25 = (days_before_june() + 25) * 24 + 22;
        let h24 = (days_before_june() + 24) * 24 + 22;
        assert!(nyc(h25) > nyc(h24) + 8.0);
    }

    #[test]
    fn nearest_index_picks_nyc() {
        assert_eq!(nearest_index(&LAT_GRID, 40.7), 2);
        assert_eq!(nearest_index(&LON_GRID, -74.0), 2);
        assert_eq!(nearest_index(&LAT_GRID, 39.0), 0);
        assert_eq!(nearest_index(&LAT_GRID, 45.0), 4);
    }

    #[test]
    fn write_example_data_creates_files() {
        let dir = std::env::temp_dir().join(format!("aql-synth-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (temp, june) = write_example_data(&dir).unwrap();
        assert!(temp.exists());
        assert!(june.exists());
        // Second call is a no-op (files kept).
        let before = std::fs::metadata(&temp).unwrap().modified().unwrap();
        write_example_data(&dir).unwrap();
        let after = std::fs::metadata(&temp).unwrap().modified().unwrap();
        assert_eq!(before, after);
        std::fs::remove_dir_all(&dir).ok();
    }
}
