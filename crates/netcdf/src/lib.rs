//! # aql-netcdf — a from-scratch NetCDF classic driver for AQL
//!
//! §4 of *Libkin, Machlin & Wong (SIGMOD 1996)* ties AQL to "legacy"
//! scientific data through a NetCDF driver. This crate implements the
//! NetCDF **classic** binary format (CDF-1 and the 64-bit-offset
//! CDF-2) from the published specification — header, dimensions,
//! attributes, fixed and record variables, all six external types —
//! with:
//!
//! * [`mod@write`] — a serializer ([`write::to_bytes`] / [`write::write_file`]);
//! * [`read`] — a header parser and [`read::SlabReader`], which serves
//!   *hyperslab* (subslab) requests reading only the necessary bytes,
//!   exactly what the paper's `NETCDF3` reader does;
//! * [`driver`] — AQL session readers `NETCDF1`…`NETCDF4` (subslab of
//!   a k-d variable by inclusive bounds, as in the §4.2 session) and
//!   `NETCDFINFO` (variable inventory);
//! * [`synth`] — deterministic synthetic weather datasets standing in
//!   for the paper's 1995 NYC observations (see DESIGN.md for the
//!   substitution rationale);
//! * [`io`] — the injectable byte-source abstraction ([`io::IoSource`])
//!   plus the fault-injection wrapper ([`io::FaultyIo`]) and the
//!   bounded retry loop ([`io::retry`]) the drivers use for transient
//!   I/O errors.
//!
//! The parser is hardened against corrupt input: every declared
//! count, length, and offset is validated against the actual source
//! length before any allocation, all offset arithmetic is checked,
//! and failures carry the byte offset at which the contradiction was
//! found ([`NcError::Corrupt`]).

#![warn(missing_docs)]

pub mod chunk;
pub mod driver;
pub mod format;
pub mod io;
pub mod model;
pub mod read;
pub mod synth;
pub mod write;

pub use driver::register_netcdf;
pub use format::NcType;
pub use model::{NcAttr, NcDim, NcError, NcFile, NcValues, NcVar};
