//! Parser and hyperslab reader for the NetCDF classic format.
//!
//! [`read_header`] parses the header (dimensions, attributes, variable
//! metadata with data offsets). [`SlabReader`] then serves *subslab*
//! (hyperslab) requests — `start`/`count` vectors per dimension —
//! reading only the bytes that contribute to the result, which is
//! exactly what the paper's `NETCDF3` reader does when it extracts a
//! bounded region of a variable (§4.1–4.2).

use std::fs::File;
use std::io::{BufReader, Cursor, Read, Seek, SeekFrom};
use std::path::Path;

use crate::format::{NcType, MAGIC, NC_ATTRIBUTE, NC_DIMENSION, NC_VARIABLE, VERSION_64BIT, VERSION_CLASSIC};
use crate::model::{NcAttr, NcDim, NcError, NcFile, NcValues, NcVar};

/// Variable metadata with its on-disk layout.
#[derive(Debug, Clone)]
pub struct VarMeta {
    /// The variable.
    pub var: NcVar,
    /// Stored `vsize` (padded byte size of the variable / one record).
    pub vsize: u64,
    /// Byte offset of the variable's data.
    pub begin: u64,
}

/// A parsed header.
#[derive(Debug, Clone)]
pub struct Header {
    /// Format version byte (1 or 2).
    pub version: u8,
    /// Number of records.
    pub numrecs: u32,
    /// Dimensions.
    pub dims: Vec<NcDim>,
    /// Global attributes.
    pub gattrs: Vec<NcAttr>,
    /// Variables with layout info.
    pub vars: Vec<VarMeta>,
}

impl Header {
    /// Resolved shape of a variable (record dim → numrecs).
    pub fn shape(&self, var: &NcVar) -> Result<Vec<u64>, NcError> {
        var.dimids
            .iter()
            .map(|&d| {
                let dim = self
                    .dims
                    .get(d)
                    .ok_or_else(|| NcError::Format(format!("bad dimid {d}")))?;
                Ok(if dim.is_record() { self.numrecs as u64 } else { dim.len as u64 })
            })
            .collect()
    }

    /// Is the variable a record variable?
    pub fn is_record_var(&self, var: &NcVar) -> bool {
        var.dimids
            .first()
            .and_then(|&d| self.dims.get(d))
            .is_some_and(NcDim::is_record)
    }

    /// Find a variable by name.
    pub fn find(&self, name: &str) -> Result<&VarMeta, NcError> {
        self.vars
            .iter()
            .find(|m| m.var.name == name)
            .ok_or_else(|| NcError::NotFound(format!("variable `{name}`")))
    }

    /// Byte distance between consecutive records (per spec: the sum of
    /// the record variables' vsizes, except a *single* record variable
    /// whose records are packed without padding).
    pub fn record_stride(&self) -> u64 {
        let rec: Vec<&VarMeta> = self
            .vars
            .iter()
            .filter(|m| self.is_record_var(&m.var))
            .collect();
        match rec.len() {
            0 => 0,
            1 => {
                let m = rec[0];
                let per: u64 = self
                    .shape(&m.var)
                    .map(|s| s.iter().skip(1).product::<u64>())
                    .unwrap_or(0);
                per * m.var.ty.size()
            }
            _ => rec.iter().map(|m| m.vsize).sum(),
        }
    }
}

struct Cur<'a, R: Read + Seek> {
    r: &'a mut R,
    pos: u64,
}

impl<'a, R: Read + Seek> Cur<'a, R> {
    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, NcError> {
        let mut buf = vec![0u8; n];
        self.r
            .read_exact(&mut buf)
            .map_err(|e| NcError::Format(format!("truncated header at byte {}: {e}", self.pos)))?;
        self.pos += n as u64;
        Ok(buf)
    }

    fn u32(&mut self) -> Result<u32, NcError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, NcError> {
        let b = self.bytes(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn name(&mut self) -> Result<String, NcError> {
        let n = self.u32()? as usize;
        let raw = self.bytes(n)?;
        let padding = (4 - n % 4) % 4;
        self.bytes(padding)?;
        String::from_utf8(raw).map_err(|_| NcError::Format("non-UTF-8 name".into()))
    }

    fn values(&mut self, ty: NcType, n: usize) -> Result<NcValues, NcError> {
        let byte_len = n as u64 * ty.size();
        let raw = self.bytes(byte_len as usize)?;
        let padding = ((4 - byte_len % 4) % 4) as usize;
        self.bytes(padding)?;
        Ok(decode(ty, &raw, n))
    }

    fn attr_list(&mut self) -> Result<Vec<NcAttr>, NcError> {
        let tag = self.u32()?;
        let n = self.u32()? as usize;
        if tag == 0 && n == 0 {
            return Ok(Vec::new());
        }
        if tag != NC_ATTRIBUTE {
            return Err(NcError::Format(format!("expected attribute tag, got {tag:#x}")));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.name()?;
            let code = self.u32()?;
            let ty = NcType::from_code(code)
                .ok_or_else(|| NcError::Format(format!("bad nc_type {code}")))?;
            let count = self.u32()? as usize;
            let values = self.values(ty, count)?;
            out.push(NcAttr { name, values });
        }
        Ok(out)
    }
}

/// Decode `n` big-endian values of type `ty` from `raw`.
pub fn decode(ty: NcType, raw: &[u8], n: usize) -> NcValues {
    match ty {
        NcType::Byte => NcValues::Byte(raw[..n].iter().map(|&b| b as i8).collect()),
        NcType::Char => NcValues::Char(raw[..n].to_vec()),
        NcType::Short => NcValues::Short(
            (0..n)
                .map(|i| i16::from_be_bytes([raw[2 * i], raw[2 * i + 1]]))
                .collect(),
        ),
        NcType::Int => NcValues::Int(
            (0..n)
                .map(|i| {
                    i32::from_be_bytes([raw[4 * i], raw[4 * i + 1], raw[4 * i + 2], raw[4 * i + 3]])
                })
                .collect(),
        ),
        NcType::Float => NcValues::Float(
            (0..n)
                .map(|i| {
                    f32::from_be_bytes([raw[4 * i], raw[4 * i + 1], raw[4 * i + 2], raw[4 * i + 3]])
                })
                .collect(),
        ),
        NcType::Double => NcValues::Double(
            (0..n)
                .map(|i| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&raw[8 * i..8 * i + 8]);
                    f64::from_be_bytes(b)
                })
                .collect(),
        ),
    }
}

/// Parse the header from the start of `r`.
pub fn read_header<R: Read + Seek>(r: &mut R) -> Result<Header, NcError> {
    r.seek(SeekFrom::Start(0))?;
    let mut c = Cur { r, pos: 0 };
    let magic = c.bytes(4)?;
    if &magic[0..3] != MAGIC {
        return Err(NcError::Format("not a NetCDF classic file (bad magic)".into()));
    }
    let version = magic[3];
    if version != VERSION_CLASSIC && version != VERSION_64BIT {
        return Err(NcError::Format(format!("unsupported NetCDF version {version}")));
    }
    let numrecs = c.u32()?;

    // dim_list
    let tag = c.u32()?;
    let ndims = c.u32()? as usize;
    let mut dims = Vec::with_capacity(ndims);
    if !(tag == 0 && ndims == 0) {
        if tag != NC_DIMENSION {
            return Err(NcError::Format(format!("expected dimension tag, got {tag:#x}")));
        }
        for _ in 0..ndims {
            let name = c.name()?;
            let len = c.u32()?;
            dims.push(NcDim { name, len });
        }
    }

    let gattrs = c.attr_list()?;

    // var_list
    let tag = c.u32()?;
    let nvars = c.u32()? as usize;
    let mut vars = Vec::with_capacity(nvars);
    if !(tag == 0 && nvars == 0) {
        if tag != NC_VARIABLE {
            return Err(NcError::Format(format!("expected variable tag, got {tag:#x}")));
        }
        for _ in 0..nvars {
            let name = c.name()?;
            let nd = c.u32()? as usize;
            let mut dimids = Vec::with_capacity(nd);
            for _ in 0..nd {
                dimids.push(c.u32()? as usize);
            }
            let attrs = c.attr_list()?;
            let code = c.u32()?;
            let ty = NcType::from_code(code)
                .ok_or_else(|| NcError::Format(format!("bad nc_type {code}")))?;
            let vsize = c.u32()? as u64;
            let begin = if version == VERSION_64BIT { c.u64()? } else { c.u32()? as u64 };
            vars.push(VarMeta { var: NcVar { name, dimids, attrs, ty }, vsize, begin });
        }
    }

    Ok(Header { version, numrecs, dims, gattrs, vars })
}

/// A reader serving hyperslab requests against an open dataset.
pub struct SlabReader<R: Read + Seek> {
    src: R,
    /// The parsed header.
    pub header: Header,
}

impl SlabReader<BufReader<File>> {
    /// Open a dataset file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, NcError> {
        let mut src = BufReader::new(File::open(path)?);
        let header = read_header(&mut src)?;
        Ok(SlabReader { src, header })
    }
}

impl SlabReader<Cursor<Vec<u8>>> {
    /// Read a dataset from bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, NcError> {
        let mut src = Cursor::new(bytes);
        let header = read_header(&mut src)?;
        Ok(SlabReader { src, header })
    }
}

impl<R: Read + Seek> SlabReader<R> {
    /// Read the hyperslab `start[j] .. start[j]+count[j]` of variable
    /// `name`, returning the values in row-major order.
    pub fn read_slab(
        &mut self,
        name: &str,
        start: &[u64],
        count: &[u64],
    ) -> Result<NcValues, NcError> {
        let meta = self.header.find(name)?.clone();
        let shape = self.header.shape(&meta.var)?;
        let k = shape.len();
        if start.len() != k || count.len() != k {
            return Err(NcError::Slab(format!(
                "variable `{name}` has {k} dimension(s); start/count have {}/{}",
                start.len(),
                count.len()
            )));
        }
        for j in 0..k {
            if start[j].checked_add(count[j]).is_none_or(|end| end > shape[j]) {
                return Err(NcError::Slab(format!(
                    "dimension {j}: start {} + count {} exceeds extent {}",
                    start[j], count[j], shape[j]
                )));
            }
        }
        let total: u64 = count.iter().product();
        if total == 0 {
            return Ok(NcValues::empty(meta.var.ty));
        }

        let tsize = meta.var.ty.size();
        let is_rec = self.header.is_record_var(&meta.var);
        let rec_stride = self.header.record_stride();

        // Row-major element strides within the variable. For record
        // variables the outermost "stride" is the record stride in
        // *bytes*, handled separately.
        let inner_shape = if is_rec { &shape[1..] } else { &shape[..] };
        let mut elem_strides = vec![1u64; inner_shape.len()];
        for j in (0..inner_shape.len().saturating_sub(1)).rev() {
            elem_strides[j] = elem_strides[j + 1] * inner_shape[j + 1];
        }

        // Iterate all index combinations except the last dimension,
        // reading a contiguous run of `count[k-1]` values each time.
        let run = count[k - 1];
        let mut raw = Vec::with_capacity((total * tsize) as usize);
        let mut idx = start.to_vec();
        loop {
            // Byte offset of the run starting at `idx`.
            let mut off = meta.begin;
            if is_rec {
                off += idx[0] * rec_stride;
                for (j, &i) in idx.iter().enumerate().skip(1) {
                    off += i * elem_strides[j - 1] * tsize;
                }
            } else {
                for (j, &i) in idx.iter().enumerate() {
                    off += i * elem_strides[j] * tsize;
                }
            }
            // A 1-d record variable reads one value per record.
            let this_run = if is_rec && k == 1 { 1 } else { run };
            let byte_len = (this_run * tsize) as usize;
            let at = raw.len();
            raw.resize(at + byte_len, 0);
            self.src.seek(SeekFrom::Start(off))?;
            self.src
                .read_exact(&mut raw[at..])
                .map_err(|e| NcError::Io(format!("reading `{name}` at {off}: {e}")))?;

            // Advance the multi-index (skipping the run dimension,
            // except for 1-d record variables which step per record).
            let step_from = if is_rec && k == 1 { 1 } else { k - 1 };
            let mut j = step_from;
            loop {
                if j == 0 {
                    return Ok(decode(meta.var.ty, &raw, total as usize));
                }
                j -= 1;
                idx[j] += 1;
                if idx[j] < start[j] + count[j] {
                    break;
                }
                idx[j] = start[j];
            }
        }
    }

    /// Read a whole variable, returning values and resolved shape.
    pub fn read_all(&mut self, name: &str) -> Result<(NcValues, Vec<u64>), NcError> {
        let meta = self.header.find(name)?.clone();
        let shape = self.header.shape(&meta.var)?;
        let start = vec![0u64; shape.len()];
        let vals = self.read_slab(name, &start, &shape)?;
        Ok((vals, shape))
    }
}

/// Fully materialise a dataset from bytes (header + all data).
pub fn from_bytes_full(bytes: Vec<u8>) -> Result<NcFile, NcError> {
    let mut r = SlabReader::from_bytes(bytes)?;
    let header = r.header.clone();
    let mut f = NcFile {
        dims: header.dims.clone(),
        gattrs: header.gattrs.clone(),
        vars: Vec::new(),
        data: Vec::new(),
        numrecs: header.numrecs,
    };
    for m in &header.vars {
        let (vals, _) = r.read_all(&m.var.name)?;
        f.vars.push(m.var.clone());
        f.data.push(vals);
    }
    Ok(f)
}

/// Fully materialise a dataset from a file.
pub fn read_file_full(path: impl AsRef<Path>) -> Result<NcFile, NcError> {
    let bytes = std::fs::read(path)?;
    from_bytes_full(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::to_bytes;

    /// A dataset with fixed and record variables, attributes, multiple
    /// types.
    fn sample() -> NcFile {
        let mut f = NcFile::new();
        let t = f.add_dim("time", 0);
        let lat = f.add_dim("lat", 2);
        let lon = f.add_dim("lon", 3);
        f.numrecs = 4;
        f.gattrs.push(NcAttr::text("title", "synthetic weather"));
        f.add_var(
            "temp",
            vec![t, lat, lon],
            NcType::Float,
            vec![NcAttr::text("units", "degF"), NcAttr::double("missing", -999.0)],
            NcValues::Float((0..24).map(|i| i as f32 * 0.5).collect()),
        )
        .unwrap();
        f.add_var(
            "elev",
            vec![lat, lon],
            NcType::Int,
            vec![],
            NcValues::Int((0..6).map(|i| i * 100).collect()),
        )
        .unwrap();
        f.add_var(
            "tick",
            vec![t],
            NcType::Short,
            vec![],
            NcValues::Short(vec![10, 11, 12, 13]),
        )
        .unwrap();
        f
    }

    #[test]
    fn roundtrip_both_versions() {
        for version in [VERSION_CLASSIC, VERSION_64BIT] {
            let f = sample();
            let bytes = to_bytes(&f, version).unwrap();
            let back = from_bytes_full(bytes).unwrap();
            assert_eq!(back.numrecs, 4);
            assert_eq!(back.dims, f.dims);
            assert_eq!(back.gattrs, f.gattrs);
            assert_eq!(back.vars.len(), 3);
            for i in 0..3 {
                assert_eq!(back.vars[i], f.vars[i], "v{version} var {i}");
                assert_eq!(back.data[i], f.data[i], "v{version} data {i}");
            }
        }
    }

    #[test]
    fn hyperslab_matches_full_read() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();

        // temp[1..3, 0..2, 1..3] against the full data.
        let slab = r.read_slab("temp", &[1, 0, 1], &[2, 2, 2]).unwrap();
        let NcValues::Float(got) = slab else { panic!("type") };
        let full = match &f.data[0] {
            NcValues::Float(v) => v.clone(),
            _ => unreachable!(),
        };
        let mut expect = Vec::new();
        for rec in 1..3 {
            for la in 0..2 {
                for lo in 1..3 {
                    expect.push(full[rec * 6 + la * 3 + lo]);
                }
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn fixed_var_hyperslab() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();
        let slab = r.read_slab("elev", &[1, 1], &[1, 2]).unwrap();
        assert_eq!(slab, NcValues::Int(vec![400, 500]));
    }

    #[test]
    fn one_dim_record_var() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();
        let slab = r.read_slab("tick", &[1], &[2]).unwrap();
        assert_eq!(slab, NcValues::Short(vec![11, 12]));
    }

    #[test]
    fn empty_slab() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();
        let slab = r.read_slab("tick", &[2], &[0]).unwrap();
        assert!(slab.is_empty());
    }

    #[test]
    fn out_of_bounds_slabs_rejected() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();
        assert!(matches!(
            r.read_slab("tick", &[3], &[2]),
            Err(NcError::Slab(_))
        ));
        assert!(matches!(
            r.read_slab("tick", &[0], &[2, 2]),
            Err(NcError::Slab(_))
        ));
        assert!(matches!(
            r.read_slab("nope", &[0], &[1]),
            Err(NcError::NotFound(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes_full(b"HDF5xxxx".to_vec()).unwrap_err();
        assert!(matches!(err, NcError::Format(_)));
        let err = from_bytes_full(b"CD".to_vec()).unwrap_err();
        assert!(matches!(err, NcError::Format(_)));
    }

    #[test]
    fn single_record_variable_is_unpadded() {
        // One record var of 1 short: records at stride 2, not 4.
        let mut f = NcFile::new();
        let t = f.add_dim("time", 0);
        f.numrecs = 3;
        f.add_var(
            "s",
            vec![t],
            NcType::Short,
            vec![],
            NcValues::Short(vec![7, 8, 9]),
        )
        .unwrap();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let back = from_bytes_full(bytes).unwrap();
        assert_eq!(back.data[0], NcValues::Short(vec![7, 8, 9]));
    }

    #[test]
    fn dataset_without_dims_or_vars() {
        let f = NcFile::new();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let back = from_bytes_full(bytes).unwrap();
        assert!(back.dims.is_empty());
        assert!(back.vars.is_empty());
    }
}
