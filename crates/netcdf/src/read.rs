//! Parser and hyperslab reader for the NetCDF classic format.
//!
//! [`read_header`] parses the header (dimensions, attributes, variable
//! metadata with data offsets). [`SlabReader`] then serves *subslab*
//! (hyperslab) requests — `start`/`count` vectors per dimension —
//! reading only the bytes that contribute to the result, which is
//! exactly what the paper's `NETCDF3` reader does when it extracts a
//! bounded region of a variable (§4.1–4.2).
//!
//! The parser treats its input as untrusted: every declared count,
//! string length, and data offset is validated against the actual
//! source length *before* any allocation, all offset arithmetic is
//! checked, and contradictions surface as [`NcError::Corrupt`] with
//! the byte offset at which they were detected. A corrupt header can
//! therefore never trigger a panic or an allocation larger than the
//! source itself.

use std::fs::File;
use std::io::{BufReader, Cursor, Read, Seek, SeekFrom};
use std::path::Path;

use crate::format::{NcType, MAGIC, NC_ATTRIBUTE, NC_DIMENSION, NC_VARIABLE, VERSION_64BIT, VERSION_CLASSIC};
use crate::io::IoSource;
use crate::model::{NcAttr, NcDim, NcError, NcFile, NcValues, NcVar};

/// Conservative minimum encoded sizes (bytes) of one list entry, used
/// to reject absurd declared counts before reserving memory: a
/// dimension is at least a name length and a length word; an attribute
/// adds a type and value count; a variable adds dimids, an attribute
/// list header, type, vsize, and begin.
const MIN_DIM_BYTES: u64 = 8;
const MIN_ATTR_BYTES: u64 = 12;
const MIN_VAR_BYTES: u64 = 28;

/// Variable metadata with its on-disk layout.
#[derive(Debug, Clone)]
pub struct VarMeta {
    /// The variable.
    pub var: NcVar,
    /// Stored `vsize` (padded byte size of the variable / one record).
    pub vsize: u64,
    /// Byte offset of the variable's data.
    pub begin: u64,
}

/// A parsed header.
#[derive(Debug, Clone)]
pub struct Header {
    /// Format version byte (1 or 2).
    pub version: u8,
    /// Number of records.
    pub numrecs: u32,
    /// Dimensions.
    pub dims: Vec<NcDim>,
    /// Global attributes.
    pub gattrs: Vec<NcAttr>,
    /// Variables with layout info.
    pub vars: Vec<VarMeta>,
}

impl Header {
    /// Resolved shape of a variable (record dim → numrecs).
    pub fn shape(&self, var: &NcVar) -> Result<Vec<u64>, NcError> {
        var.dimids
            .iter()
            .map(|&d| {
                let dim = self
                    .dims
                    .get(d)
                    .ok_or_else(|| NcError::Format(format!("bad dimid {d}")))?;
                Ok(if dim.is_record() { self.numrecs as u64 } else { dim.len as u64 })
            })
            .collect()
    }

    /// Is the variable a record variable?
    pub fn is_record_var(&self, var: &NcVar) -> bool {
        var.dimids
            .first()
            .and_then(|&d| self.dims.get(d))
            .is_some_and(NcDim::is_record)
    }

    /// Find a variable by name.
    pub fn find(&self, name: &str) -> Result<&VarMeta, NcError> {
        self.vars
            .iter()
            .find(|m| m.var.name == name)
            .ok_or_else(|| NcError::NotFound(format!("variable `{name}`")))
    }

    /// Byte distance between consecutive records (per spec: the sum of
    /// the record variables' vsizes, except a *single* record variable
    /// whose records are packed without padding).
    pub fn record_stride(&self) -> u64 {
        let rec: Vec<&VarMeta> = self
            .vars
            .iter()
            .filter(|m| self.is_record_var(&m.var))
            .collect();
        match rec.len() {
            0 => 0,
            1 => {
                let m = rec[0];
                let per: u64 = self
                    .shape(&m.var)
                    .map(|s| s.iter().skip(1).product::<u64>())
                    .unwrap_or(0);
                per * m.var.ty.size()
            }
            _ => rec.iter().map(|m| m.vsize).sum(),
        }
    }
}

struct Cur<'a, R: Read + Seek> {
    r: &'a mut R,
    pos: u64,
    /// Total source length; `pos <= len` is an invariant maintained by
    /// [`Cur::bytes`], which refuses (without allocating) any read the
    /// source cannot satisfy.
    len: u64,
}

impl<'a, R: Read + Seek> Cur<'a, R> {
    fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, NcError> {
        let end = self.pos.checked_add(n as u64).ok_or_else(|| {
            NcError::corrupt(self.pos, format!("read of {n} byte(s) overflows the byte offset"))
        })?;
        if end > self.len {
            return Err(NcError::corrupt(
                self.pos,
                format!(
                    "header declares {n} more byte(s) but only {} remain (source is {} bytes)",
                    self.remaining(),
                    self.len
                ),
            ));
        }
        let mut buf = vec![0u8; n];
        self.r.read_exact(&mut buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                NcError::corrupt(self.pos, format!("unexpected end of data: {e}"))
            } else {
                NcError::from(e)
            }
        })?;
        self.pos = end;
        Ok(buf)
    }

    fn u32(&mut self) -> Result<u32, NcError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, NcError> {
        let b = self.bytes(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a list count and reject it if even minimally-sized entries
    /// could not fit in the remaining bytes — this is what stops a
    /// corrupt header from provoking a multi-gigabyte
    /// `Vec::with_capacity`.
    fn count(&mut self, what: &str, min_entry_bytes: u64) -> Result<usize, NcError> {
        let at = self.pos;
        let n = self.u32()? as u64;
        if n.checked_mul(min_entry_bytes).is_none_or(|need| need > self.remaining()) {
            return Err(NcError::corrupt(
                at,
                format!(
                    "declared {n} {what} entr{} but only {} byte(s) remain",
                    if n == 1 { "y" } else { "ies" },
                    self.remaining()
                ),
            ));
        }
        Ok(n as usize)
    }

    fn name(&mut self) -> Result<String, NcError> {
        let n = self.u32()? as usize;
        let raw = self.bytes(n)?;
        let padding = (4 - n % 4) % 4;
        self.bytes(padding)?;
        String::from_utf8(raw)
            .map_err(|_| NcError::corrupt(self.pos, "non-UTF-8 name".to_string()))
    }

    fn values(&mut self, ty: NcType, n: usize) -> Result<NcValues, NcError> {
        let at = self.pos;
        let byte_len = (n as u64).checked_mul(ty.size()).ok_or_else(|| {
            NcError::corrupt(at, format!("value count {n} overflows the byte length"))
        })?;
        let byte_len = usize::try_from(byte_len).map_err(|_| {
            NcError::corrupt(at, format!("value byte length {byte_len} exceeds address space"))
        })?;
        let raw = self.bytes(byte_len)?;
        let padding = (4 - byte_len % 4) % 4;
        self.bytes(padding)?;
        Ok(decode(ty, &raw, n))
    }

    fn attr_list(&mut self) -> Result<Vec<NcAttr>, NcError> {
        let tag_at = self.pos;
        let tag = self.u32()?;
        let n = self.count("attribute", MIN_ATTR_BYTES)?;
        if tag == 0 && n == 0 {
            return Ok(Vec::new());
        }
        if tag != NC_ATTRIBUTE {
            return Err(NcError::corrupt(
                tag_at,
                format!("expected attribute tag, got {tag:#x}"),
            ));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.name()?;
            let code_at = self.pos;
            let code = self.u32()?;
            let ty = NcType::from_code(code)
                .ok_or_else(|| NcError::corrupt(code_at, format!("bad nc_type {code}")))?;
            let count = self.count("attribute value", ty.size().max(1))?;
            let values = self.values(ty, count)?;
            out.push(NcAttr { name, values });
        }
        Ok(out)
    }
}

/// Decode `n` big-endian values of type `ty` from `raw`.
pub fn decode(ty: NcType, raw: &[u8], n: usize) -> NcValues {
    match ty {
        NcType::Byte => NcValues::Byte(raw[..n].iter().map(|&b| b as i8).collect()),
        NcType::Char => NcValues::Char(raw[..n].to_vec()),
        NcType::Short => NcValues::Short(
            (0..n)
                .map(|i| i16::from_be_bytes([raw[2 * i], raw[2 * i + 1]]))
                .collect(),
        ),
        NcType::Int => NcValues::Int(
            (0..n)
                .map(|i| {
                    i32::from_be_bytes([raw[4 * i], raw[4 * i + 1], raw[4 * i + 2], raw[4 * i + 3]])
                })
                .collect(),
        ),
        NcType::Float => NcValues::Float(
            (0..n)
                .map(|i| {
                    f32::from_be_bytes([raw[4 * i], raw[4 * i + 1], raw[4 * i + 2], raw[4 * i + 3]])
                })
                .collect(),
        ),
        NcType::Double => NcValues::Double(
            (0..n)
                .map(|i| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&raw[8 * i..8 * i + 8]);
                    f64::from_be_bytes(b)
                })
                .collect(),
        ),
    }
}

/// Parse the header from the start of `r`. The source length (learned
/// by seeking) bounds every declared count and offset; see the module
/// docs for the hardening contract.
pub fn read_header<R: Read + Seek>(r: &mut R) -> Result<Header, NcError> {
    let len = r.seek(SeekFrom::End(0))?;
    r.seek(SeekFrom::Start(0))?;
    let mut c = Cur { r, pos: 0, len };
    let magic = c.bytes(4)?;
    if &magic[0..3] != MAGIC {
        return Err(NcError::Format("not a NetCDF classic file (bad magic)".into()));
    }
    let version = magic[3];
    if version != VERSION_CLASSIC && version != VERSION_64BIT {
        return Err(NcError::Format(format!("unsupported NetCDF version {version}")));
    }
    let numrecs = c.u32()?;

    // dim_list
    let tag_at = c.pos;
    let tag = c.u32()?;
    let ndims = c.count("dimension", MIN_DIM_BYTES)?;
    let mut dims = Vec::with_capacity(ndims);
    if !(tag == 0 && ndims == 0) {
        if tag != NC_DIMENSION {
            return Err(NcError::corrupt(tag_at, format!("expected dimension tag, got {tag:#x}")));
        }
        for _ in 0..ndims {
            let name = c.name()?;
            let len = c.u32()?;
            dims.push(NcDim { name, len });
        }
    }

    let gattrs = c.attr_list()?;

    // var_list
    let tag_at = c.pos;
    let tag = c.u32()?;
    let nvars = c.count("variable", MIN_VAR_BYTES)?;
    let mut vars = Vec::with_capacity(nvars);
    if !(tag == 0 && nvars == 0) {
        if tag != NC_VARIABLE {
            return Err(NcError::corrupt(tag_at, format!("expected variable tag, got {tag:#x}")));
        }
        for _ in 0..nvars {
            let name = c.name()?;
            let nd = c.count("dimension id", 4)?;
            let mut dimids = Vec::with_capacity(nd);
            for _ in 0..nd {
                let id_at = c.pos;
                let id = c.u32()? as usize;
                if id >= dims.len() {
                    return Err(NcError::corrupt(
                        id_at,
                        format!(
                            "variable `{name}` references dimension {id} but only {} are declared",
                            dims.len()
                        ),
                    ));
                }
                dimids.push(id);
            }
            let attrs = c.attr_list()?;
            let code_at = c.pos;
            let code = c.u32()?;
            let ty = NcType::from_code(code)
                .ok_or_else(|| NcError::corrupt(code_at, format!("bad nc_type {code}")))?;
            let vsize = c.u32()? as u64;
            let begin_at = c.pos;
            let begin = if version == VERSION_64BIT { c.u64()? } else { c.u32()? as u64 };
            if begin > len {
                return Err(NcError::corrupt(
                    begin_at,
                    format!(
                        "variable `{name}` data offset {begin} is beyond the end of the \
                         {len}-byte source"
                    ),
                ));
            }
            vars.push(VarMeta { var: NcVar { name, dimids, attrs, ty }, vsize, begin });
        }
    }

    Ok(Header { version, numrecs, dims, gattrs, vars })
}

/// A reader serving hyperslab requests against an open dataset.
pub struct SlabReader<R: Read + Seek> {
    src: R,
    /// Total source length, fixed at open time; every data read is
    /// validated against it before any buffer grows.
    src_len: u64,
    /// The parsed header.
    pub header: Header,
}

impl<R: IoSource> SlabReader<R> {
    /// Open a dataset over any [`IoSource`] (file, buffer, or an
    /// instrumented wrapper such as [`crate::io::FaultyIo`]).
    pub fn from_source(mut src: R) -> Result<Self, NcError> {
        let src_len = src.byte_len()?;
        let header = read_header(&mut src)?;
        Ok(SlabReader { src, src_len, header })
    }
}

impl SlabReader<BufReader<File>> {
    /// Open a dataset file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, NcError> {
        Self::from_source(BufReader::new(File::open(path)?))
    }
}

impl SlabReader<Cursor<Vec<u8>>> {
    /// Read a dataset from bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, NcError> {
        Self::from_source(Cursor::new(bytes))
    }
}

impl<R: Read + Seek> SlabReader<R> {
    /// Read the hyperslab `start[j] .. start[j]+count[j]` of variable
    /// `name`, returning the values in row-major order.
    pub fn read_slab(
        &mut self,
        name: &str,
        start: &[u64],
        count: &[u64],
    ) -> Result<NcValues, NcError> {
        let meta = self.header.find(name)?.clone();
        let shape = self.header.shape(&meta.var)?;
        let k = shape.len();
        if start.len() != k || count.len() != k {
            return Err(NcError::Slab(format!(
                "variable `{name}` has {k} dimension(s); start/count have {}/{}",
                start.len(),
                count.len()
            )));
        }
        for j in 0..k {
            if start[j].checked_add(count[j]).is_none_or(|end| end > shape[j]) {
                return Err(NcError::Slab(format!(
                    "dimension {j}: start {} + count {} exceeds extent {}",
                    start[j], count[j], shape[j]
                )));
            }
        }
        let total = count
            .iter()
            .try_fold(1u64, |acc, &c| acc.checked_mul(c))
            .ok_or_else(|| {
                NcError::Slab(format!("element count of `{name}` slab overflows: {count:?}"))
            })?;
        if total == 0 {
            return Ok(NcValues::empty(meta.var.ty));
        }

        let tsize = meta.var.ty.size();
        let is_rec = self.header.is_record_var(&meta.var);
        let rec_stride = self.header.record_stride();

        // No slab can hold more bytes than the whole source: a header
        // whose shape implies otherwise is corrupt, and rejecting it
        // here bounds the upcoming allocation by the source length.
        let total_bytes = total.checked_mul(tsize).ok_or_else(|| {
            NcError::Slab(format!("byte size of `{name}` slab overflows ({total} elements)"))
        })?;
        if total_bytes > self.src_len {
            return Err(NcError::corrupt(
                meta.begin,
                format!(
                    "variable `{name}` slab needs {total_bytes} byte(s) but the source \
                     holds only {}",
                    self.src_len
                ),
            ));
        }
        let total_bytes = usize::try_from(total_bytes).map_err(|_| {
            NcError::Slab(format!("byte size of `{name}` slab exceeds address space"))
        })?;

        // Row-major element strides within the variable. For record
        // variables the outermost "stride" is the record stride in
        // *bytes*, handled separately.
        let inner_shape = if is_rec { &shape[1..] } else { &shape[..] };
        let mut elem_strides = vec![1u64; inner_shape.len()];
        for j in (0..inner_shape.len().saturating_sub(1)).rev() {
            elem_strides[j] = elem_strides[j + 1].checked_mul(inner_shape[j + 1]).ok_or_else(
                || {
                    NcError::corrupt(
                        meta.begin,
                        format!("variable `{name}` shape {shape:?} overflows its byte layout"),
                    )
                },
            )?;
        }

        // Checked `acc + i * s`, reported as header corruption (the
        // only way it can overflow is an absurd declared layout).
        let layout_err = || {
            NcError::corrupt(
                meta.begin,
                format!("variable `{name}` byte offsets overflow (shape {shape:?})"),
            )
        };
        let acc_mul = |acc: u64, i: u64, s: u64| -> Result<u64, NcError> {
            i.checked_mul(s).and_then(|x| acc.checked_add(x)).ok_or_else(layout_err)
        };

        // Iterate all index combinations except the last dimension,
        // reading a contiguous run of `count[k-1]` values each time.
        let run = count[k - 1];
        let mut raw = Vec::with_capacity(total_bytes);
        let mut idx = start.to_vec();
        loop {
            // Byte offset of the run starting at `idx`.
            let mut off = meta.begin;
            if is_rec {
                off = acc_mul(off, idx[0], rec_stride)?;
                for (j, &i) in idx.iter().enumerate().skip(1) {
                    off = acc_mul(off, i, elem_strides[j - 1].checked_mul(tsize).ok_or_else(layout_err)?)?;
                }
            } else {
                for (j, &i) in idx.iter().enumerate() {
                    off = acc_mul(off, i, elem_strides[j].checked_mul(tsize).ok_or_else(layout_err)?)?;
                }
            }
            // A 1-d record variable reads one value per record.
            let this_run = if is_rec && k == 1 { 1 } else { run };
            let byte_len = (this_run * tsize) as usize;
            let run_end = off.checked_add(byte_len as u64).ok_or_else(layout_err)?;
            if run_end > self.src_len {
                return Err(NcError::corrupt(
                    off,
                    format!(
                        "data for `{name}` extends to byte {run_end} but the source holds \
                         only {} byte(s)",
                        self.src_len
                    ),
                ));
            }
            let at = raw.len();
            raw.resize(at + byte_len, 0);
            self.src.seek(SeekFrom::Start(off))?;
            self.src.read_exact(&mut raw[at..]).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    NcError::corrupt(off, format!("unexpected end of data reading `{name}`: {e}"))
                } else {
                    match NcError::from(e) {
                        NcError::Io { message, transient } => NcError::Io {
                            message: format!("reading `{name}` at byte {off}: {message}"),
                            transient,
                        },
                        other => other,
                    }
                }
            })?;

            // Advance the multi-index (skipping the run dimension,
            // except for 1-d record variables which step per record).
            let step_from = if is_rec && k == 1 { 1 } else { k - 1 };
            let mut j = step_from;
            loop {
                if j == 0 {
                    return Ok(decode(meta.var.ty, &raw, total as usize));
                }
                j -= 1;
                idx[j] += 1;
                if idx[j] < start[j] + count[j] {
                    break;
                }
                idx[j] = start[j];
            }
        }
    }

    /// Read a whole variable, returning values and resolved shape.
    pub fn read_all(&mut self, name: &str) -> Result<(NcValues, Vec<u64>), NcError> {
        let meta = self.header.find(name)?.clone();
        let shape = self.header.shape(&meta.var)?;
        let start = vec![0u64; shape.len()];
        let vals = self.read_slab(name, &start, &shape)?;
        Ok((vals, shape))
    }
}

/// Fully materialise a dataset from bytes (header + all data).
pub fn from_bytes_full(bytes: Vec<u8>) -> Result<NcFile, NcError> {
    let mut r = SlabReader::from_bytes(bytes)?;
    let header = r.header.clone();
    let mut f = NcFile {
        dims: header.dims.clone(),
        gattrs: header.gattrs.clone(),
        vars: Vec::new(),
        data: Vec::new(),
        numrecs: header.numrecs,
    };
    for m in &header.vars {
        let (vals, _) = r.read_all(&m.var.name)?;
        f.vars.push(m.var.clone());
        f.data.push(vals);
    }
    Ok(f)
}

/// Fully materialise a dataset from a file.
pub fn read_file_full(path: impl AsRef<Path>) -> Result<NcFile, NcError> {
    let bytes = std::fs::read(path)?;
    from_bytes_full(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::to_bytes;

    /// A dataset with fixed and record variables, attributes, multiple
    /// types.
    fn sample() -> NcFile {
        let mut f = NcFile::new();
        let t = f.add_dim("time", 0);
        let lat = f.add_dim("lat", 2);
        let lon = f.add_dim("lon", 3);
        f.numrecs = 4;
        f.gattrs.push(NcAttr::text("title", "synthetic weather"));
        f.add_var(
            "temp",
            vec![t, lat, lon],
            NcType::Float,
            vec![NcAttr::text("units", "degF"), NcAttr::double("missing", -999.0)],
            NcValues::Float((0..24).map(|i| i as f32 * 0.5).collect()),
        )
        .unwrap();
        f.add_var(
            "elev",
            vec![lat, lon],
            NcType::Int,
            vec![],
            NcValues::Int((0..6).map(|i| i * 100).collect()),
        )
        .unwrap();
        f.add_var(
            "tick",
            vec![t],
            NcType::Short,
            vec![],
            NcValues::Short(vec![10, 11, 12, 13]),
        )
        .unwrap();
        f
    }

    #[test]
    fn roundtrip_both_versions() {
        for version in [VERSION_CLASSIC, VERSION_64BIT] {
            let f = sample();
            let bytes = to_bytes(&f, version).unwrap();
            let back = from_bytes_full(bytes).unwrap();
            assert_eq!(back.numrecs, 4);
            assert_eq!(back.dims, f.dims);
            assert_eq!(back.gattrs, f.gattrs);
            assert_eq!(back.vars.len(), 3);
            for i in 0..3 {
                assert_eq!(back.vars[i], f.vars[i], "v{version} var {i}");
                assert_eq!(back.data[i], f.data[i], "v{version} data {i}");
            }
        }
    }

    #[test]
    fn hyperslab_matches_full_read() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();

        // temp[1..3, 0..2, 1..3] against the full data.
        let slab = r.read_slab("temp", &[1, 0, 1], &[2, 2, 2]).unwrap();
        let NcValues::Float(got) = slab else { panic!("type") };
        let full = match &f.data[0] {
            NcValues::Float(v) => v.clone(),
            _ => unreachable!(),
        };
        let mut expect = Vec::new();
        for rec in 1..3 {
            for la in 0..2 {
                for lo in 1..3 {
                    expect.push(full[rec * 6 + la * 3 + lo]);
                }
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn fixed_var_hyperslab() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();
        let slab = r.read_slab("elev", &[1, 1], &[1, 2]).unwrap();
        assert_eq!(slab, NcValues::Int(vec![400, 500]));
    }

    #[test]
    fn one_dim_record_var() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();
        let slab = r.read_slab("tick", &[1], &[2]).unwrap();
        assert_eq!(slab, NcValues::Short(vec![11, 12]));
    }

    #[test]
    fn empty_slab() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();
        let slab = r.read_slab("tick", &[2], &[0]).unwrap();
        assert!(slab.is_empty());
    }

    #[test]
    fn out_of_bounds_slabs_rejected() {
        let f = sample();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let mut r = SlabReader::from_bytes(bytes).unwrap();
        assert!(matches!(
            r.read_slab("tick", &[3], &[2]),
            Err(NcError::Slab(_))
        ));
        assert!(matches!(
            r.read_slab("tick", &[0], &[2, 2]),
            Err(NcError::Slab(_))
        ));
        assert!(matches!(
            r.read_slab("nope", &[0], &[1]),
            Err(NcError::NotFound(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes_full(b"HDF5xxxx".to_vec()).unwrap_err();
        assert!(matches!(err, NcError::Format(_)));
        // A source shorter than the magic is truncation, not format.
        let err = from_bytes_full(b"CD".to_vec()).unwrap_err();
        assert!(matches!(err, NcError::Corrupt { offset: 0, .. }));
    }

    #[test]
    fn single_record_variable_is_unpadded() {
        // One record var of 1 short: records at stride 2, not 4.
        let mut f = NcFile::new();
        let t = f.add_dim("time", 0);
        f.numrecs = 3;
        f.add_var(
            "s",
            vec![t],
            NcType::Short,
            vec![],
            NcValues::Short(vec![7, 8, 9]),
        )
        .unwrap();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let back = from_bytes_full(bytes).unwrap();
        assert_eq!(back.data[0], NcValues::Short(vec![7, 8, 9]));
    }

    #[test]
    fn dataset_without_dims_or_vars() {
        let f = NcFile::new();
        let bytes = to_bytes(&f, VERSION_CLASSIC).unwrap();
        let back = from_bytes_full(bytes).unwrap();
        assert!(back.dims.is_empty());
        assert!(back.vars.is_empty());
    }
}
