//! The in-memory model of a NetCDF classic dataset: dimensions,
//! attributes, variables, and their data.

use std::fmt;

use crate::format::{pad4, NcType};

/// An error raised by the NetCDF substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NcError {
    /// The file is not classic NetCDF or is structurally invalid.
    Format(String),
    /// The byte stream declares counts, lengths, or offsets that
    /// contradict the actual source (truncated or corrupted data).
    /// `offset` is the byte position at which the contradiction was
    /// detected.
    Corrupt {
        /// Byte offset in the source where the corruption was detected.
        offset: u64,
        /// What the parser expected vs. what the source holds.
        message: String,
    },
    /// An I/O failure (message of the underlying error). `transient`
    /// marks failures worth retrying (timeouts, interrupted calls);
    /// drivers retry those with backoff and give up on the rest.
    Io {
        /// Message of the underlying I/O error.
        message: String,
        /// Whether a retry may reasonably succeed.
        transient: bool,
    },
    /// A lookup failed (unknown variable or dimension).
    NotFound(String),
    /// A hyperslab request is out of bounds or malformed.
    Slab(String),
    /// The in-memory dataset is inconsistent (e.g. data length does
    /// not match the variable shape).
    Model(String),
}

impl NcError {
    /// A corruption error detected at byte `offset`.
    pub fn corrupt(offset: u64, message: impl Into<String>) -> NcError {
        NcError::Corrupt { offset, message: message.into() }
    }

    /// A non-transient I/O error.
    pub fn io(message: impl Into<String>) -> NcError {
        NcError::Io { message: message.into(), transient: false }
    }

    /// Would retrying the failed operation plausibly succeed?
    pub fn is_transient(&self) -> bool {
        matches!(self, NcError::Io { transient: true, .. })
    }
}

impl fmt::Display for NcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NcError::Format(m) => write!(f, "netcdf format error: {m}"),
            NcError::Corrupt { offset, message } => {
                write!(f, "netcdf corrupt data at byte {offset}: {message}")
            }
            NcError::Io { message, transient } => {
                let kind = if *transient { "transient " } else { "" };
                write!(f, "netcdf {kind}i/o error: {message}")
            }
            NcError::NotFound(m) => write!(f, "netcdf: not found: {m}"),
            NcError::Slab(m) => write!(f, "netcdf hyperslab error: {m}"),
            NcError::Model(m) => write!(f, "netcdf model error: {m}"),
        }
    }
}

impl std::error::Error for NcError {}

impl From<std::io::Error> for NcError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        let transient = matches!(
            e.kind(),
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock
        );
        NcError::Io { message: e.to_string(), transient }
    }
}

/// Typed external data.
#[derive(Debug, Clone, PartialEq)]
pub enum NcValues {
    /// `NC_BYTE` values.
    Byte(Vec<i8>),
    /// `NC_CHAR` values (raw bytes; attribute text).
    Char(Vec<u8>),
    /// `NC_SHORT` values.
    Short(Vec<i16>),
    /// `NC_INT` values.
    Int(Vec<i32>),
    /// `NC_FLOAT` values.
    Float(Vec<f32>),
    /// `NC_DOUBLE` values.
    Double(Vec<f64>),
}

impl NcValues {
    /// The external type of these values.
    pub fn ty(&self) -> NcType {
        match self {
            NcValues::Byte(_) => NcType::Byte,
            NcValues::Char(_) => NcType::Char,
            NcValues::Short(_) => NcType::Short,
            NcValues::Int(_) => NcType::Int,
            NcValues::Float(_) => NcType::Float,
            NcValues::Double(_) => NcType::Double,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            NcValues::Byte(v) => v.len(),
            NcValues::Char(v) => v.len(),
            NcValues::Short(v) => v.len(),
            NcValues::Int(v) => v.len(),
            NcValues::Float(v) => v.len(),
            NcValues::Double(v) => v.len(),
        }
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty vector of the given type.
    pub fn empty(ty: NcType) -> NcValues {
        match ty {
            NcType::Byte => NcValues::Byte(Vec::new()),
            NcType::Char => NcValues::Char(Vec::new()),
            NcType::Short => NcValues::Short(Vec::new()),
            NcType::Int => NcValues::Int(Vec::new()),
            NcType::Float => NcValues::Float(Vec::new()),
            NcType::Double => NcValues::Double(Vec::new()),
        }
    }

    /// Text content for `NC_CHAR` attribute values.
    pub fn as_text(&self) -> Option<String> {
        match self {
            NcValues::Char(v) => Some(String::from_utf8_lossy(v).into_owned()),
            _ => None,
        }
    }

    /// The value at position `i` widened to `f64` (chars excluded).
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        Some(match self {
            NcValues::Byte(v) => *v.get(i)? as f64,
            NcValues::Char(_) => return None,
            NcValues::Short(v) => *v.get(i)? as f64,
            NcValues::Int(v) => *v.get(i)? as f64,
            NcValues::Float(v) => *v.get(i)? as f64,
            NcValues::Double(v) => *v.get(i)?,
        })
    }
}

/// A dimension: name and length; length 0 marks the record dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NcDim {
    /// Dimension name.
    pub name: String,
    /// Fixed length, or 0 for the (single) record dimension.
    pub len: u32,
}

impl NcDim {
    /// Is this the record (unlimited) dimension?
    pub fn is_record(&self) -> bool {
        self.len == 0
    }
}

/// An attribute: a named, typed vector of values.
#[derive(Debug, Clone, PartialEq)]
pub struct NcAttr {
    /// Attribute name.
    pub name: String,
    /// Attribute values.
    pub values: NcValues,
}

impl NcAttr {
    /// A text attribute.
    pub fn text(name: &str, value: &str) -> NcAttr {
        NcAttr { name: name.to_string(), values: NcValues::Char(value.as_bytes().to_vec()) }
    }

    /// A double attribute.
    pub fn double(name: &str, value: f64) -> NcAttr {
        NcAttr { name: name.to_string(), values: NcValues::Double(vec![value]) }
    }
}

/// A variable: name, dimension ids (indices into the file's dimension
/// list), attributes, and external type.
#[derive(Debug, Clone, PartialEq)]
pub struct NcVar {
    /// Variable name.
    pub name: String,
    /// Dimension ids, outermost first. A variable whose first
    /// dimension is the record dimension is a *record variable*.
    pub dimids: Vec<usize>,
    /// Variable attributes.
    pub attrs: Vec<NcAttr>,
    /// External type.
    pub ty: NcType,
}

/// A complete in-memory dataset.
#[derive(Debug, Clone, Default)]
pub struct NcFile {
    /// Dimensions (at most one with length 0 — the record dimension).
    pub dims: Vec<NcDim>,
    /// Global attributes.
    pub gattrs: Vec<NcAttr>,
    /// Variables.
    pub vars: Vec<NcVar>,
    /// Per-variable data, row-major, indexed like `vars`. Record
    /// variables store `numrecs` full records concatenated.
    pub data: Vec<NcValues>,
    /// Number of records (length of the record dimension).
    pub numrecs: u32,
}

impl NcFile {
    /// A new, empty dataset.
    pub fn new() -> NcFile {
        NcFile::default()
    }

    /// Add a dimension and return its id.
    pub fn add_dim(&mut self, name: &str, len: u32) -> usize {
        self.dims.push(NcDim { name: name.to_string(), len });
        self.dims.len() - 1
    }

    /// Add a variable with its (full) data and return its id.
    pub fn add_var(
        &mut self,
        name: &str,
        dimids: Vec<usize>,
        ty: NcType,
        attrs: Vec<NcAttr>,
        data: NcValues,
    ) -> Result<usize, NcError> {
        if data.ty() != ty {
            return Err(NcError::Model(format!(
                "variable `{name}`: data type {:?} does not match declared {ty:?}",
                data.ty()
            )));
        }
        let var = NcVar { name: name.to_string(), dimids, attrs, ty };
        let expect = self.var_len(&var)?;
        if expect != data.len() as u64 {
            return Err(NcError::Model(format!(
                "variable `{name}`: shape requires {expect} values, got {}",
                data.len()
            )));
        }
        self.vars.push(var);
        self.data.push(data);
        Ok(self.vars.len() - 1)
    }

    /// The resolved shape of a variable (record dimension resolved to
    /// `numrecs`), outermost first.
    pub fn var_shape(&self, var: &NcVar) -> Result<Vec<u64>, NcError> {
        var.dimids
            .iter()
            .map(|&d| {
                let dim = self
                    .dims
                    .get(d)
                    .ok_or_else(|| NcError::Model(format!("bad dimid {d}")))?;
                Ok(if dim.is_record() { self.numrecs as u64 } else { dim.len as u64 })
            })
            .collect()
    }

    /// Total number of values a variable holds.
    pub fn var_len(&self, var: &NcVar) -> Result<u64, NcError> {
        Ok(self.var_shape(var)?.iter().product())
    }

    /// Is the variable a record variable?
    pub fn is_record_var(&self, var: &NcVar) -> bool {
        var.dimids
            .first()
            .and_then(|&d| self.dims.get(d))
            .is_some_and(NcDim::is_record)
    }

    /// Find a variable by name.
    pub fn find_var(&self, name: &str) -> Result<(usize, &NcVar), NcError> {
        self.vars
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
            .ok_or_else(|| NcError::NotFound(format!("variable `{name}`")))
    }

    /// The per-record byte size of a record variable (one record's
    /// worth of data, unpadded).
    pub fn record_row_bytes(&self, var: &NcVar) -> Result<u64, NcError> {
        let shape = self.var_shape(var)?;
        let per_rec: u64 = shape.iter().skip(1).product();
        Ok(per_rec * var.ty.size())
    }

    /// `vsize` as stored in the header: the (padded) byte size of a
    /// fixed variable, or of one record of a record variable.
    pub fn vsize(&self, var: &NcVar) -> Result<u64, NcError> {
        let bytes = if self.is_record_var(var) {
            self.record_row_bytes(var)?
        } else {
            self.var_len(var)? * var.ty.size()
        };
        Ok(pad4(bytes))
    }

    /// The record stride: the byte distance between consecutive
    /// records. Per the specification, when there is exactly one
    /// record variable its records are *not* padded.
    pub fn record_stride(&self) -> Result<u64, NcError> {
        let rec_vars: Vec<&NcVar> =
            self.vars.iter().filter(|v| self.is_record_var(v)).collect();
        match rec_vars.len() {
            0 => Ok(0),
            1 => self.record_row_bytes(rec_vars[0]),
            _ => rec_vars.iter().map(|v| self.vsize(v)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NcFile {
        let mut f = NcFile::new();
        let t = f.add_dim("time", 0); // record dimension
        let lat = f.add_dim("lat", 3);
        f.numrecs = 2;
        f.add_var(
            "temp",
            vec![t, lat],
            NcType::Float,
            vec![NcAttr::text("units", "degF")],
            NcValues::Float((0..6).map(|i| i as f32).collect()),
        )
        .unwrap();
        f.add_var(
            "elev",
            vec![lat],
            NcType::Int,
            vec![],
            NcValues::Int(vec![10, 20, 30]),
        )
        .unwrap();
        f
    }

    #[test]
    fn shapes_resolve_record_dim() {
        let f = sample();
        let (_, temp) = f.find_var("temp").unwrap();
        assert_eq!(f.var_shape(temp).unwrap(), vec![2, 3]);
        assert!(f.is_record_var(temp));
        let (_, elev) = f.find_var("elev").unwrap();
        assert_eq!(f.var_shape(elev).unwrap(), vec![3]);
        assert!(!f.is_record_var(elev));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut f = NcFile::new();
        let d = f.add_dim("x", 4);
        let err = f
            .add_var("v", vec![d], NcType::Int, vec![], NcValues::Int(vec![1]))
            .unwrap_err();
        assert!(matches!(err, NcError::Model(_)));
        // Type mismatch too.
        let err = f
            .add_var("v", vec![d], NcType::Int, vec![], NcValues::Float(vec![0.0; 4]))
            .unwrap_err();
        assert!(matches!(err, NcError::Model(_)));
    }

    #[test]
    fn vsize_and_stride() {
        let f = sample();
        let (_, temp) = f.find_var("temp").unwrap();
        // One record = 3 floats = 12 bytes (already 4-aligned).
        assert_eq!(f.record_row_bytes(temp).unwrap(), 12);
        assert_eq!(f.vsize(temp).unwrap(), 12);
        // Single record variable → unpadded stride.
        assert_eq!(f.record_stride().unwrap(), 12);
        let (_, elev) = f.find_var("elev").unwrap();
        assert_eq!(f.vsize(elev).unwrap(), 12);
    }

    #[test]
    fn stride_pads_with_multiple_record_vars() {
        let mut f = NcFile::new();
        let t = f.add_dim("time", 0);
        f.numrecs = 1;
        // Two record vars of 1 short each: rows of 2 bytes pad to 4.
        f.add_var("a", vec![t], NcType::Short, vec![], NcValues::Short(vec![1]))
            .unwrap();
        f.add_var("b", vec![t], NcType::Short, vec![], NcValues::Short(vec![2]))
            .unwrap();
        assert_eq!(f.record_stride().unwrap(), 8);
    }

    #[test]
    fn attr_constructors() {
        let a = NcAttr::text("units", "degF");
        assert_eq!(a.values.as_text().unwrap(), "degF");
        let d = NcAttr::double("missing", -999.0);
        assert_eq!(d.values.get_f64(0), Some(-999.0));
    }

    #[test]
    fn find_var_errors() {
        let f = sample();
        assert!(f.find_var("nope").is_err());
    }
}
