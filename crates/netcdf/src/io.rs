//! Injectable byte sources for the NetCDF substrate.
//!
//! [`IoSource`] abstracts "a seekable stream of bytes with a known
//! length" so the parser and [`crate::read::SlabReader`] work the same
//! over files, in-memory buffers, and instrumented wrappers. The
//! length is what lets the parser validate every declared count and
//! offset *before* allocating (see `crate::read`).
//!
//! [`FaultyIo`] wraps any source and injects faults on a schedule — a
//! [`FaultPlan`] of short reads, premature EOFs, transient
//! (retryable) errors, persistent errors, and byte corruption. It
//! exists so tests can drive the error paths of the parser and the
//! drivers' retry loop deterministically; production code never
//! constructs one.
//!
//! [`retry`] is the bounded retry-with-backoff loop the drivers use:
//! only errors classified transient ([`NcError::is_transient`]) are
//! retried, everything else propagates immediately.

use std::fs::File;
use std::io::{self, BufReader, Cursor, Read, Seek, SeekFrom};
use std::time::Duration;

use crate::model::NcError;

/// A seekable byte source with a known total length.
///
/// The default `byte_len` measures by seeking to the end and back,
/// which works for any `Read + Seek`; in-memory sources override it
/// with the exact buffer length.
pub trait IoSource: Read + Seek {
    /// Total number of bytes in the source.
    fn byte_len(&mut self) -> io::Result<u64> {
        let pos = self.stream_position()?;
        let end = self.seek(SeekFrom::End(0))?;
        self.seek(SeekFrom::Start(pos))?;
        Ok(end)
    }
}

impl IoSource for File {}

impl IoSource for BufReader<File> {}

impl<T: AsRef<[u8]>> IoSource for Cursor<T> {
    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.get_ref().as_ref().len() as u64)
    }
}

/// A schedule of faults for [`FaultyIo`], keyed by *read operation
/// index* (the n-th call to `read`, starting at 0) or by absolute byte
/// offset (for corruption).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Read ops that deliver at most one byte (a benign short read;
    /// exercises callers' read loops, `read_exact` retries through it).
    pub short_reads: Vec<u64>,
    /// Read ops that report end-of-file (`Ok(0)`) regardless of how
    /// much data remains — simulates truncation.
    pub eofs: Vec<u64>,
    /// Read ops that fail with a transient (`TimedOut`) error.
    pub transient_errors: Vec<u64>,
    /// First read op from which *every* read fails persistently
    /// (`NotConnected`), if set.
    pub persistent_from: Option<u64>,
    /// Bytes to corrupt: `(absolute offset, xor mask)` applied to data
    /// passing through `read`.
    pub corrupt_bytes: Vec<(u64, u8)>,
}

impl FaultPlan {
    /// No faults.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Deliver at most one byte on read op `op`.
    pub fn short_read_at(mut self, op: u64) -> Self {
        self.short_reads.push(op);
        self
    }

    /// Report EOF on read op `op`.
    pub fn eof_at(mut self, op: u64) -> Self {
        self.eofs.push(op);
        self
    }

    /// Fail read op `op` with a transient error.
    pub fn transient_at(mut self, op: u64) -> Self {
        self.transient_errors.push(op);
        self
    }

    /// Fail every read op from `op` onward with a persistent error.
    pub fn persistent_from(mut self, op: u64) -> Self {
        self.persistent_from = Some(op);
        self
    }

    /// XOR the byte at absolute `offset` with `mask` as it is read.
    pub fn corrupt_byte(mut self, offset: u64, mask: u8) -> Self {
        self.corrupt_bytes.push((offset, mask));
        self
    }
}

/// A fault-injecting wrapper around any [`IoSource`]. Intended for
/// tests; see [`FaultPlan`] for the fault vocabulary.
#[derive(Debug)]
pub struct FaultyIo<S> {
    inner: S,
    plan: FaultPlan,
    pos: u64,
    reads: u64,
}

impl<S: Read + Seek> FaultyIo<S> {
    /// Wrap `inner`, injecting the faults in `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyIo<S> {
        FaultyIo { inner, plan, pos: 0, reads: 0 }
    }

    /// How many read operations have been issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Unwrap the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read + Seek> Read for FaultyIo<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let op = self.reads;
        self.reads += 1;
        if self.plan.persistent_from.is_some_and(|from| op >= from) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("injected persistent I/O failure (read op {op})"),
            ));
        }
        if self.plan.transient_errors.contains(&op) {
            // TimedOut rather than Interrupted: std's `read_exact`
            // transparently retries Interrupted, which would hide the
            // injection from the code under test.
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("injected transient I/O failure (read op {op})"),
            ));
        }
        if self.plan.eofs.contains(&op) {
            return Ok(0);
        }
        let cap = if self.plan.short_reads.contains(&op) {
            buf.len().min(1)
        } else {
            buf.len()
        };
        let n = self.inner.read(&mut buf[..cap])?;
        for &(off, mask) in &self.plan.corrupt_bytes {
            if off >= self.pos && off < self.pos + n as u64 {
                buf[(off - self.pos) as usize] ^= mask;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

impl<S: Read + Seek> Seek for FaultyIo<S> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let p = self.inner.seek(pos)?;
        self.pos = p;
        Ok(p)
    }
}

impl<S: IoSource> IoSource for FaultyIo<S> {
    fn byte_len(&mut self) -> io::Result<u64> {
        // Length probes bypass fault injection: they model metadata
        // (fstat), not data-path reads.
        self.inner.byte_len()
    }
}

/// How many attempts [`retry`] makes before giving up on transient
/// errors, under the default [`RetryConfig`].
pub const RETRY_ATTEMPTS: u32 = 3;

/// The retry schedule for the drivers' byte-level I/O loop.
///
/// Attempt `k` (0-based) that fails transiently sleeps
/// `min(base · 2^k, max)`, scaled by a uniform random factor in
/// `[1 − jitter, 1 + jitter]`. `jitter = 0` (the default) reproduces
/// the historical fixed exponential schedule byte-for-byte; a nonzero
/// jitter decorrelates concurrent retry storms against a shared
/// backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Total attempts (the first try counts; min 1).
    pub attempts: u32,
    /// Backoff after the first failed attempt.
    pub base: Duration,
    /// Cap on any single backoff sleep.
    pub max: Duration,
    /// Jitter fraction in `[0, 1)`; `0` disables jitter.
    pub jitter: f64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            attempts: RETRY_ATTEMPTS,
            base: Duration::from_millis(1),
            max: Duration::from_millis(64),
            jitter: 0.0,
        }
    }
}

/// The process-wide config [`retry`] uses. An `RwLock` (not an
/// `AtomicCell`) because reads vastly outnumber writes and the
/// structure has four fields.
static CONFIG: std::sync::RwLock<RetryConfig> = std::sync::RwLock::new(RetryConfig {
    attempts: RETRY_ATTEMPTS,
    base: Duration::from_millis(1),
    max: Duration::from_millis(64),
    jitter: 0.0,
});

/// Sequence for deriving per-call jitter seeds without consulting the
/// clock (deterministic across runs for a fixed call order).
static JITTER_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Replace the process-wide retry configuration used by [`retry`].
/// `attempts` is clamped to at least 1.
pub fn set_retry_config(config: RetryConfig) {
    let mut guard = CONFIG.write().expect("retry config lock");
    *guard = RetryConfig { attempts: config.attempts.max(1), ..config };
}

/// The current process-wide retry configuration.
pub fn retry_config() -> RetryConfig {
    *CONFIG.read().expect("retry config lock")
}

/// Run `op` with bounded retry under the process-wide [`RetryConfig`]
/// (see [`set_retry_config`]): transient errors are retried with
/// exponential, optionally jittered backoff; non-transient errors
/// propagate immediately. The final transient error (if attempts run
/// out) is returned as-is, still carrying its message.
/// Each fault observed bumps `netcdf.faults` and each retried attempt
/// bumps `netcdf.retries` on the active `aql-trace` span, so a
/// profiled query shows how much of its I/O time went to recovery.
pub fn retry<T>(op: impl FnMut() -> Result<T, NcError>) -> Result<T, NcError> {
    retry_with(retry_config(), op)
}

/// [`retry`] under an explicit configuration (callers that need a
/// schedule different from the process-wide one).
pub fn retry_with<T>(
    config: RetryConfig,
    mut op: impl FnMut() -> Result<T, NcError>,
) -> Result<T, NcError> {
    /// Process-lifetime fault/retry counters (the per-query view lives
    /// on the trace span; these feed the `/metrics` endpoint).
    static M_FAULTS: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
        "aql_netcdf_faults_total",
        "NetCDF I/O operations that returned an error (pre-retry).",
    );
    static M_RETRIES: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
        "aql_netcdf_retries_total",
        "NetCDF I/O attempts retried after a transient error.",
    );
    let attempts = config.attempts.max(1);
    let mut rng: Option<rand::rngs::StdRng> = None;
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if e.is_transient() && attempt + 1 < attempts => {
                aql_trace::count("netcdf.faults", 1);
                aql_trace::count("netcdf.retries", 1);
                M_FAULTS.inc();
                M_RETRIES.inc();
                std::thread::sleep(backoff(config, attempt, &mut rng));
                attempt += 1;
            }
            other => {
                if other.is_err() {
                    aql_trace::count("netcdf.faults", 1);
                    M_FAULTS.inc();
                }
                return other;
            }
        }
    }
}

/// The sleep before retrying after failed attempt `attempt` (0-based).
/// The jitter RNG is created lazily on the first jittered sleep so the
/// (far more common) jitter-free path never touches the sequence
/// counter.
fn backoff(
    config: RetryConfig,
    attempt: u32,
    rng: &mut Option<rand::rngs::StdRng>,
) -> Duration {
    let raw = config
        .base
        .saturating_mul(1u32 << attempt.min(20))
        .min(config.max);
    if config.jitter <= 0.0 {
        return raw;
    }
    use rand::{Rng, SeedableRng};
    let rng = rng.get_or_insert_with(|| {
        let n = JITTER_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        rand::rngs::StdRng::seed_from_u64(n ^ 0x6E63_6466_6A74_7221)
    });
    let factor = rng.gen_range(1.0 - config.jitter..1.0 + config.jitter);
    raw.mul_f64(factor.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(bytes: &[u8]) -> Cursor<Vec<u8>> {
        Cursor::new(bytes.to_vec())
    }

    #[test]
    fn byte_len_for_cursor_and_wrapper() {
        let mut c = src(b"hello");
        assert_eq!(c.byte_len().unwrap(), 5);
        let mut f = FaultyIo::new(src(b"hello"), FaultPlan::new());
        assert_eq!(f.byte_len().unwrap(), 5);
    }

    #[test]
    fn clean_plan_is_passthrough() {
        let mut f = FaultyIo::new(src(b"abcdef"), FaultPlan::new());
        let mut buf = [0u8; 6];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn short_reads_truncate_but_read_exact_recovers() {
        let plan = FaultPlan::new().short_read_at(0).short_read_at(1);
        let mut f = FaultyIo::new(src(b"abcdef"), plan);
        let mut buf = [0u8; 6];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        assert!(f.reads() >= 3, "short reads forced extra ops, got {}", f.reads());
    }

    #[test]
    fn injected_eof_means_unexpected_eof() {
        let plan = FaultPlan::new().eof_at(0);
        let mut f = FaultyIo::new(src(b"abcdef"), plan);
        let mut buf = [0u8; 6];
        let err = f.read_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn transient_error_surfaces_and_classifies() {
        let plan = FaultPlan::new().transient_at(0);
        let mut f = FaultyIo::new(src(b"abcdef"), plan);
        let mut buf = [0u8; 6];
        let err = f.read_exact(&mut buf).unwrap_err();
        let nc: NcError = err.into();
        assert!(nc.is_transient());
        // The next attempt succeeds.
        f.seek(SeekFrom::Start(0)).unwrap();
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn corruption_applies_at_absolute_offsets() {
        let plan = FaultPlan::new().corrupt_byte(2, 0xFF);
        let mut f = FaultyIo::new(src(b"abcdef"), plan);
        let mut buf = [0u8; 6];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(buf[2], b'c' ^ 0xFF);
        assert_eq!(buf[0], b'a');
        // Re-reading after a seek corrupts again (offset-addressed).
        f.seek(SeekFrom::Start(2)).unwrap();
        let mut one = [0u8; 1];
        f.read_exact(&mut one).unwrap();
        assert_eq!(one[0], b'c' ^ 0xFF);
    }

    #[test]
    fn retry_recovers_from_transient_and_respects_bound() {
        // Succeeds on the 3rd attempt: two transient failures allowed.
        let mut calls = 0;
        let out = retry(|| {
            calls += 1;
            if calls < 3 {
                Err(NcError::Io { message: "flaky".into(), transient: true })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));

        // Persistent transient failure: gives up after RETRY_ATTEMPTS.
        let mut calls = 0;
        let out: Result<(), _> = retry(|| {
            calls += 1;
            Err(NcError::Io { message: "always down".into(), transient: true })
        });
        assert_eq!(calls, RETRY_ATTEMPTS);
        assert!(matches!(out, Err(NcError::Io { transient: true, .. })));

        // Non-transient errors are not retried.
        let mut calls = 0;
        let out: Result<(), _> = retry(|| {
            calls += 1;
            Err(NcError::io("disk on fire"))
        });
        assert_eq!(calls, 1);
        assert!(matches!(out, Err(NcError::Io { transient: false, .. })));
    }

    #[test]
    fn retry_with_controls_attempt_count() {
        let cfg = RetryConfig { attempts: 5, base: Duration::ZERO, ..RetryConfig::default() };
        let mut calls = 0;
        let out: Result<(), _> = retry_with(cfg, || {
            calls += 1;
            Err(NcError::Io { message: "always down".into(), transient: true })
        });
        assert_eq!(calls, 5);
        assert!(out.is_err());
        // attempts is clamped to at least one call.
        let cfg = RetryConfig { attempts: 0, ..RetryConfig::default() };
        let mut calls = 0;
        let _ = retry_with(cfg, || -> Result<(), _> {
            calls += 1;
            Err(NcError::io("nope"))
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_jitter_band_and_exact_default() {
        let cfg = RetryConfig {
            base: Duration::from_millis(4),
            max: Duration::from_millis(32),
            jitter: 0.5,
            ..RetryConfig::default()
        };
        let mut rng = None;
        for attempt in 0..4 {
            let raw = Duration::from_millis(4u64 << attempt).min(cfg.max);
            let d = backoff(cfg, attempt, &mut rng);
            assert!(d >= raw.mul_f64(0.5) && d <= raw.mul_f64(1.5), "{d:?} outside band of {raw:?}");
        }
        assert!(rng.is_some(), "jitter draws use the rng");
        // Zero jitter reproduces the historical fixed schedule and
        // never builds an rng.
        let exact = RetryConfig::default();
        let mut none = None;
        assert_eq!(backoff(exact, 0, &mut none), Duration::from_millis(1));
        assert_eq!(backoff(exact, 3, &mut none), Duration::from_millis(8));
        assert!(none.is_none(), "no rng without jitter");
    }

    #[test]
    fn retry_config_roundtrip() {
        // Only mutate jitter: other tests in this binary observe call
        // counts through the process-wide config, and jitter does not
        // change them.
        let orig = retry_config();
        set_retry_config(RetryConfig { jitter: 0.25, ..orig });
        assert_eq!(retry_config().jitter, 0.25);
        set_retry_config(orig);
        assert_eq!(retry_config(), orig);
    }
}
