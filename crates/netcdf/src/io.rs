//! Injectable byte sources for the NetCDF substrate.
//!
//! [`IoSource`] abstracts "a seekable stream of bytes with a known
//! length" so the parser and [`crate::read::SlabReader`] work the same
//! over files, in-memory buffers, and instrumented wrappers. The
//! length is what lets the parser validate every declared count and
//! offset *before* allocating (see `crate::read`).
//!
//! [`FaultyIo`] wraps any source and injects faults on a schedule — a
//! [`FaultPlan`] of short reads, premature EOFs, transient
//! (retryable) errors, persistent errors, and byte corruption. It
//! exists so tests can drive the error paths of the parser and the
//! drivers' retry loop deterministically; production code never
//! constructs one.
//!
//! [`retry`] is the bounded retry-with-backoff loop the drivers use:
//! only errors classified transient ([`NcError::is_transient`]) are
//! retried, everything else propagates immediately.

use std::fs::File;
use std::io::{self, BufReader, Cursor, Read, Seek, SeekFrom};
use std::time::Duration;

use crate::model::NcError;

/// A seekable byte source with a known total length.
///
/// The default `byte_len` measures by seeking to the end and back,
/// which works for any `Read + Seek`; in-memory sources override it
/// with the exact buffer length.
pub trait IoSource: Read + Seek {
    /// Total number of bytes in the source.
    fn byte_len(&mut self) -> io::Result<u64> {
        let pos = self.stream_position()?;
        let end = self.seek(SeekFrom::End(0))?;
        self.seek(SeekFrom::Start(pos))?;
        Ok(end)
    }
}

impl IoSource for File {}

impl IoSource for BufReader<File> {}

impl<T: AsRef<[u8]>> IoSource for Cursor<T> {
    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.get_ref().as_ref().len() as u64)
    }
}

/// A schedule of faults for [`FaultyIo`], keyed by *read operation
/// index* (the n-th call to `read`, starting at 0) or by absolute byte
/// offset (for corruption).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Read ops that deliver at most one byte (a benign short read;
    /// exercises callers' read loops, `read_exact` retries through it).
    pub short_reads: Vec<u64>,
    /// Read ops that report end-of-file (`Ok(0)`) regardless of how
    /// much data remains — simulates truncation.
    pub eofs: Vec<u64>,
    /// Read ops that fail with a transient (`TimedOut`) error.
    pub transient_errors: Vec<u64>,
    /// First read op from which *every* read fails persistently
    /// (`NotConnected`), if set.
    pub persistent_from: Option<u64>,
    /// Bytes to corrupt: `(absolute offset, xor mask)` applied to data
    /// passing through `read`.
    pub corrupt_bytes: Vec<(u64, u8)>,
}

impl FaultPlan {
    /// No faults.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Deliver at most one byte on read op `op`.
    pub fn short_read_at(mut self, op: u64) -> Self {
        self.short_reads.push(op);
        self
    }

    /// Report EOF on read op `op`.
    pub fn eof_at(mut self, op: u64) -> Self {
        self.eofs.push(op);
        self
    }

    /// Fail read op `op` with a transient error.
    pub fn transient_at(mut self, op: u64) -> Self {
        self.transient_errors.push(op);
        self
    }

    /// Fail every read op from `op` onward with a persistent error.
    pub fn persistent_from(mut self, op: u64) -> Self {
        self.persistent_from = Some(op);
        self
    }

    /// XOR the byte at absolute `offset` with `mask` as it is read.
    pub fn corrupt_byte(mut self, offset: u64, mask: u8) -> Self {
        self.corrupt_bytes.push((offset, mask));
        self
    }
}

/// A fault-injecting wrapper around any [`IoSource`]. Intended for
/// tests; see [`FaultPlan`] for the fault vocabulary.
#[derive(Debug)]
pub struct FaultyIo<S> {
    inner: S,
    plan: FaultPlan,
    pos: u64,
    reads: u64,
}

impl<S: Read + Seek> FaultyIo<S> {
    /// Wrap `inner`, injecting the faults in `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyIo<S> {
        FaultyIo { inner, plan, pos: 0, reads: 0 }
    }

    /// How many read operations have been issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Unwrap the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read + Seek> Read for FaultyIo<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let op = self.reads;
        self.reads += 1;
        if self.plan.persistent_from.is_some_and(|from| op >= from) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("injected persistent I/O failure (read op {op})"),
            ));
        }
        if self.plan.transient_errors.contains(&op) {
            // TimedOut rather than Interrupted: std's `read_exact`
            // transparently retries Interrupted, which would hide the
            // injection from the code under test.
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("injected transient I/O failure (read op {op})"),
            ));
        }
        if self.plan.eofs.contains(&op) {
            return Ok(0);
        }
        let cap = if self.plan.short_reads.contains(&op) {
            buf.len().min(1)
        } else {
            buf.len()
        };
        let n = self.inner.read(&mut buf[..cap])?;
        for &(off, mask) in &self.plan.corrupt_bytes {
            if off >= self.pos && off < self.pos + n as u64 {
                buf[(off - self.pos) as usize] ^= mask;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

impl<S: Read + Seek> Seek for FaultyIo<S> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let p = self.inner.seek(pos)?;
        self.pos = p;
        Ok(p)
    }
}

impl<S: IoSource> IoSource for FaultyIo<S> {
    fn byte_len(&mut self) -> io::Result<u64> {
        // Length probes bypass fault injection: they model metadata
        // (fstat), not data-path reads.
        self.inner.byte_len()
    }
}

/// How many attempts [`retry`] makes before giving up on transient
/// errors.
pub const RETRY_ATTEMPTS: u32 = 3;

/// Run `op` with bounded retry: transient errors are retried up to
/// [`RETRY_ATTEMPTS`] times total, sleeping 1ms, 2ms, … between
/// attempts; non-transient errors propagate immediately. The final
/// transient error (if attempts run out) is returned as-is, still
/// carrying its message.
/// Each fault observed bumps `netcdf.faults` and each retried attempt
/// bumps `netcdf.retries` on the active `aql-trace` span, so a
/// profiled query shows how much of its I/O time went to recovery.
pub fn retry<T>(mut op: impl FnMut() -> Result<T, NcError>) -> Result<T, NcError> {
    /// Process-lifetime fault/retry counters (the per-query view lives
    /// on the trace span; these feed the `/metrics` endpoint).
    static M_FAULTS: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
        "aql_netcdf_faults_total",
        "NetCDF I/O operations that returned an error (pre-retry).",
    );
    static M_RETRIES: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
        "aql_netcdf_retries_total",
        "NetCDF I/O attempts retried after a transient error.",
    );
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if e.is_transient() && attempt + 1 < RETRY_ATTEMPTS => {
                aql_trace::count("netcdf.faults", 1);
                aql_trace::count("netcdf.retries", 1);
                M_FAULTS.inc();
                M_RETRIES.inc();
                std::thread::sleep(Duration::from_millis(1u64 << attempt));
                attempt += 1;
            }
            other => {
                if other.is_err() {
                    aql_trace::count("netcdf.faults", 1);
                    M_FAULTS.inc();
                }
                return other;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(bytes: &[u8]) -> Cursor<Vec<u8>> {
        Cursor::new(bytes.to_vec())
    }

    #[test]
    fn byte_len_for_cursor_and_wrapper() {
        let mut c = src(b"hello");
        assert_eq!(c.byte_len().unwrap(), 5);
        let mut f = FaultyIo::new(src(b"hello"), FaultPlan::new());
        assert_eq!(f.byte_len().unwrap(), 5);
    }

    #[test]
    fn clean_plan_is_passthrough() {
        let mut f = FaultyIo::new(src(b"abcdef"), FaultPlan::new());
        let mut buf = [0u8; 6];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn short_reads_truncate_but_read_exact_recovers() {
        let plan = FaultPlan::new().short_read_at(0).short_read_at(1);
        let mut f = FaultyIo::new(src(b"abcdef"), plan);
        let mut buf = [0u8; 6];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        assert!(f.reads() >= 3, "short reads forced extra ops, got {}", f.reads());
    }

    #[test]
    fn injected_eof_means_unexpected_eof() {
        let plan = FaultPlan::new().eof_at(0);
        let mut f = FaultyIo::new(src(b"abcdef"), plan);
        let mut buf = [0u8; 6];
        let err = f.read_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn transient_error_surfaces_and_classifies() {
        let plan = FaultPlan::new().transient_at(0);
        let mut f = FaultyIo::new(src(b"abcdef"), plan);
        let mut buf = [0u8; 6];
        let err = f.read_exact(&mut buf).unwrap_err();
        let nc: NcError = err.into();
        assert!(nc.is_transient());
        // The next attempt succeeds.
        f.seek(SeekFrom::Start(0)).unwrap();
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn corruption_applies_at_absolute_offsets() {
        let plan = FaultPlan::new().corrupt_byte(2, 0xFF);
        let mut f = FaultyIo::new(src(b"abcdef"), plan);
        let mut buf = [0u8; 6];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(buf[2], b'c' ^ 0xFF);
        assert_eq!(buf[0], b'a');
        // Re-reading after a seek corrupts again (offset-addressed).
        f.seek(SeekFrom::Start(2)).unwrap();
        let mut one = [0u8; 1];
        f.read_exact(&mut one).unwrap();
        assert_eq!(one[0], b'c' ^ 0xFF);
    }

    #[test]
    fn retry_recovers_from_transient_and_respects_bound() {
        // Succeeds on the 3rd attempt: two transient failures allowed.
        let mut calls = 0;
        let out = retry(|| {
            calls += 1;
            if calls < 3 {
                Err(NcError::Io { message: "flaky".into(), transient: true })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));

        // Persistent transient failure: gives up after RETRY_ATTEMPTS.
        let mut calls = 0;
        let out: Result<(), _> = retry(|| {
            calls += 1;
            Err(NcError::Io { message: "always down".into(), transient: true })
        });
        assert_eq!(calls, RETRY_ATTEMPTS);
        assert!(matches!(out, Err(NcError::Io { transient: true, .. })));

        // Non-transient errors are not retried.
        let mut calls = 0;
        let out: Result<(), _> = retry(|| {
            calls += 1;
            Err(NcError::io("disk on fire"))
        });
        assert_eq!(calls, 1);
        assert!(matches!(out, Err(NcError::Io { transient: false, .. })));
    }
}
