//! A NetCDF-backed [`ChunkSource`]: cache misses become hyperslab
//! reads.
//!
//! An [`NcChunkSource`] binds one variable of one dataset and serves
//! `aql-store` chunk requests through the existing
//! [`read_slab_retrying`] path: a
//! fresh source is opened per attempt, transient I/O errors are
//! retried with bounded backoff, and the resulting typed values are
//! widened to `f64` (the drivers' "numeric external types widen to
//! `real`" policy). The source carries a *base offset* so a lazy
//! array over a subslab `(lo, hi)` addresses its chunks in subslab
//! coordinates while the file is read in absolute coordinates.

use std::marker::PhantomData;

use aql_store::{ChunkSource, ScalarBuf, StoreError};

use crate::driver::read_slab_retrying;
use crate::io::IoSource;
use crate::model::{NcError, NcValues};

/// Translate a NetCDF substrate error into a storage error, keeping
/// the transient/corrupt classification.
pub fn nc_to_store(e: NcError) -> StoreError {
    match e {
        NcError::Io { message, transient } => StoreError::Io { message, transient },
        NcError::Corrupt { offset, message } => {
            StoreError::Corrupt(format!("at byte {offset}: {message}"))
        }
        // Lookup/bounds/format failures mean the binding and the file
        // disagree — surfaced as shape errors.
        other => StoreError::Shape(other.to_string()),
    }
}

/// Convert a slab of typed external values to a flat `f64` buffer.
fn values_to_buf(vals: &NcValues) -> Result<ScalarBuf, StoreError> {
    let mut out = Vec::with_capacity(vals.len());
    for i in 0..vals.len() {
        let x = vals.get_f64(i).ok_or_else(|| {
            StoreError::Corrupt("NC_CHAR variables cannot be read as real arrays".into())
        })?;
        out.push(x);
    }
    Ok(ScalarBuf::F64(out))
}

/// A chunk source reading one NetCDF variable through an
/// open-per-attempt factory (so retries never see partial reader
/// state).
pub struct NcChunkSource<S, F> {
    open: F,
    var: String,
    base: Vec<u64>,
    _source: PhantomData<fn() -> S>,
}

impl<S, F> NcChunkSource<S, F>
where
    S: IoSource,
    F: FnMut() -> Result<S, NcError>,
{
    /// A source for variable `var`, with chunk coordinates offset by
    /// `base` (the lower bound of the bound subslab).
    pub fn new(open: F, var: impl Into<String>, base: Vec<u64>) -> NcChunkSource<S, F> {
        NcChunkSource { open, var: var.into(), base, _source: PhantomData }
    }
}

impl<S, F> ChunkSource for NcChunkSource<S, F>
where
    S: IoSource,
    F: FnMut() -> Result<S, NcError>,
{
    fn read_chunk(&mut self, start: &[u64], count: &[u64]) -> Result<ScalarBuf, StoreError> {
        if start.len() != self.base.len() {
            return Err(StoreError::Shape(format!(
                "chunk rank {} does not match variable rank {}",
                start.len(),
                self.base.len()
            )));
        }
        let abs: Vec<u64> = start.iter().zip(&self.base).map(|(&s, &b)| s + b).collect();
        let vals = read_slab_retrying(&mut self.open, &self.var, &abs, count)
            .map_err(nc_to_store)?;
        values_to_buf(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{NcType, VERSION_CLASSIC};
    use crate::io::{FaultPlan, FaultyIo};
    use crate::model::NcFile;
    use crate::write::to_bytes;

    fn sample_bytes() -> Vec<u8> {
        let mut f = NcFile::new();
        let t = f.add_dim("t", 3);
        let x = f.add_dim("x", 4);
        f.add_var(
            "v",
            vec![t, x],
            NcType::Int,
            vec![],
            NcValues::Int((0..12).collect()),
        )
        .unwrap();
        to_bytes(&f, VERSION_CLASSIC).unwrap()
    }

    #[test]
    fn chunks_read_in_base_offset_coordinates() {
        let bytes = sample_bytes();
        // Bind the subslab with lower bound (1, 1): chunk coordinate
        // (0, 0) must read absolute element (1, 1) = 5.
        let mut src = NcChunkSource::new(
            move || Ok(std::io::Cursor::new(bytes.clone())),
            "v",
            vec![1, 1],
        );
        let buf = src.read_chunk(&[0, 0], &[2, 2]).unwrap();
        assert_eq!(buf, ScalarBuf::F64(vec![5.0, 6.0, 9.0, 10.0]));
    }

    #[test]
    fn transient_faults_retry_per_chunk() {
        let bytes = sample_bytes();
        let mut attempts = 0u32;
        let mut src = NcChunkSource::new(
            move || {
                attempts += 1;
                let plan = if attempts == 1 {
                    FaultPlan::new().transient_at(0)
                } else {
                    FaultPlan::new()
                };
                Ok(FaultyIo::new(std::io::Cursor::new(bytes.clone()), plan))
            },
            "v",
            vec![0, 0],
        );
        let buf = src.read_chunk(&[2, 0], &[1, 4]).unwrap();
        assert_eq!(buf, ScalarBuf::F64(vec![8.0, 9.0, 10.0, 11.0]));
    }

    #[test]
    fn missing_variable_is_shape_error() {
        let bytes = sample_bytes();
        let mut src = NcChunkSource::new(
            move || Ok(std::io::Cursor::new(bytes.clone())),
            "nope",
            vec![0, 0],
        );
        assert!(matches!(src.read_chunk(&[0, 0], &[1, 1]), Err(StoreError::Shape(_))));
    }
}
