//! Serializer for the NetCDF classic format (CDF-1 / CDF-2).

use std::io::Write as _;
use std::path::Path;

use crate::format::{
    pad4, MAGIC, NC_ATTRIBUTE, NC_DIMENSION, NC_VARIABLE, VERSION_64BIT, VERSION_CLASSIC,
};
use crate::model::{NcAttr, NcError, NcFile, NcValues};

/// Serialize a dataset to classic bytes. `version` is
/// [`VERSION_CLASSIC`] (32-bit offsets) or [`VERSION_64BIT`].
pub fn to_bytes(f: &NcFile, version: u8) -> Result<Vec<u8>, NcError> {
    if version != VERSION_CLASSIC && version != VERSION_64BIT {
        return Err(NcError::Format(format!("unsupported version byte {version}")));
    }
    validate(f)?;

    // First pass: header size with placeholder begins.
    let begin_size: u64 = if version == VERSION_64BIT { 8 } else { 4 };
    let header_len = header_bytes(f, version, &vec![0; f.vars.len()])?.len() as u64;

    // Assign data offsets: fixed variables first, then the record
    // section, in declaration order.
    let mut begins = vec![0u64; f.vars.len()];
    let mut cur = pad4(header_len);
    for (i, v) in f.vars.iter().enumerate() {
        if !f.is_record_var(v) {
            begins[i] = cur;
            cur += f.vsize(v)?;
        }
    }
    let rec_stride = f.record_stride()?;
    let mut rec_cur = cur;
    for (i, v) in f.vars.iter().enumerate() {
        if f.is_record_var(v) {
            begins[i] = rec_cur;
            // Offsets of record vars within one record use the padded
            // vsize (the unpadded single-var case has one var anyway).
            rec_cur += f.vsize(v)?;
        }
    }
    if version == VERSION_CLASSIC {
        let max_begin = begins.iter().copied().max().unwrap_or(0);
        if max_begin > u32::MAX as u64 {
            return Err(NcError::Format(
                "dataset too large for CDF-1 32-bit offsets; use CDF-2".into(),
            ));
        }
    }
    let _ = begin_size;

    // Second pass: real header, then data.
    let mut out = header_bytes(f, version, &begins)?;
    out.resize(pad4(out.len() as u64) as usize, 0);

    // Fixed data.
    for (i, v) in f.vars.iter().enumerate() {
        if !f.is_record_var(v) {
            debug_assert_eq!(out.len() as u64, begins[i]);
            write_values(&mut out, &f.data[i], 0, f.data[i].len());
            pad_to4(&mut out);
        }
    }
    // Record data: records interleaved across record variables.
    let rec_vars: Vec<usize> = (0..f.vars.len())
        .filter(|&i| f.is_record_var(&f.vars[i]))
        .collect();
    if !rec_vars.is_empty() {
        let single = rec_vars.len() == 1;
        for r in 0..f.numrecs as usize {
            for &i in &rec_vars {
                let v = &f.vars[i];
                let per_rec = (f.record_row_bytes(v)? / v.ty.size()) as usize;
                write_values(&mut out, &f.data[i], r * per_rec, per_rec);
                if !single {
                    pad_to4(&mut out);
                }
            }
        }
        let _ = rec_stride;
    }
    Ok(out)
}

/// Write a dataset to a file.
pub fn write_file(f: &NcFile, path: impl AsRef<Path>, version: u8) -> Result<(), NcError> {
    let bytes = to_bytes(f, version)?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

fn validate(f: &NcFile) -> Result<(), NcError> {
    let record_dims = f.dims.iter().filter(|d| d.is_record()).count();
    if record_dims > 1 {
        return Err(NcError::Model("at most one record dimension is allowed".into()));
    }
    for v in &f.vars {
        for (pos, &d) in v.dimids.iter().enumerate() {
            let dim = f
                .dims
                .get(d)
                .ok_or_else(|| NcError::Model(format!("variable `{}`: bad dimid {d}", v.name)))?;
            if dim.is_record() && pos != 0 {
                return Err(NcError::Model(format!(
                    "variable `{}`: the record dimension must come first",
                    v.name
                )));
            }
        }
        if v.dimids.is_empty() {
            return Err(NcError::Model(format!(
                "variable `{}`: scalar variables are not supported by this writer",
                v.name
            )));
        }
    }
    if f.vars.len() != f.data.len() {
        return Err(NcError::Model("vars/data length mismatch".into()));
    }
    Ok(())
}

fn header_bytes(f: &NcFile, version: u8, begins: &[u64]) -> Result<Vec<u8>, NcError> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(version);
    be32(&mut out, f.numrecs);

    // dim_list
    if f.dims.is_empty() {
        be32(&mut out, 0);
        be32(&mut out, 0);
    } else {
        be32(&mut out, NC_DIMENSION);
        be32(&mut out, f.dims.len() as u32);
        for d in &f.dims {
            name(&mut out, &d.name);
            be32(&mut out, d.len);
        }
    }
    attr_list(&mut out, &f.gattrs);

    // var_list
    if f.vars.is_empty() {
        be32(&mut out, 0);
        be32(&mut out, 0);
    } else {
        be32(&mut out, NC_VARIABLE);
        be32(&mut out, f.vars.len() as u32);
        for (i, v) in f.vars.iter().enumerate() {
            name(&mut out, &v.name);
            be32(&mut out, v.dimids.len() as u32);
            for &d in &v.dimids {
                be32(&mut out, d as u32);
            }
            attr_list(&mut out, &v.attrs);
            be32(&mut out, v.ty.code());
            let vsize = f.vsize(v)?;
            be32(&mut out, vsize.min(u32::MAX as u64) as u32);
            if version == VERSION_64BIT {
                out.extend_from_slice(&begins[i].to_be_bytes());
            } else {
                be32(&mut out, begins[i] as u32);
            }
        }
    }
    Ok(out)
}

fn attr_list(out: &mut Vec<u8>, attrs: &[NcAttr]) {
    if attrs.is_empty() {
        be32(out, 0);
        be32(out, 0);
        return;
    }
    be32(out, NC_ATTRIBUTE);
    be32(out, attrs.len() as u32);
    for a in attrs {
        name(out, &a.name);
        be32(out, a.values.ty().code());
        be32(out, a.values.len() as u32);
        write_values(out, &a.values, 0, a.values.len());
        pad_to4(out);
    }
}

fn name(out: &mut Vec<u8>, s: &str) {
    be32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
    pad_to4(out);
}

fn be32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn pad_to4(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(4) {
        out.push(0);
    }
}

/// Append `count` big-endian values starting at `offset`.
fn write_values(out: &mut Vec<u8>, vals: &NcValues, offset: usize, count: usize) {
    match vals {
        NcValues::Byte(v) => {
            out.extend(v[offset..offset + count].iter().map(|&x| x as u8))
        }
        NcValues::Char(v) => out.extend_from_slice(&v[offset..offset + count]),
        NcValues::Short(v) => {
            for x in &v[offset..offset + count] {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
        NcValues::Int(v) => {
            for x in &v[offset..offset + count] {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
        NcValues::Float(v) => {
            for x in &v[offset..offset + count] {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
        NcValues::Double(v) => {
            for x in &v[offset..offset + count] {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::NcType;
    use crate::model::NcDim;

    #[test]
    fn header_magic_and_numrecs() {
        let mut f = NcFile::new();
        f.add_dim("x", 2);
        f.add_var(
            "v",
            vec![0],
            NcType::Int,
            vec![],
            NcValues::Int(vec![1, 2]),
        )
        .unwrap();
        let b = to_bytes(&f, VERSION_CLASSIC).unwrap();
        assert_eq!(&b[0..3], MAGIC);
        assert_eq!(b[3], VERSION_CLASSIC);
        assert_eq!(u32::from_be_bytes([b[4], b[5], b[6], b[7]]), 0);
    }

    #[test]
    fn data_is_big_endian_and_padded() {
        let mut f = NcFile::new();
        f.add_dim("x", 1);
        f.add_var("v", vec![0], NcType::Short, vec![], NcValues::Short(vec![0x1234]))
            .unwrap();
        let b = to_bytes(&f, VERSION_CLASSIC).unwrap();
        // The last 4 bytes hold the short padded to 4.
        assert_eq!(&b[b.len() - 4..], &[0x12, 0x34, 0x00, 0x00]);
        assert_eq!(b.len() % 4, 0);
    }

    #[test]
    fn rejects_invalid_models() {
        let mut f = NcFile::new();
        f.dims.push(NcDim { name: "t".into(), len: 0 });
        f.dims.push(NcDim { name: "u".into(), len: 0 });
        assert!(matches!(
            to_bytes(&f, VERSION_CLASSIC),
            Err(NcError::Model(_))
        ));
        // Record dimension not first.
        let mut f = NcFile::new();
        let t = f.add_dim("t", 0);
        let x = f.add_dim("x", 1);
        f.numrecs = 1;
        f.vars.push(crate::model::NcVar {
            name: "v".into(),
            dimids: vec![x, t],
            attrs: vec![],
            ty: NcType::Int,
        });
        f.data.push(NcValues::Int(vec![0]));
        assert!(matches!(
            to_bytes(&f, VERSION_CLASSIC),
            Err(NcError::Model(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let f = NcFile::new();
        assert!(to_bytes(&f, 9).is_err());
    }
}
