//! Lazy chunked binding vs. the materialized hyperslab path, and
//! fault propagation through the chunk cache.
//!
//! Two suites:
//!
//! * property tests — a lazily bound array must agree
//!   element-for-element with `SlabReader::read_slab` over random
//!   subslabs and chunk shapes, including edge chunks;
//! * fault-injection tests — a `FaultyIo`-backed chunk source must
//!   retry transient faults per chunk, propagate persistent and
//!   corrupt failures, and never poison chunks already cached.

use std::cell::Cell;
use std::io::Cursor;
use std::rc::Rc;

use proptest::prelude::*;

use aql_netcdf::chunk::NcChunkSource;
use aql_netcdf::format::{NcType, VERSION_CLASSIC};
use aql_netcdf::io::{FaultPlan, FaultyIo};
use aql_netcdf::model::{NcFile, NcValues};
use aql_netcdf::read::SlabReader;
use aql_netcdf::write::to_bytes;
use aql_store::{ChunkLayout, LazyArray, Scalar, ScalarKind, StoreError};

/// A 6×5×4 double variable with distinct values.
fn sample_bytes() -> Vec<u8> {
    let mut f = NcFile::new();
    let a = f.add_dim("a", 6);
    let b = f.add_dim("b", 5);
    let c = f.add_dim("c", 4);
    let vals: Vec<f64> = (0..6 * 5 * 4).map(|i| i as f64 * 0.25).collect();
    f.add_var("v", vec![a, b, c], NcType::Double, vec![], NcValues::Double(vals)).unwrap();
    to_bytes(&f, VERSION_CLASSIC).unwrap()
}

/// Bind `(start, count)` of variable `v` lazily with the given chunk
/// shape.
fn bind_lazy(bytes: Vec<u8>, start: Vec<u64>, count: Vec<u64>, chunk: Vec<u64>) -> LazyArray {
    let layout = ChunkLayout::new(count, chunk).unwrap();
    let source = NcChunkSource::new(move || Ok(Cursor::new(bytes.clone())), "v", start);
    LazyArray::new(layout, ScalarKind::F64, Box::new(source), 1 << 16)
}

/// Random in-bounds subslab of the 6×5×4 variable plus a chunk shape.
fn arb_slab() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>)> {
    (
        (0u64..6, 0u64..5, 0u64..4),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        (1u64..4, 1u64..4, 1u64..4),
    )
        .prop_map(|((s0, s1, s2), (f0, f1, f2), (c0, c1, c2))| {
            let dims = [6u64, 5, 4];
            let start = vec![s0, s1, s2];
            let count: Vec<u64> = start
                .iter()
                .zip([f0, f1, f2])
                .zip(dims)
                .map(|((&s, f), d)| 1 + ((f * (d - s) as f64).floor() as u64).min(d - s - 1))
                .collect();
            (start, count, vec![c0, c1, c2])
        })
}

proptest! {
    /// Every element of a lazily bound subslab equals the
    /// corresponding element of the eagerly materialized slab.
    #[test]
    fn lazy_binding_matches_read_slab((start, count, chunk) in arb_slab()) {
        let bytes = sample_bytes();
        let mut reader = SlabReader::from_source(Cursor::new(bytes.clone())).unwrap();
        let want = reader.read_slab("v", &start, &count).unwrap();
        let mut lazy = bind_lazy(bytes, start, count.clone(), chunk);

        let n: u64 = count.iter().product();
        for off in 0..n {
            let got = lazy.get_linear(off).unwrap().unwrap();
            let Scalar::F64(x) = got else { panic!("f64 variable") };
            prop_assert_eq!(x, want.get_f64(off as usize).unwrap());
        }
        // Full-slab extraction agrees too (exercises edge chunks).
        let buf = lazy.read_slab(&[0; 3], &count).unwrap();
        for off in 0..n as usize {
            let Scalar::F64(x) = buf.get(off).unwrap() else { panic!("f64 variable") };
            prop_assert_eq!(x, want.get_f64(off).unwrap());
        }
    }
}

#[test]
fn transient_fault_retries_within_one_chunk_load() {
    let bytes = sample_bytes();
    let attempts = Rc::new(Cell::new(0u32));
    let a2 = Rc::clone(&attempts);
    let layout = ChunkLayout::new(vec![6, 5, 4], vec![2, 5, 4]).unwrap();
    let source = NcChunkSource::new(
        move || {
            let n = a2.get() + 1;
            a2.set(n);
            // First attempt of the first chunk load fails transiently.
            let plan =
                if n == 1 { FaultPlan::new().transient_at(0) } else { FaultPlan::new() };
            Ok(FaultyIo::new(Cursor::new(bytes.clone()), plan))
        },
        "v",
        vec![0, 0, 0],
    );
    let mut lazy = LazyArray::new(layout, ScalarKind::F64, Box::new(source), 1 << 16);

    assert_eq!(lazy.get(&[0, 0, 0]).unwrap(), Some(Scalar::F64(0.0)));
    assert_eq!(attempts.get(), 2, "one failed attempt + one retry");
    let s = lazy.stats();
    assert_eq!((s.misses, s.load_errors), (1, 0), "retry is invisible to the cache");

    // The chunk was cached despite the bumpy load: no further opens.
    assert_eq!(lazy.get(&[1, 4, 3]).unwrap(), Some(Scalar::F64(39.0 * 0.25)));
    assert_eq!(attempts.get(), 2);
    assert_eq!(lazy.stats().hits, 1);
}

#[test]
fn persistent_fault_propagates_without_poisoning_cache() {
    let bytes = sample_bytes();
    // Chunks are 2×5×4 = 40 elements: chunk 0 covers a ∈ {0,1},
    // chunk 1 covers a ∈ {2,3}, chunk 2 covers a ∈ {4,5}.
    let layout = ChunkLayout::new(vec![6, 5, 4], vec![2, 5, 4]).unwrap();
    let failing = Rc::new(Cell::new(false));
    let f2 = Rc::clone(&failing);
    let source = NcChunkSource::new(
        move || {
            let plan = if f2.get() {
                FaultPlan::new().persistent_from(0)
            } else {
                FaultPlan::new()
            };
            Ok(FaultyIo::new(Cursor::new(bytes.clone()), plan))
        },
        "v",
        vec![0, 0, 0],
    );
    let mut lazy = LazyArray::new(layout, ScalarKind::F64, Box::new(source), 1 << 16);

    // Healthy load of chunk 0.
    assert_eq!(lazy.get(&[0, 0, 0]).unwrap(), Some(Scalar::F64(0.0)));

    // The device goes down: chunk 1 fails persistently (no retry).
    failing.set(true);
    let err = lazy.get(&[2, 0, 0]).unwrap_err();
    assert!(matches!(err, StoreError::Io { transient: false, .. }), "got {err:?}");
    assert_eq!(lazy.stats().load_errors, 1);

    // Chunk 0 is still served from cache — the failed load poisoned
    // nothing.
    assert_eq!(lazy.get(&[1, 0, 0]).unwrap(), Some(Scalar::F64(20.0 * 0.25)));
    assert_eq!(lazy.stats().hits, 1);

    // The device recovers: chunk 1 loads and caches normally.
    failing.set(false);
    assert_eq!(lazy.get(&[2, 0, 0]).unwrap(), Some(Scalar::F64(40.0 * 0.25)));
    assert_eq!(lazy.get(&[2, 0, 1]).unwrap(), Some(Scalar::F64(41.0 * 0.25)));
    let s = lazy.stats();
    assert_eq!((s.misses, s.load_errors, s.hits), (3, 1, 2));
}

#[test]
fn corrupt_header_fails_as_corrupt_not_cached() {
    let bytes = sample_bytes();
    // Flip a byte in the magic so the per-chunk open parses garbage.
    let layout = ChunkLayout::new(vec![6, 5, 4], vec![6, 5, 4]).unwrap();
    let source = NcChunkSource::new(
        move || {
            Ok(FaultyIo::new(
                Cursor::new(bytes.clone()),
                FaultPlan::new().corrupt_byte(0, 0xFF),
            ))
        },
        "v",
        vec![0, 0, 0],
    );
    let mut lazy = LazyArray::new(layout, ScalarKind::F64, Box::new(source), 1 << 16);
    let err = lazy.get(&[0, 0, 0]).unwrap_err();
    // A mangled header surfaces as a non-transient storage failure
    // (corrupt or format, depending on where parsing trips), and the
    // cache records the failed load without caching anything.
    assert!(!err.is_transient(), "got {err:?}");
    let s = lazy.stats();
    assert_eq!((s.misses, s.load_errors, s.bytes_read), (1, 1, 0));
}
