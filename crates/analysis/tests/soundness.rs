//! Soundness property test: on randomly composed array pipelines,
//! every runtime-observed shape, value, cardinality, and
//! materialization event must be contained in the analysis prediction.
//!
//! The evaluation side runs with bounds-check elision enabled (the
//! default), so in this debug build the evaluator's
//! `debug_assert!`-based elision tripwire is armed for the whole
//! corpus too: an unsound elision mark anywhere in these pipelines
//! aborts the test.

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use proptest::prelude::*;

use aql_analysis::{absval_of_value, analyze, AbsVal, Effect, SubVerdict, SymExt};
use aql_core::eval::{eval, EvalCtx};
use aql_core::expr::builder::*;
use aql_core::expr::{name, Expr, Name};
use aql_core::prim::Extensions;
use aql_core::value::{ArrayVal, Value};

// ---------------------------------------------------------------------
// Pipeline generation: rank-1 nat-array transformations.
// ---------------------------------------------------------------------

/// One transformation stage applied to the previous stage's array.
#[derive(Debug, Clone)]
enum Step {
    /// `[[ X[i] + c | i < dim(X) ]]`
    AddConst(u64),
    /// `[[ X[i] * c | i < dim(X) ]]`
    MulConst(u64),
    /// `[[ X[(i + c) % dim(X)] | i < dim(X) ]]` — rotation, in-bounds.
    ModShift(u64),
    /// `[[ X[i + c] | i < dim(X) ]]` — the last `c` entries are `⊥`.
    Window(u64),
    /// `[[ X[dim(X) ∸ (i + 1)] | i < dim(X) ]]` — reversal.
    Reverse,
}

/// How the pipeline ends.
#[derive(Debug, Clone)]
enum Fin {
    /// Leave the array.
    None,
    /// `Σ{ X[x] | x ∈ gen(dim(X)) }`
    Sum,
    /// `⋃{ {X[x]} | x ∈ gen(dim(X)) }`
    SetOf,
}

/// Bind the previous stage once and build on it, so pipelines stay
/// linear in size.
fn stage(x: Expr, build: impl FnOnce(Expr) -> Expr) -> Expr {
    Expr::Let(name("p"), x.boxed(), build(var("p")).boxed())
}

fn apply(x: Expr, s: &Step) -> Expr {
    match s {
        Step::AddConst(c) => {
            let c = *c;
            stage(x, |p| {
                tab1("i", dim(1, p.clone()), add(sub(p, vec![var("i")]), nat(c)))
            })
        }
        Step::MulConst(c) => {
            let c = *c;
            stage(x, |p| {
                tab1("i", dim(1, p.clone()), mul(sub(p, vec![var("i")]), nat(c)))
            })
        }
        Step::ModShift(c) => {
            let c = *c;
            stage(x, |p| {
                tab1(
                    "i",
                    dim(1, p.clone()),
                    sub(p.clone(), vec![modulo(add(var("i"), nat(c)), dim(1, p))]),
                )
            })
        }
        Step::Window(c) => {
            let c = *c;
            stage(x, |p| {
                tab1("i", dim(1, p.clone()), sub(p, vec![add(var("i"), nat(c))]))
            })
        }
        Step::Reverse => stage(x, |p| {
            tab1(
                "i",
                dim(1, p.clone()),
                sub(p.clone(), vec![monus(dim(1, p), add(var("i"), nat(1)))]),
            )
        }),
    }
}

fn finish(x: Expr, f: &Fin) -> Expr {
    match f {
        Fin::None => x,
        Fin::Sum => stage(x, |p| {
            sum("x", gen(dim(1, p.clone())), sub(p, vec![var("x")]))
        }),
        Fin::SetOf => stage(x, |p| {
            big_union("x", gen(dim(1, p.clone())), single(sub(p, vec![var("x")])))
        }),
    }
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..5).prop_map(Step::AddConst),
        (0u64..4).prop_map(Step::MulConst),
        (0u64..7).prop_map(Step::ModShift),
        (1u64..4).prop_map(Step::Window),
        Just(Step::Reverse),
    ]
}

fn arb_fin() -> impl Strategy<Value = Fin> {
    prop_oneof![Just(Fin::None), Just(Fin::Sum), Just(Fin::SetOf)]
}

fn arb_source() -> impl Strategy<Value = (u64, Vec<u64>)> {
    (0u64..7).prop_flat_map(|l| (Just(l), prop::collection::vec(0u64..50, l as usize)))
}

// ---------------------------------------------------------------------
// Containment checking.
// ---------------------------------------------------------------------

/// Evaluate a symbolic extent against the known source dimensions;
/// `None` when it mentions an unknown symbol (then nothing is claimed).
fn eval_sym(s: &SymExt, dims: &HashMap<Name, Vec<u64>>) -> Option<u64> {
    match s {
        SymExt::Const(c) => Some(*c),
        SymExt::Dim { source, axis } => dims.get(source).and_then(|d| d.get(*axis)).copied(),
        SymExt::Var(_) | SymExt::Top => None,
        SymExt::Add(a, b) => eval_sym(a, dims)?.checked_add(eval_sym(b, dims)?),
        SymExt::Monus(a, b) => Some(eval_sym(a, dims)?.saturating_sub(eval_sym(b, dims)?)),
        SymExt::Mul(a, b) => eval_sym(a, dims)?.checked_mul(eval_sym(b, dims)?),
    }
}

/// Panic unless the runtime value `v` is contained in the abstraction
/// `av`. `⊥` is contained in everything (abstractions describe the
/// non-`⊥` outcomes).
fn check_contains(av: &AbsVal, v: &Value, dims: &HashMap<Name, Vec<u64>>) {
    match (av, v) {
        (AbsVal::Top, _) | (_, Value::Bottom) => {}
        (AbsVal::Bool, Value::Bool(_)) => {}
        (AbsVal::Real, Value::Real(_)) => {}
        (AbsVal::Str, Value::Str(_)) => {}
        (AbsVal::Nat(nb), Value::Nat(n)) => {
            assert!(nb.iv.contains(*n), "{n} outside predicted interval {:?}", nb.iv);
            if let Some(x) = nb.sym.as_ref().and_then(|s| eval_sym(s, dims)) {
                assert_eq!(x, *n, "exact symbolic prediction wrong");
            }
            if let Some(x) = nb.lt.as_ref().and_then(|s| eval_sym(s, dims)) {
                assert!(*n < x, "{n} violates strict upper bound {x}");
            }
            if let Some(x) = nb.ge.as_ref().and_then(|s| eval_sym(s, dims)) {
                assert!(*n >= x, "{n} violates lower bound {x}");
            }
        }
        (AbsVal::Arr { exts, elem }, Value::Array(arr)) => {
            assert_eq!(exts.len(), arr.dims().len(), "predicted rank wrong");
            for (x, d) in exts.iter().zip(arr.dims()) {
                if let Some(c) = eval_sym(x, dims) {
                    assert_eq!(c, *d, "predicted extent {x} = {c}, runtime {d}");
                }
            }
            for off in 0..arr.len() {
                let cell = arr
                    .try_value_at(off)
                    .expect("materialized array read cannot fail"); // lint-wall: allow (test)
                if let Some(val) = cell {
                    check_contains(elem, &val, dims);
                }
            }
        }
        (AbsVal::Set { elem, card }, Value::Set(s)) => {
            assert!(
                card.contains(s.len() as u64),
                "set cardinality {} outside predicted {card:?}",
                s.len()
            );
            for it in s.iter() {
                check_contains(elem, it, dims);
            }
        }
        (AbsVal::Bag { card, .. }, Value::Bag(_)) => {
            // Bags only arise with unknown element abstractions here.
            let _ = card;
        }
        (AbsVal::Tup(items), Value::Tuple(vs)) => {
            assert_eq!(items.len(), vs.len(), "predicted tuple arity wrong");
            for (a, b) in items.iter().zip(vs.iter()) {
                check_contains(a, b, dims);
            }
        }
        (other_av, other_v) => {
            panic!("abstraction {other_av} does not cover runtime value {other_v}")
        }
    }
}

fn run_both(
    e: &Expr,
    globals: &HashMap<Name, Value>,
) -> (aql_analysis::Analysis, Value) {
    let mut gabs = BTreeMap::new();
    for (k, v) in globals {
        gabs.insert(k.clone(), absval_of_value(v));
    }
    let a = analyze(e, &gabs);
    let ext = Extensions::new();
    let ctx = EvalCtx::new(globals, &ext);
    let v = eval(e, &ctx).expect("pipelines are well-typed"); // lint-wall: allow (test)
    (a, v)
}

fn source_globals(len: u64, vals: &[u64]) -> HashMap<Name, Value> {
    let arr = ArrayVal::new(vec![len], vals.iter().map(|&v| Value::Nat(v)).collect())
        .expect("consistent shape"); // lint-wall: allow (test)
    let mut g = HashMap::new();
    g.insert(name("A"), Value::Array(Rc::new(arr)));
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn analysis_contains_runtime_behavior(
        (len, vals) in arb_source(),
        steps in prop::collection::vec(arb_step(), 0..4),
        fin in arb_fin(),
    ) {
        let globals = source_globals(len, &vals);
        let mut e = global("A");
        for s in &steps {
            e = apply(e, s);
        }
        let e = finish(e, &fin);
        let (a, v) = run_both(&e, &globals);

        let mut dims = HashMap::new();
        dims.insert(name("A"), vec![len]);
        check_contains(&a.result, &v, &dims);

        // A freshly allocated bulk result is a materialization event
        // the effect domain must have predicted.
        match &v {
            Value::Array(rc) => {
                let reused = matches!(&globals[&name("A")], Value::Array(g) if Rc::ptr_eq(g, rc));
                if !reused {
                    prop_assert!(
                        a.effect >= Effect::Materializing,
                        "fresh array but predicted effect {:?}", a.effect
                    );
                }
            }
            Value::Set(_) | Value::Bag(_) => {
                prop_assert!(a.effect >= Effect::Materializing);
            }
            _ => {}
        }

        // Every subscript site got a verdict.
        let c = a.sub_counts();
        prop_assert_eq!(c.total, c.in_bounds + c.unknown + c.provably_out);
    }

    #[test]
    fn subscript_verdicts_are_sound(
        (len, vals) in (1u64..7).prop_flat_map(|l| {
            (Just(l), prop::collection::vec(0u64..50, l as usize))
        }),
        idx in prop_oneof![
            (0u64..10).prop_map(nat),
            ((0u64..10), (0u64..10)).prop_map(|(a, b)| add(nat(a), nat(b))),
            ((0u64..10), (0u64..10)).prop_map(|(a, b)| monus(nat(a), nat(b))),
            ((0u64..6), (0u64..6)).prop_map(|(a, b)| mul(nat(a), nat(b))),
            ((0u64..20), (1u64..7)).prop_map(|(a, b)| modulo(nat(a), nat(b))),
        ],
    ) {
        let globals = source_globals(len, &vals);
        let e = sub(global("A"), vec![idx]);
        let (a, v) = run_both(&e, &globals);
        match a.verdict_of(&e) {
            Some(SubVerdict::InBounds) => {
                prop_assert!(!v.is_bottom(), "InBounds verdict but runtime ⊥")
            }
            Some(SubVerdict::ProvablyOut) => {
                prop_assert!(v.is_bottom(), "ProvablyOut verdict but runtime value {v}")
            }
            Some(SubVerdict::Unknown) => {}
            None => prop_assert!(false, "no verdict recorded at the subscript site"),
        }
    }
}
