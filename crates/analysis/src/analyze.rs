//! The analyzer: one structural walk over a named NRCA term that runs
//! all three abstract domains — symbolic shapes, index intervals, and
//! effect classification — in a single pass.
//!
//! NRCA has no recursion, so no fixpoint iteration is needed: every
//! node is visited exactly once and the walk is linear in term size
//! (widening in [`SymExt`] bounds the size of the symbolic expressions
//! carried along, not the number of iterations).
//!
//! **What an [`AbsVal`] means.** The abstraction describes the *non-`⊥`*
//! outcomes of a term: `⊥` can arise anywhere (out-of-bounds subscript,
//! `get` of a non-singleton, division by zero) and is contained in every
//! abstraction. So "`Nat` in `[0, 4]`" reads "if the term yields a
//! value, it is a natural in `[0, 4]`".
//!
//! Results are keyed by *node address* (`&Expr` identity), so a
//! consumer walking the **same** tree — the lint pass, the `\analyze`
//! report, the cost model — can look up per-site facts without any
//! index bookkeeping.

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use aql_core::eval::bounds::{arith_iv, Iv};
use aql_core::expr::{ArithOp, Expr, Name, Prim};

use crate::absval::{AbsVal, NatAbs};
use crate::effect::Effect;
use crate::sym::SymExt;

/// Per-subscript-site verdict of the bounds domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubVerdict {
    /// Every index is provably below the corresponding extent whenever
    /// the site is reached with non-`⊥` indices.
    InBounds,
    /// Neither provably in nor provably out.
    Unknown,
    /// Some index is provably `≥` its extent: the subscript yields `⊥`
    /// on every (reachable) evaluation.
    ProvablyOut,
}

/// A rectangular region of a named source array touched by a subscript
/// site: one index interval per axis. The cost model intersects these
/// with the source's chunk grid to estimate bytes moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRegion {
    /// The subscripted array's name (a `val` binding or free variable).
    pub source: Name,
    /// Per-axis index interval.
    pub axes: Vec<Iv>,
}

/// Kind of loop nest a kernel classification describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// A tabulation (`[[ … | i < b ]]`): candidate map kernel.
    Map,
    /// A summation (`Σ{ … | x ∈ S }`): candidate reduction kernel.
    Reduce,
}

impl KernelKind {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Map => "map",
            KernelKind::Reduce => "reduction",
        }
    }
}

/// One loop nest classified for fusibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Map or reduction.
    pub kind: KernelKind,
    /// Joined effect of the loop head.
    pub head_effect: Effect,
    /// Can this nest compile to a bulk kernel (head is
    /// pure-elementwise)?
    pub fusible: bool,
    /// Truncated rendering of the nest, for reports.
    pub desc: String,
}

/// Tally of subscript-site verdicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubCounts {
    /// Sites seen.
    pub total: usize,
    /// Provably in bounds.
    pub in_bounds: usize,
    /// Undetermined.
    pub unknown: usize,
    /// Provably out of bounds.
    pub provably_out: usize,
}

/// Everything one analysis run learned.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Abstraction of the whole term's result.
    pub result: AbsVal,
    /// Joined effect of the whole term.
    pub effect: Effect,
    /// Per-`Sub`-node verdicts, keyed by node address.
    subs: HashMap<usize, SubVerdict>,
    /// Comprehension/sum nodes with provably-empty sources, keyed by
    /// node address; the value names the construct for diagnostics.
    empties: HashMap<usize, &'static str>,
    /// Per-loop-node iteration-count interval (tabulations: product of
    /// bounds; comprehensions and sums: source cardinality).
    loops: HashMap<usize, Iv>,
    /// Source-array regions touched by subscripts.
    pub regions: Vec<AccessRegion>,
    /// Loop nests classified for fusibility, in traversal order.
    pub kernels: Vec<Kernel>,
}

impl Default for Analysis {
    fn default() -> Analysis {
        Analysis {
            result: AbsVal::Top,
            effect: Effect::PureElementwise,
            subs: HashMap::new(),
            empties: HashMap::new(),
            loops: HashMap::new(),
            regions: Vec::new(),
            kernels: Vec::new(),
        }
    }
}

impl Analysis {
    /// Verdict recorded for a `Sub` node of the analyzed tree.
    pub fn verdict_of(&self, e: &Expr) -> Option<SubVerdict> {
        self.subs.get(&ptr(e)).copied()
    }

    /// If `e` is a comprehension/sum whose source is provably empty,
    /// the construct's name.
    pub fn empty_at(&self, e: &Expr) -> Option<&'static str> {
        self.empties.get(&ptr(e)).copied()
    }

    /// Iteration-count interval recorded for a loop node.
    pub fn loop_count(&self, e: &Expr) -> Option<Iv> {
        self.loops.get(&ptr(e)).copied()
    }

    /// Tally the subscript verdicts.
    pub fn sub_counts(&self) -> SubCounts {
        let mut c = SubCounts { total: self.subs.len(), ..SubCounts::default() };
        for v in self.subs.values() {
            match v {
                SubVerdict::InBounds => c.in_bounds += 1,
                SubVerdict::Unknown => c.unknown += 1,
                SubVerdict::ProvablyOut => c.provably_out += 1,
            }
        }
        c
    }
}

fn ptr(e: &Expr) -> usize {
    e as *const Expr as usize
}

/// Run the analyzer over `e`. `globals` abstracts the session's `val`
/// bindings (see [`crate::absval::absval_of_value`]); pass an empty map
/// for context-free analysis — source extents then stay symbolic
/// (`dim(A,0)`), which is enough for the cross-variable proofs.
pub fn analyze(e: &Expr, globals: &BTreeMap<Name, AbsVal>) -> Analysis {
    let mut a = Analyzer { globals, env: Vec::new(), out: Analysis::default() };
    let (result, effect) = a.go(e);
    a.out.result = result;
    a.out.effect = effect;
    a.out
}

struct Analyzer<'a> {
    globals: &'a BTreeMap<Name, AbsVal>,
    /// Lexical environment; lookup scans from the back (shadowing).
    env: Vec<(Name, AbsVal)>,
    out: Analysis,
}

/// Widen and drop `Top` (an absent bound carries the same information).
fn widen_opt(s: SymExt) -> Option<SymExt> {
    let s = s.widen();
    if s.is_top() { None } else { Some(s) }
}

/// The subscripted/measured array when it is named syntactically.
fn source_name(e: &Expr) -> Option<Name> {
    match e {
        Expr::Var(n) | Expr::Global(n) => Some(n.clone()),
        _ => None,
    }
}

/// A nat abstraction for a known symbolic extent.
fn nat_of_ext(ext: &SymExt) -> AbsVal {
    match ext.as_const() {
        Some(c) => AbsVal::Nat(NatAbs::exact(c)),
        None if ext.is_top() => AbsVal::Nat(NatAbs::top()),
        None => AbsVal::Nat(NatAbs::symbolic(ext.clone(), Iv::TOP)),
    }
}

/// Nat transfer: interval via [`arith_iv`], symbolic bounds per
/// operator (documented inline; each rule is a theorem over naturals
/// restricted to non-`⊥` outcomes, so `div`/`mod` may assume a nonzero
/// divisor).
fn arith_nat(op: ArithOp, a: &NatAbs, b: &NatAbs) -> NatAbs {
    use SymExt::{Add, Const, Monus, Mul};
    let iv = arith_iv(op, a.iv, b.iv);
    let bin = |x: &SymExt, y: &SymExt| -> Option<SymExt> {
        let s = match op {
            ArithOp::Add => Add(Rc::new(x.clone()), Rc::new(y.clone())),
            ArithOp::Monus => Monus(Rc::new(x.clone()), Rc::new(y.clone())),
            ArithOp::Mul => Mul(Rc::new(x.clone()), Rc::new(y.clone())),
            _ => SymExt::Top,
        };
        widen_opt(s)
    };
    let sym = match (&a.sym, &b.sym) {
        (Some(x), Some(y)) => bin(x, y),
        _ => None,
    };
    let add_of = |x: &Option<SymExt>, y: &Option<SymExt>| match (x, y) {
        (Some(x), Some(y)) => widen_opt(Add(Rc::new(x.clone()), Rc::new(y.clone()))),
        _ => None,
    };
    let lt = match op {
        // v1+v2 < s1+lt2 (exact + strict), or < lt1+lt2 (both ≤ bound-1).
        ArithOp::Add => add_of(&a.sym, &b.lt)
            .or_else(|| add_of(&b.sym, &a.lt))
            .or_else(|| add_of(&a.lt, &b.lt)),
        // v1 ∸ v2 ≤ v1 < lt1.
        ArithOp::Monus => a.lt.clone(),
        // v < lt and c ≥ 1 ⇒ v·c ≤ (lt-1)·c < lt·c.
        ArithOp::Mul => {
            let by_const = |v: &NatAbs, k: &NatAbs| match (&v.lt, &k.sym) {
                (Some(lt), Some(Const(c))) if *c >= 1 => {
                    widen_opt(Mul(Rc::new(lt.clone()), Rc::new(Const(*c))))
                }
                _ => None,
            };
            by_const(a, b).or_else(|| by_const(b, a))
        }
        // v1 / v2 ≤ v1 < lt1 (divisor ≥ 1 on the non-⊥ path).
        ArithOp::Div => a.lt.clone(),
        // v1 mod v2 < v2, and v2 = s2 < lt2.
        ArithOp::Mod => b.sym.clone().or_else(|| b.lt.clone()),
    };
    let low = |v: &NatAbs| v.ge.clone().or_else(|| v.sym.clone());
    let ge = match op {
        ArithOp::Add => match (low(a), low(b)) {
            (Some(x), Some(y)) => widen_opt(Add(Rc::new(x), Rc::new(y))),
            _ => None,
        },
        ArithOp::Mul => match (low(a), low(b)) {
            (Some(x), Some(y)) => widen_opt(Mul(Rc::new(x), Rc::new(y))),
            _ => None,
        },
        _ => None,
    };
    NatAbs { iv, sym, lt, ge }
}

impl Analyzer<'_> {
    fn scoped(&mut self, binds: Vec<(Name, AbsVal)>, e: &Expr) -> (AbsVal, Effect) {
        let n = binds.len();
        self.env.extend(binds);
        let r = self.go(e);
        self.env.truncate(self.env.len() - n);
        r
    }

    fn lookup(&self, n: &Name) -> Option<AbsVal> {
        self.env.iter().rev().find(|(x, _)| x == n).map(|(_, v)| v.clone())
    }

    /// Set/bag element abstraction of an iteration source.
    fn elem_of(sv: &AbsVal) -> AbsVal {
        match sv {
            AbsVal::Set { elem, .. } | AbsVal::Bag { elem, .. } => (**elem).clone(),
            _ => AbsVal::Top,
        }
    }

    /// Shared shape of the four big-union comprehensions.
    #[allow(clippy::too_many_arguments)]
    fn comprehension(
        &mut self,
        node: &Expr,
        head: &Expr,
        var: &Name,
        rank: Option<&Name>,
        src: &Expr,
        bag: bool,
    ) -> (AbsVal, Effect) {
        let (sv, se) = self.go(src);
        let card = sv.card().unwrap_or(Iv::TOP);
        if card.hi == Some(0) {
            let what = if bag { "bag comprehension" } else { "set comprehension" };
            self.out.empties.insert(ptr(node), what);
        }
        self.out.loops.insert(ptr(node), card);
        let mut binds = vec![(var.clone(), Self::elem_of(&sv))];
        if let Some(r) = rank {
            // Ranks count from 1, never past the source cardinality.
            binds.push((
                r.clone(),
                AbsVal::Nat(NatAbs {
                    iv: Iv { lo: 1, hi: card.hi },
                    sym: None,
                    lt: None,
                    ge: Some(SymExt::Const(1)),
                }),
            ));
        }
        let (hv, he) = self.scoped(binds, head);
        let hcard = hv.card().unwrap_or(Iv::TOP);
        let out_card = Iv {
            lo: 0,
            hi: match (card.hi, hcard.hi) {
                (Some(x), Some(y)) => x.checked_mul(y),
                _ => None,
            },
        };
        let elem = Rc::new(Self::elem_of(&hv));
        let out = if bag {
            AbsVal::Bag { elem, card: out_card }
        } else {
            AbsVal::Set { elem, card: out_card }
        };
        (out, se.join(he).join(Effect::Materializing))
    }

    fn go(&mut self, e: &Expr) -> (AbsVal, Effect) {
        use Effect::{External, Materializing, PureElementwise, Reduction};
        match e {
            Expr::Var(x) => (self.lookup(x).unwrap_or(AbsVal::Top), PureElementwise),
            Expr::Global(x) => {
                (self.globals.get(x).cloned().unwrap_or(AbsVal::Top), PureElementwise)
            }
            Expr::Ext(_) => (AbsVal::Fun, External),
            Expr::Bool(_) => (AbsVal::Bool, PureElementwise),
            Expr::Nat(n) => (AbsVal::Nat(NatAbs::exact(*n)), PureElementwise),
            Expr::Real(_) => (AbsVal::Real, PureElementwise),
            Expr::Str(_) => (AbsVal::Str, PureElementwise),
            Expr::Bottom => (AbsVal::Bot, PureElementwise),
            Expr::Lam(x, body) => {
                // Unknown argument; the body is still scanned so its
                // subscripts and loops get (conservative) facts.
                let (_, be) = self.scoped(vec![(x.clone(), AbsVal::Top)], body);
                (AbsVal::Fun, be)
            }
            Expr::App(f, a) => {
                if let Expr::Lam(x, body) = f.as_ref() {
                    // β-aware: analyze the body under the argument's
                    // abstraction instead of forgetting it.
                    let (av, ae) = self.go(a);
                    let (bv, be) = self.scoped(vec![(x.clone(), av)], body);
                    (bv, ae.join(be))
                } else {
                    let (_, fe) = self.go(f);
                    let (_, ae) = self.go(a);
                    (AbsVal::Top, fe.join(ae).join(External))
                }
            }
            Expr::Let(x, e1, e2) => {
                let (v1, f1) = self.go(e1);
                let (v2, f2) = self.scoped(vec![(x.clone(), v1)], e2);
                (v2, f1.join(f2))
            }
            Expr::Tuple(items) => {
                let mut eff = PureElementwise;
                let avs = items
                    .iter()
                    .map(|it| {
                        let (v, f) = self.go(it);
                        eff = eff.join(f);
                        v
                    })
                    .collect();
                (AbsVal::Tup(avs), eff)
            }
            Expr::Proj(i, k, inner) => {
                let (v, eff) = self.go(inner);
                let out = match &v {
                    AbsVal::Tup(items) if items.len() == *k && *i >= 1 && *i <= *k => {
                        items[*i - 1].clone()
                    }
                    _ => AbsVal::Top,
                };
                (out, eff)
            }
            Expr::Empty => {
                (AbsVal::Set { elem: Rc::new(AbsVal::Bot), card: Iv::exact(0) }, Materializing)
            }
            Expr::BagEmpty => {
                (AbsVal::Bag { elem: Rc::new(AbsVal::Bot), card: Iv::exact(0) }, Materializing)
            }
            Expr::Single(inner) => {
                let (v, eff) = self.go(inner);
                (
                    AbsVal::Set { elem: Rc::new(v), card: Iv::exact(1) },
                    eff.join(Materializing),
                )
            }
            Expr::BagSingle(inner) => {
                let (v, eff) = self.go(inner);
                (
                    AbsVal::Bag { elem: Rc::new(v), card: Iv::exact(1) },
                    eff.join(Materializing),
                )
            }
            Expr::Union(a, b) => {
                let (av, ae) = self.go(a);
                let (bv, be) = self.go(b);
                let out = match (&av, &bv) {
                    (
                        AbsVal::Set { elem: ea, card: ca },
                        AbsVal::Set { elem: eb, card: cb },
                    ) => AbsVal::Set {
                        elem: Rc::new(ea.join(eb)),
                        card: Iv {
                            // Duplicates can only shrink a set union,
                            // so |A ∪ B| ∈ [max lo, hi_a + hi_b].
                            lo: ca.lo.max(cb.lo),
                            hi: match (ca.hi, cb.hi) {
                                (Some(x), Some(y)) => x.checked_add(y),
                                _ => None,
                            },
                        },
                    },
                    _ => AbsVal::Top,
                };
                (out, ae.join(be).join(Materializing))
            }
            Expr::BagUnion(a, b) => {
                let (av, ae) = self.go(a);
                let (bv, be) = self.go(b);
                let out = match (&av, &bv) {
                    (
                        AbsVal::Bag { elem: ea, card: ca },
                        AbsVal::Bag { elem: eb, card: cb },
                    ) => AbsVal::Bag {
                        elem: Rc::new(ea.join(eb)),
                        // Additive union: cardinalities add exactly.
                        card: Iv {
                            lo: ca.lo.saturating_add(cb.lo),
                            hi: match (ca.hi, cb.hi) {
                                (Some(x), Some(y)) => x.checked_add(y),
                                _ => None,
                            },
                        },
                    },
                    _ => AbsVal::Top,
                };
                (out, ae.join(be).join(Materializing))
            }
            Expr::BigUnion { head, var, src } => {
                self.comprehension(e, head, var, None, src, false)
            }
            Expr::BigUnionRank { head, var, rank, src } => {
                self.comprehension(e, head, var, Some(rank), src, false)
            }
            Expr::BigBagUnion { head, var, src } => {
                self.comprehension(e, head, var, None, src, true)
            }
            Expr::BigBagUnionRank { head, var, rank, src } => {
                self.comprehension(e, head, var, Some(rank), src, true)
            }
            Expr::If(c, t, f) => {
                let (_, ce) = self.go(c);
                let (tv, te) = self.go(t);
                let (fv, fe) = self.go(f);
                (tv.join(&fv), ce.join(te).join(fe))
            }
            Expr::Cmp(_, a, b) => {
                let (_, ae) = self.go(a);
                let (_, be) = self.go(b);
                (AbsVal::Bool, ae.join(be))
            }
            Expr::Arith(op, a, b) => {
                let (av, ae) = self.go(a);
                let (bv, be) = self.go(b);
                let out = match (av.as_nat(), bv.as_nat()) {
                    (Some(x), Some(y)) => AbsVal::Nat(arith_nat(*op, x, y)),
                    _ => match (&av, &bv) {
                        (AbsVal::Real, AbsVal::Real) => AbsVal::Real,
                        _ => AbsVal::Top,
                    },
                };
                (out, ae.join(be))
            }
            Expr::Gen(inner) => {
                let (v, eff) = self.go(inner);
                let out = match v.as_nat() {
                    Some(nb) => AbsVal::Set {
                        // Elements of gen(b) are exactly 0, …, b-1:
                        // each is < b, symbolically too.
                        elem: Rc::new(AbsVal::Nat(NatAbs {
                            iv: Iv { lo: 0, hi: nb.iv.hi.map(|h| h.saturating_sub(1)) },
                            sym: None,
                            lt: nb.sym.clone().or_else(|| nb.lt.clone()),
                            ge: Some(SymExt::Const(0)),
                        })),
                        card: nb.iv,
                    },
                    None => AbsVal::Set { elem: Rc::new(AbsVal::Top), card: Iv::TOP },
                };
                (out, eff.join(Materializing))
            }
            Expr::Sum { head, var, src } => {
                let (sv, se) = self.go(src);
                let card = sv.card().unwrap_or(Iv::TOP);
                if card.hi == Some(0) {
                    self.out.empties.insert(ptr(e), "sum");
                }
                self.out.loops.insert(ptr(e), card);
                let (hv, he) = self.scoped(vec![(var.clone(), Self::elem_of(&sv))], head);
                self.out.kernels.push(Kernel {
                    kind: KernelKind::Reduce,
                    head_effect: he,
                    fusible: he <= PureElementwise,
                    desc: describe(e),
                });
                let out = match &hv {
                    AbsVal::Nat(nb) => AbsVal::Nat(NatAbs {
                        iv: Iv {
                            lo: card.lo.saturating_mul(nb.iv.lo),
                            hi: match (card.hi, nb.iv.hi) {
                                (Some(x), Some(y)) => x.checked_mul(y),
                                _ => None,
                            },
                        },
                        sym: None,
                        lt: None,
                        ge: None,
                    }),
                    AbsVal::Real => AbsVal::Real,
                    _ => AbsVal::Top,
                };
                (out, se.join(he).join(Reduction))
            }
            Expr::Tab { head, idx } => {
                let mut eff = Materializing;
                let mut exts = Vec::with_capacity(idx.len());
                let mut binds = Vec::with_capacity(idx.len());
                let mut count = Iv::exact(1);
                for (x, b) in idx {
                    let (bv, be) = self.go(b);
                    eff = eff.join(be);
                    let nb = bv.as_nat().cloned().unwrap_or_else(NatAbs::top);
                    exts.push(nb.sym.clone().unwrap_or(SymExt::Top));
                    count = arith_iv(ArithOp::Mul, count, nb.iv);
                    // The index runs over 0, …, b-1; when b can be 0
                    // the body is unreachable and the facts hold
                    // vacuously.
                    binds.push((
                        x.clone(),
                        AbsVal::Nat(NatAbs {
                            iv: Iv { lo: 0, hi: nb.iv.hi.map(|h| h.saturating_sub(1)) },
                            sym: None,
                            lt: nb.sym.clone().or_else(|| nb.lt.clone()),
                            ge: Some(SymExt::Const(0)),
                        }),
                    ));
                }
                self.out.loops.insert(ptr(e), count);
                let (hv, he) = self.scoped(binds, head);
                self.out.kernels.push(Kernel {
                    kind: KernelKind::Map,
                    head_effect: he,
                    fusible: he <= PureElementwise,
                    desc: describe(e),
                });
                (AbsVal::Arr { exts, elem: Rc::new(hv) }, eff.join(he))
            }
            Expr::Sub(arr, idx) => {
                let (av, mut eff) = self.go(arr);
                let mut iavs = Vec::with_capacity(idx.len());
                for i in idx {
                    let (v, ie) = self.go(i);
                    eff = eff.join(ie);
                    iavs.push(v);
                }
                // Extents to check against: the array's inferred shape
                // when known; otherwise, for a *named* array, symbolic
                // `dim(name, j)` — that is what lets
                // `[[A[i] | i < dim(A)]]` prove in-bounds for every A.
                let exts: Option<Vec<SymExt>> = match &av {
                    AbsVal::Arr { exts, .. } => {
                        (exts.len() == idx.len()).then(|| exts.clone())
                    }
                    _ => source_name(arr).map(|n| {
                        (0..idx.len())
                            .map(|j| SymExt::Dim { source: n.clone(), axis: j })
                            .collect()
                    }),
                };
                // Per-axis naturals only: a vector index (one
                // tuple-typed expression) abstracts to `Tup`, not
                // `Nat`, and stays Unknown.
                let nats: Option<Vec<&NatAbs>> =
                    iavs.iter().map(|v| v.as_nat()).collect();
                let verdict = match (&exts, &nats) {
                    (Some(es), Some(ns)) => {
                        if ns.iter().zip(es).all(|(n, x)| n.provably_lt(x)) {
                            SubVerdict::InBounds
                        } else if ns.iter().zip(es).any(|(n, x)| n.provably_ge(x)) {
                            SubVerdict::ProvablyOut
                        } else {
                            SubVerdict::Unknown
                        }
                    }
                    _ => SubVerdict::Unknown,
                };
                self.out.subs.insert(ptr(e), verdict);
                if let (Some(n), Some(ns)) = (source_name(arr), &nats) {
                    self.out.regions.push(AccessRegion {
                        source: n,
                        axes: ns.iter().map(|x| x.iv).collect(),
                    });
                }
                let elem = match &av {
                    AbsVal::Arr { elem, .. } => (**elem).clone(),
                    _ => AbsVal::Top,
                };
                (elem, eff)
            }
            Expr::Dim(k, inner) => {
                let (v, eff) = self.go(inner);
                let exts: Option<Vec<SymExt>> = match &v {
                    AbsVal::Arr { exts, .. } => {
                        (exts.len() == *k).then(|| exts.clone())
                    }
                    _ => source_name(inner).map(|n| {
                        (0..*k)
                            .map(|j| SymExt::Dim { source: n.clone(), axis: j })
                            .collect()
                    }),
                };
                let out = match (exts, *k) {
                    (Some(es), 1) => nat_of_ext(&es[0]),
                    (Some(es), _) => AbsVal::Tup(es.iter().map(nat_of_ext).collect()),
                    (None, 1) => AbsVal::Nat(NatAbs::top()),
                    (None, _) => AbsVal::Top,
                };
                (out, eff)
            }
            Expr::ArrayLit { dims, items } => {
                let mut eff = Materializing;
                let mut exts = Vec::with_capacity(dims.len());
                for d in dims {
                    let (dv, de) = self.go(d);
                    eff = eff.join(de);
                    exts.push(
                        dv.as_nat().and_then(|n| n.sym.clone()).unwrap_or(SymExt::Top),
                    );
                }
                let mut elem = AbsVal::Bot;
                for it in items {
                    let (iv2, ie) = self.go(it);
                    eff = eff.join(ie);
                    elem = elem.join(&iv2);
                }
                (AbsVal::Arr { exts, elem: Rc::new(elem) }, eff)
            }
            Expr::Index(k, inner) => {
                let (_, eff) = self.go(inner);
                (
                    AbsVal::Arr {
                        exts: vec![SymExt::Top; *k],
                        elem: Rc::new(AbsVal::Set {
                            elem: Rc::new(AbsVal::Top),
                            card: Iv::TOP,
                        }),
                    },
                    eff.join(Materializing),
                )
            }
            Expr::Get(inner) => {
                let (v, eff) = self.go(inner);
                let out = match &v {
                    AbsVal::Set { elem, .. } => (**elem).clone(),
                    _ => AbsVal::Top,
                };
                (out, eff.join(Reduction))
            }
            Expr::Prim(p, args) => {
                let mut eff = Reduction;
                let avs: Vec<AbsVal> = args
                    .iter()
                    .map(|x| {
                        let (v, f) = self.go(x);
                        eff = eff.join(f);
                        v
                    })
                    .collect();
                let out = match p {
                    Prim::Member => AbsVal::Bool,
                    // min/max of a set is one of its elements.
                    Prim::MinSet | Prim::MaxSet => match avs.first() {
                        Some(AbsVal::Set { elem, .. }) => (**elem).clone(),
                        _ => AbsVal::Top,
                    },
                };
                (out, eff)
            }
        }
    }
}

/// Truncated one-line rendering of a node for reports.
fn describe(e: &Expr) -> String {
    let s = e.to_string();
    if s.chars().count() <= 60 {
        s
    } else {
        let mut t: String = s.chars().take(57).collect();
        t.push('…');
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::builder::*;
    use aql_core::expr::name;

    fn run(e: &Expr) -> Analysis {
        analyze(e, &BTreeMap::new())
    }

    /// Find the first `Sub` node along the spine of a test expression.
    fn find_sub(e: &Expr) -> Option<&Expr> {
        match e {
            Expr::Sub(..) => Some(e),
            Expr::Tab { head, .. }
            | Expr::BigUnion { head, .. }
            | Expr::Sum { head, .. } => find_sub(head),
            Expr::Single(x) | Expr::Lam(_, x) => find_sub(x),
            Expr::App(f, a) => find_sub(f).or_else(|| find_sub(a)),
            _ => None,
        }
    }

    fn first_sub(e: &Expr) -> &Expr {
        find_sub(e).expect("expression contains a subscript") // lint-wall: allow (test)
    }

    #[test]
    fn symbolic_self_bound_proves_in_bounds_without_globals() {
        // [[ A[i] | i < dim(A) ]] — in range for EVERY array A.
        let e = tab1("i", dim(1, var("A")), sub(var("A"), vec![var("i")]));
        let a = run(&e);
        assert_eq!(a.verdict_of(first_sub(&e)), Some(SubVerdict::InBounds));
        // Shape: one axis, extent dim(A,0).
        match &a.result {
            AbsVal::Arr { exts, .. } => {
                assert_eq!(exts, &vec![SymExt::Dim { source: name("A"), axis: 0 }]);
            }
            other => panic!("expected array abstraction, got {other:?}"),
        }
    }

    #[test]
    fn cross_variable_offset_is_provably_out() {
        // [[ A[i + dim(A)] | i < dim(A) ]] — every access ≥ dim(A).
        let e = tab1(
            "i",
            dim(1, var("A")),
            sub(var("A"), vec![add(var("i"), dim(1, var("A")))]),
        );
        let a = run(&e);
        assert_eq!(a.verdict_of(first_sub(&e)), Some(SubVerdict::ProvablyOut));
    }

    #[test]
    fn shifted_window_stays_unknown() {
        // [[ A[i + 1] | i < dim(A) ]] — the last access is OOB, but
        // not *provably always*: verdict must be Unknown (L001's
        // territory, not L004's).
        let e = tab1(
            "i",
            dim(1, var("A")),
            sub(var("A"), vec![add(var("i"), nat(1))]),
        );
        let a = run(&e);
        assert_eq!(a.verdict_of(first_sub(&e)), Some(SubVerdict::Unknown));
    }

    #[test]
    fn globals_supply_concrete_extents() {
        let mut g = BTreeMap::new();
        g.insert(
            name("A"),
            AbsVal::Arr {
                exts: vec![SymExt::Const(8)],
                elem: Rc::new(AbsVal::Real),
            },
        );
        let e = tab1("i", nat(8), sub(global("A"), vec![var("i")]));
        let a = analyze(&e, &g);
        assert_eq!(a.verdict_of(first_sub(&e)), Some(SubVerdict::InBounds));
        assert_eq!(a.sub_counts().in_bounds, 1);
        // Element type flows through the subscript into the result.
        match &a.result {
            AbsVal::Arr { elem, .. } => assert_eq!(**elem, AbsVal::Real),
            other => panic!("expected array abstraction, got {other:?}"),
        }
    }

    #[test]
    fn comprehension_over_gen_carries_symbolic_bound() {
        // ⋃{ {A[x]} | x ∈ gen(dim(A)) }.
        let e = big_union(
            "x",
            gen(dim(1, var("A"))),
            single(sub(var("A"), vec![var("x")])),
        );
        let a = run(&e);
        assert_eq!(a.verdict_of(first_sub(&e)), Some(SubVerdict::InBounds));
        assert!(a.result.card().is_some());
    }

    #[test]
    fn empty_sources_are_reported() {
        let e = big_union("x", gen(nat(0)), single(var("x")));
        let a = run(&e);
        assert_eq!(a.empty_at(&e), Some("set comprehension"));
        assert!(a.result.provably_empty());
        let e = sum("x", gen(nat(0)), var("x"));
        let a = run(&e);
        assert_eq!(a.empty_at(&e), Some("sum"));
    }

    #[test]
    fn effects_classify_kernels() {
        // Pure head → fusible map kernel.
        let e = tab1("i", nat(4), mul(var("i"), nat(2)));
        let a = run(&e);
        assert_eq!(a.effect, Effect::Materializing);
        assert_eq!(a.kernels.len(), 1);
        assert!(a.kernels[0].fusible);
        assert_eq!(a.kernels[0].kind, KernelKind::Map);
        // Materializing head → not fusible.
        let e = tab1("i", nat(4), single(var("i")));
        let a = run(&e);
        assert!(!a.kernels[0].fusible, "{:?}", a.kernels);
        // Sum with pure head → fusible reduction.
        let e = sum("x", gen(nat(4)), var("x"));
        let a = run(&e);
        assert_eq!(a.effect, Effect::Reduction.join(Effect::Materializing));
        assert_eq!(a.kernels[0].kind, KernelKind::Reduce);
        assert!(a.kernels[0].fusible);
        // External call poisons everything.
        let e = app(ext("f"), nat(1));
        let a = run(&e);
        assert_eq!(a.effect, Effect::External);
    }

    #[test]
    fn beta_aware_application_keeps_argument_facts() {
        // (λx. A[x]) 3 over a length-8 global.
        let mut g = BTreeMap::new();
        g.insert(
            name("A"),
            AbsVal::Arr { exts: vec![SymExt::Const(8)], elem: Rc::new(AbsVal::Top) },
        );
        let e = app(lam("x", sub(global("A"), vec![var("x")])), nat(3));
        let a = analyze(&e, &g);
        assert_eq!(a.verdict_of(first_sub(&e)), Some(SubVerdict::InBounds));
    }

    #[test]
    fn sum_and_loop_counts_feed_the_cost_model() {
        let e = tab(
            vec![("i", nat(3)), ("j", nat(5))],
            add(var("i"), var("j")),
        );
        let a = run(&e);
        assert_eq!(a.loop_count(&e), Some(Iv::exact(15)));
        // Result values: i + j ≤ 2 + 4.
        match &a.result {
            AbsVal::Arr { elem, .. } => {
                assert_eq!(elem.as_nat().map(|n| n.iv), Some(Iv { lo: 0, hi: Some(6) }));
            }
            other => panic!("expected array abstraction, got {other:?}"),
        }
        // Access regions record the touched rectangle.
        let e = tab1("t", nat(50), sub(var("T"), vec![add(nat(100), var("t"))]));
        let a = run(&e);
        assert_eq!(a.regions.len(), 1);
        assert_eq!(a.regions[0].source, name("T"));
        assert_eq!(a.regions[0].axes, vec![Iv { lo: 100, hi: Some(149) }]);
    }
}
