//! Analysis-backed cost primitives: step counts from inferred loop
//! extents and result cardinalities from inferred shapes.
//!
//! This replaces guessing every loop at a fixed fan-out: where the
//! analyzer bounded an iteration count (a literal tabulation bound, a
//! `gen`, a comprehension over a known-cardinality source) the bound
//! is used; only genuinely unknown loops fall back to
//! [`DEFAULT_CARDINALITY`]. Byte-level estimates (chunk layouts,
//! element widths) live in `aql-opt`, which combines the
//! [`AccessRegion`](crate::analyze::AccessRegion)s collected here with
//! store metadata.

use aql_core::expr::Expr;

use crate::absval::AbsVal;
use crate::analyze::Analysis;

/// Assumed iteration count for loops the analysis could not bound.
pub const DEFAULT_CARDINALITY: u64 = 16;

/// The iteration count to charge for a loop node, preferring the
/// analyzer's bound.
fn extent(e: &Expr, a: &Analysis) -> u64 {
    a.loop_count(e)
        .and_then(|iv| iv.hi)
        .unwrap_or(DEFAULT_CARDINALITY)
}

/// Estimated evaluation steps for `e`, using the loop bounds recorded
/// in `a` (which must come from analyzing this same tree). Saturating
/// throughout: a plan that would overflow is simply "very expensive".
pub fn steps(e: &Expr, a: &Analysis) -> u64 {
    let children_sum = |es: &mut dyn Iterator<Item = &Expr>| -> u64 {
        es.fold(0u64, |acc, c| acc.saturating_add(steps(c, a)))
    };
    match e {
        Expr::Var(_)
        | Expr::Global(_)
        | Expr::Ext(_)
        | Expr::Empty
        | Expr::BagEmpty
        | Expr::Bool(_)
        | Expr::Nat(_)
        | Expr::Real(_)
        | Expr::Str(_)
        | Expr::Bottom => 1,
        Expr::Lam(_, b)
        | Expr::Proj(_, _, b)
        | Expr::Single(b)
        | Expr::BagSingle(b)
        | Expr::Gen(b)
        | Expr::Dim(_, b)
        | Expr::Index(_, b)
        | Expr::Get(b) => 1u64.saturating_add(steps(b, a)),
        Expr::App(x, y)
        | Expr::Let(_, x, y)
        | Expr::Union(x, y)
        | Expr::BagUnion(x, y)
        | Expr::Cmp(_, x, y)
        | Expr::Arith(_, x, y) => {
            1u64.saturating_add(steps(x, a)).saturating_add(steps(y, a))
        }
        Expr::If(c, t, f) => 1u64
            .saturating_add(steps(c, a))
            // Either branch may run; charge the worst case.
            .saturating_add(steps(t, a).max(steps(f, a))),
        Expr::Tuple(items) | Expr::Prim(_, items) => {
            1u64.saturating_add(children_sum(&mut items.iter()))
        }
        Expr::BigUnion { head, src, .. }
        | Expr::BigUnionRank { head, src, .. }
        | Expr::BigBagUnion { head, src, .. }
        | Expr::BigBagUnionRank { head, src, .. }
        | Expr::Sum { head, src, .. } => 1u64
            .saturating_add(steps(src, a))
            .saturating_add(extent(e, a).saturating_mul(steps(head, a))),
        Expr::Tab { head, idx } => 1u64
            .saturating_add(children_sum(&mut idx.iter().map(|(_, b)| b)))
            .saturating_add(extent(e, a).saturating_mul(steps(head, a))),
        Expr::Sub(arr, idx) => 1u64
            .saturating_add(steps(arr, a))
            .saturating_add(children_sum(&mut idx.iter())),
        Expr::ArrayLit { dims, items } => 1u64
            .saturating_add(children_sum(&mut dims.iter()))
            .saturating_add(children_sum(&mut items.iter())),
    }
}

/// Estimated number of scalar cells in a result with abstraction `av`
/// (1 for scalars; bounded products for arrays; cardinality bounds for
/// sets and bags; [`DEFAULT_CARDINALITY`] where unknown).
pub fn cardinality(av: &AbsVal) -> u64 {
    match av {
        AbsVal::Bot
        | AbsVal::Top
        | AbsVal::Bool
        | AbsVal::Str
        | AbsVal::Real
        | AbsVal::Fun
        | AbsVal::Nat(_) => 1,
        AbsVal::Arr { exts, elem } => {
            let cells = exts.iter().fold(1u64, |acc, x| {
                acc.saturating_mul(x.as_const().unwrap_or(DEFAULT_CARDINALITY))
            });
            cells.saturating_mul(cardinality(elem))
        }
        AbsVal::Tup(items) => items.iter().map(cardinality).fold(0, u64::saturating_add),
        AbsVal::Set { elem, card } | AbsVal::Bag { elem, card } => card
            .hi
            .unwrap_or(DEFAULT_CARDINALITY)
            .saturating_mul(cardinality(elem)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use aql_core::expr::builder::*;
    use std::collections::BTreeMap;

    fn run(e: &Expr) -> Analysis {
        analyze(e, &BTreeMap::new())
    }

    #[test]
    fn known_bounds_beat_the_default_guess() {
        // A 1000-iteration loop with a literal bound must cost about
        // 1000 head evaluations, not DEFAULT_CARDINALITY.
        let e = tab1("i", nat(1000), add(var("i"), nat(1)));
        let a = run(&e);
        let s = steps(&e, &a);
        assert!(s >= 3000, "got {s}");
        // An unknown bound falls back to the default.
        let e = tab1("i", var("n"), add(var("i"), nat(1)));
        let a = run(&e);
        assert!(steps(&e, &a) < 100);
    }

    #[test]
    fn gen_cardinality_flows_into_comprehension_cost() {
        let e = sum("x", gen(nat(200)), var("x"));
        let a = run(&e);
        assert!(steps(&e, &a) >= 200);
    }

    #[test]
    fn result_cardinality_uses_constant_extents() {
        let e = tab(vec![("i", nat(30)), ("j", nat(4))], var("i"));
        let a = run(&e);
        assert_eq!(cardinality(&a.result), 120);
        let e = nat(7);
        let a = run(&e);
        assert_eq!(cardinality(&a.result), 1);
    }
}
