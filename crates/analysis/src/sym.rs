//! Symbolic extents: natural-number expressions over bound variables
//! and source-array dimensions.
//!
//! Constant-extent reasoning (PR 4's lint lattice, the evaluator's
//! interval pass) stops at the first non-literal bound. This domain
//! keeps extents *symbolic* — `dim(T, 0)`, `n`, `n ∸ 1`, `2·n` — so
//! facts like "`[[ A[i] | i < dim(A) ]]` never goes out of bounds"
//! hold for every `A`, not just ones whose length is a literal.
//!
//! The domain is a term algebra, so joins of unequal terms would grow
//! without bound; [`SymExt::widen`] is the widening operator — any
//! expression over the size budget collapses to [`SymExt::Top`]
//! (= "unknown extent"), which keeps every analysis pass linear.

use std::fmt;
use std::rc::Rc;

use aql_core::expr::Name;

/// Widening budget: symbolic expressions larger than this many nodes
/// collapse to [`SymExt::Top`].
pub const WIDEN_BUDGET: usize = 16;

/// A symbolic natural-number expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymExt {
    /// A known constant.
    Const(u64),
    /// Extent `axis` of the named source array (a `val` binding or a
    /// free array variable).
    Dim {
        /// The array's name.
        source: Name,
        /// Zero-based axis.
        axis: usize,
    },
    /// A bound natural-number variable.
    Var(Name),
    /// Sum.
    Add(Rc<SymExt>, Rc<SymExt>),
    /// Monus (truncated subtraction, as in the object language).
    Monus(Rc<SymExt>, Rc<SymExt>),
    /// Product.
    Mul(Rc<SymExt>, Rc<SymExt>),
    /// Unknown.
    Top,
}

impl SymExt {
    /// Node count (drives widening).
    pub fn size(&self) -> usize {
        match self {
            SymExt::Const(_) | SymExt::Dim { .. } | SymExt::Var(_) | SymExt::Top => 1,
            SymExt::Add(a, b) | SymExt::Monus(a, b) | SymExt::Mul(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }

    /// Is this the unknown extent?
    pub fn is_top(&self) -> bool {
        matches!(self, SymExt::Top)
    }

    /// Constant value, if the expression is a literal.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            SymExt::Const(n) => Some(*n),
            _ => None,
        }
    }

    /// Constant-fold and apply unit/annihilator laws. Any `Top`
    /// operand makes the whole expression `Top`.
    pub fn simplify(&self) -> SymExt {
        match self {
            SymExt::Const(_) | SymExt::Dim { .. } | SymExt::Var(_) | SymExt::Top => self.clone(),
            SymExt::Add(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (&a, &b) {
                    (SymExt::Top, _) | (_, SymExt::Top) => SymExt::Top,
                    (SymExt::Const(x), SymExt::Const(y)) => {
                        x.checked_add(*y).map_or(SymExt::Top, SymExt::Const)
                    }
                    (SymExt::Const(0), _) => b,
                    (_, SymExt::Const(0)) => a,
                    _ => SymExt::Add(Rc::new(a), Rc::new(b)),
                }
            }
            SymExt::Monus(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (&a, &b) {
                    (SymExt::Top, _) | (_, SymExt::Top) => SymExt::Top,
                    (SymExt::Const(x), SymExt::Const(y)) => SymExt::Const(x.saturating_sub(*y)),
                    (_, SymExt::Const(0)) => a,
                    _ if a == b => SymExt::Const(0),
                    _ => SymExt::Monus(Rc::new(a), Rc::new(b)),
                }
            }
            SymExt::Mul(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (&a, &b) {
                    (SymExt::Top, _) | (_, SymExt::Top) => SymExt::Top,
                    (SymExt::Const(x), SymExt::Const(y)) => {
                        x.checked_mul(*y).map_or(SymExt::Top, SymExt::Const)
                    }
                    (SymExt::Const(0), _) | (_, SymExt::Const(0)) => SymExt::Const(0),
                    (SymExt::Const(1), _) => b,
                    (_, SymExt::Const(1)) => a,
                    _ => SymExt::Mul(Rc::new(a), Rc::new(b)),
                }
            }
        }
    }

    /// Widen: simplify, then collapse to `Top` over the size budget.
    pub fn widen(&self) -> SymExt {
        let s = self.simplify();
        if s.size() > WIDEN_BUDGET { SymExt::Top } else { s }
    }

    /// Join two extents: equal terms survive, everything else widens
    /// to `Top` (ranges are the interval domain's job).
    pub fn join(&self, other: &SymExt) -> SymExt {
        let (a, b) = (self.simplify(), other.simplify());
        if a == b { a } else { SymExt::Top }
    }
}

/// Conservative proof of `a ≤ b` over all valuations of the free
/// symbols. `false` means "could not prove", never "false".
pub fn prove_le(a: &SymExt, b: &SymExt) -> bool {
    let (a, b) = (a.simplify(), b.simplify());
    prove_le_simplified(&a, &b)
}

fn prove_le_simplified(a: &SymExt, b: &SymExt) -> bool {
    if a.is_top() || b.is_top() {
        return false;
    }
    if a == b {
        return true;
    }
    match (a, b) {
        (SymExt::Const(x), SymExt::Const(y)) => x <= y,
        // x ∸ k ≤ b whenever x ≤ b.
        (SymExt::Monus(x, _), _) if prove_le_simplified(x, b) => true,
        // a ≤ x + y whenever a ≤ x or a ≤ y (naturals).
        (_, SymExt::Add(x, y)) => prove_le_simplified(a, x) || prove_le_simplified(a, y),
        // c·x ≤ d·x when c ≤ d (and symmetric operand order).
        (SymExt::Mul(c, x), SymExt::Mul(d, y)) if x == y => prove_le_simplified(c, d),
        _ => false,
    }
}

/// Conservative proof of `a < b`. `false` means "could not prove".
pub fn prove_lt(a: &SymExt, b: &SymExt) -> bool {
    let (a, b) = (a.simplify(), b.simplify());
    if a.is_top() || b.is_top() {
        return false;
    }
    match (&a, &b) {
        (SymExt::Const(x), SymExt::Const(y)) => x < y,
        // a < x + k for k ≥ 1 whenever a ≤ x.
        (_, SymExt::Add(x, y)) => {
            (y.as_const().is_some_and(|k| k >= 1) && prove_le_simplified(&a, x))
                || (x.as_const().is_some_and(|k| k >= 1) && prove_le_simplified(&a, y))
        }
        _ => false,
    }
}

impl fmt::Display for SymExt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExt::Const(n) => write!(f, "{n}"),
            SymExt::Dim { source, axis } => write!(f, "dim({source},{axis})"),
            SymExt::Var(x) => write!(f, "{x}"),
            SymExt::Add(a, b) => write!(f, "({a}+{b})"),
            SymExt::Monus(a, b) => write!(f, "({a}-{b})"),
            SymExt::Mul(a, b) => write!(f, "({a}*{b})"),
            SymExt::Top => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::name;

    fn dim0(s: &str) -> SymExt {
        SymExt::Dim { source: name(s), axis: 0 }
    }

    #[test]
    fn simplify_folds_and_applies_units() {
        let n = dim0("A");
        let e = SymExt::Add(
            Rc::new(SymExt::Const(0)),
            Rc::new(SymExt::Mul(Rc::new(n.clone()), Rc::new(SymExt::Const(1)))),
        );
        assert_eq!(e.simplify(), n);
        let e = SymExt::Monus(Rc::new(n.clone()), Rc::new(n.clone()));
        assert_eq!(e.simplify(), SymExt::Const(0));
        let e = SymExt::Add(Rc::new(SymExt::Const(2)), Rc::new(SymExt::Const(3)));
        assert_eq!(e.simplify(), SymExt::Const(5));
    }

    #[test]
    fn widening_caps_expression_growth() {
        let mut e = dim0("A");
        for _ in 0..WIDEN_BUDGET {
            e = SymExt::Add(Rc::new(e), Rc::new(dim0("B")));
        }
        assert_eq!(e.widen(), SymExt::Top);
        assert_eq!(dim0("A").widen(), dim0("A"));
    }

    #[test]
    fn join_keeps_equal_terms_only() {
        assert_eq!(dim0("A").join(&dim0("A")), dim0("A"));
        assert_eq!(dim0("A").join(&dim0("B")), SymExt::Top);
    }

    #[test]
    fn symbolic_orderings() {
        let n = dim0("A");
        // n ∸ 1 ≤ n.
        assert!(prove_le(
            &SymExt::Monus(Rc::new(n.clone()), Rc::new(SymExt::Const(1))),
            &n
        ));
        // n ≤ n + 3, and n < n + 3.
        let n3 = SymExt::Add(Rc::new(n.clone()), Rc::new(SymExt::Const(3)));
        assert!(prove_le(&n, &n3));
        assert!(prove_lt(&n, &n3));
        // NOT provable: n ≤ n ∸ 1, n < n.
        assert!(!prove_le(&n, &SymExt::Monus(Rc::new(n.clone()), Rc::new(SymExt::Const(1)))));
        assert!(!prove_lt(&n, &n));
        // Top proves nothing.
        assert!(!prove_le(&SymExt::Top, &SymExt::Top));
    }
}
