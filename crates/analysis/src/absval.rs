//! Abstract values: what the analyzer knows about a term's result.
//!
//! Three cooperating domains meet here: natural numbers carry both an
//! *interval* ([`Iv`], shared with the evaluator's de-Bruijn pass) and
//! *symbolic bounds* ([`SymExt`]); arrays carry symbolic extents per
//! axis; sets and bags carry a cardinality interval (the input to the
//! provably-empty-comprehension lint and the cost model).

use std::rc::Rc;

use aql_core::eval::bounds::Iv;
use aql_core::value::Value;

use crate::sym::{prove_le, SymExt};

/// What is known about a natural-number-valued term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NatAbs {
    /// Interval bound on the value.
    pub iv: Iv,
    /// Exact symbolic value, when the term denotes one expression
    /// (e.g. `dim(A,0)`, `n`, `2·n`).
    pub sym: Option<SymExt>,
    /// Strict symbolic upper bound: in every execution where the value
    /// exists, `value < lt`.
    pub lt: Option<SymExt>,
    /// Inclusive symbolic lower bound: `value ≥ ge`.
    pub ge: Option<SymExt>,
}

impl NatAbs {
    /// No information: `[0, ∞)`, no symbolic bounds.
    pub fn top() -> NatAbs {
        NatAbs { iv: Iv::TOP, sym: None, lt: None, ge: None }
    }

    /// A known constant.
    pub fn exact(n: u64) -> NatAbs {
        NatAbs {
            iv: Iv::exact(n),
            sym: Some(SymExt::Const(n)),
            lt: None,
            ge: Some(SymExt::Const(n)),
        }
    }

    /// A term with exact symbolic value `s` (it is its own lower
    /// bound, and its own exclusive bound is `s + 1` — omitted; `sym`
    /// is consulted directly where it is stronger).
    pub fn symbolic(s: SymExt, iv: Iv) -> NatAbs {
        let s = s.widen();
        if s.is_top() {
            return NatAbs { iv, sym: None, lt: None, ge: None };
        }
        NatAbs { iv, sym: Some(s.clone()), lt: None, ge: Some(s) }
    }

    /// Join (interval hull; symbolic bounds survive only when equal).
    pub fn join(&self, o: &NatAbs) -> NatAbs {
        let keep = |a: &Option<SymExt>, b: &Option<SymExt>| match (a, b) {
            (Some(x), Some(y)) if x == y => Some(x.clone()),
            _ => None,
        };
        NatAbs {
            iv: self.iv.join(o.iv),
            sym: keep(&self.sym, &o.sym),
            lt: keep(&self.lt, &o.lt),
            ge: keep(&self.ge, &o.ge),
        }
    }

    /// Can the analyzer prove `value < ext` in every execution where
    /// the value exists?
    pub fn provably_lt(&self, ext: &SymExt) -> bool {
        if let Some(c) = ext.as_const() {
            if self.iv.hi.is_some_and(|h| h < c) {
                return true;
            }
        }
        if let Some(lt) = &self.lt {
            if prove_le(lt, ext) {
                return true;
            }
        }
        if let Some(s) = &self.sym {
            if crate::sym::prove_lt(s, ext) {
                return true;
            }
        }
        false
    }

    /// Can the analyzer prove `value ≥ ext` (i.e. *never* in range)?
    pub fn provably_ge(&self, ext: &SymExt) -> bool {
        if let Some(c) = ext.as_const() {
            if self.iv.lo >= c {
                return true;
            }
        }
        if let Some(ge) = &self.ge {
            if prove_le(ext, ge) {
                return true;
            }
        }
        false
    }
}

/// Abstract value of a term.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsVal {
    /// Unreachable / always-`⊥`.
    Bot,
    /// No information.
    Top,
    /// A boolean.
    Bool,
    /// A string.
    Str,
    /// A real.
    Real,
    /// A closure (opaque).
    Fun,
    /// A natural with interval and symbolic bounds.
    Nat(NatAbs),
    /// An array: one symbolic extent per axis, plus the element shape.
    Arr {
        /// Extents, outermost axis first.
        exts: Vec<SymExt>,
        /// Element abstraction.
        elem: Rc<AbsVal>,
    },
    /// A tuple, componentwise.
    Tup(Vec<AbsVal>),
    /// A set with element abstraction and cardinality interval.
    Set {
        /// Element abstraction.
        elem: Rc<AbsVal>,
        /// Bound on the number of (distinct) elements.
        card: Iv,
    },
    /// A bag with element abstraction and cardinality interval.
    Bag {
        /// Element abstraction.
        elem: Rc<AbsVal>,
        /// Bound on the number of elements (with multiplicity).
        card: Iv,
    },
}

impl AbsVal {
    /// Least upper bound (structural; mismatched shapes go to `Top`).
    pub fn join(&self, o: &AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, o) {
            (Bot, x) | (x, Bot) => x.clone(),
            (Top, _) | (_, Top) => Top,
            (Bool, Bool) => Bool,
            (Str, Str) => Str,
            (Real, Real) => Real,
            (Fun, Fun) => Fun,
            (Nat(a), Nat(b)) => Nat(a.join(b)),
            (Arr { exts: ea, elem: la }, Arr { exts: eb, elem: lb }) if ea.len() == eb.len() => {
                Arr {
                    exts: ea.iter().zip(eb).map(|(a, b)| a.join(b)).collect(),
                    elem: Rc::new(la.join(lb)),
                }
            }
            (Tup(a), Tup(b)) if a.len() == b.len() => {
                Tup(a.iter().zip(b).map(|(x, y)| x.join(y)).collect())
            }
            (Set { elem: a, card: ca }, Set { elem: b, card: cb }) => {
                Set { elem: Rc::new(a.join(b)), card: ca.join(*cb) }
            }
            (Bag { elem: a, card: ca }, Bag { elem: b, card: cb }) => {
                Bag { elem: Rc::new(a.join(b)), card: ca.join(*cb) }
            }
            _ => Top,
        }
    }

    /// The nat abstraction, if this is (certainly) a natural.
    pub fn as_nat(&self) -> Option<&NatAbs> {
        match self {
            AbsVal::Nat(n) => Some(n),
            _ => None,
        }
    }

    /// Cardinality interval of a set/bag, if known.
    pub fn card(&self) -> Option<Iv> {
        match self {
            AbsVal::Set { card, .. } | AbsVal::Bag { card, .. } => Some(*card),
            _ => None,
        }
    }

    /// Is this collection provably empty?
    pub fn provably_empty(&self) -> bool {
        self.card().is_some_and(|c| c.hi == Some(0))
    }
}

impl std::fmt::Display for AbsVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsVal::Bot => write!(f, "⊥"),
            AbsVal::Top => write!(f, "?"),
            AbsVal::Bool => write!(f, "bool"),
            AbsVal::Str => write!(f, "string"),
            AbsVal::Real => write!(f, "real"),
            AbsVal::Fun => write!(f, "fun"),
            AbsVal::Nat(n) => {
                write!(f, "nat")?;
                if let Some(s) = &n.sym {
                    write!(f, "={s}")
                } else if let Some(h) = n.iv.hi {
                    write!(f, "[{}..{}]", n.iv.lo, h)
                } else if n.iv.lo > 0 {
                    write!(f, "[{}..]", n.iv.lo)
                } else {
                    Ok(())
                }
            }
            AbsVal::Arr { exts, elem } => {
                write!(f, "array[")?;
                for (j, x) in exts.iter().enumerate() {
                    if j > 0 {
                        write!(f, "×")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "] of {elem}")
            }
            AbsVal::Tup(items) => {
                write!(f, "(")?;
                for (j, it) in items.iter().enumerate() {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, ")")
            }
            AbsVal::Set { elem, card } | AbsVal::Bag { elem, card } => {
                let kw = if matches!(self, AbsVal::Set { .. }) { "set" } else { "bag" };
                write!(f, "{kw}")?;
                if let Some(h) = card.hi {
                    write!(f, "[{}..{}]", card.lo, h)?;
                }
                write!(f, " of {elem}")
            }
        }
    }
}

/// Abstract a concrete session value (the entry point for seeding the
/// analyzer's global environment from `val` bindings). Array extents
/// become constants — a bound array's dimensions are always known.
pub fn absval_of_value(v: &Value) -> AbsVal {
    match v {
        Value::Bool(_) => AbsVal::Bool,
        Value::Nat(n) => AbsVal::Nat(NatAbs::exact(*n)),
        Value::Real(_) => AbsVal::Real,
        Value::Str(_) => AbsVal::Str,
        Value::Tuple(items) => AbsVal::Tup(items.iter().map(absval_of_value).collect()),
        Value::Array(a) => AbsVal::Arr {
            exts: a.dims().iter().map(|&d| SymExt::Const(d)).collect(),
            // Element shape left open: probing a lazy array here would
            // cause I/O during analysis.
            elem: Rc::new(AbsVal::Top),
        },
        Value::Set(s) => AbsVal::Set {
            elem: Rc::new(AbsVal::Top),
            card: Iv::exact(s.len() as u64),
        },
        Value::Bag(b) => AbsVal::Bag {
            elem: Rc::new(AbsVal::Top),
            card: Iv::exact(b.total_len()),
        },
        _ => AbsVal::Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::name;

    #[test]
    fn nat_join_hulls_intervals_and_drops_unequal_syms() {
        let a = NatAbs::exact(3);
        let b = NatAbs::exact(7);
        let j = a.join(&b);
        assert_eq!(j.iv, Iv { lo: 3, hi: Some(7) });
        assert_eq!(j.sym, None);
        assert_eq!(a.join(&a), a);
    }

    #[test]
    fn provably_lt_uses_both_domains() {
        // Interval: [0, 4] < 5.
        let a = NatAbs { iv: Iv { lo: 0, hi: Some(4) }, sym: None, lt: None, ge: None };
        assert!(a.provably_lt(&SymExt::Const(5)));
        assert!(!a.provably_lt(&SymExt::Const(4)));
        // Symbolic: value < dim(A,0) vs extent dim(A,0).
        let d = SymExt::Dim { source: name("A"), axis: 0 };
        let b = NatAbs { iv: Iv::TOP, sym: None, lt: Some(d.clone()), ge: None };
        assert!(b.provably_lt(&d));
        assert!(!a.provably_lt(&d));
    }

    #[test]
    fn provably_ge_flags_certain_oob() {
        let d = SymExt::Dim { source: name("A"), axis: 0 };
        // value ≥ dim(A,0) vs extent dim(A,0): always out.
        let a = NatAbs { iv: Iv::TOP, sym: None, lt: None, ge: Some(d.clone()) };
        assert!(a.provably_ge(&d));
        assert!(NatAbs::exact(9).provably_ge(&SymExt::Const(9)));
        assert!(!NatAbs::exact(8).provably_ge(&SymExt::Const(9)));
    }

    #[test]
    fn empty_collections_are_detected() {
        let s = AbsVal::Set { elem: Rc::new(AbsVal::Top), card: Iv::exact(0) };
        assert!(s.provably_empty());
        let s = AbsVal::Set { elem: Rc::new(AbsVal::Top), card: Iv { lo: 0, hi: Some(3) } };
        assert!(!s.provably_empty());
    }
}
