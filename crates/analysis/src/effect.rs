//! The effect/purity lattice.
//!
//! A four-point chain ordering how much machinery a term needs at run
//! time. The order matters: the join of a subtree's effects is the
//! *weakest kernel class* that could execute the whole subtree, which
//! is exactly the precondition the vectorized-engine roadmap item
//! needs ("which optimized subterms can compile to a bulk kernel?").

/// How a term behaves operationally, ordered from most to least
/// fusible. `join` is `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Effect {
    /// Scalar-in/scalar-out work: variables, literals, arithmetic,
    /// comparisons, tuples/projections, subscripts, `dim`.
    /// Vectorizes elementwise with no intermediate allocation.
    PureElementwise,
    /// Folds a bulk value to a scalar (`Σ`, `min`, `max`, `member`,
    /// `get`): fusible as the epilogue of a kernel, but introduces a
    /// loop-carried dependency.
    Reduction,
    /// Allocates a bulk value (tabulation, `gen`, array literals,
    /// set/bag construction, `index`): a kernel boundary — the result
    /// must land somewhere.
    Materializing,
    /// Calls code the analyzer cannot see (registered externals, or
    /// application of an unknown closure): never fusible.
    External,
}

impl Effect {
    /// Least upper bound.
    pub fn join(self, other: Effect) -> Effect {
        self.max(other)
    }

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Effect::PureElementwise => "pure-elementwise",
            Effect::Reduction => "reduction",
            Effect::Materializing => "materializing",
            Effect::External => "external",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_max_and_names_are_stable() {
        assert_eq!(Effect::PureElementwise.join(Effect::Reduction), Effect::Reduction);
        assert_eq!(Effect::Materializing.join(Effect::Reduction), Effect::Materializing);
        assert_eq!(Effect::External.join(Effect::PureElementwise), Effect::External);
        assert_eq!(Effect::Reduction.name(), "reduction");
    }
}
