//! Rendering an [`Analysis`] for humans: the body of the REPL's
//! `\analyze` command.

use std::fmt::Write as _;

use crate::analyze::Analysis;
use crate::cost;

/// Render the analysis summary: inferred shape, effect class, the
/// subscript-verdict tally, and the fusibility report marking which
/// loop nests could compile to bulk kernels.
pub fn render(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "shape  : {}", a.result);
    let _ = writeln!(out, "effect : {}", a.effect.name());
    let _ = writeln!(out, "cells  : ~{}", cost::cardinality(&a.result));
    let c = a.sub_counts();
    if c.total == 0 {
        let _ = writeln!(out, "bounds : no subscript sites");
    } else {
        let _ = writeln!(
            out,
            "bounds : {} subscript site(s): {} provably in-bounds, {} unknown, {} provably out",
            c.total, c.in_bounds, c.unknown, c.provably_out
        );
    }
    if a.kernels.is_empty() {
        let _ = writeln!(out, "fusion : no loop nests");
    } else {
        let fusible = a.kernels.iter().filter(|k| k.fusible).count();
        let _ = writeln!(
            out,
            "fusion : {} loop nest(s), {} kernel-compilable",
            a.kernels.len(),
            fusible
        );
        for k in &a.kernels {
            if k.fusible {
                let _ = writeln!(out, "  - {} kernel (fusible): {}", k.kind.name(), k.desc);
            } else {
                let _ = writeln!(
                    out,
                    "  - {} nest (blocked: {} head): {}",
                    k.kind.name(),
                    k.head_effect.name(),
                    k.desc
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use aql_core::expr::builder::*;
    use std::collections::BTreeMap;

    #[test]
    fn report_lists_verdicts_and_kernels() {
        let e = tab1("i", dim(1, var("A")), sub(var("A"), vec![var("i")]));
        let a = analyze(&e, &BTreeMap::new());
        let r = render(&a);
        assert!(r.contains("shape  : array[dim(A,0)] of ?"), "{r}");
        assert!(r.contains("effect : materializing"), "{r}");
        assert!(r.contains("1 provably in-bounds"), "{r}");
        assert!(r.contains("map kernel (fusible)"), "{r}");
    }

    #[test]
    fn report_is_sensible_for_scalars() {
        let e = add(nat(1), nat(2));
        let a = analyze(&e, &BTreeMap::new());
        let r = render(&a);
        assert!(r.contains("no subscript sites"), "{r}");
        assert!(r.contains("no loop nests"), "{r}");
        assert!(r.contains("effect : pure-elementwise"), "{r}");
    }
}
