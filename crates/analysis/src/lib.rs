//! Abstract interpretation over NRCA terms.
//!
//! Three cooperating domains, one linear pass ([`analyze()`]):
//!
//! 1. **Symbolic shapes** ([`sym`], [`absval`]) — array extents as
//!    expressions over bound variables and source dimensions
//!    (`dim(A,0)`, `n ∸ 1`), with widening to keep terms small.
//! 2. **Index intervals** — every nat-valued expression carries a
//!    `[lo, hi]` range plus symbolic upper/lower bounds, powering
//!    per-subscript in-bounds/out-of-bounds verdicts. (The evaluator's
//!    own bounds-check *elision* runs over the compiled de-Bruijn form
//!    — see [`debruijn`] — because only post-compile is the session's
//!    `val` registry in hand; this crate is the named-form half, which
//!    can reason symbolically without any concrete bindings.)
//! 3. **Effects/fusibility** ([`effect`]) — a four-point purity chain
//!    classifying which loop nests could compile to bulk kernels.
//!
//! Consumers: `aql-verify` (cross-variable out-of-bounds and
//! provably-empty-comprehension lints), `aql-opt` (analysis-backed
//! cost/cardinality estimates), and the REPL's `\analyze` command
//! ([`report`]).

#![warn(missing_docs)]

pub mod absval;
pub mod analyze;
pub mod cost;
pub mod effect;
pub mod report;
pub mod sym;

/// The compiled-form (de-Bruijn) interval pass and elision toggle,
/// re-exported from `aql-core` so consumers see both halves of the
/// framework in one place.
pub use aql_core::eval::bounds as debruijn;

pub use absval::{absval_of_value, AbsVal, NatAbs};
pub use analyze::{analyze, AccessRegion, Analysis, Kernel, KernelKind, SubCounts, SubVerdict};
pub use effect::Effect;
pub use sym::SymExt;
