//! Data readers and writers — the I/O module of Fig. 3.
//!
//! "Any driver which produces a stream of bytes in this format can
//! quickly be plugged into our system by registering it as a new
//! reader" (§4.1). A [`Reader`] takes the evaluated `at` argument of a
//! `readval` command and produces a complex object (optionally with
//! its declared type); a [`Writer`] consumes a value.
//!
//! The built-in [`CoFileReader`] / [`CoFileWriter`] pair implement the
//! paper's own exchange format over local files, registered as
//! `COFILE`. The NetCDF drivers live in the `aql-netcdf` crate and
//! register themselves through the same interface.

use std::path::Path;

use aql_core::types::Type;
use aql_core::value::parse::parse_value;
use aql_core::value::Value;

use crate::errors::LangError;

/// A registered data reader.
pub trait Reader {
    /// Read a complex object. `arg` is the evaluated `at` expression
    /// of the `readval` command. The second component, when present,
    /// is the declared type of the result (used when the value alone
    /// is ambiguous, e.g. empty collections).
    fn read(&self, arg: &Value) -> Result<(Value, Option<Type>), LangError>;
}

/// A registered data writer.
pub trait Writer {
    /// Write a complex object. `arg` is the evaluated `at` expression
    /// of the `writeval` command.
    fn write(&self, arg: &Value, data: &Value) -> Result<(), LangError>;
}

/// Reads a complex object from a local file in the §3 exchange format.
/// `at` argument: the file name as a string.
pub struct CoFileReader;

impl Reader for CoFileReader {
    fn read(&self, arg: &Value) -> Result<(Value, Option<Type>), LangError> {
        let path = match arg {
            Value::Str(s) => s.to_string(),
            other => {
                return Err(LangError::session(format!(
                    "COFILE expects a file name string, got {other}"
                )))
            }
        };
        let text = std::fs::read_to_string(Path::new(&path))
            .map_err(|e| LangError::session(format!("COFILE: cannot read `{path}`: {e}")))?;
        let v = parse_value(&text)
            .map_err(|e| LangError::session(format!("COFILE: `{path}`: {e}")))?;
        Ok((v, None))
    }
}

/// Writes a complex object to a local file in the exchange format.
pub struct CoFileWriter;

impl Writer for CoFileWriter {
    fn write(&self, arg: &Value, data: &Value) -> Result<(), LangError> {
        let path = match arg {
            Value::Str(s) => s.to_string(),
            other => {
                return Err(LangError::session(format!(
                    "COFILE expects a file name string, got {other}"
                )))
            }
        };
        std::fs::write(Path::new(&path), format!("{data}\n"))
            .map_err(|e| LangError::session(format!("COFILE: cannot write `{path}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cofile_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aql-cofile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v.co");
        let path_str = path.to_str().unwrap().to_string();

        let v = Value::set(vec![
            Value::tuple(vec![Value::Nat(1), Value::Real(2.5)]),
            Value::tuple(vec![Value::Nat(2), Value::Real(3.5)]),
        ]);
        CoFileWriter
            .write(&Value::str(&path_str), &v)
            .expect("write");
        let (back, ty) = CoFileReader.read(&Value::str(&path_str)).expect("read");
        assert_eq!(back, v);
        assert!(ty.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_arguments_reported() {
        assert!(CoFileReader.read(&Value::Nat(1)).is_err());
        assert!(CoFileWriter.write(&Value::Nat(1), &Value::Nat(2)).is_err());
        assert!(CoFileReader
            .read(&Value::str("/nonexistent/definitely/missing.co"))
            .is_err());
    }
}
