//! Error types for the surface language and session.

use std::fmt;

use aql_core::error::{EvalError, TypeError};

/// Any failure while lexing, parsing, desugaring, or executing an AQL
/// statement.
#[derive(Debug, Clone)]
pub enum LangError {
    /// Lexical error with position.
    Lex {
        /// Byte offset.
        offset: usize,
        /// 1-based line.
        line: usize,
        /// Message.
        message: String,
    },
    /// Parse error with position.
    Parse {
        /// 1-based line.
        line: usize,
        /// Message.
        message: String,
    },
    /// Desugaring error (bad pattern, unknown builtin arity, …).
    Desugar(String),
    /// The typechecker rejected the query.
    Type(TypeError),
    /// Evaluation failed at the host level.
    Eval(EvalError),
    /// A session-level problem: unknown reader/writer, duplicate name,
    /// I/O failure, macro cycle, …
    Session(String),
    /// The rewrite-soundness gate rejected an optimizer rule's output
    /// (verify mode): the rewrite introduced an unbound variable,
    /// produced an ill-formed term, or changed the query's type. The
    /// query is aborted; the session remains usable.
    Unsound {
        /// The optimizer phase the rule belongs to.
        phase: String,
        /// The offending rule.
        rule: String,
        /// What the verifier objected to.
        message: String,
    },
    /// An untrusted extension (reader, writer, or optimizer rule)
    /// panicked. The panic was caught at the session boundary; the
    /// session remains usable.
    ExtensionPanic {
        /// What kind of extension panicked (`"reader"`, `"writer"`,
        /// `"optimizer rule"`, …).
        kind: &'static str,
        /// The registered name of the extension.
        name: String,
        /// The panic payload, best-effort stringified.
        message: String,
    },
}

impl LangError {
    /// Construct a lexical error.
    pub fn lex(offset: usize, line: usize, message: impl Into<String>) -> LangError {
        LangError::Lex { offset, line, message: message.into() }
    }

    /// Construct a parse error.
    pub fn parse(line: usize, message: impl Into<String>) -> LangError {
        LangError::Parse { line, message: message.into() }
    }

    /// Construct a desugaring error.
    pub fn desugar(message: impl Into<String>) -> LangError {
        LangError::Desugar(message.into())
    }

    /// Construct a session error.
    pub fn session(message: impl Into<String>) -> LangError {
        LangError::Session(message.into())
    }

    /// Construct an extension-panic error.
    pub fn extension_panic(
        kind: &'static str,
        name: impl Into<String>,
        message: impl Into<String>,
    ) -> LangError {
        LangError::ExtensionPanic { kind, name: name.into(), message: message.into() }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, message, .. } => {
                write!(f, "lexical error (line {line}): {message}")
            }
            LangError::Parse { line, message } => {
                write!(f, "parse error (line {line}): {message}")
            }
            LangError::Desugar(m) => write!(f, "desugaring error: {m}"),
            LangError::Type(e) => write!(f, "type error: {e}"),
            LangError::Eval(e) => write!(f, "evaluation error: {e}"),
            LangError::Session(m) => write!(f, "session error: {m}"),
            LangError::Unsound { phase, rule, message } => {
                write!(
                    f,
                    "unsound rewrite by rule `{rule}` (phase `{phase}`): {message}"
                )
            }
            LangError::ExtensionPanic { kind, name, message } => {
                write!(f, "{kind} `{name}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for LangError {}

impl From<TypeError> for LangError {
    fn from(e: TypeError) -> Self {
        LangError::Type(e)
    }
}

impl From<EvalError> for LangError {
    fn from(e: EvalError) -> Self {
        LangError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = LangError::parse(7, "expected `;`");
        assert!(e.to_string().contains("line 7"));
        let e: LangError = TypeError::Unbound("x".into()).into();
        assert!(e.to_string().contains("type error"));
    }
}
