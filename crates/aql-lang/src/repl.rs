//! A line-oriented read-eval-print driver over [`Session`].
//!
//! Mirrors the paper's AQL top-level loop (§4.2): statements are
//! accumulated until a terminating `;`, executed, and echoed as
//! `typ …` / `val …` lines. Continuation lines print with the `::`
//! prompt from the paper's transcript.

use std::io::{BufRead, Write};

use crate::session::Session;

/// The primary prompt.
pub const PROMPT: &str = ": ";
/// The continuation prompt (as in the paper's transcript).
pub const CONT_PROMPT: &str = ":: ";

/// The `\help` listing: every meta-command the loop understands.
const HELP: &str = "\
meta-commands:
  vals;                    list bound vals with their types
  macros;                  list registered macros
  \\explain <query>;        show the core/optimized terms, cost estimates, rule fires
  \\analyze <query>;        abstract interpretation: shape, bounds, fusibility, cost
  \\lint <query>;           run the shape/bounds lints without evaluating
  \\profile <statements>    run with tracing on and print the phase tree
                           (… > \"f.json\"; exports Chrome trace JSON for Perfetto)
  \\flame <statements>      sample span stacks while re-running; prints hottest
                           stacks (… > \"f.svg\"; writes an SVG flamegraph)
  \\metrics;                print the process-lifetime metrics registry
  \\metrics serve [addr];   serve Prometheus exposition + live dashboard at /
                           (default 127.0.0.1:0)
  \\store;                  list open chunk sources, cache residency, governor
  \\attr;                   per-query resource attribution of the last run
  \\doctor [\"<path>\"];      analyze the last (or given) incident, or the live journal
  \\incidents \"<dir>\";      dump incident files into <dir> (\\incidents off; stops)
  \\save <val> \"<path>\";    save a bound array to an AQF file (writeval using AQF)
  \\help;                   this listing
  quit / exit              leave the session
";

/// Drive a session from a reader to a writer until EOF. Returns the
/// number of statements executed successfully.
pub fn run_repl(
    session: &mut Session,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> std::io::Result<usize> {
    let mut executed = 0usize;
    let mut pending = String::new();
    loop {
        write!(output, "{}", if pending.is_empty() { PROMPT } else { CONT_PROMPT })?;
        output.flush()?;
        let mut line = String::new();
        if input.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if pending.is_empty() && trimmed.is_empty() {
            continue;
        }
        if pending.is_empty() && (trimmed == "quit" || trimmed == "exit") {
            break;
        }
        pending.push_str(&line);
        if !statement_complete(&pending) {
            continue;
        }
        // Meta-commands: `vals;` and `macros;` list the environment.
        let trimmed_stmt = pending.trim();
        if trimmed_stmt == "vals;" {
            for (n, t) in session.val_bindings() {
                writeln!(output, "val {n} : {t}")?;
            }
            pending.clear();
            continue;
        }
        if trimmed_stmt == "macros;" {
            writeln!(output, "{}", session.macro_names().join(", "))?;
            pending.clear();
            continue;
        }
        // `\explain <query>;` (and the legacy bare `explain` spelling)
        // shows the pipeline — pre/post-optimization terms, rewrite
        // steps, and the (phase, rule) fire table — instead of running
        // the query.
        if let Some(q) = trimmed_stmt
            .strip_prefix("\\explain ")
            .or_else(|| trimmed_stmt.strip_prefix("explain "))
        {
            let q = q.trim_end().trim_end_matches(';');
            match session.explain(q) {
                Ok(ex) => writeln!(output, "{}", ex.render())?,
                Err(e) => writeln!(output, "error: {e}")?,
            }
            pending.clear();
            continue;
        }
        // `\analyze <query>;` runs the abstract interpreter and prints
        // the inferred (symbolic) shape, effect class, bounds
        // verdicts, fusibility report, and cost estimate — without
        // evaluating the query.
        if let Some(q) = trimmed_stmt.strip_prefix("\\analyze ") {
            let q = q.trim_end().trim_end_matches(';');
            match session.analyze(q) {
                Ok(report) => write!(output, "{}", report.render())?,
                Err(e) => writeln!(output, "error: {e}")?,
            }
            pending.clear();
            continue;
        }
        // `\lint <query>;` typechecks the query and reports the
        // aql-verify shape/bounds lints without evaluating it.
        if let Some(q) = trimmed_stmt.strip_prefix("\\lint ") {
            let q = q.trim_end().trim_end_matches(';');
            match session.lint(q) {
                Ok(report) => write!(output, "{}", report.render())?,
                Err(e) => writeln!(output, "error: {e}")?,
            }
            pending.clear();
            continue;
        }
        // `\profile <statements>` runs the statements with tracing on
        // and prints the phase-timing tree plus evaluation/I/O totals
        // after the usual echoes. With a trailing `> "file";` the
        // trace is written as Chrome trace-event JSON instead (opens
        // directly in Perfetto or chrome://tracing).
        if let Some(src) = trimmed_stmt.strip_prefix("\\profile ") {
            let (src, redirect) = split_redirect(src);
            match session.profile(src) {
                Ok((outcomes, report)) => {
                    for o in outcomes {
                        writeln!(output, "{}", o.text)?;
                        executed += 1;
                    }
                    match redirect {
                        Some(path) => {
                            match std::fs::write(path, report.to_chrome_json()) {
                                Ok(()) => writeln!(
                                    output,
                                    "profile: wrote chrome trace to {path} \
                                     (open in Perfetto)"
                                )?,
                                Err(e) => writeln!(
                                    output,
                                    "error: cannot write `{path}`: {e}"
                                )?,
                            }
                        }
                        None => write!(output, "{}", report.render_profile(false))?,
                    }
                }
                Err(e) => writeln!(output, "error: {e}")?,
            }
            pending.clear();
            continue;
        }
        // `\flame <statements>` re-runs the statements under the
        // background span-sampling profiler and prints the hottest
        // collapsed stacks; with a trailing `> "file.svg";` it writes
        // the SVG flamegraph instead.
        if let Some(src) = trimmed_stmt.strip_prefix("\\flame ") {
            let (src, redirect) = split_redirect(src);
            match session.flame(src) {
                Ok((outcomes, profile)) => {
                    for o in outcomes {
                        writeln!(output, "{}", o.text)?;
                        executed += 1;
                    }
                    match redirect {
                        Some(path) => {
                            let svg = profile.to_svg(src.trim());
                            match std::fs::write(path, svg) {
                                Ok(()) => writeln!(
                                    output,
                                    "flame: wrote {path} ({} samples at {} Hz)",
                                    profile.samples, profile.hz
                                )?,
                                Err(e) => writeln!(
                                    output,
                                    "error: cannot write `{path}`: {e}"
                                )?,
                            }
                        }
                        None => {
                            writeln!(
                                output,
                                "flame: {} samples at {} Hz, hottest stacks:",
                                profile.samples, profile.hz
                            )?;
                            for (stack, n) in profile.top(8) {
                                writeln!(output, "  {n:>6} {stack}")?;
                            }
                        }
                    }
                }
                Err(e) => writeln!(output, "error: {e}")?,
            }
            pending.clear();
            continue;
        }
        // `\help;` lists the meta-commands.
        if trimmed_stmt == "\\help;" {
            write!(output, "{HELP}")?;
            pending.clear();
            continue;
        }
        // `\metrics serve [addr];` starts the Prometheus endpoint (it
        // outlives the REPL by design — the registry is
        // process-lifetime, so the scrape target stays up).
        if let Some(rest) = trimmed_stmt.strip_prefix("\\metrics serve") {
            let addr = rest.trim_end().trim_end_matches(';').trim();
            let addr = if addr.is_empty() { "127.0.0.1:0" } else { addr };
            match aql_metrics::http::serve(addr) {
                Ok(server) => {
                    // Wire `GET /profile?seconds=N` to the sampler.
                    // aql-metrics stays profiler-free; the session is
                    // the layer that owns both and ties them together.
                    aql_metrics::http::set_profile_provider(Some(Box::new(
                        |seconds| {
                            match aql_profile::sample_for(
                                std::time::Duration::from_secs(seconds),
                                aql_profile::DEFAULT_HZ,
                            ) {
                                Ok(p) => p.folded_text(),
                                Err(e) => format!("profile: sampler failed: {e}\n"),
                            }
                        },
                    )));
                    writeln!(output, "metrics: serving http://{}/metrics", server.addr())?;
                    writeln!(output, "metrics: dashboard at http://{}/", server.addr())?;
                }
                Err(e) => writeln!(output, "error: cannot serve metrics on `{addr}`: {e}")?,
            }
            pending.clear();
            continue;
        }
        // `\store;` reports per-binding chunk-store residency and the
        // process governor's budget/usage/peak.
        if trimmed_stmt == "\\store;" {
            write!(output, "{}", session.store_report())?;
            pending.clear();
            continue;
        }
        // `\save <val> "<path>";` persists a bound array to an AQF
        // file by delegating to whatever `AQF` writer is registered
        // (aql-format's `register_aqf` installs one).
        if let Some(rest) = trimmed_stmt.strip_prefix("\\save ") {
            let rest = rest.trim_end().trim_end_matches(';').trim();
            match parse_save_args(rest) {
                Some((name, path)) => {
                    match session.run(&format!("writeval {name} using AQF at \"{path}\";")) {
                        Ok(outcomes) => {
                            for o in outcomes {
                                writeln!(output, "{}", o.text)?;
                                executed += 1;
                            }
                        }
                        Err(e) => writeln!(output, "error: {e}")?,
                    }
                }
                None => {
                    writeln!(output, "error: usage: \\save <val> \"<path>\";")?;
                }
            }
            pending.clear();
            continue;
        }
        // `\attr;` renders the per-query resource attribution of the
        // most recent run: bytes and chunks by source label, per-phase
        // wall time, and governor pressure.
        if trimmed_stmt == "\\attr;" {
            let ledgers = session.statement_attribution();
            if ledgers.is_empty() {
                writeln!(output, "attr: no statements run yet")?;
            }
            for (i, l) in ledgers.iter().enumerate() {
                writeln!(output, "stmt {i}:")?;
                write!(output, "{}", l.render())?;
            }
            pending.clear();
            continue;
        }
        // `\doctor;` analyzes the most recent incident dump (or the
        // live flight recorder when none exists); `\doctor "<path>";`
        // analyzes a specific incident file.
        if let Some(rest) = trimmed_stmt.strip_prefix("\\doctor") {
            let arg = rest.trim_end().trim_end_matches(';').trim();
            if arg.is_empty() {
                write!(output, "{}", session.doctor())?;
            } else {
                match parse_quoted(arg) {
                    Some(path) => {
                        match aql_journal::incident::Incident::load(std::path::Path::new(path)) {
                            Ok(inc) => {
                                write!(output, "{}", aql_journal::doctor::diagnose(&inc))?
                            }
                            Err(e) => writeln!(output, "error: {e}")?,
                        }
                    }
                    None => writeln!(output, "error: usage: \\doctor [\"<path>\"];")?,
                }
            }
            pending.clear();
            continue;
        }
        // `\incidents "<dir>";` turns the incident dump pipeline on;
        // `\incidents off;` turns it off.
        if let Some(rest) = trimmed_stmt.strip_prefix("\\incidents") {
            let arg = rest.trim_end().trim_end_matches(';').trim();
            if arg == "off" {
                session.disable_incidents();
                writeln!(output, "incidents: off")?;
            } else {
                match parse_quoted(arg) {
                    Some(dir) => {
                        session.enable_incidents(crate::session::IncidentConfig::new(dir));
                        writeln!(output, "incidents: dumping into {dir}")?;
                    }
                    None => writeln!(output, "error: usage: \\incidents \"<dir>\"; | off;")?,
                }
            }
            pending.clear();
            continue;
        }
        // `\metrics;` dumps the registry: one `series value` per line.
        if trimmed_stmt == "\\metrics;" {
            for (k, v) in aql_metrics::snapshot() {
                writeln!(output, "{k} {v}")?;
            }
            pending.clear();
            continue;
        }
        match session.run(&pending) {
            Ok(outcomes) => {
                for o in outcomes {
                    writeln!(output, "{}", o.text)?;
                    executed += 1;
                }
            }
            Err(e) => writeln!(output, "error: {e}")?,
        }
        pending.clear();
    }
    Ok(executed)
}

/// Strip a double-quoted argument (`"<text>"`). Returns `None` when it
/// isn't quoted or embeds a quote.
fn parse_quoted(arg: &str) -> Option<&str> {
    let inner = arg.strip_prefix('"')?.strip_suffix('"')?;
    (!inner.is_empty() && !inner.contains('"')).then_some(inner)
}

/// Split `\save` arguments: a val name followed by a double-quoted
/// path. Returns `None` when the shape doesn't match (the path must
/// be quoted and free of embedded quotes — it is spliced back into a
/// `writeval` statement verbatim).
fn parse_save_args(rest: &str) -> Option<(&str, &str)> {
    let (name, path) = rest.split_once(char::is_whitespace)?;
    let path = path.trim();
    let path = path.strip_prefix('"')?.strip_suffix('"')?;
    if name.is_empty()
        || path.is_empty()
        || path.contains('"')
        || path.contains('\\')
        || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
    {
        return None;
    }
    Some((name, path))
}

/// Split a trailing output redirect off `\profile` / `\flame`
/// arguments: `<statements> > "<path>";` → `(<statements>, Some(path))`.
/// The path must be double-quoted (so a bare `a > b;` comparison query
/// is never mistaken for a redirect) and quote-free; anything else
/// returns the input untouched with no redirect.
fn split_redirect(rest: &str) -> (&str, Option<&str>) {
    let t = rest.trim_end();
    let Some(t) = t.strip_suffix(';') else { return (rest, None) };
    let Some(t) = t.trim_end().strip_suffix('"') else { return (rest, None) };
    let Some((stmts, path)) = t.rsplit_once("> \"") else {
        return (rest, None);
    };
    if path.is_empty() || path.contains('"') || !stmts.trim_end().ends_with(';') {
        return (rest, None);
    }
    (stmts.trim_end(), Some(path))
}

/// Heuristic statement-completeness check: the buffer ends with `;`
/// outside strings and comments.
fn statement_complete(src: &str) -> bool {
    let b = src.as_bytes();
    let mut i = 0;
    let mut depth_comment = 0usize;
    let mut in_string = false;
    let mut last_significant = 0u8;
    while i < b.len() {
        let c = b[i];
        if in_string {
            if c == b'\\' {
                i += 2;
                continue;
            }
            if c == b'"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        if depth_comment > 0 {
            if c == b'(' && b.get(i + 1) == Some(&b'*') {
                depth_comment += 1;
                i += 2;
                continue;
            }
            if c == b'*' && b.get(i + 1) == Some(&b')') {
                depth_comment -= 1;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => in_string = true,
            b'(' if b.get(i + 1) == Some(&b'*') => {
                depth_comment += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => {}
            _ => last_significant = c,
        }
        i += 1;
    }
    depth_comment == 0 && !in_string && last_significant == b';'
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn completeness_heuristic() {
        assert!(statement_complete("1 + 1;"));
        assert!(statement_complete("1 + 1; (* trailing comment *)"));
        assert!(!statement_complete("1 + 1"));
        assert!(!statement_complete("\"unterminated;"));
        assert!(!statement_complete("(* ; *)"));
        assert!(statement_complete("{x | \\x <- S};"));
    }

    #[test]
    fn repl_executes_and_echoes() {
        let mut s = Session::new();
        let input = "val \\x = 3;\nx * 14;\nquit\n";
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        let n = run_repl(&mut s, &mut reader, &mut out).unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("typ x : nat"));
        assert!(text.contains("val it = 42"));
    }

    #[test]
    fn repl_recovers_from_errors() {
        let mut s = Session::new();
        let input = "1 + true;\n2 + 2;\n";
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        let n = run_repl(&mut s, &mut reader, &mut out).unwrap();
        assert_eq!(n, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("error:"));
        assert!(text.contains("val it = 4"));
    }

    #[test]
    fn meta_commands_list_the_environment() {
        let mut s = Session::new();
        let input = "val \\x = 3;\nvals;\nmacros;\n";
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        run_repl(&mut s, &mut reader, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("val x : nat"));
        assert!(text.contains("zip_3"), "prelude macros listed: {text}");
    }

    #[test]
    fn explain_shows_the_pipeline() {
        let mut s = Session::new();
        let input = "explain [[ i | \\i < 10 ]][3];\n1 + 1;\n";
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        run_repl(&mut s, &mut reader, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("typ  : nat"));
        assert!(text.contains("beta-p"), "trace must show β^p: {text}");
        assert!(text.contains("opt  : 3"), "the query folds to 3: {text}");
        assert!(text.contains("val it = 2"), "the REPL keeps running");
    }

    /// Drive a fresh session's REPL over `input` and return the
    /// timing-redacted transcript.
    fn redacted_transcript(input: &str) -> String {
        let mut s = Session::new();
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        run_repl(&mut s, &mut reader, &mut out).unwrap();
        aql_trace::redact_timings(&String::from_utf8(out).unwrap())
    }

    #[test]
    fn backslash_explain_shows_fire_table() {
        let text = redacted_transcript("\\explain [[ i | \\i < 10 ]][3];\n");
        assert!(text.contains("typ  : nat"), "{text}");
        assert!(text.contains("opt  : 3"), "the query folds to 3: {text}");
        assert!(text.contains("rule fires:"), "{text}");
        for col in ["phase", "rule", "fires"] {
            assert!(text.contains(col), "fire table column `{col}`: {text}");
        }
        assert!(text.contains("beta-p"), "fire table must name β^p: {text}");
        // Golden: explain output carries no timings, so two fresh
        // sessions must render identically.
        assert_eq!(text, redacted_transcript("\\explain [[ i | \\i < 10 ]][3];\n"));
    }

    #[test]
    fn backslash_profile_shows_phase_tree() {
        let input = "\\profile val \\a = [[ i * i | \\i < 8 ]]; a[3];\n";
        let text = redacted_transcript(input);
        assert!(text.contains("typ a : [[nat]]_1"), "{text}");
        assert!(text.contains("val it = 9"), "{text}");
        // The span tree: one root per statement with the pipeline
        // phases as children, durations redacted to `(_)`.
        assert!(text.contains("statement [kind=val] (_)"), "{text}");
        assert!(text.contains("statement [kind=query] (_)"), "{text}");
        for phase in ["desugar", "typecheck", "optimize", "eval"] {
            assert!(
                text.contains(&format!("─ {phase} (_)")),
                "phase `{phase}` must appear as a child span: {text}"
            );
        }
        assert!(text.contains("eval.steps="), "{text}");
        assert!(text.contains("totals: steps="), "{text}");
        // Golden: after redaction the transcript is deterministic.
        assert_eq!(text, redacted_transcript(input));
    }

    #[test]
    fn backslash_analyze_reports_shape_bounds_and_fusibility() {
        let input = "val \\a = [[ i * i | \\i < 8 ]];\n\
                     \\analyze [[ a[i] + 1 | \\i < len!a ]];\n\
                     \\analyze summap(fn \\x => x)!(gen!9);\n\
                     \\analyze 1 + true;\n";
        let text = redacted_transcript(input);
        assert!(text.contains("typ    : [[nat]]_1"), "{text}");
        assert!(text.contains("shape  : array[8] of"), "bound extent is concrete: {text}");
        assert!(text.contains("1 provably in-bounds"), "{text}");
        assert!(text.contains("map kernel (fusible)"), "{text}");
        assert!(text.contains("cost   : cells~8"), "{text}");
        assert!(
            text.contains("reduction kernel (fusible)"),
            "the summap is a fusible reduction: {text}"
        );
        assert!(text.contains("error: type error"), "{text}");
        // Golden: analysis output carries no timings and is
        // deterministic across fresh sessions, up to the process-wide
        // gensym counter that names desugared comprehension binders.
        fn redact_gensyms(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            let mut chars = s.chars().peekable();
            while let Some(c) = chars.next() {
                out.push(c);
                if c == '%' && chars.peek().is_some_and(char::is_ascii_digit) {
                    while chars.peek().is_some_and(char::is_ascii_digit) {
                        chars.next();
                    }
                    out.push('N');
                }
            }
            out
        }
        assert_eq!(redact_gensyms(&text), redact_gensyms(&redacted_transcript(input)));
    }

    #[test]
    fn explain_shows_cost_estimates() {
        // E1-style zip and the fold-to-constant query both carry a
        // before → after cost line; folding must reduce the estimate.
        let text = redacted_transcript("\\explain [[ i | \\i < 10 ]][3];\n");
        let line = text
            .lines()
            .find(|l| l.starts_with("cost : "))
            .unwrap_or_else(|| panic!("no cost line: {text}"));
        assert!(line.contains("->"), "{line}");
        let steps: Vec<u64> = line
            .split_whitespace()
            .filter_map(|w| w.strip_prefix("steps~"))
            .map(|n| n.parse().unwrap())
            .collect();
        assert_eq!(steps.len(), 2, "{line}");
        assert!(steps[1] < steps[0], "optimization must cut the estimate: {line}");
    }

    #[test]
    fn backslash_lint_reports_findings() {
        // A provably out-of-bounds subscript (L001), rendered with the
        // stable code, then a clean query, then an ill-typed one.
        let input = "\\lint [[ i | \\i < 10 ]][12];\n\
                     \\lint [[ i | \\i < 10 ]][3];\n\
                     \\lint 1 + true;\n";
        let text = redacted_transcript(input);
        assert!(text.contains("typ  : nat"), "{text}");
        assert!(
            text.contains("lint : L001 warning: subscript along dimension 1"),
            "{text}"
        );
        assert!(text.contains("always evaluates to bottom"), "{text}");
        assert!(text.contains("lint : no findings"), "{text}");
        assert!(text.contains("error: type error"), "{text}");
        // Golden: lint output is deterministic across fresh sessions.
        assert_eq!(text, redacted_transcript(input));
    }

    #[test]
    fn backslash_lint_flags_dead_branches_and_zero_extents() {
        let text = redacted_transcript(
            "\\lint if bottom then 1 else 2;\n\\lint [[ i | \\i < 0 ]];\n",
        );
        assert!(
            text.contains("lint : L003 warning: `if` condition is the literal bottom"),
            "{text}"
        );
        assert!(
            text.contains("lint : L002 warning: tabulation bound 1 is constantly zero"),
            "{text}"
        );
        assert_eq!(
            text,
            redacted_transcript(
                "\\lint if bottom then 1 else 2;\n\\lint [[ i | \\i < 0 ]];\n"
            )
        );
    }

    #[test]
    fn profile_recovers_from_errors() {
        let text = redacted_transcript("\\profile 1 + true;\n2 + 2;\n");
        assert!(text.contains("error:"), "{text}");
        assert!(text.contains("val it = 4"), "the REPL keeps running: {text}");
    }

    #[test]
    fn split_redirect_only_fires_on_quoted_trailing_paths() {
        // Well-formed redirect after a terminated statement.
        assert_eq!(
            split_redirect("1 + 1; > \"out.svg\";"),
            ("1 + 1;", Some("out.svg"))
        );
        assert_eq!(
            split_redirect("val \\a = 1; a; > \"d/x.json\";"),
            ("val \\a = 1; a;", Some("d/x.json"))
        );
        // A `>` comparison against a string is NOT a redirect: the
        // part before `> "` is not a terminated statement.
        assert_eq!(split_redirect("\"a\" > \"b\";"), ("\"a\" > \"b\";", None));
        // No quotes → no redirect.
        assert_eq!(split_redirect("1 + 1;"), ("1 + 1;", None));
        assert_eq!(split_redirect("x > 3;"), ("x > 3;", None));
    }

    #[test]
    fn backslash_flame_prints_hottest_stacks() {
        let text = redacted_transcript(
            "\\flame max!{ i * i | \\i <- gen!400 };\n",
        );
        assert!(text.contains("val it = "), "{text}");
        assert!(text.contains("Hz, hottest stacks:"), "{text}");
        assert!(text.contains("statement"), "span frames expected: {text}");
    }

    #[test]
    fn backslash_flame_redirect_writes_svg() {
        let path = std::env::temp_dir()
            .join(format!("aql-flame-{}.svg", std::process::id()));
        let path_str = path.display().to_string();
        let text = redacted_transcript(&format!(
            "\\flame max!{{ i + 1 | \\i <- gen!200 }}; > \"{path_str}\";\n"
        ));
        assert!(text.contains("flame: wrote"), "{text}");
        let svg = std::fs::read_to_string(&path).expect("svg written");
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.contains("statement"), "{svg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backslash_profile_redirect_writes_chrome_trace() {
        let path = std::env::temp_dir()
            .join(format!("aql-chrome-{}.json", std::process::id()));
        let path_str = path.display().to_string();
        let text = redacted_transcript(&format!(
            "\\profile 2 + 3; > \"{path_str}\";\n"
        ));
        assert!(text.contains("profile: wrote chrome trace"), "{text}");
        assert!(text.contains("val it = 5"), "{text}");
        let json = std::fs::read_to_string(&path).expect("json written");
        let v = aql_trace::json::Json::parse(&json).expect("strict json");
        let events = v
            .get("traceEvents")
            .and_then(aql_trace::json::Json::as_arr)
            .expect("traceEvents");
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(aql_trace::json::Json::as_str)
                    == Some("statement")
                    && e.get("ph").and_then(aql_trace::json::Json::as_str)
                        == Some("X")
            }),
            "{json}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backslash_help_lists_every_meta_command() {
        let text = redacted_transcript("\\help;\n1 + 1;\n");
        for cmd in [
            "vals;", "macros;", "\\explain", "\\analyze", "\\lint", "\\profile", "\\flame",
            "\\metrics", "\\store", "\\attr", "\\doctor", "\\incidents", "\\save", "\\help",
            "quit",
        ] {
            assert!(text.contains(cmd), "`{cmd}` missing from \\help: {text}");
        }
        assert!(text.contains("val it = 2"), "the REPL keeps running: {text}");
        // Golden: the help text is a constant, so two fresh sessions
        // must render identically.
        assert_eq!(text, redacted_transcript("\\help;\n1 + 1;\n"));
    }

    #[test]
    fn backslash_metrics_dumps_the_registry() {
        let text = redacted_transcript("6 * 7;\n\\metrics;\n");
        assert!(text.contains("val it = 42"), "{text}");
        assert!(
            text.contains("aql_session_statements_total{kind=\"query\"}"),
            "statement counters must appear: {text}"
        );
        assert!(
            text.contains("aql_session_statement_ns_count"),
            "latency histogram summaries must appear: {text}"
        );
    }

    #[test]
    fn backslash_metrics_serve_answers_scrapes() {
        use std::io::Read as _;
        let mut s = Session::new();
        let input = "\\metrics serve 127.0.0.1:0;\n1 + 1;\n";
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        run_repl(&mut s, &mut reader, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let addr = text
            .lines()
            .find_map(|l| l.split("metrics: serving http://").nth(1))
            .and_then(|l| l.strip_suffix("/metrics"))
            .unwrap_or_else(|| panic!("no serving line in {text}"))
            .to_string();
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut body = String::new();
        conn.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.contains("# TYPE aql_session_statements_total counter"), "{body}");
    }

    #[test]
    fn backslash_store_reports_without_open_sources() {
        let text = redacted_transcript("val \\x = 3;\n\\store;\n");
        assert!(text.contains("store: no open chunk sources"), "{text}");
        assert!(text.contains("governor: budget="), "{text}");
    }

    #[test]
    fn backslash_save_rejects_malformed_and_unregistered() {
        // Malformed: no quoted path.
        let text = redacted_transcript("\\save x out.aqf;\n1 + 1;\n");
        assert!(text.contains("error: usage: \\save <val> \"<path>\";"), "{text}");
        assert!(text.contains("val it = 2"), "the REPL keeps running: {text}");
        // Well-formed, but no `AQF` writer registered in a bare
        // session: the delegated `writeval` reports the error.
        let text = redacted_transcript("val \\x = 3;\n\\save x \"/tmp/x.aqf\";\n");
        assert!(text.contains("error:"), "{text}");
        assert_eq!(
            text,
            redacted_transcript("val \\x = 3;\n\\save x \"/tmp/x.aqf\";\n"),
            "the \\save error path is deterministic"
        );
    }

    #[test]
    fn save_argument_splitter() {
        assert_eq!(parse_save_args("x \"out.aqf\""), Some(("x", "out.aqf")));
        assert_eq!(parse_save_args("grid  \"/tmp/a b.aqf\""), Some(("grid", "/tmp/a b.aqf")));
        assert_eq!(parse_save_args("x out.aqf"), None, "path must be quoted");
        assert_eq!(parse_save_args("x"), None);
        assert_eq!(parse_save_args("x \"\""), None, "empty path");
        assert_eq!(parse_save_args("x; drop \"p\""), None, "name must be an identifier");
    }

    #[test]
    fn backslash_attr_renders_the_last_run() {
        // A bare session has no prelude run behind it, so the first
        // `\attr;` reports emptiness; after a statement, one ledger.
        let mut s = Session::bare();
        let input = "\\attr;\n1 + 1;\n\\attr;\n";
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        run_repl(&mut s, &mut reader, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("attr: no statements run yet"), "{text}");
        assert!(text.contains("stmt 0:"), "{text}");
        assert!(text.contains("governor: peak"), "{text}");
        assert!(text.contains("val it = 2"), "the REPL keeps running: {text}");
    }

    #[test]
    fn backslash_doctor_and_incidents_work_end_to_end() {
        let dir = std::env::temp_dir().join(format!("aql-repl-doc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = format!(
            "\\incidents \"{}\";\nno_such_name + 1;\n\\doctor;\n\\incidents off;\n",
            dir.display()
        );
        let mut s = Session::new();
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        run_repl(&mut s, &mut reader, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("incidents: dumping into"), "{text}");
        assert!(text.contains("error:"), "the bad statement errors: {text}");
        assert!(text.contains("incident:"), "\\doctor names the dump: {text}");
        assert!(text.contains("fault class"), "\\doctor classifies: {text}");
        assert!(text.contains("incidents: off"), "{text}");
        // `\doctor "<path>";` reads a specific file.
        let path = aql_journal::incident::list_incidents(&dir)
            .pop()
            .expect("an incident file exists");
        let text2 = redacted_transcript(&format!("\\doctor \"{}\";\n", path.display()));
        assert!(text2.contains("fault class"), "{text2}");
        // Malformed arg is a usage error, not a crash.
        let text3 = redacted_transcript("\\doctor nope;\n1 + 1;\n");
        assert!(text3.contains("usage: \\doctor"), "{text3}");
        assert!(text3.contains("val it = 2"), "{text3}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multiline_statements_accumulate() {
        let mut s = Session::new();
        let input = "{d | \\d <- gen!5,\n d > 2};\n";
        let mut reader = BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        run_repl(&mut s, &mut reader, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("val it = {3, 4}"));
        assert!(text.contains(CONT_PROMPT));
    }
}
