//! The AQL top-level environment and read-eval-print session (§4).
//!
//! A [`Session`] owns the four registries of the paper's environment
//! module — `val` bindings, `macro` definitions, external primitives,
//! and data readers/writers — plus the optimizer. Executing a
//! statement runs the full Fig. 3 pipeline:
//!
//! ```text
//! parse → desugar (Fig. 2) → resolve names → typecheck
//!       → macro substitution happens at resolve → optimize
//!       → compile → evaluate → pretty-print
//! ```
//!
//! Openness (§4.1): [`Session::register_external`],
//! [`Session::register_reader`], [`Session::register_writer`] and
//! [`Session::optimizer_mut`] inject primitives, drivers and rules at
//! run time — the Rust counterparts of the paper's SML registration
//! routines.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::time::{Duration, Instant};

use aql_core::check::typecheck;
use aql_core::error::EvalError;
use aql_core::eval::{eval, EvalCtx, EvalStats, Limits};
use aql_core::expr::{name, Expr, Name};
use aql_core::prim::{Extensions, NativeFn};
use aql_core::types::Type;
use aql_core::value::print::session_string;
use aql_core::value::tyof::type_of_value;
use aql_core::value::Value;
use aql_opt::{Gate, OptError, Optimizer};
use aql_verify::Diagnostic;

use crate::ast::Stmt;
use crate::desugar::desugar;
use crate::errors::LangError;
use crate::parser::parse_program;
use crate::reader::{CoFileReader, CoFileWriter, Reader, Writer};

/// Prelude macros, written in AQL itself and loaded into every
/// session: the derived operators §3 says "are available as macros".
pub const PRELUDE: &str = r#"
macro \zip = fn (\a, \b) => [[ (a[i], b[i]) | \i < min!{len!a, len!b} ]];
macro \zip_3 = fn (\a, \b, \c) => [[ (a[i], b[i], c[i]) | \i < min!{len!a, len!b, len!c} ]];
macro \subseq = fn (\a, \i, \j) => [[ a[i + k] | \k < (j + 1) - i ]];
macro \evenpos = fn \a => [[ a[i * 2] | \i < len!a / 2 ]];
macro \oddpos = fn \a => [[ a[i * 2 + 1] | \i < len!a / 2 ]];
macro \reverse = fn \a => [[ a[len!a - i - 1] | \i < len!a ]];
macro \transpose = fn \m => [[ m[i, j] | \j < dim_2_2!m, \i < dim_1_2!m ]];
macro \proj_col = fn (\m, \j) => [[ m[i, j] | \i < dim_1_2!m ]];
macro \proj_row = fn (\m, \i) => [[ m[i, j] | \j < dim_2_2!m ]];
macro \matmul = fn (\m, \n) =>
  if dim_2_2!m <> dim_1_2!n then bottom
  else [[ summap(fn \q => m[i, q] * n[q, k])!(gen!(dim_2_2!m))
        | \i < dim_1_2!m, \k < dim_2_2!n ]];
macro \append = fn (\a, \b) =>
  [[ if i < len!a then a[i] else b[i - len!a] | \i < len!a + len!b ]];
macro \filter = fn (\p, \s) => {x | \x <- s, p!x};
macro \forall_in = fn (\s, \p) => summap(fn \x => if p!x then 0 else 1)!(s) = 0;
macro \exists_in = fn (\s, \p) => summap(fn \x => if p!x then 1 else 0)!(s) > 0;
macro \nest = fn \X => {(x, {y | (x, \y) <- X}) | (\x, _) <- X};
macro \graph = fn \a => {(i, a[i]) | [\i : _] <- a};

(* --- ODMG array primitives (§7: "our array query language can also
       easily simulate all ODMG array primitives"), functionally:   --- *)
(* update element i to v *)
macro \upd = fn (\a, \i, \v) =>
  [[ if j = i then v else a[j] | \j < len!a ]];
(* resize to n, filling new slots with d *)
macro \resize = fn (\a, \n, \d) =>
  [[ if i < len!a then a[i] else d | \i < n ]];
(* insert v before position i (i <= len a) *)
macro \insert_at = fn (\a, \i, \v) =>
  [[ if j < i then a[j] else if j = i then v else a[j - 1]
   | \j < len!a + 1 ]];
(* remove the element at position i *)
macro \remove_at = fn (\a, \i) =>
  [[ if j < i then a[j] else a[j + 1] | \j < len!a - 1 ]];

(* --- reshaping (§1: "why not include primitives for … reshaping a
       one-dimensional array in row-major order into a two-dimensional
       array, etc.?" — because tabulation derives them) --- *)
macro \reshape = fn (\a, \r, \c) => [[ a[i * c + j] | \i < r, \j < c ]];
macro \flatten = fn \m =>
  [[ m[i / dim_2_2!m, i % dim_2_2!m] | \i < dim_1_2!m * dim_2_2!m ]];

(* --- coordinate-valued indices (§7 future work: "more meaningful
       data types such as longitudes and latitudes as indices"):
       nearest-coordinate lookup over a coordinate array, definable
       inside AQL via the canonical order on (distance, index) pairs --- *)
macro \nearest = fn (\c, \x) =>
  pi_2_2!(min!{((if v > x then v - x else x - v), i) | [\i : \v] <- c});
"#;

// ---- process-lifetime metrics ---------------------------------------
//
// The aggregate counterpart of the per-query trace spans: every
// statement bumps these regardless of profiling, so a long-running
// session exposes fleet-level counters and latency distributions on
// `/metrics` (see `aql_metrics::http::serve` and DESIGN.md §11).

/// Help text for the per-phase latency histogram family.
const PHASE_NS_HELP: &str =
    "Pipeline phase latency in nanoseconds, by phase (log2 buckets).";

static M_STATEMENT_NS: aql_metrics::LazyHistogram = aql_metrics::LazyHistogram::new(
    "aql_session_statement_ns",
    "End-to-end statement latency in nanoseconds (log2 buckets).",
);
static M_ERRORS: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
    "aql_session_errors_total",
    "Statements that failed with any session error.",
);
static M_UNSOUND: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
    "aql_session_unsound_total",
    "Statements rejected by the rewrite-soundness gate.",
);
static M_SLOW: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
    "aql_session_slow_queries_total",
    "Statements whose wall time exceeded the slow-query threshold.",
);
static M_LINT_FINDINGS: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
    "aql_session_lint_findings_total",
    "Shape/bounds lint findings reported by Session::lint.",
);

/// Record one sample on the `aql_session_phase_ns{phase=…}` histogram.
/// Phase names come from the fixed pipeline set (`lex`, `parse`,
/// `desugar`, `resolve`, `typecheck`, `optimize`, `eval`, `readval`,
/// `writeval`) — a closed label set, per the cardinality rules.
pub(crate) fn observe_phase_ns(phase: &str, ns: u64) {
    if aql_metrics::enabled() {
        aql_metrics::histogram_with("aql_session_phase_ns", &[("phase", phase)], PHASE_NS_HELP)
            .observe(ns);
    }
}

/// Configuration of the structured slow-query log.
#[derive(Debug, Clone)]
pub struct SlowLogConfig {
    /// Statements at or above this wall time are always logged.
    pub threshold: Duration,
    /// Additionally log every `N`-th statement below the threshold
    /// (`0` disables sampling). Sampled records carry
    /// `"sampled": true`, so latency baselines can be reconstructed
    /// without logging everything.
    pub sample_every: u64,
}

impl Default for SlowLogConfig {
    fn default() -> Self {
        SlowLogConfig { threshold: Duration::from_millis(100), sample_every: 0 }
    }
}

/// The slow-query log: a JSON-lines sink plus its policy.
struct SlowLog {
    sink: RefCell<Box<dyn std::io::Write>>,
    config: SlowLogConfig,
}

/// Times one pipeline phase: on drop, the elapsed wall time goes to
/// the `aql_session_phase_ns{phase=…}` histogram and into the current
/// statement's per-phase accumulator (consumed by the slow-query log).
/// Built by `Session::phase_guard`; `None` state means "not measuring".
/// Where a [`PhaseGuard`] accumulates its measurement.
type PhaseAcc = RefCell<Vec<(&'static str, u64)>>;

struct PhaseGuard<'a> {
    state: Option<(&'static str, Instant, &'a PhaseAcc)>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some((phase, t0, acc)) = self.state.take() {
            let ns = t0.elapsed().as_nanos() as u64;
            observe_phase_ns(phase, ns);
            let mut acc = acc.borrow_mut();
            match acc.iter_mut().find(|(p, _)| *p == phase) {
                Some((_, total)) => *total += ns,
                None => acc.push((phase, ns)),
            }
        }
    }
}

/// FNV-1a 64 over the statement's debug form: a stable fingerprint
/// for grouping slow-log records of the same statement shape without
/// logging query text verbatim.
fn stmt_hash_u64(stmt: &Stmt) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{stmt:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn stmt_hash(stmt: &Stmt) -> String {
    format!("{:016x}", stmt_hash_u64(stmt))
}

/// Configuration of the incident dump pipeline: when a statement ends
/// badly (error, resource exhaustion, a breaker trip during it, or a
/// slow-query threshold crossing), the session snapshots the flight
/// recorder's last events, the statement's attribution ledger, and the
/// metrics that moved, into one self-contained JSON file under `dir`
/// (see `aql_journal::incident` and DESIGN.md §14).
#[derive(Debug, Clone)]
pub struct IncidentConfig {
    /// Directory incident files are written to (created on demand).
    pub dir: std::path::PathBuf,
    /// How many flight-recorder events to keep in the dump.
    pub last_events: usize,
    /// Statements at or above this wall time dump a `slow` incident.
    /// `None` falls back to the slow-query log's threshold when that
    /// log is enabled, otherwise slow statements never dump.
    pub slow_threshold: Option<Duration>,
}

impl IncidentConfig {
    /// A config with the default window (256 events) and no standalone
    /// slow threshold.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> IncidentConfig {
        IncidentConfig { dir: dir.into(), last_events: 256, slow_threshold: None }
    }
}

/// The kind of statement an outcome came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutcomeKind {
    /// A `val` declaration.
    Val(String),
    /// A `macro` declaration.
    Macro(String),
    /// A `readval` command.
    Read(String),
    /// A `writeval` command.
    Write,
    /// A bare query (bound to `it`, as in the paper's session).
    Query,
}

/// The result of executing one statement.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// What kind of statement executed.
    pub kind: OutcomeKind,
    /// Its type (absent for `writeval`).
    pub ty: Option<Type>,
    /// Its value (absent for macros and `writeval`).
    pub value: Option<Value>,
    /// The session echo, formatted like the paper's sample session
    /// (`typ … : …` / `val … = …`).
    pub text: String,
}

/// The result of [`Session::explain`]: the compiled and optimized
/// forms of a query with the rewrite trace.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query's type.
    pub ty: Type,
    /// The resolved core-calculus term (after desugaring and macro
    /// substitution).
    pub core: Expr,
    /// The term after the §5 optimizer.
    pub optimized: Expr,
    /// Every rule firing, in order.
    pub trace: aql_opt::Trace,
    /// Analysis-backed cost estimates for the core and optimized
    /// terms: the `aql-analysis` abstract interpreter supplies
    /// cardinality and iteration counts, and the session's chunked
    /// sources supply the layouts behind `bytes_moved`.
    pub cost_before: aql_opt::cost::CostEstimate,
    /// The optimized term's estimate (same model as `cost_before`).
    pub cost_after: aql_opt::cost::CostEstimate,
}

impl Explain {
    /// A human-readable rendering (used by the REPL's `explain` and
    /// `\explain`): the pre/post-optimization terms, the analysis-backed
    /// cost estimates, the full rewrite trace, and the `(phase, rule)`
    /// fire table.
    pub fn render(&self) -> String {
        format!(
            "typ  : {}\ncore : {}\nopt  : {}\ncost : {} -> {}\n{} rewrite step(s):\n{}rule fires:\n{}",
            self.ty,
            self.core,
            self.optimized,
            render_cost(&self.cost_before),
            render_cost(&self.cost_after),
            self.trace.len(),
            self.trace.render(),
            self.trace.render_fire_table()
        )
    }
}

/// One cost estimate as a compact `cells≈… steps≈… bytes≈…` cell of
/// the `\explain` cost line.
fn render_cost(c: &aql_opt::cost::CostEstimate) -> String {
    format!("cells~{} steps~{} bytes~{}", c.cardinality, c.steps, c.bytes_moved)
}

/// Tuning for [`Session::flame_with`]: how fast to sample and how long
/// to keep re-running the program to accumulate samples.
#[derive(Debug, Clone, Copy)]
pub struct FlameOptions {
    /// Sampling frequency in Hz (the sampler clamps to 1..=10 000).
    /// High by default — a flame run is short and explicitly
    /// requested, so per-sample overhead is not a concern the way it
    /// is for the always-on 99 Hz dashboard window.
    pub hz: u32,
    /// Re-run the program until this much wall time has elapsed, so
    /// even microsecond statements accumulate enough samples for
    /// stable frame proportions.
    pub min_duration: Duration,
    /// Hard cap on re-runs regardless of wall time.
    pub max_iters: u32,
}

impl Default for FlameOptions {
    fn default() -> Self {
        FlameOptions {
            hz: 997,
            min_duration: Duration::from_millis(250),
            max_iters: 400,
        }
    }
}

/// A machine-readable account of the most recent [`Session::run`]:
/// per-statement evaluation statistics plus (when collected through
/// [`Session::profile`]) the full span/counter trace. Supersedes the
/// old single-`EvalStats` `last_stats`, which silently dropped every
/// statement but the final one in multi-statement input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryReport {
    /// One entry per executed statement, in program order. Cache
    /// counters are the statement-level delta of the store's global
    /// counters, so reader I/O and echo-forced loads are attributed
    /// to the statement that caused them.
    pub statements: Vec<EvalStats>,
    /// Per-statement resource attribution ledgers, parallel to
    /// `statements`: bytes and chunks by labeled source, per-phase wall
    /// time, and governor pressure (see `aql_journal::attr`). Rendered
    /// by the REPL's `\attr;`.
    pub attribution: Vec<aql_journal::attr::Ledger>,
    /// The span tree and counters collected while tracing was on
    /// (empty for an untraced run).
    pub trace: aql_trace::Trace,
    /// A flat snapshot of the **process-lifetime** metrics registry at
    /// report time ([`aql_metrics::snapshot`]): counters and gauges by
    /// series key, histograms as `_count`/`_sum`/`_p50`/`_p95`/`_p99`.
    /// Unlike `statements`, these are cumulative since process start —
    /// the report carries both the per-query and the fleet view.
    pub metrics: Vec<(String, u64)>,
}

impl QueryReport {
    /// Component-wise sum over all statements.
    pub fn total(&self) -> EvalStats {
        self.statements.iter().fold(EvalStats::default(), |a, s| a.merged(s))
    }

    /// The report as a JSON value.
    pub fn to_json_value(&self) -> aql_trace::json::Json {
        use aql_trace::json::Json;
        Json::Obj(vec![
            (
                "statements".to_string(),
                Json::Arr(self.statements.iter().map(stats_to_json).collect()),
            ),
            (
                "attribution".to_string(),
                Json::Arr(
                    self.attribution
                        .iter()
                        .map(aql_journal::attr::Ledger::to_json_value)
                        .collect(),
                ),
            ),
            ("trace".to_string(), self.trace.to_json_value()),
            (
                "metrics".to_string(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialize to compact JSON (embedded in `BENCH_*.json`).
    pub fn to_json(&self) -> String {
        self.to_json_value().write()
    }

    /// The report's span tree as Chrome trace-event JSON
    /// ([`aql_trace::Trace::to_chrome_json`]): loadable directly in
    /// Perfetto or `chrome://tracing`. The REPL's
    /// `\profile … > "file.json";` writes exactly this.
    pub fn to_chrome_json(&self) -> String {
        self.trace.to_chrome_json()
    }

    /// Rebuild a report serialized by [`QueryReport::to_json`].
    pub fn from_json(src: &str) -> Result<QueryReport, String> {
        let j = aql_trace::json::Json::parse(src)?;
        let statements = j
            .get("statements")
            .and_then(aql_trace::json::Json::as_arr)
            .ok_or("report: missing `statements` array")?
            .iter()
            .map(stats_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let trace = aql_trace::Trace::from_json_value(
            j.get("trace").ok_or("report: missing `trace`")?,
        )?;
        // `attribution` is optional: reports serialized before the
        // flight recorder existed stay parseable.
        let attribution = match j.get("attribution") {
            None => Vec::new(),
            Some(aql_trace::json::Json::Arr(ls)) => ls
                .iter()
                .map(aql_journal::attr::Ledger::from_json_value)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("report: `attribution` must be an array".to_string()),
        };
        // `metrics` is optional: reports serialized before the metrics
        // registry existed stay parseable.
        let metrics = match j.get("metrics") {
            None => Vec::new(),
            Some(aql_trace::json::Json::Obj(ms)) => ms
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("report: bad metric `{k}`"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("report: `metrics` must be an object".to_string()),
        };
        Ok(QueryReport { statements, attribution, trace, metrics })
    }

    /// The `\profile` rendering: the phase-timing tree followed by the
    /// evaluation and I/O totals. With `redact_timings` every duration
    /// renders as `_` (deterministic; used by golden tests).
    pub fn render_profile(&self, redact_timings: bool) -> String {
        let mut out = String::new();
        if !self.trace.is_empty() {
            out.push_str(&self.trace.render(redact_timings));
        }
        let t = self.total();
        out.push_str(&format!(
            "totals: steps={} subscripts={} elided={} materialized={} | cache: hits={} \
             misses={} evictions={} bytes_read={} prefetched={} load_errors={}\n",
            t.steps,
            t.subscripts,
            t.elided,
            t.materialized,
            t.cache.hits,
            t.cache.misses,
            t.cache.evictions,
            t.cache.bytes_read,
            t.cache.prefetched_bytes,
            t.cache.load_errors,
        ));
        if self.statements.len() > 1 {
            for (i, s) in self.statements.iter().enumerate() {
                out.push_str(&format!(
                    "  stmt {i}: steps={} subscripts={} materialized={} \
                     cache.bytes_read={}\n",
                    s.steps, s.subscripts, s.materialized, s.cache.bytes_read,
                ));
            }
        }
        out
    }
}

fn stats_to_json(s: &EvalStats) -> aql_trace::json::Json {
    use aql_trace::json::Json;
    let n = |v: u64| Json::Num(v as f64);
    Json::Obj(vec![
        ("steps".to_string(), n(s.steps)),
        ("subscripts".to_string(), n(s.subscripts)),
        ("elided".to_string(), n(s.elided)),
        ("materialized".to_string(), n(s.materialized)),
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), n(s.cache.hits)),
                ("misses".to_string(), n(s.cache.misses)),
                ("evictions".to_string(), n(s.cache.evictions)),
                ("bytes_read".to_string(), n(s.cache.bytes_read)),
                ("prefetched_bytes".to_string(), n(s.cache.prefetched_bytes)),
                ("load_errors".to_string(), n(s.cache.load_errors)),
            ]),
        ),
    ])
}

fn stats_from_json(j: &aql_trace::json::Json) -> Result<EvalStats, String> {
    let field = |o: &aql_trace::json::Json, k: &str| {
        o.get(k)
            .and_then(aql_trace::json::Json::as_u64)
            .ok_or_else(|| format!("stats: bad or missing `{k}`"))
    };
    let cache = j.get("cache").ok_or("stats: missing `cache`")?;
    Ok(EvalStats {
        steps: field(j, "steps")?,
        subscripts: field(j, "subscripts")?,
        // Absent in pre-bounds-elision reports.
        elided: j.get("elided").and_then(aql_trace::json::Json::as_u64).unwrap_or(0),
        materialized: field(j, "materialized")?,
        cache: aql_store::CacheStats {
            hits: field(cache, "hits")?,
            misses: field(cache, "misses")?,
            evictions: field(cache, "evictions")?,
            bytes_read: field(cache, "bytes_read")?,
            // Absent in pre-prefetch-attribution reports.
            prefetched_bytes: cache
                .get("prefetched_bytes")
                .and_then(aql_trace::json::Json::as_u64)
                .unwrap_or(0),
            load_errors: field(cache, "load_errors")?,
        },
    })
}

/// An interactive AQL session: the top-level environment plus the
/// query pipeline.
pub struct Session {
    vals: HashMap<Name, Value>,
    val_types: HashMap<Name, Type>,
    macros: HashMap<Name, (Expr, Type)>,
    externals: Extensions,
    readers: HashMap<String, Rc<dyn Reader>>,
    writers: HashMap<String, Rc<dyn Writer>>,
    optimizer: Optimizer,
    /// Evaluation limits for queries run in this session.
    pub limits: Limits,
    /// Whether the optimizer runs (on by default; benches turn it off
    /// to measure the unoptimized pipeline).
    pub optimize: bool,
    /// Whether the rewrite-soundness gate runs during optimization:
    /// every rule firing is locally verified
    /// ([`aql_verify::check_rewrite`]) and each phase that rewrote
    /// anything is re-typechecked against the query's original type.
    /// Defaults to on in debug builds and off in release; the
    /// `AQL_VERIFY` environment variable overrides (`0`/`false`/`off`
    /// disable, anything else enables).
    pub verify: bool,
    /// Truncation width for session echoes of large values.
    pub display_limit: usize,
    /// Accumulator for the statement currently executing: every
    /// `eval_core` within it merges its stats here; [`Session::exec`]
    /// drains it into `stmt_stats`.
    cur_stats: Cell<EvalStats>,
    /// Per-statement statistics of the most recent [`Session::run`].
    stmt_stats: RefCell<Vec<EvalStats>>,
    /// Per-phase wall time of the statement currently executing,
    /// accumulated by [`PhaseGuard`] (only while metrics or the slow
    /// log are on). Accumulated, not overwritten: `writeval` runs the
    /// pipeline once per operand, so a phase can appear twice.
    cur_phases: PhaseAcc,
    /// The slow-query log, if enabled.
    slow_log: Option<SlowLog>,
    /// The incident dump pipeline, if enabled.
    incidents: Option<IncidentConfig>,
    /// Path of the most recent incident dump (drives `\doctor` and the
    /// slow log's `incident` member).
    last_incident: RefCell<Option<std::path::PathBuf>>,
    /// Per-statement attribution ledgers of the most recent
    /// [`Session::run`], parallel to `stmt_stats`.
    stmt_attr: RefCell<Vec<aql_journal::attr::Ledger>>,
    /// Monotone statement sequence number (drives `sample_every`).
    stmt_seq: Cell<u64>,
}

impl Session {
    /// A session with the standard optimizer, the `COFILE`
    /// reader/writer, and the AQL prelude loaded.
    pub fn new() -> Session {
        let mut s = Session::bare();
        s.run(PRELUDE).expect("prelude must load");
        s
    }

    /// A session without the prelude (used by tests that want full
    /// control; the builtin `COFILE` driver is still registered).
    pub fn bare() -> Session {
        let mut readers: HashMap<String, Rc<dyn Reader>> = HashMap::new();
        readers.insert("COFILE".to_string(), Rc::new(CoFileReader));
        let mut writers: HashMap<String, Rc<dyn Writer>> = HashMap::new();
        writers.insert("COFILE".to_string(), Rc::new(CoFileWriter));
        Session {
            vals: HashMap::new(),
            val_types: HashMap::new(),
            macros: HashMap::new(),
            externals: Extensions::new(),
            readers,
            writers,
            optimizer: aql_opt::standard(),
            limits: Limits::default(),
            optimize: true,
            verify: default_verify(),
            display_limit: aql_core::value::print::SESSION_TRUNCATE,
            cur_stats: Cell::new(EvalStats::default()),
            stmt_stats: RefCell::new(Vec::new()),
            cur_phases: RefCell::new(Vec::new()),
            slow_log: None,
            incidents: None,
            last_incident: RefCell::new(None),
            stmt_attr: RefCell::new(Vec::new()),
            stmt_seq: Cell::new(0),
        }
    }

    /// Route the slow-query log to `sink`: every statement whose wall
    /// time reaches `config.threshold` — and every
    /// `config.sample_every`-th statement regardless — is appended to
    /// `sink` as one JSON object per line (see DESIGN.md §11 for the
    /// record schema). Write errors are ignored: the log is telemetry,
    /// never a reason to fail a query.
    pub fn enable_slow_log(
        &mut self,
        sink: Box<dyn std::io::Write>,
        config: SlowLogConfig,
    ) {
        self.slow_log = Some(SlowLog { sink: RefCell::new(sink), config });
    }

    /// Stop slow-query logging and release the sink.
    pub fn disable_slow_log(&mut self) {
        self.slow_log = None;
    }

    /// Enable the incident dump pipeline: statements that error, hit a
    /// resource limit, trip a circuit breaker, or cross the slow
    /// threshold write a self-contained incident file into
    /// `config.dir`. Dump failures are swallowed — incidents are
    /// telemetry, never a reason to fail a query.
    pub fn enable_incidents(&mut self, config: IncidentConfig) {
        // Keep `GET /incidents` pointed at the same directory.
        aql_metrics::http::set_incident_dir(Some(config.dir.clone()));
        self.incidents = Some(config);
    }

    /// Stop dumping incidents.
    pub fn disable_incidents(&mut self) {
        aql_metrics::http::set_incident_dir(None);
        self.incidents = None;
    }

    /// The incident-dump directory, when the pipeline is enabled.
    pub fn incident_dir(&self) -> Option<std::path::PathBuf> {
        self.incidents.as_ref().map(|c| c.dir.clone())
    }

    /// Path of the most recent incident dump of this session, if any.
    pub fn last_incident_path(&self) -> Option<std::path::PathBuf> {
        self.last_incident.borrow().clone()
    }

    /// The `\doctor` analysis: the most recent incident dump when one
    /// exists, otherwise a live reading of the flight recorder plus the
    /// last statement's attribution ledger.
    pub fn doctor(&self) -> String {
        if let Some(path) = self.last_incident_path() {
            match aql_journal::incident::Incident::load(&path) {
                Ok(inc) => {
                    return format!(
                        "incident: {}\n{}",
                        path.display(),
                        aql_journal::doctor::diagnose(&inc)
                    )
                }
                Err(e) => {
                    return format!("doctor: cannot load {}: {e}", path.display());
                }
            }
        }
        let journal = aql_journal::snapshot();
        let attr = self.stmt_attr.borrow();
        aql_journal::doctor::diagnose_live(&journal, attr.last())
    }

    /// Statistics of the most recent [`Session::run`]: the
    /// component-wise sum over *all* its statements (steps plus the
    /// chunk-cache counters attributable to each). Zeroes before the
    /// first query. For per-statement attribution use
    /// [`Session::last_report`].
    pub fn last_stats(&self) -> EvalStats {
        self.stmt_stats.borrow().iter().fold(EvalStats::default(), |a, s| a.merged(s))
    }

    /// Per-statement statistics of the most recent [`Session::run`],
    /// in program order.
    pub fn statement_stats(&self) -> Vec<EvalStats> {
        self.stmt_stats.borrow().clone()
    }

    /// Per-statement attribution ledgers of the most recent
    /// [`Session::run`], in program order (parallel to
    /// [`Session::statement_stats`]).
    pub fn statement_attribution(&self) -> Vec<aql_journal::attr::Ledger> {
        self.stmt_attr.borrow().clone()
    }

    /// The report for the most recent [`Session::run`]. The trace is
    /// empty unless the run went through [`Session::profile`] (which
    /// returns the trace-bearing report directly).
    pub fn last_report(&self) -> QueryReport {
        QueryReport {
            statements: self.statement_stats(),
            attribution: self.statement_attribution(),
            trace: aql_trace::Trace::default(),
            metrics: aql_metrics::snapshot(),
        }
    }

    // ---- openness: registration (§4.1) ---------------------------------

    /// Register an external primitive (the paper's `RegisterCO`).
    pub fn register_external(&mut self, f: NativeFn) {
        self.externals.register(f);
    }

    /// Register a data reader under a name usable in `readval`.
    pub fn register_reader(&mut self, rname: &str, r: Rc<dyn Reader>) {
        self.readers.insert(rname.to_string(), r);
    }

    /// Register a data writer under a name usable in `writeval`.
    pub fn register_writer(&mut self, wname: &str, w: Rc<dyn Writer>) {
        self.writers.insert(wname.to_string(), w);
    }

    /// Mutable access to the optimizer, for injecting rules/phases.
    pub fn optimizer_mut(&mut self) -> &mut Optimizer {
        &mut self.optimizer
    }

    /// Bind a `val` directly from Rust (type inferred from the value).
    pub fn bind_val(&mut self, vname: &str, v: Value) -> Result<(), LangError> {
        let ty = type_of_value(&v)
            .ok_or_else(|| LangError::session(format!("cannot infer the type of `{vname}`")))?;
        self.bind_val_typed(vname, v, ty);
        Ok(())
    }

    /// Bind a `val` with an explicit type.
    pub fn bind_val_typed(&mut self, vname: &str, v: Value, ty: Type) {
        self.vals.insert(name(vname), v);
        self.val_types.insert(name(vname), ty);
    }

    /// Look up a `val` (including `it`, the last query result).
    pub fn val(&self, vname: &str) -> Option<&Value> {
        self.vals.get(vname)
    }

    /// The bound `val` names with their types, sorted.
    pub fn val_bindings(&self) -> Vec<(String, Type)> {
        let mut v: Vec<(String, Type)> = self
            .val_types
            .iter()
            .map(|(k, t)| (k.to_string(), t.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// A storage-residency report: one line per lazy-array `val`
    /// binding (source label, resident chunks/bytes against the cache
    /// budget, hit/miss/read/error counters, and prefetch
    /// effectiveness when a read-ahead worker is attached), followed
    /// by the process chunk governor's budget, usage and high-water
    /// mark. Rendered by the REPL's `\store;` meta-command.
    pub fn store_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut names: Vec<&Name> = self.vals.keys().collect();
        names.sort();
        let mut open = 0usize;
        for n in names {
            let Some(Value::Array(a)) = self.vals.get(n) else { continue };
            let Some(info) = a.store_info() else { continue };
            open += 1;
            let label = info.label.as_deref().unwrap_or("-");
            let _ = write!(
                out,
                "  {n}  source={label}  chunks={}  bytes={}/{}  hits={} misses={} read={} errors={}",
                info.chunks_held,
                info.bytes_held,
                info.budget_bytes,
                info.stats.hits,
                info.stats.misses,
                info.stats.bytes_read,
                info.stats.load_errors,
            );
            if let Some(p) = info.prefetch {
                let _ = write!(
                    out,
                    "  prefetch issued={} hits={} wasted={}",
                    p.issued, p.hits, p.wasted
                );
            }
            out.push('\n');
        }
        let header = if open == 0 {
            "store: no open chunk sources\n".to_string()
        } else {
            format!("store: {open} open chunk source(s)\n")
        };
        let governor = match aql_store::governor::budget() {
            Some(b) => format!(
                "governor: budget={b} in_use={} peak={}\n",
                aql_store::governor::bytes_in_use(),
                aql_store::governor::peak_bytes()
            ),
            None => format!(
                "governor: budget=unlimited in_use={} peak={}\n",
                aql_store::governor::bytes_in_use(),
                aql_store::governor::peak_bytes()
            ),
        };
        format!("{header}{out}{governor}")
    }

    /// The registered macros, by name.
    pub fn macro_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.macros.keys().map(|k| k.to_string()).collect();
        v.sort();
        v
    }

    // ---- the pipeline ----------------------------------------------------

    /// Execute a program (one or more `;`-terminated statements).
    pub fn run(&mut self, src: &str) -> Result<Vec<Outcome>, LangError> {
        self.stmt_stats.borrow_mut().clear();
        self.stmt_attr.borrow_mut().clear();
        let stmts = parse_program(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(self.exec(&s)?);
        }
        Ok(out)
    }

    /// Execute a program with tracing on and return the outcomes
    /// together with the full [`QueryReport`] (span tree, counters,
    /// per-statement stats). Installs a fresh subscriber for the
    /// duration of the run, discarding any trace already in progress
    /// on this thread.
    pub fn profile(&mut self, src: &str) -> Result<(Vec<Outcome>, QueryReport), LangError> {
        aql_trace::enable();
        let result = self.run(src);
        let trace = aql_trace::disable();
        let outcomes = result?;
        Ok((outcomes, QueryReport {
            statements: self.statement_stats(),
            attribution: self.statement_attribution(),
            trace,
            metrics: aql_metrics::snapshot(),
        }))
    }

    /// Run a program under the span-sampling profiler
    /// ([`aql_profile::Sampler`]) with default [`FlameOptions`]. See
    /// [`Session::flame_with`].
    pub fn flame(
        &mut self,
        src: &str,
    ) -> Result<(Vec<Outcome>, aql_profile::Profile), LangError> {
        self.flame_with(src, FlameOptions::default())
    }

    /// Run a program while a background sampler snapshots this
    /// thread's open span path, and return the first run's outcomes
    /// together with the accumulated [`aql_profile::Profile`] (folded
    /// stacks, renderable as text or an SVG flamegraph).
    ///
    /// A single statement usually finishes in well under one sampling
    /// interval, so the program is re-run until `opts.min_duration` of
    /// wall time has elapsed (or `opts.max_iters` runs), which makes
    /// the flamegraph's frame proportions statistically meaningful.
    /// Statements are re-executed as written — idempotent `val`
    /// rebinding and reads are fine; a program with external side
    /// effects (e.g. `writeval`) will repeat them.
    pub fn flame_with(
        &mut self,
        src: &str,
        opts: FlameOptions,
    ) -> Result<(Vec<Outcome>, aql_profile::Profile), LangError> {
        let sampler = aql_profile::Sampler::start(opts.hz)
            .map_err(|e| LangError::session(format!("flame: sampler: {e}")))?;
        let deadline = Instant::now() + opts.min_duration;
        // On error the `?` drops the sampler, which stops its thread.
        let first = self.run(src)?;
        let mut iters = 1u32;
        while Instant::now() < deadline && iters < opts.max_iters {
            if self.run(src).is_err() {
                // The program succeeded once; a rerun failure means it
                // is not idempotent. Keep the first outcomes and stop
                // accumulating rather than erroring the whole call.
                break;
            }
            iters += 1;
        }
        Ok((first, sampler.stop()))
    }

    /// Evaluate a single query expression and return its type and value.
    pub fn eval_query(&mut self, src: &str) -> Result<(Type, Value), LangError> {
        let outcomes = self.run(&format!("{src};"))?;
        let last = outcomes
            .into_iter()
            .last()
            .ok_or_else(|| LangError::session("empty input"))?;
        match (last.ty, last.value) {
            (Some(t), Some(v)) => Ok((t, v)),
            _ => Err(LangError::session("statement did not produce a value")),
        }
    }

    /// Run a statement. Opens a root `statement` span (when tracing)
    /// and records the statement's [`EvalStats`]: evaluation counters
    /// merged over every evaluation it performs, with cache counters
    /// taken as the statement-level delta of the store's global
    /// aggregate — so reader I/O and echo-forced chunk loads are
    /// attributed to the statement that caused them.
    pub fn exec(&mut self, stmt: &Stmt) -> Result<Outcome, LangError> {
        let _span = aql_trace::span("statement");
        let kind = stmt_label(stmt);
        aql_trace::note("kind", || kind.to_string());
        let seq = self.stmt_seq.get();
        self.stmt_seq.set(seq + 1);
        let journal_on = aql_journal::enabled();
        // Wall time is measured only when someone consumes it: the
        // metrics registry, the slow-query log, the flight recorder,
        // or the incident pipeline.
        let t0 = (aql_metrics::enabled()
            || self.slow_log.is_some()
            || journal_on
            || self.incidents.is_some())
        .then(Instant::now);
        if journal_on {
            aql_journal::record(
                aql_journal::Tag::StmtBegin,
                aql_journal::intern(kind),
                seq,
                stmt_hash_u64(stmt),
            );
        }
        let fires_base = self
            .slow_log
            .as_ref()
            .map(|_| aql_metrics::family_total("aql_opt_rule_fires_total"));
        // Breaker trips *during* the statement are detected as a
        // counter delta; the snapshot seeds the incident delta table.
        let trips_base = self
            .incidents
            .as_ref()
            .map(|_| aql_metrics::family_total("aql_store_breaker_trips_total"));
        let metrics_base = self.incidents.as_ref().map(|_| aql_metrics::snapshot());
        let cache_base = aql_store::stats::global();
        self.cur_stats.set(EvalStats::default());
        self.cur_phases.borrow_mut().clear();
        aql_store::governor::reset_peak();
        aql_journal::attr::begin();
        let out = self.exec_inner(stmt);
        let mut ledger = aql_journal::attr::finish();
        ledger.phases = self
            .cur_phases
            .borrow()
            .iter()
            .map(|(p, ns)| (p.to_string(), *ns))
            .collect();
        ledger.governor_peak_bytes = aql_store::governor::peak_bytes();
        let mut st = self.cur_stats.take();
        st.cache = aql_store::stats::global().delta_since(&cache_base);
        self.stmt_stats.borrow_mut().push(st);
        if aql_metrics::enabled() {
            aql_metrics::counter_with(
                "aql_session_statements_total",
                &[("kind", kind)],
                "Statements executed, by statement kind.",
            )
            .inc();
            if matches!(out, Err(LangError::Unsound { .. })) {
                M_UNSOUND.inc();
            }
            if out.is_err() {
                M_ERRORS.inc();
            }
        }
        let dur = t0.map(|t| t.elapsed());
        if journal_on {
            for (p, ns) in &ledger.phases {
                aql_journal::record(aql_journal::Tag::Phase, aql_journal::intern(p), *ns, 0);
            }
            let outcome_label = match &out {
                Ok(_) => "ok",
                Err(e) => error_class(e),
            };
            aql_journal::record(
                aql_journal::Tag::StmtEnd,
                aql_journal::intern(outcome_label),
                seq,
                dur.map_or(0, |d| d.as_nanos() as u64),
            );
        }
        let incident =
            self.maybe_dump_incident(stmt, kind, seq, dur, &ledger, trips_base, metrics_base, &out);
        self.stmt_attr.borrow_mut().push(ledger);
        if let Some(dur) = dur {
            M_STATEMENT_NS.observe(dur.as_nanos() as u64);
            self.maybe_log_slow(
                stmt,
                kind,
                seq,
                dur,
                &st,
                fires_base,
                out.is_err(),
                incident.as_deref(),
            );
        }
        out
    }

    /// Dump an incident file for the statement just executed, if the
    /// pipeline is on and the outcome warrants one: errors (with
    /// resource exhaustion told apart), breaker trips observed during
    /// the statement, and slow-threshold crossings. Returns the file's
    /// path; dump failures are swallowed.
    #[allow(clippy::too_many_arguments)]
    fn maybe_dump_incident(
        &self,
        stmt: &Stmt,
        kind: &'static str,
        seq: u64,
        dur: Option<Duration>,
        ledger: &aql_journal::attr::Ledger,
        trips_base: Option<u64>,
        metrics_base: Option<Vec<(String, u64)>>,
        out: &Result<Outcome, LangError>,
    ) -> Option<std::path::PathBuf> {
        let cfg = self.incidents.as_ref()?;
        let trips = trips_base.map_or(0, |b| {
            aql_metrics::family_total("aql_store_breaker_trips_total").saturating_sub(b)
        });
        let slow_threshold = cfg
            .slow_threshold
            .or_else(|| self.slow_log.as_ref().map(|l| l.config.threshold));
        let slow = matches!((dur, slow_threshold), (Some(d), Some(t)) if d >= t);
        use aql_journal::incident::{Incident, IncidentKind};
        let ikind = match out {
            Err(e) if is_resource_exhausted(e) => IncidentKind::ResourceExhausted,
            Err(_) => IncidentKind::Error,
            Ok(_) if trips > 0 => IncidentKind::BreakerTrip,
            Ok(_) if slow => IncidentKind::Slow,
            Ok(_) => return None,
        };
        let base = metrics_base.unwrap_or_default();
        let metrics_delta: Vec<(String, u64)> = aql_metrics::snapshot()
            .into_iter()
            .filter_map(|(k, v)| {
                let before = base.iter().find(|(bk, _)| *bk == k).map_or(0, |(_, bv)| *bv);
                (v > before).then(|| (k, v - before))
            })
            .collect();
        let incident = Incident {
            kind: ikind,
            seq,
            stmt_hash: stmt_hash(stmt),
            stmt_kind: kind.to_string(),
            dur_ns: dur.map_or(0, |d| d.as_nanos() as u64),
            error: out.as_ref().err().map(|e| e.to_string()),
            events: aql_journal::snapshot().tail(cfg.last_events),
            attribution: Some(ledger.clone()),
            metrics_delta,
        };
        let path = incident.write_to(&cfg.dir).ok()?;
        if aql_journal::enabled() {
            aql_journal::record(
                aql_journal::Tag::Incident,
                aql_journal::intern(ikind.name()),
                seq,
                0,
            );
        }
        *self.last_incident.borrow_mut() = Some(path.clone());
        Some(path)
    }

    /// Append a slow-query-log record for the statement just executed,
    /// if the policy selects it: always when `dur` reaches the
    /// threshold, plus every `sample_every`-th statement as a baseline
    /// sample. One JSON object per line; sink errors are swallowed.
    #[allow(clippy::too_many_arguments)]
    fn maybe_log_slow(
        &self,
        stmt: &Stmt,
        kind: &'static str,
        seq: u64,
        dur: std::time::Duration,
        stats: &EvalStats,
        fires_base: Option<u64>,
        errored: bool,
        incident: Option<&std::path::Path>,
    ) {
        let Some(log) = &self.slow_log else { return };
        let slow = dur >= log.config.threshold;
        if slow {
            M_SLOW.inc();
            if aql_journal::enabled() {
                aql_journal::record(
                    aql_journal::Tag::SlowQuery,
                    aql_journal::intern(kind),
                    seq,
                    dur.as_nanos() as u64,
                );
            }
        }
        let sampled =
            !slow && log.config.sample_every > 0 && seq.is_multiple_of(log.config.sample_every);
        if !slow && !sampled {
            return;
        }
        use aql_trace::json::Json;
        let n = |v: u64| Json::Num(v as f64);
        let phases = self
            .cur_phases
            .borrow()
            .iter()
            .map(|(p, ns)| (p.to_string(), n(*ns)))
            .collect();
        let fires = fires_base.map_or(0, |base| {
            aql_metrics::family_total("aql_opt_rule_fires_total").saturating_sub(base)
        });
        // Schema history (DESIGN.md §11): 2 adds `incident` (path of
        // the statement's incident dump, or null) and
        // `cache.prefetched_bytes`. Consumers of v1 records must treat
        // both as absent-means-none.
        let rec = Json::Obj(vec![
            ("schema_version".to_string(), n(2)),
            ("seq".to_string(), n(seq)),
            ("stmt_hash".to_string(), Json::Str(stmt_hash(stmt))),
            ("kind".to_string(), Json::Str(kind.to_string())),
            ("slow".to_string(), Json::Bool(slow)),
            ("sampled".to_string(), Json::Bool(sampled)),
            ("dur_ns".to_string(), n(dur.as_nanos() as u64)),
            ("phases".to_string(), Json::Obj(phases)),
            (
                "eval".to_string(),
                Json::Obj(vec![
                    ("steps".to_string(), n(stats.steps)),
                    ("subscripts".to_string(), n(stats.subscripts)),
                    ("materialized".to_string(), n(stats.materialized)),
                ]),
            ),
            (
                "cache".to_string(),
                Json::Obj(vec![
                    ("hits".to_string(), n(stats.cache.hits)),
                    ("misses".to_string(), n(stats.cache.misses)),
                    ("evictions".to_string(), n(stats.cache.evictions)),
                    ("bytes_read".to_string(), n(stats.cache.bytes_read)),
                    ("prefetched_bytes".to_string(), n(stats.cache.prefetched_bytes)),
                    ("load_errors".to_string(), n(stats.cache.load_errors)),
                ]),
            ),
            ("rule_fires".to_string(), n(fires)),
            ("error".to_string(), Json::Bool(errored)),
            (
                "incident".to_string(),
                match incident {
                    Some(p) => Json::Str(p.display().to_string()),
                    None => Json::Null,
                },
            ),
        ]);
        use std::io::Write as _;
        let mut sink = log.sink.borrow_mut();
        let _ = writeln!(sink, "{}", rec.write());
    }

    /// A guard timing one pipeline phase. Inert — a single atomic
    /// load — unless metrics are on or the slow-query log is active.
    fn phase_guard(&self, phase: &'static str) -> PhaseGuard<'_> {
        if aql_metrics::enabled() || self.slow_log.is_some() {
            PhaseGuard { state: Some((phase, Instant::now(), &self.cur_phases)) }
        } else {
            PhaseGuard { state: None }
        }
    }

    fn exec_inner(&mut self, stmt: &Stmt) -> Result<Outcome, LangError> {
        match stmt {
            Stmt::Val(vname, e) => {
                let (ty, v) = self.eval_surface(e)?;
                let ty = default_type_vars(&ty);
                self.vals.insert(name(vname), v.clone());
                self.val_types.insert(name(vname), ty.clone());
                Ok(Outcome {
                    text: format!(
                        "typ {vname} : {ty}\nval {vname} = {}",
                        session_string(&v, self.display_limit)
                    ),
                    kind: OutcomeKind::Val(vname.clone()),
                    ty: Some(ty),
                    value: Some(v),
                })
            }
            Stmt::MacroDef(mname, e) => {
                let core = desugar(e)?;
                let resolved = self.resolve(&core);
                let ty = typecheck(&resolved, &self.val_types, &self.externals)?;
                self.macros.insert(name(mname), (resolved, ty.clone()));
                Ok(Outcome {
                    text: format!(
                        "typ {mname} : {ty}\nval {mname} = {mname} registered as macro."
                    ),
                    kind: OutcomeKind::Macro(mname.clone()),
                    ty: Some(ty),
                    value: None,
                })
            }
            Stmt::Query(e) => {
                let (ty, v) = self.eval_surface(e)?;
                let ty = default_type_vars(&ty);
                // The last query result is bound to `it`, as in ML.
                self.vals.insert(name("it"), v.clone());
                self.val_types.insert(name("it"), ty.clone());
                Ok(Outcome {
                    text: format!(
                        "typ it : {ty}\nval it = {}",
                        session_string(&v, self.display_limit)
                    ),
                    kind: OutcomeKind::Query,
                    ty: Some(ty),
                    value: Some(v),
                })
            }
            Stmt::ReadVal { name: vname, reader, arg } => {
                let (_, argv) = self.eval_surface(arg)?;
                let r = self
                    .readers
                    .get(reader)
                    .cloned()
                    .ok_or_else(|| {
                        LangError::session(format!("no reader registered as `{reader}`"))
                    })?;
                let (v, declared) = {
                    let _span = aql_trace::span("readval");
                    let _pg = self.phase_guard("readval");
                    aql_trace::note("reader", || reader.clone());
                    catch_extension("reader", reader, || r.read(&argv))??
                };
                let ty = declared
                    .or_else(|| type_of_value(&v))
                    .ok_or_else(|| {
                        LangError::session(format!(
                            "reader `{reader}` produced a value of ambiguous type; \
                             have the reader declare its result type"
                        ))
                    })?;
                self.vals.insert(name(vname), v.clone());
                self.val_types.insert(name(vname), ty.clone());
                Ok(Outcome {
                    text: format!(
                        "typ {vname} : {ty}\nval {vname} = {}",
                        session_string(&v, self.display_limit)
                    ),
                    kind: OutcomeKind::Read(vname.clone()),
                    ty: Some(ty),
                    value: Some(v),
                })
            }
            Stmt::WriteVal { value, writer, arg } => {
                let (_, v) = self.eval_surface(value)?;
                let (_, argv) = self.eval_surface(arg)?;
                let w = self
                    .writers
                    .get(writer)
                    .cloned()
                    .ok_or_else(|| {
                        LangError::session(format!("no writer registered as `{writer}`"))
                    })?;
                {
                    let _span = aql_trace::span("writeval");
                    let _pg = self.phase_guard("writeval");
                    aql_trace::note("writer", || writer.clone());
                    catch_extension("writer", writer, || w.write(&argv, &v))??;
                }
                Ok(Outcome {
                    text: format!("val it = () written using {writer}."),
                    kind: OutcomeKind::Write,
                    ty: None,
                    value: None,
                })
            }
        }
    }

    /// The expression pipeline: desugar → resolve → typecheck →
    /// optimize → evaluate.
    fn eval_surface(&self, e: &crate::ast::SExpr) -> Result<(Type, Value), LangError> {
        let core = {
            let _span = aql_trace::span("desugar");
            let _pg = self.phase_guard("desugar");
            desugar(e)?
        };
        self.eval_core(&core)
    }

    /// Run the pipeline from the core-calculus stage. Each phase runs
    /// under its own trace span; evaluation stats are merged into the
    /// current statement's accumulator.
    pub fn eval_core(&self, core: &Expr) -> Result<(Type, Value), LangError> {
        let resolved = {
            let _span = aql_trace::span("resolve");
            let _pg = self.phase_guard("resolve");
            self.resolve(core)
        };
        let ty = {
            let _span = aql_trace::span("typecheck");
            let _pg = self.phase_guard("typecheck");
            typecheck(&resolved, &self.val_types, &self.externals)?
        };
        let optimized = if self.optimize {
            let _span = aql_trace::span("optimize");
            let _pg = self.phase_guard("optimize");
            if self.verify {
                let check = self.phase_check(&ty);
                self.optimizer
                    .try_optimize_verified(&resolved, &Gate::full(&check))
                    .map_err(opt_error)?
            } else {
                // Rules are extension code: a panicking rule is
                // contained and named, and the session stays usable.
                self.optimizer.try_optimize(&resolved).map_err(rule_panic)?
            }
        } else {
            resolved
        };
        let ctx = EvalCtx::new(&self.vals, &self.externals).with_limits(self.limits.clone());
        let v = {
            let _span = aql_trace::span("eval");
            let _pg = self.phase_guard("eval");
            eval(&optimized, &ctx)
        };
        self.cur_stats.set(self.cur_stats.get().merged(&ctx.stats()));
        let v = v.map_err(LangError::Eval)?;
        Ok((ty, v))
    }

    /// The phase-boundary half of the soundness gate: re-typecheck the
    /// whole term in the session environment and require the query's
    /// type to be preserved (up to inference-variable numbering).
    fn phase_check(&self, expected: &Type) -> impl Fn(&Expr) -> Result<(), String> + '_ {
        let expected = expected.clone();
        move |e2: &Expr| {
            let t2 = typecheck(e2, &self.val_types, &self.externals)
                .map_err(|err| format!("optimized term no longer typechecks: {err}"))?;
            if aql_verify::type_compatible(&expected, &t2) {
                Ok(())
            } else {
                Err(format!("query type changed: {expected} ~> {t2}"))
            }
        }
    }

    /// Resolve free names: macros are substituted (their bodies are
    /// stored fully resolved), externals become [`Expr::Ext`], `val`s
    /// become [`Expr::Global`]. Lexically bound names are untouched.
    pub fn resolve(&self, e: &Expr) -> Expr {
        let mut bound: Vec<Name> = Vec::new();
        self.resolve_in(e, &mut bound)
    }

    fn resolve_in(&self, e: &Expr, bound: &mut Vec<Name>) -> Expr {
        match e {
            Expr::Var(x) if !bound.iter().any(|b| b == x) => {
                if let Some((body, _)) = self.macros.get(x) {
                    return body.clone();
                }
                if self.externals.get(x).is_some() {
                    return Expr::Ext(x.clone());
                }
                if self.vals.contains_key(x) {
                    return Expr::Global(x.clone());
                }
                e.clone()
            }
            Expr::Var(_) => e.clone(),
            Expr::Lam(x, body) => {
                bound.push(x.clone());
                let b = self.resolve_in(body, bound);
                bound.pop();
                Expr::Lam(x.clone(), b.boxed())
            }
            Expr::Let(x, rhs, body) => {
                let r = self.resolve_in(rhs, bound);
                bound.push(x.clone());
                let b = self.resolve_in(body, bound);
                bound.pop();
                Expr::Let(x.clone(), r.boxed(), b.boxed())
            }
            Expr::BigUnion { head, var, src } => {
                let s = self.resolve_in(src, bound);
                bound.push(var.clone());
                let h = self.resolve_in(head, bound);
                bound.pop();
                Expr::BigUnion { head: h.boxed(), var: var.clone(), src: s.boxed() }
            }
            Expr::BigBagUnion { head, var, src } => {
                let s = self.resolve_in(src, bound);
                bound.push(var.clone());
                let h = self.resolve_in(head, bound);
                bound.pop();
                Expr::BigBagUnion { head: h.boxed(), var: var.clone(), src: s.boxed() }
            }
            Expr::Sum { head, var, src } => {
                let s = self.resolve_in(src, bound);
                bound.push(var.clone());
                let h = self.resolve_in(head, bound);
                bound.pop();
                Expr::Sum { head: h.boxed(), var: var.clone(), src: s.boxed() }
            }
            Expr::BigUnionRank { head, var, rank, src } => {
                let s = self.resolve_in(src, bound);
                bound.push(var.clone());
                bound.push(rank.clone());
                let h = self.resolve_in(head, bound);
                bound.pop();
                bound.pop();
                Expr::BigUnionRank {
                    head: h.boxed(),
                    var: var.clone(),
                    rank: rank.clone(),
                    src: s.boxed(),
                }
            }
            Expr::BigBagUnionRank { head, var, rank, src } => {
                let s = self.resolve_in(src, bound);
                bound.push(var.clone());
                bound.push(rank.clone());
                let h = self.resolve_in(head, bound);
                bound.pop();
                bound.pop();
                Expr::BigBagUnionRank {
                    head: h.boxed(),
                    var: var.clone(),
                    rank: rank.clone(),
                    src: s.boxed(),
                }
            }
            Expr::Tab { head, idx } => {
                let new_idx: Vec<(Name, Expr)> = idx
                    .iter()
                    .map(|(n, b)| (n.clone(), self.resolve_in(b, bound)))
                    .collect();
                for (n, _) in idx {
                    bound.push(n.clone());
                }
                let h = self.resolve_in(head, bound);
                for _ in idx {
                    bound.pop();
                }
                Expr::Tab { head: h.boxed(), idx: new_idx }
            }
            _ => aql_opt::map_children(e, |c| self.resolve_in(c, bound)),
        }
    }

    /// The evaluation context over this session's registries
    /// (used by benches that need direct evaluator access).
    pub fn eval_expr_raw(&self, e: &Expr) -> Result<Value, EvalError> {
        let ctx = EvalCtx::new(&self.vals, &self.externals).with_limits(self.limits.clone());
        eval(e, &ctx)
    }

    /// Explain a query: run the pipeline up to (but not including)
    /// evaluation and report the core term, its type, the optimized
    /// term, and the full §5 rewrite trace.
    pub fn explain(&self, query: &str) -> Result<Explain, LangError> {
        let surface = crate::parser::parse_expr(query)?;
        let core = desugar(&surface)?;
        let resolved = self.resolve(&core);
        let ty = typecheck(&resolved, &self.val_types, &self.externals)?;
        let (optimized, trace) = if self.verify {
            let check = self.phase_check(&ty);
            self.optimizer
                .try_optimize_traced_verified(&resolved, &Gate::full(&check))
                .map_err(opt_error)?
        } else {
            self.optimizer.try_optimize_traced(&resolved).map_err(rule_panic)?
        };
        let globals = self.analysis_globals();
        let layouts = self.source_layouts();
        let cost_before = aql_opt::cost::estimate(&resolved, &globals, &layouts);
        let cost_after = aql_opt::cost::estimate(&optimized, &globals, &layouts);
        Ok(Explain { ty, core: resolved, optimized, trace, cost_before, cost_after })
    }

    /// The session's `val` bindings as abstract values, the globals
    /// map the `aql-analysis` interpreter consumes: bound arrays
    /// contribute their concrete extents, scalars their exact values.
    pub fn analysis_globals(&self) -> BTreeMap<Name, aql_analysis::AbsVal> {
        self.vals
            .iter()
            .map(|(n, v)| (n.clone(), aql_analysis::absval_of_value(v)))
            .collect()
    }

    /// Chunk layouts of the session's lazily stored array bindings,
    /// for the bytes-moved half of [`aql_opt::cost::estimate`].
    pub fn source_layouts(&self) -> BTreeMap<Name, aql_opt::cost::SourceLayout> {
        use aql_core::value::array::ArrayData;
        let mut out = BTreeMap::new();
        for (n, v) in &self.vals {
            let Value::Array(a) = v else { continue };
            let ArrayData::Lazy(l) = a.array_data() else { continue };
            let l = l.borrow();
            let layout = l.layout();
            let elem_bytes = match l.kind() {
                aql_store::ScalarKind::F64 | aql_store::ScalarKind::I64 => 8,
                aql_store::ScalarKind::Bool => 1,
            };
            out.insert(
                n.clone(),
                aql_opt::cost::SourceLayout {
                    dims: layout.dims().to_vec(),
                    chunk_dims: layout.chunk_dims().to_vec(),
                    elem_bytes,
                },
            );
        }
        out
    }

    /// Statically analyse a query with the abstract interpreter
    /// without evaluating it: inferred (symbolic) shape, effect class,
    /// per-subscript bounds verdicts, and the fusibility report
    /// marking which loop nests could compile to bulk kernels. The
    /// REPL's `\analyze` meta-command renders the result.
    pub fn analyze(&self, query: &str) -> Result<AnalyzeReport, LangError> {
        let surface = crate::parser::parse_expr(query)?;
        let core = desugar(&surface)?;
        let resolved = self.resolve(&core);
        let ty = typecheck(&resolved, &self.val_types, &self.externals)?;
        let globals = self.analysis_globals();
        let analysis = aql_analysis::analyze(&resolved, &globals);
        let layouts = self.source_layouts();
        let cost = aql_opt::cost::estimate(&resolved, &globals, &layouts);
        Ok(AnalyzeReport { ty, body: aql_analysis::report::render(&analysis), cost })
    }

    /// Statically analyse a query without evaluating it: run the
    /// pipeline through typechecking, then the `aql-verify`
    /// shape/bounds lints (provable out-of-bounds subscripts,
    /// zero-extent dimensions, dead conditional branches). The REPL's
    /// `\lint` meta-command renders the result.
    pub fn lint(&self, query: &str) -> Result<LintReport, LangError> {
        let surface = crate::parser::parse_expr(query)?;
        let core = desugar(&surface)?;
        let resolved = self.resolve(&core);
        let ty = typecheck(&resolved, &self.val_types, &self.externals)?;
        let diagnostics = aql_verify::lint_expr(&resolved);
        M_LINT_FINDINGS.add(diagnostics.len() as u64);
        Ok(LintReport { ty, diagnostics })
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

/// The result of [`Session::analyze`]: the query's type, the rendered
/// abstract-interpretation summary, and the analysis-backed cost
/// estimate.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// The query's type.
    pub ty: Type,
    /// The rendered analysis summary ([`aql_analysis::report::render`]).
    pub body: String,
    /// Cardinality / step / bytes-moved estimate for the (unoptimized)
    /// core term.
    pub cost: aql_opt::cost::CostEstimate,
}

impl AnalyzeReport {
    /// The REPL rendering: type line, analysis summary, cost line.
    pub fn render(&self) -> String {
        format!(
            "typ    : {}\n{}cost   : {}\n",
            self.ty,
            self.body,
            render_cost(&self.cost)
        )
    }
}

/// The result of [`Session::lint`]: the query's type plus every
/// shape/bounds finding (all warnings; errors would have failed
/// typechecking first).
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The query's type.
    pub ty: Type,
    /// Lint findings in traversal order (empty when the query is
    /// clean).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// The REPL rendering: the type line followed by one line per
    /// finding, or a "no findings" note.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("typ  : {}\n", self.ty);
        if self.diagnostics.is_empty() {
            out.push_str("lint : no findings\n");
        } else {
            for d in &self.diagnostics {
                let _ = writeln!(out, "lint : {d}");
            }
        }
        out
    }
}

/// The default for [`Session::verify`]: the `AQL_VERIFY` environment
/// variable when set (`0`/`false`/`off`/empty disable), otherwise on
/// exactly in debug builds — tests and development runs gate every
/// rewrite, the release hot path pays nothing.
fn default_verify() -> bool {
    match std::env::var("AQL_VERIFY") {
        Ok(v) => !matches!(v.as_str(), "0" | "false" | "off" | ""),
        Err(_) => cfg!(debug_assertions),
    }
}

/// Map a contained rule panic to the session error space.
fn rule_panic(p: aql_opt::RulePanic) -> LangError {
    LangError::extension_panic(
        "optimizer rule",
        p.rule,
        format!("{} (phase `{}`)", p.message, p.phase),
    )
}

/// Map a verified-optimizer failure to the session error space.
fn opt_error(e: OptError) -> LangError {
    match e {
        OptError::Panic(p) => rule_panic(p),
        OptError::Unsound(v) => LangError::Unsound {
            phase: v.phase,
            rule: v.rule.to_string(),
            message: v.message,
        },
    }
}

/// Whether a statement failure is resource exhaustion rather than a
/// plain error — the distinction incident dumps record (`IncidentKind`)
/// and `\doctor` keys its diagnosis on.
fn is_resource_exhausted(e: &LangError) -> bool {
    match e {
        LangError::Eval(
            EvalError::ResourceLimit { .. }
            | EvalError::ResourceExhausted { .. }
            | EvalError::StepLimit,
        ) => true,
        other => {
            let s = other.to_string().to_ascii_lowercase();
            s.contains("budget") || s.contains("exhaust")
        }
    }
}

/// The flight-recorder outcome label for a failed statement.
fn error_class(e: &LangError) -> &'static str {
    match e {
        _ if is_resource_exhausted(e) => "resource-exhausted",
        LangError::Eval(EvalError::Deadline) => "deadline",
        LangError::Eval(EvalError::Cancelled) => "cancelled",
        LangError::Eval(EvalError::Storage { .. }) => "storage",
        LangError::Unsound { .. } => "unsound",
        _ => "error",
    }
}

/// The trace label for a statement's root span.
fn stmt_label(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::Val(..) => "val",
        Stmt::MacroDef(..) => "macro",
        Stmt::Query(..) => "query",
        Stmt::ReadVal { .. } => "readval",
        Stmt::WriteVal { .. } => "writeval",
    }
}

/// Run an untrusted extension call behind a panic guard. Readers and
/// writers are host code plugged into the session at run time; a panic
/// inside one must not take down the REPL. The panic is caught and
/// surfaced as [`LangError::ExtensionPanic`] naming the extension, and
/// the session remains usable.
fn catch_extension<T>(
    kind: &'static str,
    ext_name: &str,
    f: impl FnOnce() -> T,
) -> Result<T, LangError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        LangError::extension_panic(
            kind,
            ext_name,
            aql_core::prim::panic_message(payload.as_ref()),
        )
    })
}

/// Replace any unresolved inference variables in a statement's type
/// with `nat` before storing it in the session. A type variable is
/// only ever left over by genuinely ambiguous literals (`{}`,
/// `[[0;]]`, `⊥`), and a stored variable would collide with fresh
/// variables of later typechecker runs. Defaulting mirrors the numeric
/// defaulting inside the checker.
fn default_type_vars(t: &Type) -> Type {
    use std::rc::Rc as StdRc;
    match t {
        Type::Var(_) => Type::Nat,
        Type::Bool | Type::Nat | Type::Real | Type::Str | Type::Base(_) => t.clone(),
        Type::Tuple(ts) => Type::Tuple(ts.iter().map(default_type_vars).collect::<Vec<_>>().into()),
        Type::Set(e) => Type::Set(StdRc::new(default_type_vars(e))),
        Type::Bag(e) => Type::Bag(StdRc::new(default_type_vars(e))),
        Type::Array(e, k) => Type::Array(StdRc::new(default_type_vars(e)), *k),
        Type::Fun(a, b) => Type::Fun(
            StdRc::new(default_type_vars(a)),
            StdRc::new(default_type_vars(b)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nats(ns: &[u64]) -> Value {
        Value::set(ns.iter().map(|&n| Value::Nat(n)).collect())
    }

    #[test]
    fn val_and_query() {
        let mut s = Session::new();
        let out = s
            .run("val \\months = [[0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30]];")
            .unwrap();
        assert_eq!(out[0].ty, Some(Type::array1(Type::Nat)));
        assert!(out[0].text.contains("typ months : [[nat]]_1"));
        assert!(out[0].text.contains("val months = [[(0):0, (1):31, (2):28,"));

        let (ty, v) = s.eval_query("months[1]").unwrap();
        assert_eq!(ty, Type::Nat);
        assert_eq!(v, Value::Nat(31));
    }

    #[test]
    fn it_binds_last_result() {
        let mut s = Session::new();
        s.eval_query("1 + 1").unwrap();
        let (_, v) = s.eval_query("it * 10").unwrap();
        assert_eq!(v, Value::Nat(20));
    }

    #[test]
    fn macro_definition_and_use() {
        let mut s = Session::new();
        let out = s
            .run("macro \\double = fn \\x => x * 2;")
            .unwrap();
        assert!(out[0].text.contains("typ double : nat -> nat"));
        assert!(out[0].text.contains("registered as macro"));
        let (_, v) = s.eval_query("double!21").unwrap();
        assert_eq!(v, Value::Nat(42));
    }

    #[test]
    fn macros_can_use_macros() {
        let mut s = Session::new();
        s.run("macro \\inc = fn \\x => x + 1; macro \\inc2 = fn \\x => inc!(inc!x);")
            .unwrap();
        let (_, v) = s.eval_query("inc2!40").unwrap();
        assert_eq!(v, Value::Nat(42));
    }

    #[test]
    fn prelude_macros_work() {
        let mut s = Session::new();
        let (_, v) = s.eval_query("evenpos![[0, 1, 2, 3, 4, 5]]").unwrap();
        let a = v.as_array().unwrap();
        let got: Vec<u64> = a.data().iter().map(|x| x.as_nat().unwrap()).collect();
        assert_eq!(got, vec![0, 2, 4]);

        let (_, v) = s.eval_query("zip!([[1, 2]], [[5, 6, 7]])").unwrap();
        assert_eq!(v.as_array().unwrap().dims(), &[2]);

        let (_, v) = s.eval_query("subseq!([[0, 10, 20, 30]], 1, 2)").unwrap();
        let got: Vec<u64> = v
            .as_array()
            .unwrap()
            .data()
            .iter()
            .map(|x| x.as_nat().unwrap())
            .collect();
        assert_eq!(got, vec![10, 20]);

        let (_, v) = s
            .eval_query("matmul!([[2, 2; 1, 2, 3, 4]], [[2, 2; 5, 6, 7, 8]])")
            .unwrap();
        let got: Vec<u64> = v
            .as_array()
            .unwrap()
            .data()
            .iter()
            .map(|x| x.as_nat().unwrap())
            .collect();
        assert_eq!(got, vec![19, 22, 43, 50]);
    }

    #[test]
    fn externals_register_and_shadow() {
        let mut s = Session::new();
        s.register_external(NativeFn::new(
            "heatindex",
            Type::fun(Type::array1(Type::Real), Type::Real),
            |v| {
                let a = v.as_array()?;
                let mut sum = 0.0;
                for x in a.data().iter() {
                    sum += x.as_real()?;
                }
                Ok(Value::Real(sum / a.len().max(1) as f64))
            },
        ));
        let (ty, v) = s.eval_query("heatindex![[90.0, 100.0]]").unwrap();
        assert_eq!(ty, Type::Real);
        assert_eq!(v, Value::Real(95.0));
        // Lexically bound names shadow externals.
        let (_, v) = s.eval_query("(fn \\heatindex => heatindex + 1)!1").unwrap();
        assert_eq!(v, Value::Nat(2));
    }

    #[test]
    fn type_errors_are_reported() {
        let mut s = Session::new();
        assert!(matches!(
            s.eval_query("1 + true"),
            Err(LangError::Type(_))
        ));
        assert!(matches!(
            s.eval_query("nosuchname!1"),
            Err(LangError::Type(_))
        ));
    }

    #[test]
    fn optimizer_toggle_preserves_results() {
        let mut s = Session::new();
        let q = "{d | \\d <- gen!10, \\A == subseq!([[ i * i | \\i < 100 ]], d, d + 3), A[0] % 2 = 0}";
        let (_, v1) = s.eval_query(q).unwrap();
        s.optimize = false;
        let (_, v2) = s.eval_query(q).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v1, nats(&[0, 2, 4, 6, 8]));
    }

    #[test]
    fn readval_writeval_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aql-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.co");
        let p = path.to_str().unwrap();

        let mut s = Session::new();
        s.run(&format!(
            "val \\x = {{(1, 2.5), (2, 3.5)}}; writeval x using COFILE at \"{p}\";"
        ))
        .unwrap();
        let out = s
            .run(&format!("readval \\y using COFILE at \"{p}\";"))
            .unwrap();
        assert_eq!(
            out[0].ty,
            Some(Type::set(Type::tuple(vec![Type::Nat, Type::Real])))
        );
        let (_, v) = s.eval_query("{a | (\\a, _) <- y}").unwrap();
        assert_eq!(v, nats(&[1, 2]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_reader_reported() {
        let mut s = Session::new();
        let err = s.run("readval \\x using NOPE at \"f\";").unwrap_err();
        assert!(err.to_string().contains("NOPE"));
    }

    #[test]
    fn session_echo_matches_paper_shape() {
        let mut s = Session::new();
        let out = s.run("{25, 27, 28};").unwrap();
        assert!(out[0].text.contains("typ it : {nat}"));
        assert!(out[0].text.contains("val it = {25, 27, 28}"));
    }

    #[test]
    fn resource_limits_apply() {
        let mut s = Session::new();
        s.limits = Limits { max_elems: 100, ..Limits::default() };
        assert!(matches!(
            s.eval_query("gen!1000"),
            Err(LangError::Eval(EvalError::ResourceLimit { .. }))
        ));
    }

    #[test]
    fn bind_val_from_rust() {
        let mut s = Session::new();
        s.bind_val("T", Value::array1(vec![Value::Real(1.0), Value::Real(2.0)]))
            .unwrap();
        let (_, v) = s.eval_query("T[1]").unwrap();
        assert_eq!(v, Value::Real(2.0));
        // Ambiguous values are rejected.
        assert!(s.bind_val("bad", Value::set(vec![])).is_err());
    }

    #[test]
    fn odmg_primitives() {
        let mut s = Session::new();
        let as_nats = |v: &Value| -> Vec<u64> {
            v.as_array()
                .unwrap()
                .data()
                .iter()
                .map(|x| x.as_nat().unwrap())
                .collect()
        };
        let (_, v) = s.eval_query("upd!([[1, 2, 3]], 1, 9)").unwrap();
        assert_eq!(as_nats(&v), vec![1, 9, 3]);
        let (_, v) = s.eval_query("resize!([[1, 2]], 4, 0)").unwrap();
        assert_eq!(as_nats(&v), vec![1, 2, 0, 0]);
        let (_, v) = s.eval_query("resize!([[1, 2, 3]], 2, 0)").unwrap();
        assert_eq!(as_nats(&v), vec![1, 2], "resize can shrink");
        let (_, v) = s.eval_query("insert_at!([[1, 3]], 1, 2)").unwrap();
        assert_eq!(as_nats(&v), vec![1, 2, 3]);
        let (_, v) = s.eval_query("insert_at!([[1]], 1, 2)").unwrap();
        assert_eq!(as_nats(&v), vec![1, 2], "insert at the end");
        let (_, v) = s.eval_query("remove_at!([[1, 2, 3]], 1)").unwrap();
        assert_eq!(as_nats(&v), vec![1, 3]);
        let (_, v) = s.eval_query("remove_at!([[7]], 0)").unwrap();
        assert_eq!(as_nats(&v), Vec::<u64>::new());
        // Out-of-bounds update is the identity on shape but hits ⊥ on
        // no element — i.e. it leaves the array unchanged.
        let (_, v) = s.eval_query("upd!([[1, 2]], 9, 0)").unwrap();
        assert_eq!(as_nats(&v), vec![1, 2]);
    }

    #[test]
    fn nearest_coordinate_lookup() {
        let mut s = Session::new();
        s.run("val \\lats = [[40.20, 40.45, 40.70, 40.95, 41.20]];")
            .unwrap();
        let (_, v) = s.eval_query("nearest!(lats, 40.7)").unwrap();
        assert_eq!(v, Value::Nat(2));
        let (_, v) = s.eval_query("nearest!(lats, 39.0)").unwrap();
        assert_eq!(v, Value::Nat(0));
        let (_, v) = s.eval_query("nearest!(lats, 99.0)").unwrap();
        assert_eq!(v, Value::Nat(4));
        // Ties resolve to the smaller index via the lexicographic
        // (distance, index) minimum.
        s.run("val \\grid = [[0.0, 1.0]];").unwrap();
        let (_, v) = s.eval_query("nearest!(grid, 0.5)").unwrap();
        assert_eq!(v, Value::Nat(0));
        // Empty coordinate array → ⊥ (min of {} then projection). The
        // empty literal's element type defaults to nat, so look up a nat.
        s.run("val \\none = [[0; ]];").unwrap();
        let (_, v) = s.eval_query("nearest!(none, 1)").unwrap();
        assert!(v.is_bottom());
    }

    #[test]
    fn stats_accumulate_across_statements() {
        // Regression: `last_stats` used to be overwritten per
        // evaluation, so a multi-statement run reported only the final
        // statement's counters.
        let mut s = Session::new();
        s.run("val \\a = [[ i | \\i < 50 ]]; val \\b = [[ i | \\i < 50 ]];")
            .unwrap();
        let per_stmt = s.statement_stats();
        assert_eq!(per_stmt.len(), 2);
        assert!(per_stmt[0].steps > 0 && per_stmt[1].steps > 0);
        let total = s.last_stats();
        assert_eq!(total.steps, per_stmt[0].steps + per_stmt[1].steps);
        assert!(
            total.steps > per_stmt[1].steps,
            "the total must include more than the final statement"
        );
        // A new run resets the per-statement vector.
        s.run("1 + 1;").unwrap();
        assert_eq!(s.statement_stats().len(), 1);
        assert_eq!(s.last_report().statements.len(), 1);
    }

    #[test]
    fn profile_traces_the_pipeline() {
        let mut s = Session::new();
        let (outcomes, report) = s.profile("val \\a = gen!20; summap(fn \\x => x)!a;").unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(report.statements.len(), 2);
        // Two statement roots, each with the pipeline phases below.
        let roots = report.trace.roots();
        let root_names: Vec<&str> = roots
            .iter()
            .map(|&i| report.trace.spans[i].name.as_str())
            .filter(|n| *n == "statement")
            .collect();
        assert_eq!(root_names.len(), 2, "{:?}", report.trace);
        for name in ["parse", "desugar", "resolve", "typecheck", "optimize", "eval"] {
            assert!(report.trace.find(name).is_some(), "span `{name}` missing");
        }
        // The evaluator's counters reached the trace, and agree with
        // the stats vector.
        assert_eq!(
            report.trace.total_counter("eval.steps"),
            report.total().steps,
            "trace and stats must agree on steps"
        );
        // Tracing is off again after `profile`.
        assert!(!aql_trace::enabled());
    }

    #[test]
    fn query_report_round_trips_through_json() {
        let mut s = Session::new();
        let (_, report) = s.profile("[[ i * i | \\i < 10 ]][4];").unwrap();
        assert!(!report.metrics.is_empty(), "profile must snapshot the registry");
        let back = QueryReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!(QueryReport::from_json("{\"statements\":[]}").is_err());
        // Pre-metrics reports (no `metrics` member) stay parseable.
        let legacy = QueryReport::default().to_json().replace(",\"metrics\":{}", "");
        assert!(!legacy.contains("metrics"));
        assert_eq!(QueryReport::from_json(&legacy).unwrap(), QueryReport::default());
    }

    /// A shared in-memory slow-log sink (the session owns a boxed
    /// writer, the test keeps the other handle).
    #[derive(Clone, Default)]
    struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap_or_else(|p| p.into_inner()).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedSink {
        fn lines(&self) -> Vec<String> {
            let bytes = self.0.lock().unwrap_or_else(|p| p.into_inner()).clone();
            String::from_utf8(bytes)
                .expect("slow log must be UTF-8")
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    #[test]
    fn slow_log_records_every_statement_at_threshold_zero() {
        use aql_trace::json::Json;
        let sink = SharedSink::default();
        let mut s = Session::new();
        s.enable_slow_log(
            Box::new(sink.clone()),
            SlowLogConfig { threshold: std::time::Duration::ZERO, sample_every: 0 },
        );
        s.run("val \\a = gen!40; summap(fn \\x => x)!a;").unwrap();
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "threshold 0 logs every statement");
        let rec = Json::parse(&lines[0]).expect("each line must be valid JSON");
        assert_eq!(rec.get("schema_version").and_then(Json::as_u64), Some(2));
        assert_eq!(rec.get("kind").and_then(Json::as_str), Some("val"));
        // v2: no incident pipeline configured ⇒ explicit null.
        assert_eq!(rec.get("incident"), Some(&Json::Null));
        assert!(
            rec.get("cache").and_then(|c| c.get("prefetched_bytes")).is_some(),
            "v2 carries cache.prefetched_bytes"
        );
        assert_eq!(rec.get("slow"), Some(&Json::Bool(true)));
        assert_eq!(rec.get("error"), Some(&Json::Bool(false)));
        assert!(rec.get("dur_ns").and_then(Json::as_u64).is_some_and(|ns| ns > 0));
        let hash = rec.get("stmt_hash").and_then(Json::as_str).expect("hash");
        assert_eq!(hash.len(), 16, "FNV-1a 64 rendered as hex");
        // Phase timings carry the pipeline's closed phase set.
        let phases = rec.get("phases").expect("phases");
        for p in ["desugar", "resolve", "typecheck", "eval"] {
            assert!(
                phases.get(p).and_then(Json::as_u64).is_some(),
                "phase `{p}` missing from {phases:?}"
            );
        }
        // The second statement is the query; eval counters are present.
        let rec2 = Json::parse(&lines[1]).expect("line 2");
        assert_eq!(rec2.get("kind").and_then(Json::as_str), Some("query"));
        assert!(
            rec2.get("eval")
                .and_then(|e| e.get("steps"))
                .and_then(Json::as_u64)
                .is_some_and(|n| n > 0),
            "eval stats must be attached"
        );
        // Disabling stops the stream.
        s.disable_slow_log();
        s.run("1 + 1;").unwrap();
        assert_eq!(sink.lines().len(), 2);
    }

    #[test]
    fn slow_log_sampling_picks_every_nth_statement() {
        use aql_trace::json::Json;
        let sink = SharedSink::default();
        let mut s = Session::new();
        // Unreachable threshold: only sampling can select records.
        s.enable_slow_log(
            Box::new(sink.clone()),
            SlowLogConfig {
                threshold: std::time::Duration::from_secs(3600),
                sample_every: 3,
            },
        );
        for _ in 0..7 {
            s.run("1 + 1;").unwrap();
        }
        let lines = sink.lines();
        // Statement seqs 0..7 with the prelude already past: every 3rd
        // of *this* session's sequence numbers. The prelude consumed
        // seqs, so just assert the cadence and the flags.
        assert!(!lines.is_empty(), "sampling must select something in 7 statements");
        assert!(lines.len() <= 3, "1-in-3 sampling over 7 statements, got {lines:?}");
        for l in &lines {
            let rec = Json::parse(l).expect("valid JSON");
            assert_eq!(rec.get("sampled"), Some(&Json::Bool(true)));
            assert_eq!(rec.get("slow"), Some(&Json::Bool(false)));
        }
        let seqs: Vec<u64> = lines
            .iter()
            .map(|l| {
                Json::parse(l).expect("json").get("seq").and_then(Json::as_u64).expect("seq")
            })
            .collect();
        for w in seqs.windows(2) {
            assert_eq!(w[1] - w[0], 3, "sampled seqs must be 3 apart: {seqs:?}");
        }
    }

    #[test]
    fn session_metrics_reach_the_registry() {
        let errors_before = M_ERRORS.get();
        let mut s = Session::new();
        // A typecheck failure (unbound name) — unlike a parse error,
        // it reaches `exec` and must bump the error counter.
        assert!(s.run("no_such_name + 1;").is_err());
        assert!(M_ERRORS.get() > errors_before, "a failed statement bumps errors");
        let report = s.last_report();
        assert!(
            report
                .metrics
                .iter()
                .any(|(k, _)| k.starts_with("aql_session_statements_total")),
            "statement counters must appear in the report snapshot: {:?}",
            report.metrics.iter().take(5).collect::<Vec<_>>()
        );
        assert!(
            report.metrics.iter().any(|(k, _)| k.contains("aql_session_statement_ns")),
            "statement latency histogram must appear in the snapshot"
        );
    }

    /// Bind a labeled lazy array so a statement has a source to charge.
    fn bind_lazy(s: &mut Session, vname: &str, label: &str, n: u64) {
        use aql_store::{ChunkLayout, LazyArray, MemChunkSource, ScalarBuf, ScalarKind};
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mem = MemChunkSource::new(vec![n], ScalarBuf::F64(data)).unwrap();
        let layout = ChunkLayout::new(vec![n], vec![4]).unwrap();
        let la = LazyArray::labeled(layout, ScalarKind::F64, Box::new(mem), 1 << 20, label);
        let av = aql_core::value::array::ArrayVal::lazy(la).unwrap();
        s.bind_val_typed(vname, Value::Array(std::rc::Rc::new(av)), Type::array1(Type::Real));
    }

    #[test]
    fn attribution_ledger_charges_the_touched_source() {
        let mut s = Session::new();
        bind_lazy(&mut s, "sst", "mem:attr-test", 32);
        s.run("reverse!sst;").unwrap();
        let attr = s.statement_attribution();
        assert_eq!(attr.len(), 1, "one ledger per statement");
        let ledger = &attr[0];
        let row = ledger
            .sources
            .iter()
            .find(|(l, _)| l == "mem:attr-test")
            .expect("the scanned source must appear in the ledger");
        assert!(row.1.chunks_loaded > 0, "the scan loads chunks: {ledger:?}");
        assert!(row.1.bytes_read > 0, "the scan reads bytes: {ledger:?}");
        assert!(
            !ledger.phases.is_empty(),
            "per-phase wall time must be recorded: {ledger:?}"
        );
        // The ledger also reaches the report, and survives JSON.
        let report = s.last_report();
        assert_eq!(report.attribution, attr);
        let back = QueryReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.attribution, attr);
    }

    #[test]
    fn flight_recorder_sees_statement_lifecycle() {
        use aql_journal::Tag;
        let mut s = Session::new();
        bind_lazy(&mut s, "t", "mem:journal-test", 16);
        s.run("reverse!t;").unwrap();
        let j = aql_journal::snapshot();
        let begin = j
            .events
            .iter()
            .rev()
            .find(|e| e.tag == Tag::StmtBegin && aql_journal::label_name(e.label) == "query")
            .expect("a StmtBegin for the query");
        assert!(begin.b != 0, "StmtBegin carries the statement hash");
        assert!(
            j.events.iter().any(|e| e.tag == Tag::StmtEnd
                && aql_journal::label_name(e.label) == "ok"
                && e.a == begin.a),
            "a matching ok StmtEnd"
        );
        assert!(
            j.events.iter().any(|e| e.tag == Tag::CacheMiss
                && aql_journal::label_name(e.label) == "mem:journal-test"),
            "cache misses carry the source label"
        );
        assert!(
            j.events.iter().any(|e| e.tag == Tag::Phase),
            "phase timings are journaled"
        );
    }

    #[test]
    fn incidents_dump_on_error_and_doctor_reads_them() {
        let dir = std::env::temp_dir()
            .join(format!("aql-incidents-{}-err", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = Session::new();
        s.enable_incidents(IncidentConfig::new(&dir));
        assert!(s.run("no_such_name + 1;").is_err());
        let path = s.last_incident_path().expect("an incident file was written");
        let inc = aql_journal::incident::Incident::load(&path).unwrap();
        assert_eq!(inc.kind, aql_journal::incident::IncidentKind::Error);
        assert_eq!(inc.stmt_kind, "query");
        assert!(inc.error.as_deref().is_some_and(|e| e.contains("no_such_name")));
        assert!(inc.attribution.is_some(), "the ledger rides along");
        let diagnosis = s.doctor();
        assert!(diagnosis.contains("fault class"), "doctor output: {diagnosis}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incidents_dump_on_resource_exhaustion_and_slow_threshold() {
        let dir = std::env::temp_dir()
            .join(format!("aql-incidents-{}-rx", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = Session::new();
        s.limits = Limits { max_elems: 100, ..Limits::default() };
        s.enable_incidents(IncidentConfig {
            dir: dir.clone(),
            last_events: 64,
            slow_threshold: None,
        });
        assert!(s.eval_query("gen!1000").is_err());
        let inc = aql_journal::incident::Incident::load(
            &s.last_incident_path().expect("resource incident"),
        )
        .unwrap();
        assert_eq!(inc.kind, aql_journal::incident::IncidentKind::ResourceExhausted);

        // A zero slow threshold dumps a slow incident even on success,
        // and the slow log's v2 record links to it.
        let sink = SharedSink::default();
        s.limits = Limits::default();
        s.enable_slow_log(
            Box::new(sink.clone()),
            SlowLogConfig { threshold: Duration::ZERO, sample_every: 0 },
        );
        s.enable_incidents(IncidentConfig {
            dir: dir.clone(),
            last_events: 64,
            slow_threshold: Some(Duration::ZERO),
        });
        s.run("1 + 1;").unwrap();
        let inc = aql_journal::incident::Incident::load(
            &s.last_incident_path().expect("slow incident"),
        )
        .unwrap();
        assert_eq!(inc.kind, aql_journal::incident::IncidentKind::Slow);
        use aql_trace::json::Json;
        let lines = sink.lines();
        let rec = Json::parse(lines.last().unwrap()).unwrap();
        let linked = rec.get("incident").and_then(Json::as_str).expect("v2 links the dump");
        assert!(
            std::path::Path::new(linked).file_name()
                == s.last_incident_path().unwrap().file_name(),
            "slow log links its own incident: {linked}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_log_v1_records_remain_parseable() {
        use aql_trace::json::Json;
        // A canned v1 line: no `incident`, no `cache.prefetched_bytes`.
        // Consumers dispatch on schema_version and treat the v2 members
        // as absent-means-none — the same convention stats_from_json
        // applies to pre-v2 reports.
        let v1 = r#"{"schema_version":1,"seq":3,"stmt_hash":"00000000deadbeef",
            "kind":"query","slow":true,"sampled":false,"dur_ns":5,"phases":{},
            "eval":{"steps":1,"subscripts":0,"materialized":0},
            "cache":{"hits":2,"misses":1,"evictions":0,"bytes_read":64,"load_errors":0},
            "rule_fires":0,"error":false}"#;
        let rec = Json::parse(v1).expect("v1 lines stay valid JSON");
        assert_eq!(rec.get("schema_version").and_then(Json::as_u64), Some(1));
        assert!(rec.get("incident").is_none(), "absent in v1 ⇒ no dump");
        let stats = stats_from_json(&Json::Obj(vec![
            ("steps".to_string(), Json::Num(1.0)),
            ("subscripts".to_string(), Json::Num(0.0)),
            ("materialized".to_string(), Json::Num(0.0)),
            ("cache".to_string(), rec.get("cache").unwrap().clone()),
        ]))
        .expect("a v1 cache object parses");
        assert_eq!(stats.cache.bytes_read, 64);
        assert_eq!(stats.cache.prefetched_bytes, 0, "absent ⇒ zero");
    }

    #[test]
    fn graph_prelude_macro() {
        let mut s = Session::new();
        let (_, v) = s.eval_query("graph![[7, 9]]").unwrap();
        assert_eq!(
            v,
            Value::set(vec![
                Value::tuple(vec![Value::Nat(0), Value::Nat(7)]),
                Value::tuple(vec![Value::Nat(1), Value::Nat(9)]),
            ])
        );
    }
}
