//! The surface abstract syntax of AQL (§3): expressions with
//! comprehensions, patterns and blocks, plus top-level statements.

/// A literal constant usable inside patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Natural.
    Nat(u64),
    /// Real.
    Real(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// A pattern `P ::= (P1,…,Pk) | _ | c | x | \x` (§3). `Var` is a
/// *non-binding* occurrence that matches only the current value of an
/// already-bound variable; `Bind` is the binding occurrence `\x`.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// `_` — matches anything.
    Wild,
    /// `\x` — matches anything and binds it.
    Bind(String),
    /// `x` — matches the current value of `x`.
    Var(String),
    /// A constant — matches only itself.
    Const(Lit),
    /// `(P1, …, Pk)` — matches k-tuples componentwise.
    Tuple(Vec<Pattern>),
}

impl Pattern {
    /// Is this a *lambda pattern* `P' ::= (P'1,…,P'n) | _ | \x` (§3)?
    /// Lambda and `let` patterns are irrefutable: no constants or
    /// non-binding variables.
    pub fn is_lambda_pattern(&self) -> bool {
        match self {
            Pattern::Wild | Pattern::Bind(_) => true,
            Pattern::Var(_) | Pattern::Const(_) => false,
            Pattern::Tuple(ps) => ps.iter().all(Pattern::is_lambda_pattern),
        }
    }

    /// The names bound by this pattern, in order.
    pub fn bound_names(&self) -> Vec<String> {
        match self {
            Pattern::Bind(x) => vec![x.clone()],
            Pattern::Tuple(ps) => ps.iter().flat_map(Pattern::bound_names).collect(),
            _ => Vec::new(),
        }
    }
}

/// A qualifier inside a comprehension: generator, array generator,
/// binding, or filter (§3).
#[derive(Debug, Clone, PartialEq)]
pub enum Qual {
    /// `P <- e` — set generator.
    Gen(Pattern, SExpr),
    /// `[P1 : P2] <- e` — array generator: `P1` matches the index,
    /// `P2` the value (§3).
    ArrGen(Pattern, Pattern, SExpr),
    /// `P :== e` (also written `P == e`) — binding, shorthand for
    /// `P <- {e}`.
    Bind(Pattern, SExpr),
    /// A Boolean filter.
    Filter(SExpr),
}

/// Binary operators of the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SBinOp {
    /// `+`
    Add,
    /// `-` (monus at `nat`)
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `in` — set membership
    In,
    /// `union` — set union
    Union,
    /// `bunion` — bag union
    Bunion,
}

/// A surface expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Identifier (variable, macro, external, global, or builtin).
    Var(String),
    /// Natural literal.
    Nat(u64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Tuple `(e1, …, ek)`, `k ≥ 2`.
    Tuple(Vec<SExpr>),
    /// Set literal `{e1, …, en}` (possibly empty).
    SetLit(Vec<SExpr>),
    /// Bag literal `{|e1, …, en|}`.
    BagLit(Vec<SExpr>),
    /// Set comprehension `{e | q1, …, qn}`.
    SetComp {
        /// Head expression.
        head: Box<SExpr>,
        /// Qualifiers.
        quals: Vec<Qual>,
    },
    /// Bag comprehension `{|e | q1, …, qn|}`.
    BagComp {
        /// Head expression.
        head: Box<SExpr>,
        /// Qualifiers.
        quals: Vec<Qual>,
    },
    /// 1-d array literal `[[e1, …, en]]`, n ≥ 1.
    ArrayLit(Vec<SExpr>),
    /// Row-major literal `[[n1, …, nk; e0, …]]` (§3).
    ArrayRowMajor {
        /// Dimension expressions.
        dims: Vec<SExpr>,
        /// Row-major items.
        items: Vec<SExpr>,
    },
    /// Tabulation `[[e | \i1 < e1, …, \ik < ek]]`.
    ArrayTab {
        /// Head expression.
        head: Box<SExpr>,
        /// Index binders and bounds.
        idx: Vec<(String, SExpr)>,
    },
    /// Subscript `e[e1, …, ek]`.
    Subscript(Box<SExpr>, Vec<SExpr>),
    /// Application `f!e` or `f(e1, …, en)`.
    App(Box<SExpr>, Box<SExpr>),
    /// `fn P => e`.
    Lam(Pattern, Box<SExpr>),
    /// `let val P1 = e1 … val Pn = en in e end`.
    LetBlock(Vec<(Pattern, SExpr)>, Box<SExpr>),
    /// `if c then t else f`.
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// Binary operation.
    Binop(SBinOp, Box<SExpr>, Box<SExpr>),
    /// `not e`.
    Not(Box<SExpr>),
}

impl SExpr {
    /// Boxed self.
    pub fn boxed(self) -> Box<SExpr> {
        Box::new(self)
    }
}

/// A top-level statement of the AQL read-eval-print loop (§4).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `val \x = e;` — evaluate and remember a complex object.
    Val(String, SExpr),
    /// `macro \f = e;` — register a query macro.
    MacroDef(String, SExpr),
    /// `readval \x using R at e;` — input through a registered reader.
    ReadVal {
        /// Target variable.
        name: String,
        /// Reader name.
        reader: String,
        /// Argument expression.
        arg: SExpr,
    },
    /// `writeval e using W at e2;` — output through a writer.
    WriteVal {
        /// The value expression to write.
        value: SExpr,
        /// Writer name.
        writer: String,
        /// Argument expression.
        arg: SExpr,
    },
    /// A bare query `e;`.
    Query(SExpr),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_pattern_classification() {
        assert!(Pattern::Wild.is_lambda_pattern());
        assert!(Pattern::Bind("x".into()).is_lambda_pattern());
        assert!(!Pattern::Var("x".into()).is_lambda_pattern());
        assert!(!Pattern::Const(Lit::Nat(0)).is_lambda_pattern());
        assert!(Pattern::Tuple(vec![Pattern::Bind("a".into()), Pattern::Wild])
            .is_lambda_pattern());
        assert!(!Pattern::Tuple(vec![Pattern::Const(Lit::Nat(1))]).is_lambda_pattern());
    }

    #[test]
    fn bound_names_in_order() {
        let p = Pattern::Tuple(vec![
            Pattern::Bind("a".into()),
            Pattern::Wild,
            Pattern::Tuple(vec![Pattern::Bind("b".into()), Pattern::Var("c".into())]),
        ]);
        assert_eq!(p.bound_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
