//! The AQL lexer.
//!
//! Notable points of the surface syntax (§3–§4 of the paper):
//!
//! * binding occurrences are written `\x` — the backslash marks the
//!   binder in patterns and generators;
//! * identifiers may contain primes (`WS'`, as in the §1 query);
//! * `(* … *)` are (nesting) comments, as in the paper's ML heritage;
//! * `[[` / `]]` delimit array literals and tabulations;
//! * `{|` / `|}` delimit bags.

use crate::errors::LangError;
use crate::token::{Spanned, Tok};

/// Tokenize a complete source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    macro_rules! push {
        ($tok:expr, $at:expr) => {
            out.push(Spanned { tok: $tok, offset: $at, line })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            // (* nesting comments *) — also plain `(`.
            b'(' => {
                if b.get(i + 1) == Some(&b'*') {
                    let mut depth = 1;
                    let start_line = line;
                    let mut j = i + 2;
                    while j < b.len() && depth > 0 {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        if b[j] == b'(' && b.get(j + 1) == Some(&b'*') {
                            depth += 1;
                            j += 2;
                        } else if b[j] == b'*' && b.get(j + 1) == Some(&b')') {
                            depth -= 1;
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    if depth > 0 {
                        return Err(LangError::lex(i, start_line, "unterminated comment"));
                    }
                    i = j;
                } else {
                    push!(Tok::LParen, i);
                    i += 1;
                }
            }
            b')' => {
                push!(Tok::RParen, i);
                i += 1;
            }
            b'[' => {
                if b.get(i + 1) == Some(&b'[') {
                    push!(Tok::LLBrack, i);
                    i += 2;
                } else {
                    push!(Tok::LBrack, i);
                    i += 1;
                }
            }
            b']' => {
                if b.get(i + 1) == Some(&b']') {
                    push!(Tok::RRBrack, i);
                    i += 2;
                } else {
                    push!(Tok::RBrack, i);
                    i += 1;
                }
            }
            b'{' => {
                if b.get(i + 1) == Some(&b'|') {
                    push!(Tok::LBagBrace, i);
                    i += 2;
                } else {
                    push!(Tok::LBrace, i);
                    i += 1;
                }
            }
            b'}' => {
                push!(Tok::RBrace, i);
                i += 1;
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'}') {
                    push!(Tok::RBagBrace, i);
                    i += 2;
                } else {
                    push!(Tok::Pipe, i);
                    i += 1;
                }
            }
            b',' => {
                push!(Tok::Comma, i);
                i += 1;
            }
            b';' => {
                push!(Tok::Semi, i);
                i += 1;
            }
            b':' => {
                if b[i + 1..].starts_with(b"==") {
                    push!(Tok::ColonBind, i);
                    i += 3;
                } else {
                    push!(Tok::Colon, i);
                    i += 1;
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'-') {
                    push!(Tok::Arrow, i);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le, i);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    push!(Tok::Ne, i);
                    i += 2;
                } else {
                    push!(Tok::Lt, i);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge, i);
                    i += 2;
                } else {
                    push!(Tok::Gt, i);
                    i += 1;
                }
            }
            b'=' => {
                if b.get(i + 1) == Some(&b'>') {
                    push!(Tok::FatArrow, i);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    push!(Tok::EqEq, i);
                    i += 2;
                } else {
                    push!(Tok::Eq, i);
                    i += 1;
                }
            }
            b'+' => {
                push!(Tok::Plus, i);
                i += 1;
            }
            b'-' => {
                push!(Tok::Minus, i);
                i += 1;
            }
            b'*' => {
                push!(Tok::Star, i);
                i += 1;
            }
            b'/' => {
                push!(Tok::Slash, i);
                i += 1;
            }
            b'%' => {
                push!(Tok::Percent, i);
                i += 1;
            }
            b'!' => {
                push!(Tok::Bang, i);
                i += 1;
            }
            b'\\' => {
                let start = i + 1;
                let end = ident_end(b, start);
                if end == start {
                    return Err(LangError::lex(i, line, "expected identifier after `\\`"));
                }
                let name = std::str::from_utf8(&b[start..end]).expect("ascii ident");
                push!(Tok::Bind(name.to_string()), i);
                i = end;
            }
            b'"' => {
                let start = i;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match b.get(j) {
                        None => return Err(LangError::lex(start, line, "unterminated string")),
                        Some(b'"') => {
                            j += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = b
                                .get(j + 1)
                                .ok_or_else(|| LangError::lex(j, line, "unterminated escape"))?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'r' => '\r',
                                b'"' => '"',
                                b'\\' => '\\',
                                c => {
                                    return Err(LangError::lex(
                                        j,
                                        line,
                                        format!("bad escape `\\{}`", *c as char),
                                    ))
                                }
                            });
                            j += 2;
                        }
                        Some(&c) => {
                            if c == b'\n' {
                                line += 1;
                            }
                            s.push(c as char);
                            j += 1;
                        }
                    }
                }
                push!(Tok::Str(s), start);
                i = j;
            }
            b'_' if ident_end(b, i + 1) == i + 1 => {
                push!(Tok::Underscore, i);
                i += 1;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_real = false;
                if b.get(j) == Some(&b'.') && b.get(j + 1).is_some_and(u8::is_ascii_digit) {
                    is_real = true;
                    j += 1;
                    while j < b.len() && b[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if matches!(b.get(j), Some(b'e' | b'E')) {
                    let mut k = j + 1;
                    if matches!(b.get(k), Some(b'+' | b'-')) {
                        k += 1;
                    }
                    if b.get(k).is_some_and(u8::is_ascii_digit) {
                        is_real = true;
                        j = k;
                        while j < b.len() && b[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&b[start..j]).expect("ascii digits");
                if is_real {
                    let r: f64 = text
                        .parse()
                        .map_err(|e| LangError::lex(start, line, format!("bad real: {e}")))?;
                    push!(Tok::Real(r), start);
                } else {
                    let n: u64 = text
                        .parse()
                        .map_err(|e| LangError::lex(start, line, format!("bad nat: {e}")))?;
                    push!(Tok::Nat(n), start);
                }
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let end = ident_end(b, i);
                let name = std::str::from_utf8(&b[start..end]).expect("ascii ident");
                let tok = match name {
                    "val" => Tok::Val,
                    "macro" => Tok::Macro,
                    "fn" => Tok::Fn,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "let" => Tok::Let,
                    "in" => Tok::In,
                    "end" => Tok::End,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    "union" => Tok::UnionKw,
                    "bunion" => Tok::BunionKw,
                    "readval" => Tok::Readval,
                    "writeval" => Tok::Writeval,
                    "using" => Tok::Using,
                    "at" => Tok::At,
                    _ => Tok::Ident(name.to_string()),
                };
                push!(tok, start);
                i = end;
            }
            _ => {
                return Err(LangError::lex(
                    i,
                    line,
                    format!("unexpected character `{}`", c as char),
                ))
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, offset: b.len(), line });
    Ok(out)
}

/// Identifiers: `[A-Za-z_][A-Za-z0-9_']*` — primes allowed after the
/// first character (the paper writes `WS'`).
fn ident_end(b: &[u8], start: usize) -> usize {
    let mut j = start;
    if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') {
        j += 1;
        while j < b.len()
            && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'\'')
        {
            j += 1;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("val \\x = 3;"),
            vec![
                Tok::Val,
                Tok::Bind("x".into()),
                Tok::Eq,
                Tok::Nat(3),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn primed_identifiers() {
        assert_eq!(
            toks("\\WS' == evenpos"),
            vec![
                Tok::Bind("WS'".into()),
                Tok::EqEq,
                Tok::Ident("evenpos".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn brackets_disambiguate() {
        assert_eq!(
            toks("[[1]] [1] {|2|} {2}"),
            vec![
                Tok::LLBrack,
                Tok::Nat(1),
                Tok::RRBrack,
                Tok::LBrack,
                Tok::Nat(1),
                Tok::RBrack,
                Tok::LBagBrace,
                Tok::Nat(2),
                Tok::RBagBrace,
                Tok::LBrace,
                Tok::Nat(2),
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_nest() {
        assert_eq!(
            toks("1 (* a (* nested *) b *) 2"),
            vec![Tok::Nat(1), Tok::Nat(2), Tok::Eof]
        );
        assert!(lex("(* open").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<- <= <> < = == :== =>"),
            vec![
                Tok::Arrow,
                Tok::Le,
                Tok::Ne,
                Tok::Lt,
                Tok::Eq,
                Tok::EqEq,
                Tok::ColonBind,
                Tok::FatArrow,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks("12 3.5 1e3 \"a\\\"b\""),
            vec![
                Tok::Nat(12),
                Tok::Real(3.5),
                Tok::Real(1000.0),
                Tok::Str("a\"b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn paper_query_lexes() {
        let src = r#"{d | \d <- gen!30,
            \WS' == evenpos!(proj_col!(WS,0)),  (* adjust WS grid *)
            \TRW == zip_3!(T,RH,WS'),
            \A == subseq!(TRW, d*24, d*24+23),
            heatindex!(A) > threshold};"#;
        let ts = toks(src);
        assert!(ts.contains(&Tok::Bind("WS'".into())));
        assert!(ts.contains(&Tok::Ident("heatindex".into())));
        assert!(!ts.iter().any(|t| matches!(t, Tok::Ident(s) if s == "adjust")));
    }

    #[test]
    fn line_tracking() {
        let spanned = lex("1\n2\n3").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
    }

    #[test]
    fn underscore_is_wildcard() {
        assert_eq!(toks("(_, 0)"), vec![
            Tok::LParen,
            Tok::Underscore,
            Tok::Comma,
            Tok::Nat(0),
            Tok::RParen,
            Tok::Eof
        ]);
        // But _x is an identifier.
        assert_eq!(toks("_x"), vec![Tok::Ident("_x".into()), Tok::Eof]);
    }
}
