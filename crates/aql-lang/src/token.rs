//! Tokens of the AQL surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and names ------------------------------------------------
    /// An identifier (may contain primes, e.g. `WS'`).
    Ident(String),
    /// A binding identifier `\x`.
    Bind(String),
    /// A natural literal.
    Nat(u64),
    /// A real literal.
    Real(f64),
    /// A string literal.
    Str(String),

    // Keywords ----------------------------------------------------------
    /// `val`
    Val,
    /// `macro`
    Macro,
    /// `fn`
    Fn,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `let`
    Let,
    /// `in`
    In,
    /// `end`
    End,
    /// `true`
    True,
    /// `false`
    False,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `union`
    UnionKw,
    /// `bunion` (bag union `⊎`)
    BunionKw,
    /// `readval`
    Readval,
    /// `writeval`
    Writeval,
    /// `using`
    Using,
    /// `at`
    At,

    // Punctuation ---------------------------------------------------------
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[[`
    LLBrack,
    /// `]]`
    RRBrack,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `{|`
    LBagBrace,
    /// `|}`
    RBagBrace,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `|`
    Pipe,
    /// `<-`
    Arrow,
    /// `=>`
    FatArrow,
    /// `:==`
    ColonBind,
    /// `==`
    EqEq,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `_`
    Underscore,
    /// `:` (array generator separator `[p : p]`)
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Bind(s) => write!(f, "\\{s}"),
            Tok::Nat(n) => write!(f, "{n}"),
            Tok::Real(r) => write!(f, "{r:?}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Val => write!(f, "val"),
            Tok::Macro => write!(f, "macro"),
            Tok::Fn => write!(f, "fn"),
            Tok::If => write!(f, "if"),
            Tok::Then => write!(f, "then"),
            Tok::Else => write!(f, "else"),
            Tok::Let => write!(f, "let"),
            Tok::In => write!(f, "in"),
            Tok::End => write!(f, "end"),
            Tok::True => write!(f, "true"),
            Tok::False => write!(f, "false"),
            Tok::And => write!(f, "and"),
            Tok::Or => write!(f, "or"),
            Tok::Not => write!(f, "not"),
            Tok::UnionKw => write!(f, "union"),
            Tok::BunionKw => write!(f, "bunion"),
            Tok::Readval => write!(f, "readval"),
            Tok::Writeval => write!(f, "writeval"),
            Tok::Using => write!(f, "using"),
            Tok::At => write!(f, "at"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LLBrack => write!(f, "[["),
            Tok::RRBrack => write!(f, "]]"),
            Tok::LBrack => write!(f, "["),
            Tok::RBrack => write!(f, "]"),
            Tok::LBagBrace => write!(f, "{{|"),
            Tok::RBagBrace => write!(f, "|}}"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Pipe => write!(f, "|"),
            Tok::Arrow => write!(f, "<-"),
            Tok::FatArrow => write!(f, "=>"),
            Tok::ColonBind => write!(f, ":=="),
            Tok::EqEq => write!(f, "=="),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "<>"),
            Tok::Le => write!(f, "<="),
            Tok::Lt => write!(f, "<"),
            Tok::Ge => write!(f, ">="),
            Tok::Gt => write!(f, ">"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Bang => write!(f, "!"),
            Tok::Underscore => write!(f, "_"),
            Tok::Colon => write!(f, ":"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position (byte offset and 1-based line).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset in the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_spelling() {
        for (tok, s) in [
            (Tok::Arrow, "<-"),
            (Tok::ColonBind, ":=="),
            (Tok::FatArrow, "=>"),
            (Tok::LLBrack, "[["),
            (Tok::RRBrack, "]]"),
            (Tok::LBagBrace, "{|"),
            (Tok::RBagBrace, "|}"),
            (Tok::Ne, "<>"),
            (Tok::UnionKw, "union"),
            (Tok::Readval, "readval"),
        ] {
            assert_eq!(tok.to_string(), s);
        }
        assert_eq!(Tok::Bind("x".into()).to_string(), "\\x");
        assert_eq!(Tok::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Tok::Real(2.5).to_string(), "2.5");
    }
}
