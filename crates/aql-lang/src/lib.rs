//! # aql-lang — the AQL surface language and session
//!
//! The higher-level comprehension-style query language of §3–§4 of
//! *Libkin, Machlin & Wong (SIGMOD 1996)*, on top of the `aql-core`
//! calculus:
//!
//! * [`lexer`] / [`parser`] — the surface syntax: comprehensions with
//!   generators/filters, patterns (`\x`, `_`, constants, tuples),
//!   array generators `[P1 : P2] <- A`, tabulations
//!   `[[e | \i < n]]`, row-major literals, `let … in … end`, `fn P =>
//!   e`, and the top-level `val` / `macro` / `readval` / `writeval`
//!   statements;
//! * [`desugar`] — the Fig. 2 translations into the core calculus;
//! * [`session`] — the open top-level environment of Fig. 3:
//!   registries for `val`s, macros, external primitives (Rust
//!   closures), data readers/writers, and the optimizer, all
//!   extensible at run time;
//! * [`repl`] — a read-eval-print driver that echoes `typ`/`val`
//!   lines exactly like the paper's sample session;
//! * [`reader`] — the reader/writer traits plus the built-in `COFILE`
//!   exchange-format driver.
//!
//! ```
//! use aql_lang::session::Session;
//!
//! let mut s = Session::new();
//! let (_ty, v) = s.eval_query("{x * x | \\x <- gen!5, x % 2 = 1}").unwrap();
//! assert_eq!(v.to_string(), "{1, 9}");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod desugar;
pub mod errors;
pub mod lexer;
pub mod parser;
pub mod reader;
pub mod repl;
pub mod session;
mod token;

pub use errors::LangError;
pub use session::{Outcome, OutcomeKind, Session};
