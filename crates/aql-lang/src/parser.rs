//! Recursive-descent parser for the AQL surface syntax.
//!
//! Operator precedence, loosest first:
//! `fn`/`let`/`if` (extend right) < `or` < `and` < `not` <
//! comparisons / `in` < `union`/`bunion` < `+`/`-` < `*`/`/`/`%` <
//! application `!` < postfix subscript/call < atoms.
//!
//! Comprehension qualifiers are disambiguated by backtracking: an item
//! is a generator/binding if a pattern followed by `<-`, `:==` or `==`
//! parses; otherwise it is a Boolean filter.

use crate::ast::{Lit, Pattern, Qual, SBinOp, SExpr, Stmt};
use crate::errors::LangError;
use crate::lexer::lex;
use crate::token::{Spanned, Tok};

/// Parse a whole program: a sequence of `;`-terminated statements.
pub fn parse_program(src: &str) -> Result<Vec<Stmt>, LangError> {
    let _span = aql_trace::span("parse");
    let measure = aql_metrics::enabled();
    let t_parse = measure.then(std::time::Instant::now);
    let toks = {
        let _lex_span = aql_trace::span("lex");
        let t_lex = measure.then(std::time::Instant::now);
        let toks = lex(src);
        if let Some(t0) = t_lex {
            crate::session::observe_phase_ns("lex", t0.elapsed().as_nanos() as u64);
        }
        toks?
    };
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while !p.at(&Tok::Eof) {
        out.push(p.stmt()?);
    }
    if let Some(t0) = t_parse {
        crate::session::observe_phase_ns("parse", t0.elapsed().as_nanos() as u64);
    }
    Ok(out)
}

/// Parse a single expression (the whole input must be one expression).
pub fn parse_expr(src: &str) -> Result<SExpr, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), LangError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::parse(self.line(), msg.into())
    }

    // ---- statements ---------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let s = match self.peek().clone() {
            Tok::Val => {
                self.bump();
                let name = self.bind_name()?;
                self.expect(&Tok::Eq)?;
                let e = self.expr()?;
                Stmt::Val(name, e)
            }
            Tok::Macro => {
                self.bump();
                let name = self.bind_name()?;
                self.expect(&Tok::Eq)?;
                let e = self.expr()?;
                Stmt::MacroDef(name, e)
            }
            Tok::Readval => {
                self.bump();
                let name = self.bind_name()?;
                self.expect(&Tok::Using)?;
                let reader = self.ident_name()?;
                self.expect(&Tok::At)?;
                let arg = self.expr()?;
                Stmt::ReadVal { name, reader, arg }
            }
            Tok::Writeval => {
                self.bump();
                let value = self.expr()?;
                self.expect(&Tok::Using)?;
                let writer = self.ident_name()?;
                self.expect(&Tok::At)?;
                let arg = self.expr()?;
                Stmt::WriteVal { value, writer, arg }
            }
            _ => Stmt::Query(self.expr()?),
        };
        self.expect(&Tok::Semi)?;
        Ok(s)
    }

    fn bind_name(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Bind(x) => Ok(x),
            other => Err(self.err(format!("expected `\\name`, found `{other}`"))),
        }
    }

    fn ident_name(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(x) => Ok(x),
            other => Err(self.err(format!("expected a name, found `{other}`"))),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<SExpr, LangError> {
        match self.peek() {
            Tok::Fn => {
                self.bump();
                let p = self.pattern()?;
                if !p.is_lambda_pattern() {
                    return Err(self.err(
                        "lambda patterns may contain only `\\x`, `_`, and tuples of those",
                    ));
                }
                self.expect(&Tok::FatArrow)?;
                let body = self.expr()?;
                Ok(SExpr::Lam(p, body.boxed()))
            }
            Tok::Let => {
                self.bump();
                let mut binds = Vec::new();
                while self.eat(&Tok::Val) {
                    let p = self.pattern()?;
                    if !p.is_lambda_pattern() {
                        return Err(self.err(
                            "let patterns may contain only `\\x`, `_`, and tuples of those",
                        ));
                    }
                    self.expect(&Tok::Eq)?;
                    let e = self.expr()?;
                    binds.push((p, e));
                }
                if binds.is_empty() {
                    return Err(self.err("`let` needs at least one `val` declaration"));
                }
                self.expect(&Tok::In)?;
                let body = self.expr()?;
                self.expect(&Tok::End)?;
                Ok(SExpr::LetBlock(binds, body.boxed()))
            }
            Tok::If => {
                self.bump();
                let c = self.expr()?;
                self.expect(&Tok::Then)?;
                let t = self.expr()?;
                self.expect(&Tok::Else)?;
                let f = self.expr()?;
                Ok(SExpr::If(c.boxed(), t.boxed(), f.boxed()))
            }
            _ => self.or_expr(),
        }
    }

    fn or_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let rhs = self.and_expr()?;
            lhs = SExpr::Binop(SBinOp::Or, lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Tok::And) {
            let rhs = self.not_expr()?;
            lhs = SExpr::Binop(SBinOp::And, lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SExpr, LangError> {
        if self.eat(&Tok::Not) {
            let e = self.not_expr()?;
            Ok(SExpr::Not(e.boxed()))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<SExpr, LangError> {
        let lhs = self.union_expr()?;
        let op = match self.peek() {
            Tok::Eq => SBinOp::Eq,
            Tok::Ne => SBinOp::Ne,
            Tok::Lt => SBinOp::Lt,
            Tok::Le => SBinOp::Le,
            Tok::Gt => SBinOp::Gt,
            Tok::Ge => SBinOp::Ge,
            // NB: membership is spelled `member(x, S)`, not infix `in`
            // — the keyword `in` belongs to `let … in … end` and the
            // two cannot be disambiguated without lookahead.
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.union_expr()?;
        Ok(SExpr::Binop(op, lhs.boxed(), rhs.boxed()))
    }

    fn union_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = if self.eat(&Tok::UnionKw) {
                SBinOp::Union
            } else if self.eat(&Tok::BunionKw) {
                SBinOp::Bunion
            } else {
                break;
            };
            let rhs = self.add_expr()?;
            lhs = SExpr::Binop(op, lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => SBinOp::Add,
                Tok::Minus => SBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = SExpr::Binop(op, lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.app_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => SBinOp::Mul,
                Tok::Slash => SBinOp::Div,
                Tok::Percent => SBinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.app_expr()?;
            lhs = SExpr::Binop(op, lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn app_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.postfix_expr()?;
        while self.eat(&Tok::Bang) {
            let rhs = self.postfix_expr()?;
            lhs = SExpr::App(lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn postfix_expr(&mut self) -> Result<SExpr, LangError> {
        let mut e = self.atom()?;
        loop {
            if self.at(&Tok::LBrack) {
                self.bump();
                let idx = self.expr_list(&Tok::RBrack)?;
                self.expect(&Tok::RBrack)?;
                if idx.is_empty() {
                    return Err(self.err("subscript needs at least one index"));
                }
                e = SExpr::Subscript(e.boxed(), idx);
            } else if self.at(&Tok::LParen) && callable(&e) {
                // `f(a, b)` call sugar: equivalent to `f!(a, b)`.
                self.bump();
                let args = self.expr_list(&Tok::RParen)?;
                self.expect(&Tok::RParen)?;
                let arg = match args.len() {
                    0 => return Err(self.err("call needs at least one argument")),
                    1 => args.into_iter().next().expect("len checked"),
                    _ => SExpr::Tuple(args),
                };
                e = SExpr::App(e.boxed(), arg.boxed());
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn expr_list(&mut self, terminator: &Tok) -> Result<Vec<SExpr>, LangError> {
        let mut out = Vec::new();
        if self.at(terminator) {
            return Ok(out);
        }
        loop {
            out.push(self.expr()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn atom(&mut self) -> Result<SExpr, LangError> {
        match self.peek().clone() {
            Tok::Nat(n) => {
                self.bump();
                Ok(SExpr::Nat(n))
            }
            Tok::Real(r) => {
                self.bump();
                Ok(SExpr::Real(r))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(SExpr::Str(s))
            }
            Tok::True => {
                self.bump();
                Ok(SExpr::Bool(true))
            }
            Tok::False => {
                self.bump();
                Ok(SExpr::Bool(false))
            }
            Tok::Minus => {
                // Negative real literal, e.g. a longitude of -74.0.
                self.bump();
                match self.bump() {
                    Tok::Real(r) => Ok(SExpr::Real(-r)),
                    Tok::Nat(_) => Err(self.err(
                        "naturals cannot be negative; write a real literal like -74.0",
                    )),
                    other => Err(self.err(format!("expected a number after `-`, found `{other}`"))),
                }
            }
            Tok::Ident(x) => {
                self.bump();
                Ok(SExpr::Var(x))
            }
            Tok::LParen => {
                self.bump();
                let mut items = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    items.push(self.expr()?);
                }
                self.expect(&Tok::RParen)?;
                if items.len() == 1 {
                    Ok(items.into_iter().next().expect("len checked"))
                } else {
                    Ok(SExpr::Tuple(items))
                }
            }
            Tok::LBrace => {
                self.bump();
                if self.eat(&Tok::RBrace) {
                    return Ok(SExpr::SetLit(Vec::new()));
                }
                let first = self.expr()?;
                if self.eat(&Tok::Pipe) {
                    let quals = self.quals()?;
                    self.expect(&Tok::RBrace)?;
                    Ok(SExpr::SetComp { head: first.boxed(), quals })
                } else {
                    let mut items = vec![first];
                    while self.eat(&Tok::Comma) {
                        items.push(self.expr()?);
                    }
                    self.expect(&Tok::RBrace)?;
                    Ok(SExpr::SetLit(items))
                }
            }
            Tok::LBagBrace => {
                self.bump();
                if self.eat(&Tok::RBagBrace) {
                    return Ok(SExpr::BagLit(Vec::new()));
                }
                let first = self.expr()?;
                if self.eat(&Tok::Pipe) {
                    let quals = self.quals()?;
                    self.expect(&Tok::RBagBrace)?;
                    Ok(SExpr::BagComp { head: first.boxed(), quals })
                } else {
                    let mut items = vec![first];
                    while self.eat(&Tok::Comma) {
                        items.push(self.expr()?);
                    }
                    self.expect(&Tok::RBagBrace)?;
                    Ok(SExpr::BagLit(items))
                }
            }
            Tok::LLBrack => {
                self.bump();
                self.array_body()
            }
            other => Err(self.err(format!("unexpected `{other}` in expression"))),
        }
    }

    /// After `[[`: a 1-d literal, a row-major literal, or a tabulation.
    fn array_body(&mut self) -> Result<SExpr, LangError> {
        let first = self.expr()?;
        if self.eat(&Tok::Pipe) {
            // Tabulation: [[ e | \i < e1, \j < e2 ]]
            let mut idx = Vec::new();
            loop {
                let name = self.bind_name()?;
                self.expect(&Tok::Lt)?;
                let bound = self.expr()?;
                idx.push((name, bound));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RRBrack)?;
            return Ok(SExpr::ArrayTab { head: first.boxed(), idx });
        }
        let mut items = vec![first];
        while self.eat(&Tok::Comma) {
            items.push(self.expr()?);
        }
        if self.eat(&Tok::Semi) {
            // Row-major: the first list is the dimensions.
            let data = self.expr_list(&Tok::RRBrack)?;
            self.expect(&Tok::RRBrack)?;
            return Ok(SExpr::ArrayRowMajor { dims: items, items: data });
        }
        self.expect(&Tok::RRBrack)?;
        Ok(SExpr::ArrayLit(items))
    }

    // ---- qualifiers and patterns ----------------------------------------

    fn quals(&mut self) -> Result<Vec<Qual>, LangError> {
        let mut out = Vec::new();
        loop {
            out.push(self.qual()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn qual(&mut self) -> Result<Qual, LangError> {
        // Array generator: `[p1 : p2] <- e`. A single `[` cannot start
        // an expression, so no backtracking needed.
        if self.at(&Tok::LBrack) {
            self.bump();
            let p1 = self.pattern()?;
            self.expect(&Tok::Colon)?;
            let p2 = self.pattern()?;
            self.expect(&Tok::RBrack)?;
            self.expect(&Tok::Arrow)?;
            let e = self.expr()?;
            return Ok(Qual::ArrGen(p1, p2, e));
        }
        // Try: pattern followed by <- / :== / ==.
        let save = self.pos;
        if let Ok(p) = self.pattern() {
            match self.peek() {
                Tok::Arrow => {
                    self.bump();
                    let e = self.expr()?;
                    return Ok(Qual::Gen(p, e));
                }
                Tok::ColonBind | Tok::EqEq => {
                    self.bump();
                    let e = self.expr()?;
                    return Ok(Qual::Bind(p, e));
                }
                _ => {}
            }
        }
        self.pos = save;
        Ok(Qual::Filter(self.expr()?))
    }

    fn pattern(&mut self) -> Result<Pattern, LangError> {
        match self.peek().clone() {
            Tok::Underscore => {
                self.bump();
                Ok(Pattern::Wild)
            }
            Tok::Bind(x) => {
                self.bump();
                Ok(Pattern::Bind(x))
            }
            Tok::Ident(x) => {
                self.bump();
                Ok(Pattern::Var(x))
            }
            Tok::Nat(n) => {
                self.bump();
                Ok(Pattern::Const(Lit::Nat(n)))
            }
            Tok::Real(r) => {
                self.bump();
                Ok(Pattern::Const(Lit::Real(r)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Pattern::Const(Lit::Str(s)))
            }
            Tok::True => {
                self.bump();
                Ok(Pattern::Const(Lit::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(Pattern::Const(Lit::Bool(false)))
            }
            Tok::Minus if matches!(self.peek2(), Tok::Real(_)) => {
                self.bump();
                match self.bump() {
                    Tok::Real(r) => Ok(Pattern::Const(Lit::Real(-r))),
                    // The guard peeked a real here; reaching any other
                    // token is a lexer/parser desync. Report it as a
                    // parse error rather than aborting the host.
                    other => Err(self.err(format!(
                        "expected a real literal after `-` in pattern, found `{other}`"
                    ))),
                }
            }
            Tok::LParen => {
                self.bump();
                let mut ps = vec![self.pattern()?];
                while self.eat(&Tok::Comma) {
                    ps.push(self.pattern()?);
                }
                self.expect(&Tok::RParen)?;
                if ps.len() == 1 {
                    Ok(ps.into_iter().next().expect("len checked"))
                } else {
                    Ok(Pattern::Tuple(ps))
                }
            }
            other => Err(self.err(format!("expected a pattern, found `{other}`"))),
        }
    }
}

/// Can this surface expression plausibly be a function in `f(args)`
/// call position? Restricting call sugar to these forms keeps
/// `(a, b) (c)`-style juxtapositions from parsing as calls.
fn callable(e: &SExpr) -> bool {
    matches!(e, SExpr::Var(_) | SExpr::App(..) | SExpr::Lam(..))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe(src: &str) -> SExpr {
        parse_expr(src).unwrap_or_else(|e| panic!("parse `{src}`: {e}"))
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 = (1 + (2*3))
        let e = pe("1 + 2 * 3");
        match e {
            SExpr::Binop(SBinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, SExpr::Binop(SBinOp::Mul, _, _)))
            }
            other => panic!("unexpected {other:?}"),
        }
        // Application binds tighter than arithmetic: f!x * 2
        let e = pe("f!x * 2");
        assert!(matches!(e, SExpr::Binop(SBinOp::Mul, _, _)));
        // Comparison is loosest of the arithmetic family: h > f!x + 1
        let e = pe("h > f!x + 1");
        assert!(matches!(e, SExpr::Binop(SBinOp::Gt, _, _)));
    }

    #[test]
    fn application_forms() {
        // f!(a, b) and f(a, b) parse to the same shape.
        assert_eq!(pe("f!(a, b)"), pe("f(a, b)"));
        // Left associativity of !.
        let e = pe("f!x!y");
        match e {
            SExpr::App(inner, _) => assert!(matches!(*inner, SExpr::App(..))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subscripts() {
        let e = pe("months[i]");
        assert!(matches!(e, SExpr::Subscript(_, ref ix) if ix.len() == 1));
        let e = pe("M[i, j]");
        assert!(matches!(e, SExpr::Subscript(_, ref ix) if ix.len() == 2));
        // Chained: M[i][j].
        let e = pe("M[i][j]");
        assert!(matches!(e, SExpr::Subscript(ref a, _) if matches!(**a, SExpr::Subscript(..))));
    }

    #[test]
    fn set_forms() {
        assert_eq!(pe("{}"), SExpr::SetLit(vec![]));
        assert!(matches!(pe("{1, 2, 3}"), SExpr::SetLit(ref v) if v.len() == 3));
        let e = pe("{x | \\x <- S, x > 90}");
        match e {
            SExpr::SetComp { quals, .. } => {
                assert_eq!(quals.len(), 2);
                assert!(matches!(quals[0], Qual::Gen(Pattern::Bind(ref b), _) if b == "x"));
                assert!(matches!(quals[1], Qual::Filter(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bag_forms() {
        assert_eq!(pe("{||}"), SExpr::BagLit(vec![]));
        assert!(matches!(pe("{|1, 1|}"), SExpr::BagLit(ref v) if v.len() == 2));
        assert!(matches!(
            pe("{|x | \\x <- B|}"),
            SExpr::BagComp { .. }
        ));
    }

    #[test]
    fn array_forms() {
        assert!(matches!(pe("[[1, 2, 3]]"), SExpr::ArrayLit(ref v) if v.len() == 3));
        let e = pe("[[2, 2; 1, 2, 3, 4]]");
        match e {
            SExpr::ArrayRowMajor { dims, items } => {
                assert_eq!(dims.len(), 2);
                assert_eq!(items.len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = pe("[[ a[i] * 2 | \\i < n ]]");
        match e {
            SExpr::ArrayTab { idx, .. } => assert_eq!(idx[0].0, "i"),
            other => panic!("unexpected {other:?}"),
        }
        let e = pe("[[ m[i,j] | \\j < p, \\i < q ]]");
        match e {
            SExpr::ArrayTab { idx, .. } => {
                assert_eq!(idx.len(), 2);
                assert_eq!(idx[0].0, "j");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn patterns_in_generators() {
        // Natural join from §3: {(x,y,z) | (\x,\y) <- R, (y,\z) <- S}
        let e = pe("{(x, y, z) | (\\x, \\y) <- R, (y, \\z) <- S}");
        match e {
            SExpr::SetComp { quals, .. } => {
                match &quals[0] {
                    Qual::Gen(Pattern::Tuple(ps), _) => {
                        assert_eq!(ps[0], Pattern::Bind("x".into()));
                    }
                    other => panic!("unexpected {other:?}"),
                }
                match &quals[1] {
                    Qual::Gen(Pattern::Tuple(ps), _) => {
                        assert_eq!(ps[0], Pattern::Var("y".into()));
                        assert_eq!(ps[1], Pattern::Bind("z".into()));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Wildcard and constants: {x | (_, 0, \x) <- R}
        let e = pe("{x | (_, 0, \\x) <- R}");
        match e {
            SExpr::SetComp { quals, .. } => match &quals[0] {
                Qual::Gen(Pattern::Tuple(ps), _) => {
                    assert_eq!(ps[0], Pattern::Wild);
                    assert_eq!(ps[1], Pattern::Const(Lit::Nat(0)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_generator_qualifier() {
        // §4.2: {d | [(\h,_,_):\t] <- T, …}
        let e = pe("{d | [(\\h, _, _) : \\t] <- T, t > 85.0}");
        match e {
            SExpr::SetComp { quals, .. } => match &quals[0] {
                Qual::ArrGen(p1, p2, _) => {
                    assert!(matches!(p1, Pattern::Tuple(ps) if ps.len() == 3));
                    assert_eq!(*p2, Pattern::Bind("t".into()));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binding_qualifiers() {
        let e = pe("{d | \\d <- gen!30, \\A == subseq!(TRW, d*24, d*24+23)}");
        match e {
            SExpr::SetComp { quals, .. } => {
                assert!(matches!(quals[1], Qual::Bind(Pattern::Bind(ref b), _) if b == "A"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // :== is the formal spelling.
        let e = pe("{x | \\x :== 1 + 2}");
        assert!(matches!(e, SExpr::SetComp { .. }));
    }

    #[test]
    fn fn_and_let() {
        let e = pe("fn (\\m, \\d, \\y) => d + m * y");
        assert!(matches!(e, SExpr::Lam(Pattern::Tuple(_), _)));
        let e = pe("let val \\x = 1 val \\y = 2 in x + y end");
        match e {
            SExpr::LetBlock(binds, _) => assert_eq!(binds.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // Refutable lambda patterns are rejected.
        assert!(parse_expr("fn (0, \\x) => x").is_err());
    }

    #[test]
    fn statements() {
        let prog = parse_program(
            "val \\months = [[0, 31, 28]];\n\
             macro \\f = fn \\x => x + 1;\n\
             readval \\T using NETCDF3 at (\"temp.nc\", \"temp\");\n\
             writeval T using COFILE at \"out.co\";\n\
             f!2;",
        )
        .unwrap();
        assert_eq!(prog.len(), 5);
        assert!(matches!(prog[0], Stmt::Val(ref n, _) if n == "months"));
        assert!(matches!(prog[1], Stmt::MacroDef(ref n, _) if n == "f"));
        assert!(matches!(prog[2], Stmt::ReadVal { ref reader, .. } if reader == "NETCDF3"));
        assert!(matches!(prog[3], Stmt::WriteVal { ref writer, .. } if writer == "COFILE"));
        assert!(matches!(prog[4], Stmt::Query(_)));
    }

    #[test]
    fn negative_reals() {
        assert_eq!(pe("-74.0"), SExpr::Real(-74.0));
        assert!(parse_expr("-74").is_err());
    }

    #[test]
    fn the_paper_heat_query_parses() {
        let src = r#"{d | \d <- gen!30,
            \WS' == evenpos!(proj_col!(WS, 0)),
            \TRW == zip_3!(T, RH, WS'),
            \A == subseq!(TRW, d*24, d*24+23),
            heatindex!(A) > threshold}"#;
        let e = pe(src);
        match e {
            SExpr::SetComp { quals, .. } => assert_eq!(quals.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn the_paper_sunset_query_parses() {
        let src = r#"{d | [(\h, _, _) : \t] <- T, \d == h/24 + 1,
            h > june_sunset!(NYlat, NYlon, d), t > 85.0}"#;
        let e = pe(src);
        match e {
            SExpr::SetComp { quals, .. } => assert_eq!(quals.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_extends_right() {
        let e = pe("if a then 1 else 2 + 3");
        match e {
            SExpr::If(_, _, f) => assert!(matches!(*f, SExpr::Binop(SBinOp::Add, _, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_operator() {
        let e = pe("{1} union {2} union {3}");
        assert!(matches!(e, SExpr::Binop(SBinOp::Union, _, _)));
        let e = pe("member(x, {1, 2})");
        assert!(matches!(e, SExpr::App(..)));
    }
}
