//! Desugaring: the Fig. 2 translations from AQL surface syntax to the
//! NRCA core calculus.
//!
//! * comprehensions become nests of `⋃`/`if`/`{e}` (and their bag
//!   analogues);
//! * patterns become projections (`let`) for binding occurrences and
//!   equality guards (`if … else {}`) for constants and non-binding
//!   occurrences;
//! * array generators `[P1 : P2] <- A` expand to loops over `dom(A)`
//!   (whose dimensionality is read off the arity of the index
//!   pattern);
//! * blocks become `let`s; `and`/`or`/`not` become conditionals (§3);
//! * applications of builtin names (`gen`, `dim_k`, `dim_i_k`,
//!   `pi_i_k`, `index_k`, `len`, `get`, `min`, `max`, `member`,
//!   `summap`, `count`, `dom`, `rng`) become their core constructs.
//!
//! Free identifiers that are neither lexically bound nor builtin are
//! left as [`Expr::Var`]; the session later resolves them against
//! macros, `val`s and externals.

use aql_core::expr::builder as b;
use aql_core::expr::free::fresh;
use aql_core::expr::{name, CmpOp, Expr};

use crate::ast::{Lit, Pattern, Qual, SBinOp, SExpr};
use crate::errors::LangError;

/// Desugar a surface expression to the core calculus.
pub fn desugar(e: &SExpr) -> Result<Expr, LangError> {
    let mut cx = Cx { scope: Vec::new() };
    cx.expr(e)
}

/// The collection monoid a comprehension builds (sets or bags).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Monoid {
    Set,
    Bag,
}

impl Monoid {
    fn empty(self) -> Expr {
        match self {
            Monoid::Set => Expr::Empty,
            Monoid::Bag => Expr::BagEmpty,
        }
    }

    fn single(self, e: Expr) -> Expr {
        match self {
            Monoid::Set => Expr::Single(e.boxed()),
            Monoid::Bag => Expr::BagSingle(e.boxed()),
        }
    }

    fn big_union(self, var: &str, src: Expr, head: Expr) -> Expr {
        match self {
            Monoid::Set => Expr::BigUnion {
                head: head.boxed(),
                var: name(var),
                src: src.boxed(),
            },
            Monoid::Bag => Expr::BigBagUnion {
                head: head.boxed(),
                var: name(var),
                src: src.boxed(),
            },
        }
    }
}

struct Cx {
    /// Lexically bound names; shadowing a builtin name disables the
    /// builtin locally.
    scope: Vec<String>,
}

impl Cx {
    fn bound(&self, n: &str) -> bool {
        self.scope.iter().any(|s| s == n)
    }

    fn expr(&mut self, e: &SExpr) -> Result<Expr, LangError> {
        Ok(match e {
            SExpr::Var(x) => {
                if !self.bound(x) {
                    if x == "bottom" {
                        return Ok(Expr::Bottom);
                    }
                    if let Some(eta) = builtin_eta(x) {
                        return Ok(eta);
                    }
                }
                Expr::Var(name(x))
            }
            SExpr::Nat(n) => Expr::Nat(*n),
            SExpr::Real(r) => Expr::Real(*r),
            SExpr::Str(s) => Expr::Str(s.as_str().into()),
            SExpr::Bool(v) => Expr::Bool(*v),
            SExpr::Tuple(items) => {
                Expr::Tuple(items.iter().map(|i| self.expr(i)).collect::<Result<_, _>>()?)
            }
            SExpr::SetLit(items) => {
                items.iter().try_fold(Expr::Empty, |acc, it| -> Result<Expr, LangError> {
                    Ok(b::union(acc, b::single(self.expr(it)?)))
                })?
            }
            SExpr::BagLit(items) => {
                items.iter().try_fold(Expr::BagEmpty, |acc, it| -> Result<Expr, LangError> {
                    Ok(b::bag_union(acc, b::bag_single(self.expr(it)?)))
                })?
            }
            SExpr::SetComp { head, quals } => self.comp(head, quals, Monoid::Set)?,
            SExpr::BagComp { head, quals } => self.comp(head, quals, Monoid::Bag)?,
            SExpr::ArrayLit(items) => {
                let n = items.len() as u64;
                Expr::ArrayLit {
                    dims: vec![Expr::Nat(n)],
                    items: items.iter().map(|i| self.expr(i)).collect::<Result<_, _>>()?,
                }
            }
            SExpr::ArrayRowMajor { dims, items } => Expr::ArrayLit {
                dims: dims.iter().map(|d| self.expr(d)).collect::<Result<_, _>>()?,
                items: items.iter().map(|i| self.expr(i)).collect::<Result<_, _>>()?,
            },
            SExpr::ArrayTab { head, idx } => {
                let bounds: Vec<Expr> = idx
                    .iter()
                    .map(|(_, bd)| self.expr(bd))
                    .collect::<Result<_, _>>()?;
                for (n, _) in idx {
                    self.scope.push(n.clone());
                }
                let h = self.expr(head);
                for _ in idx {
                    self.scope.pop();
                }
                Expr::Tab {
                    head: h?.boxed(),
                    idx: idx
                        .iter()
                        .map(|(n, _)| name(n))
                        .zip(bounds)
                        .collect(),
                }
            }
            SExpr::Subscript(arr, idx) => Expr::Sub(
                self.expr(arr)?.boxed(),
                idx.iter().map(|i| self.expr(i)).collect::<Result<_, _>>()?,
            ),
            SExpr::App(f, a) => self.app(f, a)?,
            SExpr::Lam(p, body) => self.lambda(p, body)?,
            SExpr::LetBlock(binds, body) => {
                let mut pushed = 0usize;
                let mut compiled: Vec<(Pattern, Expr)> = Vec::new();
                for (p, rhs) in binds {
                    let rhs = self.expr(rhs)?;
                    for bn in p.bound_names() {
                        self.scope.push(bn);
                        pushed += 1;
                    }
                    compiled.push((p.clone(), rhs));
                }
                let inner = self.expr(body);
                for _ in 0..pushed {
                    self.scope.pop();
                }
                let mut out = inner?;
                for (p, rhs) in compiled.into_iter().rev() {
                    out = bind_irrefutable(&p, rhs, out)?;
                }
                out
            }
            SExpr::If(c, t, f) => b::iff(self.expr(c)?, self.expr(t)?, self.expr(f)?),
            SExpr::Not(a) => b::not(self.expr(a)?),
            SExpr::Binop(op, a, f) => {
                let (a, f2) = (self.expr(a)?, self.expr(f)?);
                match op {
                    SBinOp::Add => b::add(a, f2),
                    SBinOp::Sub => b::monus(a, f2),
                    SBinOp::Mul => b::mul(a, f2),
                    SBinOp::Div => b::div(a, f2),
                    SBinOp::Mod => b::modulo(a, f2),
                    SBinOp::Eq => b::cmp(CmpOp::Eq, a, f2),
                    SBinOp::Ne => b::cmp(CmpOp::Ne, a, f2),
                    SBinOp::Lt => b::cmp(CmpOp::Lt, a, f2),
                    SBinOp::Le => b::cmp(CmpOp::Le, a, f2),
                    SBinOp::Gt => b::cmp(CmpOp::Gt, a, f2),
                    SBinOp::Ge => b::cmp(CmpOp::Ge, a, f2),
                    SBinOp::And => b::and(a, f2),
                    SBinOp::Or => b::or(a, f2),
                    SBinOp::In => b::member(a, f2),
                    SBinOp::Union => b::union(a, f2),
                    SBinOp::Bunion => b::bag_union(a, f2),
                }
            }
        })
    }

    /// Application, with builtin dispatch on the callee name.
    fn app(&mut self, f: &SExpr, a: &SExpr) -> Result<Expr, LangError> {
        // summap(f)!(S) — the paper's Σ syntax (§4.2).
        if let SExpr::App(inner_f, fun) = f {
            if matches!(&**inner_f, SExpr::Var(n) if n == "summap" && !self.bound("summap")) {
                let fun = self.expr(fun)?;
                let src = self.expr(a)?;
                let x = fresh("x");
                return Ok(Expr::Sum {
                    head: b::app(fun, b::var(&x)).boxed(),
                    var: name(&x),
                    src: src.boxed(),
                });
            }
        }
        if let SExpr::Var(fname) = f {
            if !self.bound(fname) {
                if let Some(out) = self.builtin_app(fname, a)? {
                    return Ok(out);
                }
            }
        }
        Ok(b::app(self.expr(f)?, self.expr(a)?))
    }

    /// Builtins applied to an argument.
    fn builtin_app(&mut self, fname: &str, a: &SExpr) -> Result<Option<Expr>, LangError> {
        let out = match fname {
            "gen" => b::gen(self.expr(a)?),
            "get" => b::get(self.expr(a)?),
            "min" => b::set_min(self.expr(a)?),
            "max" => b::set_max(self.expr(a)?),
            "len" => b::len(self.expr(a)?),
            "member" => match a {
                SExpr::Tuple(items) if items.len() == 2 => {
                    b::member(self.expr(&items[0])?, self.expr(&items[1])?)
                }
                _ => {
                    return Err(LangError::desugar(
                        "member expects two arguments: member(x, S)",
                    ))
                }
            },
            "count" => {
                let x = fresh("x");
                b::sum(&x, self.expr(a)?, b::nat(1))
            }
            "dom" => b::gen(b::len(self.expr(a)?)),
            "rng" => {
                let arr = fresh("A");
                let i = fresh("i");
                b::let_(
                    &arr,
                    self.expr(a)?,
                    b::big_union(
                        &i,
                        b::gen(b::len(b::var(&arr))),
                        b::single(b::sub(b::var(&arr), vec![b::var(&i)])),
                    ),
                )
            }
            _ => {
                if let Some(k) = suffix_nat(fname, "index_") {
                    b::index(k, self.expr(a)?)
                } else if let Some((i, k)) = double_suffix(fname, "dim_") {
                    b::proj(i, k, b::dim(k, self.expr(a)?))
                } else if let Some(k) = suffix_nat(fname, "dim_") {
                    b::dim(k, self.expr(a)?)
                } else if let Some((i, k)) = double_suffix(fname, "pi_") {
                    b::proj(i, k, self.expr(a)?)
                } else {
                    return Ok(None);
                }
            }
        };
        Ok(Some(out))
    }

    /// `fn P => e` with an irrefutable lambda pattern (Fig. 2).
    fn lambda(&mut self, p: &Pattern, body: &SExpr) -> Result<Expr, LangError> {
        let bound = p.bound_names();
        for bn in &bound {
            self.scope.push(bn.clone());
        }
        let inner = self.expr(body);
        for _ in &bound {
            self.scope.pop();
        }
        let inner = inner?;
        match p {
            Pattern::Bind(x) => Ok(b::lam(x, inner)),
            Pattern::Wild => {
                let z = fresh("arg");
                Ok(b::lam(&z, inner))
            }
            _ => {
                let z = fresh("arg");
                let body = bind_irrefutable(p, b::var(&z), inner)?;
                Ok(b::lam(&z, body))
            }
        }
    }

    /// Comprehension desugaring (Fig. 2), parameterised by monoid.
    fn comp(&mut self, head: &SExpr, quals: &[Qual], m: Monoid) -> Result<Expr, LangError> {
        match quals.split_first() {
            None => Ok(m.single(self.expr(head)?)),
            Some((q, rest)) => match q {
                Qual::Filter(p) => {
                    let p = self.expr(p)?;
                    let body = self.comp(head, rest, m)?;
                    Ok(b::iff(p, body, m.empty()))
                }
                Qual::Gen(pat, src) => {
                    let src = self.expr(src)?;
                    self.with_pattern(pat, |cx| cx.comp(head, rest, m), |p, scrut, body| {
                        bind_refutable(p, scrut, body, m.empty())
                    })
                    .map(|(var, body)| m.big_union(&var, src, body))
                }
                Qual::Bind(pat, rhs) => {
                    // P :== e  ≡  P <- {e}; implemented as a strict let
                    // with a pattern guard.
                    let rhs = self.expr(rhs)?;
                    let (var, body) = self.with_pattern(
                        pat,
                        |cx| cx.comp(head, rest, m),
                        |p, scrut, body| bind_refutable(p, scrut, body, m.empty()),
                    )?;
                    Ok(Expr::Let(name(&var), rhs.boxed(), body.boxed()))
                }
                Qual::ArrGen(pidx, pval, src) => {
                    let src = self.expr(src)?;
                    self.array_gen(pidx, pval, src, head, rest, m)
                }
            },
        }
    }

    /// Desugar the rest of a comprehension under a pattern binding: a
    /// fresh scrutinee variable is created, the pattern's names are
    /// brought into scope for the body, and `wrap` builds the actual
    /// destructuring around the body.
    fn with_pattern(
        &mut self,
        pat: &Pattern,
        body: impl FnOnce(&mut Cx) -> Result<Expr, LangError>,
        wrap: impl FnOnce(&Pattern, Expr, Expr) -> Result<Expr, LangError>,
    ) -> Result<(String, Expr), LangError> {
        // Simple binder: use the user's own name for readable cores.
        if let Pattern::Bind(x) = pat {
            self.scope.push(x.clone());
            let inner = body(self);
            self.scope.pop();
            return Ok((x.clone(), inner?));
        }
        let z = fresh("z").to_string();
        let bound = pat.bound_names();
        for bn in &bound {
            self.scope.push(bn.clone());
        }
        let inner = body(self);
        for _ in &bound {
            self.scope.pop();
        }
        let wrapped = wrap(pat, b::var(&z), inner?)?;
        Ok((z, wrapped))
    }

    /// `[P1 : P2] <- A` (§3): loop over the domain of `A`, binding the
    /// index to `P1` and the value `A[index]` to `P2`. The
    /// dimensionality is the arity of the index pattern.
    fn array_gen(
        &mut self,
        pidx: &Pattern,
        pval: &Pattern,
        src: Expr,
        head: &SExpr,
        rest: &[Qual],
        m: Monoid,
    ) -> Result<Expr, LangError> {
        let k = match pidx {
            Pattern::Tuple(ps) => ps.len(),
            _ => 1,
        };
        let arr = fresh("A").to_string();
        let idx_vars: Vec<String> = (0..k).map(|_| fresh("i").to_string()).collect();

        // Body: bind P1 against the index, P2 against A[index].
        let bound: Vec<String> = pidx
            .bound_names()
            .into_iter()
            .chain(pval.bound_names())
            .collect();
        for bn in &bound {
            self.scope.push(bn.clone());
        }
        let inner = self.comp(head, rest, m);
        for _ in &bound {
            self.scope.pop();
        }
        let mut body = inner?;

        let idx_expr = if k == 1 {
            b::var(&idx_vars[0])
        } else {
            Expr::Tuple(idx_vars.iter().map(|v| b::var(v)).collect())
        };
        let sub_expr = b::sub(
            b::var(&arr),
            idx_vars.iter().map(|v| b::var(v)).collect(),
        );
        body = bind_refutable(pval, sub_expr, body, m.empty())?;
        body = bind_refutable(pidx, idx_expr, body, m.empty())?;

        // Wrap in loops over gen(dim_{j,k} A), innermost last.
        for (j, iv) in idx_vars.iter().enumerate().rev() {
            let dim_j = if k == 1 {
                b::len(b::var(&arr))
            } else {
                b::proj(j + 1, k, b::dim(k, b::var(&arr)))
            };
            body = m.big_union(iv, b::gen(dim_j), body);
        }
        Ok(Expr::Let(name(&arr), src.boxed(), body.boxed()))
    }
}

/// Destructure an irrefutable (lambda/let) pattern with `let`s.
fn bind_irrefutable(p: &Pattern, scrut: Expr, body: Expr) -> Result<Expr, LangError> {
    match p {
        Pattern::Wild => Ok(body),
        Pattern::Bind(x) => Ok(Expr::Let(name(x), scrut.boxed(), body.boxed())),
        Pattern::Tuple(ps) => {
            let k = ps.len();
            // Bind the scrutinee once, then project components.
            let z = fresh("p");
            let mut out = body;
            for (i, sub) in ps.iter().enumerate().rev() {
                out = bind_irrefutable(sub, b::proj(i + 1, k, Expr::Var(z.clone())), out)?;
            }
            Ok(Expr::Let(z, scrut.boxed(), out.boxed()))
        }
        Pattern::Var(_) | Pattern::Const(_) => Err(LangError::desugar(
            "constants and non-binding variables are not allowed in lambda/let patterns",
        )),
    }
}

/// Destructure a refutable (generator) pattern: binding occurrences
/// become `let`s, constants and non-binding occurrences become
/// equality guards that fall through to `empty` (Fig. 2).
fn bind_refutable(
    p: &Pattern,
    scrut: Expr,
    body: Expr,
    empty: Expr,
) -> Result<Expr, LangError> {
    match p {
        Pattern::Wild => Ok(body),
        Pattern::Bind(x) => Ok(Expr::Let(name(x), scrut.boxed(), body.boxed())),
        Pattern::Var(x) => Ok(b::iff(
            b::cmp(CmpOp::Eq, scrut, b::var(x)),
            body,
            empty,
        )),
        Pattern::Const(l) => Ok(b::iff(
            b::cmp(CmpOp::Eq, scrut, lit_expr(l)),
            body,
            empty,
        )),
        Pattern::Tuple(ps) => {
            let k = ps.len();
            let z = fresh("p");
            let mut out = body;
            for (i, sub) in ps.iter().enumerate().rev() {
                out = bind_refutable(
                    sub,
                    b::proj(i + 1, k, Expr::Var(z.clone())),
                    out,
                    empty.clone(),
                )?;
            }
            Ok(Expr::Let(z, scrut.boxed(), out.boxed()))
        }
    }
}

fn lit_expr(l: &Lit) -> Expr {
    match l {
        Lit::Nat(n) => Expr::Nat(*n),
        Lit::Real(r) => Expr::Real(*r),
        Lit::Str(s) => Expr::Str(s.as_str().into()),
        Lit::Bool(v) => Expr::Bool(*v),
    }
}

/// Parse `prefix<k>` into `k` (e.g. `index_3`).
fn suffix_nat(s: &str, prefix: &str) -> Option<usize> {
    let rest = s.strip_prefix(prefix)?;
    if rest.is_empty() || !rest.bytes().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let k: usize = rest.parse().ok()?;
    (1..=16).contains(&k).then_some(k)
}

/// Parse `prefix<i>_<k>` into `(i, k)` (e.g. `dim_1_2`, `pi_2_3`).
fn double_suffix(s: &str, prefix: &str) -> Option<(usize, usize)> {
    let rest = s.strip_prefix(prefix)?;
    let (a, bpart) = rest.split_once('_')?;
    let i: usize = a.parse().ok()?;
    let k: usize = bpart.parse().ok()?;
    (1 <= i && i <= k && (2..=16).contains(&k)).then_some((i, k))
}

/// Bare builtin identifiers are η-expanded into functions so they can
/// be passed first-class (e.g. `summap(count)` — not that `count` is a
/// prim, but `min`, `max`, `get` are common).
fn builtin_eta(x: &str) -> Option<Expr> {
    let unary = |mk: fn(Expr) -> Expr| {
        let z = fresh("x").to_string();
        Some(b::lam(&z, mk(b::var(&z))))
    };
    match x {
        "gen" => unary(b::gen),
        "get" => unary(b::get),
        "min" => unary(b::set_min),
        "max" => unary(b::set_max),
        "len" => unary(b::len),
        "dom" => unary(|e| b::gen(b::len(e))),
        "count" => {
            let z = fresh("s").to_string();
            let x2 = fresh("x").to_string();
            Some(b::lam(&z, b::sum(&x2, b::var(&z), b::nat(1))))
        }
        _ => {
            if let Some(k) = suffix_nat(x, "index_") {
                let z = fresh("x").to_string();
                return Some(b::lam(&z, b::index(k, b::var(&z))));
            }
            if let Some((i, k)) = double_suffix(x, "dim_") {
                let z = fresh("x").to_string();
                return Some(b::lam(&z, b::proj(i, k, b::dim(k, b::var(&z)))));
            }
            if let Some(k) = suffix_nat(x, "dim_") {
                let z = fresh("x").to_string();
                return Some(b::lam(&z, b::dim(k, b::var(&z))));
            }
            if let Some((i, k)) = double_suffix(x, "pi_") {
                let z = fresh("x").to_string();
                return Some(b::lam(&z, b::proj(i, k, b::var(&z))));
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use aql_core::eval::eval_closed;
    use aql_core::value::Value;

    fn run(src: &str) -> Value {
        let s = parse_expr(src).unwrap_or_else(|e| panic!("parse `{src}`: {e}"));
        let core = desugar(&s).unwrap_or_else(|e| panic!("desugar `{src}`: {e}"));
        aql_core::check::typecheck_closed(&core)
            .unwrap_or_else(|e| panic!("typecheck `{src}` = {core}: {e}"));
        eval_closed(&core).unwrap_or_else(|e| panic!("eval `{src}`: {e}"))
    }

    fn nats(ns: &[u64]) -> Value {
        Value::set(ns.iter().map(|&n| Value::Nat(n)).collect())
    }

    #[test]
    fn literals_and_arith() {
        assert_eq!(run("1 + 2 * 3"), Value::Nat(7));
        assert_eq!(run("10 - 20"), Value::Nat(0));
        assert_eq!(run("7 % 3"), Value::Nat(1));
        assert_eq!(run("1.5 + 2.0"), Value::Real(3.5));
        assert_eq!(run("\"a\""), Value::str("a"));
    }

    #[test]
    fn boolean_macros() {
        assert_eq!(run("true and false"), Value::Bool(false));
        assert_eq!(run("true or false"), Value::Bool(true));
        assert_eq!(run("not (1 = 2)"), Value::Bool(true));
    }

    #[test]
    fn comprehension_basics() {
        assert_eq!(run("{x | \\x <- gen!4, x % 2 = 0}"), nats(&[0, 2]));
        assert_eq!(run("{x * x | \\x <- gen!4}"), nats(&[0, 1, 4, 9]));
        assert_eq!(run("{x | \\x <- {}}"), nats(&[]));
    }

    #[test]
    fn cartesian_and_join_patterns() {
        // Natural join via patterns.
        let v = run(
            "{(x, z) | (\\x, \\y) <- {(1, 10), (2, 20)}, (y, \\z) <- {(10, 7), (30, 9)}}",
        );
        assert_eq!(
            v,
            Value::set(vec![Value::tuple(vec![Value::Nat(1), Value::Nat(7)])])
        );
        // Constant pattern.
        let v = run("{x | (_, 0, \\x) <- {(1, 0, 5), (2, 1, 6)}}");
        assert_eq!(v, nats(&[5]));
    }

    #[test]
    fn binding_qualifier() {
        assert_eq!(run("{y | \\x <- gen!3, \\y == x * 10}"), nats(&[0, 10, 20]));
        // Refutable binding filters.
        assert_eq!(run("{x | \\x <- gen!5, 0 == x % 2}"), nats(&[0, 2, 4]));
    }

    #[test]
    fn array_generator() {
        // 1-d: positions with values > 90 (the §3 example).
        let v = run("{i | [\\i : \\x] <- [[10, 95, 20, 99]], x > 90}");
        assert_eq!(v, nats(&[1, 3]));
        // 2-d with tuple index pattern.
        let v = run("{i + j | [(\\i, \\j) : \\x] <- [[2, 2; 5, 6, 7, 8]], x > 6}");
        assert_eq!(v, nats(&[1, 2]));
    }

    #[test]
    fn tabulation_and_subscript() {
        assert_eq!(run("[[ i * i | \\i < 4 ]][3]"), Value::Nat(9));
        assert_eq!(run("[[10, 20, 30]][1]"), Value::Nat(20));
        assert_eq!(run("[[2, 2; 1, 2, 3, 4]][1, 0]"), Value::Nat(3));
        assert_eq!(run("[[1, 2, 3]][9]"), Value::Bottom);
    }

    #[test]
    fn builtins() {
        assert_eq!(run("gen!3"), nats(&[0, 1, 2]));
        assert_eq!(run("len![[5, 6]]"), Value::Nat(2));
        assert_eq!(run("dim_1![[5, 6]]"), Value::Nat(2));
        assert_eq!(
            run("dim_2![[2, 3; 0, 0, 0, 0, 0, 0]]"),
            Value::tuple(vec![Value::Nat(2), Value::Nat(3)])
        );
        assert_eq!(run("dim_2_2![[2, 3; 0, 0, 0, 0, 0, 0]]"), Value::Nat(3));
        assert_eq!(run("pi_2_2!(7, 8)"), Value::Nat(8));
        assert_eq!(run("min!{3, 1, 2}"), Value::Nat(1));
        assert_eq!(run("max!(gen!5)"), Value::Nat(4));
        assert_eq!(run("get!{42}"), Value::Nat(42));
        assert_eq!(run("member(2, gen!4)"), Value::Bool(true));
        assert_eq!(run("count!(gen!7)"), Value::Nat(7));
        assert_eq!(run("dom![[9, 9]]"), nats(&[0, 1]));
        assert_eq!(run("rng![[9, 9, 4]]"), nats(&[4, 9]));
        assert_eq!(run("summap(fn \\x => x * 2)!(gen!4)"), Value::Nat(12));
        assert_eq!(run("bottom"), Value::Bottom);
    }

    #[test]
    fn index_builtin() {
        let v = run("index_1!{(1, \"a\"), (3, \"b\"), (1, \"c\")}");
        let a = v.as_array().unwrap();
        assert_eq!(a.dims(), &[4]);
        assert_eq!(a.get(&[1]).unwrap().as_set().unwrap().len(), 2);
    }

    #[test]
    fn lambda_patterns_and_blocks() {
        assert_eq!(run("(fn (\\a, \\b) => a + b)!(20, 22)"), Value::Nat(42));
        assert_eq!(run("(fn _ => 9)!1"), Value::Nat(9));
        assert_eq!(
            run("let val \\x = 3 val (\\a, \\b) = (x, x + 1) in a * b end"),
            Value::Nat(12)
        );
    }

    #[test]
    fn call_sugar() {
        assert_eq!(run("(fn (\\a, \\b) => a - b)(50, 8)"), Value::Nat(42));
    }

    #[test]
    fn shadowing_builtins() {
        // A lexically bound `gen` shadows the builtin.
        assert_eq!(run("(fn \\gen => gen + 1)!4"), Value::Nat(5));
    }

    #[test]
    fn bag_comprehensions() {
        let v = run("{| x % 2 | \\x <- {|1, 2, 3, 4|} |}");
        let bag = v.as_bag().unwrap();
        assert_eq!(bag.count(&Value::Nat(0)), 2);
        assert_eq!(bag.count(&Value::Nat(1)), 2);
        assert_eq!(run("count!{1, 1, 2}"), Value::Nat(2));
    }

    #[test]
    fn union_operators() {
        assert_eq!(run("{1} union {2, 3}"), nats(&[1, 2, 3]));
        let v = run("{|1|} bunion {|1|}");
        assert_eq!(v.as_bag().unwrap().count(&Value::Nat(1)), 2);
    }

    #[test]
    fn nest_in_surface_syntax() {
        // The §3 one-liner: nest = fn \X => {(x, {y | (x,\y) <- X}) | (\x,_) <- X}
        let v = run(
            "(fn \\X => {(x, {y | (x, \\y) <- X}) | (\\x, _) <- X})!{(1, 5), (1, 6), (2, 7)}",
        );
        let s = v.as_set().unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn evenpos_of_intro() {
        // §1: evenpos(A) = [[A[i*2] | \i < len(A)/2]]
        let v = run("(fn \\A => [[ A[i * 2] | \\i < len!A / 2 ]])![[0, 1, 2, 3, 4, 5]]");
        let a = v.as_array().unwrap();
        let got: Vec<u64> = a.data().iter().map(|x| x.as_nat().unwrap()).collect();
        assert_eq!(got, vec![0, 2, 4]);
    }
}
