//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io access, so the workspace
//! vendors the slice of the proptest API its property suites use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, strategies for ranges, tuples, vectors,
//! unions and character-class string patterns, [`collection::vec`],
//! [`arbitrary::any`], a deterministic [`test_runner::TestRunner`], and
//! the `proptest!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is seeded deterministically from the test name (so runs
//! are reproducible without a regression file), and failing cases are
//! reported but not shrunk. Both are acceptable for CI-style property
//! checking; neither changes what a passing suite certifies.

#![warn(missing_docs)]

/// Deterministic RNG and test-loop driver.
pub mod test_runner {
    /// How many cases `proptest!` runs per property (overridable with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Build a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A uniform usize in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Drives strategy sampling; mirrors `proptest::test_runner::TestRunner`.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed, for reproducible ad-hoc sampling.
        pub fn deterministic() -> Self {
            TestRunner { rng: TestRng::from_seed(0x5EED_CAFE_F00D_D00D) }
        }

        /// A runner seeded from a test name (used by the `proptest!`
        /// macro so each property gets a distinct but stable stream).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { rng: TestRng::from_seed(h) }
        }

        /// The underlying RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }

    /// A sampled value, as returned by `Strategy::new_tree`.
    ///
    /// Real proptest trees support shrinking; this shim only carries
    /// the current value.
    #[derive(Debug, Clone)]
    pub struct ValueTree<T> {
        pub(crate) value: T,
    }

    impl<T: Clone> ValueTree<T> {
        /// The sampled value.
        pub fn current(&self) -> T {
            self.value.clone()
        }
    }
}

/// The `Strategy` trait and its combinators.
pub mod strategy {
    use crate::test_runner::{TestRng, TestRunner, ValueTree};
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }

        /// Build a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into one for the next
        /// level. Recursion depth is bounded by `depth` levels.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth.max(1) {
                let leaf = strat.clone();
                let deeper = recurse(strat).boxed();
                strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    // Bias toward the recursive case; depth stays
                    // bounded because each level wraps the previous.
                    if rng.next_u64() % 4 < 3 {
                        (deeper.0)(rng)
                    } else {
                        (leaf.0)(rng)
                    }
                }));
            }
            strat
        }

        /// Sample one value through a runner (no shrinking).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<Self::Value>, String> {
            Ok(ValueTree { value: self.generate(runner.rng()) })
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform (or weighted) choice among boxed alternatives; built by
    /// `prop_oneof!`.
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Uniform choice among `arms`.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Weighted choice among `arms`; weights need not sum to
        /// anything in particular.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total_weight;
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms[self.arms.len() - 1].1.generate(rng)
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// `&'static str` patterns act as character-class regexes: literal
    /// characters, `[a-z0-9_]`-style classes, and the quantifiers
    /// `{n}`, `{lo,hi}`, `?`, `*`, `+`. This covers the simple string
    /// shapes the test suites request (e.g. `"[a-z]{0,6}"`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let candidates: Vec<char> = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad character class in `{pattern}`");
                            set.extend(lo..=hi);
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated `[` in `{pattern}`");
                    i += 1; // consume ']'
                    set
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "trailing `\\` in `{pattern}`");
                    let c = chars[i + 1];
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi): (usize, usize) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .unwrap_or_else(|| panic!("unterminated `{{` in `{pattern}`"))
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((a, b)) => (
                                a.trim().parse().expect("bad repeat bound"),
                                b.trim().parse().expect("bad repeat bound"),
                            ),
                            None => {
                                let n: usize = body.trim().parse().expect("bad repeat count");
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad repeat range in `{pattern}`");
            let reps = lo + rng.below(hi - lo + 1);
            for _ in 0..reps {
                if !candidates.is_empty() {
                    out.push(candidates[rng.below(candidates.len())]);
                }
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Canonical strategy for `bool`: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Alias so `prop::collection::vec(...)` resolves, as in real proptest.
    pub use crate as prop;
}

/// Choose among strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::from_name(stringify!($name));
                for case in 0..config.cases {
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), runner.rng());)+
                        $body
                    }));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "[proptest-shim] property `{}` failed on case {}/{} \
                             (deterministic seed derived from the test name)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut runner = TestRunner::deterministic();
        let s = (0u64..10, 0.0f64..1.0, 1u8..3);
        for _ in 0..64 {
            let (a, b, c) = s.new_tree(&mut runner).unwrap().current();
            assert!(a < 10);
            assert!((0.0..1.0).contains(&b));
            assert!((1..3).contains(&c));
        }
    }

    #[test]
    fn vec_sizes_are_respected() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..64 {
            let exact = prop::collection::vec(0u32..5, 3).new_tree(&mut runner).unwrap().current();
            assert_eq!(exact.len(), 3);
            let ranged =
                prop::collection::vec(0u32..5, 1..4).new_tree(&mut runner).unwrap().current();
            assert!((1..=3).contains(&ranged.len()));
            let incl =
                prop::collection::vec(0u32..5, 1..=2).new_tree(&mut runner).unwrap().current();
            assert!((1..=2).contains(&incl.len()));
        }
    }

    #[test]
    fn string_patterns() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..64 {
            let s = "[a-z]{0,6}".new_tree(&mut runner).unwrap().current();
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "x[0-9]{2}".new_tree(&mut runner).unwrap().current();
            assert_eq!(t.len(), 3);
            assert!(t.starts_with('x'));
        }
    }

    #[test]
    fn oneof_map_flat_map_recursive() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(u64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(ts) => 1 + ts.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = prop_oneof![Just(T::Leaf(0)), (1u64..5).prop_map(T::Leaf)];
        let tree = leaf.prop_recursive(3, 8, 3, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(T::Node)
        });
        let pairs = tree.prop_flat_map(|t| (Just(t), 0u64..2));
        let mut runner = TestRunner::deterministic();
        for _ in 0..64 {
            let (t, k) = pairs.new_tree(&mut runner).unwrap().current();
            assert!(depth(&t) <= 3);
            assert!(k < 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u64..10, 0u64..10), v in prop::collection::vec(0u32..3, 0..4)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 3).count(), 0);
            prop_assert_ne!(a + 10, b);
        }
    }
}
