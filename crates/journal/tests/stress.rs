//! Journal concurrency stress: 8 writer threads hammering their rings
//! while a snapshot thread reads concurrently. Asserts the seqlock
//! contract — no torn records, monotonic epochs per thread, bounded
//! memory with oldest-first drops counted in the exported
//! `aql_journal_dropped_total` metric.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aql_journal::{dropped_total, intern, set_capacity, snapshot, Tag};

const THREADS: u64 = 8;
const WRITES: u64 = 1000;
const CAP: usize = 64;

#[test]
fn eight_writers_no_torn_records_bounded_memory() {
    set_capacity(CAP);
    let label = intern("stress:w");
    let before_dropped = dropped_total();
    let before_metric = aql_metrics::family_total("aql_journal_dropped_total");

    // Concurrent reader: snapshots must never observe a torn record
    // (bad tag, wrong label, out-of-range payload) while writers run.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0usize;
            let mut quiescent_rounds = 0;
            // Keep snapshotting while writers run, plus a few rounds
            // after they stop (the writers can finish before this
            // thread is even scheduled).
            while quiescent_rounds < 3 {
                if stop.load(Ordering::Relaxed) {
                    quiescent_rounds += 1;
                }
                let j = snapshot();
                for e in j.events.iter().filter(|e| e.label == label) {
                    assert_eq!(e.tag, Tag::CacheMiss, "torn tag");
                    assert!(e.a >= 1 && e.a <= THREADS, "torn payload a: {}", e.a);
                    assert!(e.b < WRITES, "torn payload b: {}", e.b);
                    assert!(e.epoch >= 1, "epoch must be 1-based");
                    seen += 1;
                }
            }
            seen
        })
    };

    let writers: Vec<_> = (1..=THREADS)
        .map(|marker| {
            std::thread::spawn(move || {
                for i in 0..WRITES {
                    // a = writer marker, b = per-writer sequence.
                    aql_journal::record(Tag::CacheMiss, label, marker, i);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    let seen_live = reader.join().expect("reader");
    assert!(seen_live > 0, "concurrent snapshots saw events");

    // Quiescent snapshot: exact retention and ordering guarantees.
    let journal = snapshot();
    for marker in 1..=THREADS {
        let mut mine: Vec<_> = journal
            .events
            .iter()
            .filter(|e| e.label == label && e.a == marker)
            .collect();
        assert_eq!(
            mine.len(),
            CAP,
            "bounded memory: exactly one ring of records per writer"
        );
        mine.sort_by_key(|e| e.epoch);
        for pair in mine.windows(2) {
            assert!(
                pair[0].epoch < pair[1].epoch,
                "epochs monotonic per thread"
            );
            assert_eq!(
                pair[0].b + 1,
                pair[1].b,
                "retained records are a contiguous run"
            );
        }
        // Oldest-first drop: the survivors are the NEWEST records.
        assert_eq!(mine.last().map(|e| e.b), Some(WRITES - 1));
        assert_eq!(mine.first().map(|e| e.b), Some(WRITES - CAP as u64));
    }

    // Drop accounting: each writer overwrote WRITES - CAP records,
    // visible in both the per-ring counters and the exported metric.
    let dropped = dropped_total() - before_dropped;
    let expected = THREADS * (WRITES - CAP as u64);
    assert!(
        dropped >= expected,
        "dropped_total counted overwrites: {dropped} < {expected}"
    );
    let metric = aql_metrics::family_total("aql_journal_dropped_total") - before_metric;
    assert!(
        metric >= expected,
        "aql_journal_dropped_total exported: {metric} < {expected}"
    );
}
