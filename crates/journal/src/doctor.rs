//! `\doctor` — incident and live-journal analysis.
//!
//! Turns a frozen [`Incident`] (or the live flight recorder) into a
//! plain-language report: what failed, which source was involved, how
//! the cache behaved, and what the retry/breaker timeline looked like
//! in the moments before. The analyzer is pure — string in, string
//! out — so the REPL command, the `doctor` CLI, and the end-to-end
//! chaos test all share one implementation.

use std::collections::BTreeMap;

use aql_trace::json::Json;

use crate::attr::Ledger;
use crate::incident::{Incident, IncidentKind};
use crate::{Journal, Tag};

/// The failure class the analyzer pins an incident on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Transient I/O faults (retried reads, injected transients).
    TransientIo,
    /// Data corruption (checksum mismatches, malformed chunks).
    Corruption,
    /// Governor or limits budget exhausted.
    ResourceExhausted,
    /// A circuit breaker is open / the source is unavailable.
    Unavailable,
    /// The statement's deadline expired.
    Deadline,
    /// The statement was cancelled.
    Cancelled,
    /// No failure — the statement was just slow.
    SlowQuery,
    /// Nothing to diagnose: no incident, no error, and no fault
    /// signatures (retries, breaker events, governor pressure, load
    /// errors) in the window. A clean session's `\doctor;` lands here.
    Healthy,
    /// Nothing matched; the report still shows the evidence.
    Unknown,
}

impl FaultClass {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::TransientIo => "transient-io",
            FaultClass::Corruption => "corruption",
            FaultClass::ResourceExhausted => "resource-exhausted",
            FaultClass::Unavailable => "unavailable",
            FaultClass::Deadline => "deadline",
            FaultClass::Cancelled => "cancelled",
            FaultClass::SlowQuery => "slow-query",
            FaultClass::Healthy => "healthy",
            FaultClass::Unknown => "unknown",
        }
    }
}

/// Classify a failure from the error text and the event window.
pub fn classify(kind: Option<IncidentKind>, error: Option<&str>, events: &Journal) -> FaultClass {
    let msg = error.unwrap_or("").to_ascii_lowercase();
    if msg.contains("checksum") || msg.contains("corrupt") {
        return FaultClass::Corruption;
    }
    if msg.contains("deadline") {
        return FaultClass::Deadline;
    }
    if msg.contains("cancel") || msg.contains("interrupt") {
        return FaultClass::Cancelled;
    }
    if msg.contains("budget") || msg.contains("exhausted") || msg.contains("resource") {
        return FaultClass::ResourceExhausted;
    }
    // The error text outranks the event window from here on: the
    // window is a process-wide tail and can carry a neighboring
    // statement's breaker events, but the message is this failure's.
    if msg.contains("transient") || msg.contains("i/o") || msg.contains("io error") {
        return FaultClass::TransientIo;
    }
    let tripped = events
        .events
        .iter()
        .any(|e| matches!(e.tag, Tag::BreakerTrip | Tag::BreakerFastFail));
    if msg.contains("unavailable") || (tripped && error.is_some()) {
        return FaultClass::Unavailable;
    }
    if kind == Some(IncidentKind::BreakerTrip) || tripped {
        return FaultClass::Unavailable;
    }
    if events.events.iter().any(|e| e.tag == Tag::Retry) {
        if error.is_none() && kind == Some(IncidentKind::Slow) {
            return FaultClass::SlowQuery;
        }
        return FaultClass::TransientIo;
    }
    if kind == Some(IncidentKind::ResourceExhausted)
        || events.events.iter().any(|e| e.tag == Tag::GovernorDeny)
    {
        return FaultClass::ResourceExhausted;
    }
    if kind == Some(IncidentKind::Slow) {
        return FaultClass::SlowQuery;
    }
    // A live-journal diagnosis (no incident, no error) whose window
    // carries no fault signature at all is a healthy session, not an
    // unrecognized fault.
    if kind.is_none()
        && error.is_none()
        && !events.events.iter().any(|e| {
            matches!(
                e.tag,
                Tag::Retry
                    | Tag::BreakerTrip
                    | Tag::BreakerProbe
                    | Tag::BreakerFastFail
                    | Tag::GovernorShed
                    | Tag::GovernorDeny
                    | Tag::CacheLoadError
                    | Tag::SlowQuery
            )
        })
    {
        return FaultClass::Healthy;
    }
    FaultClass::Unknown
}

/// The source label most implicated in the failure: the label on the
/// most recent load-error / retry / breaker event, falling back to the
/// attribution row with the most load errors or retries.
pub fn failing_source(events: &Journal, attribution: Option<&Ledger>) -> Option<String> {
    let from_events = events
        .events
        .iter()
        .rev()
        .find(|e| {
            matches!(
                e.tag,
                Tag::CacheLoadError | Tag::Retry | Tag::BreakerTrip | Tag::BreakerFastFail
            ) && e.label != 0
        })
        .map(|e| e.label_str());
    if from_events.is_some() {
        return from_events;
    }
    attribution.and_then(|l| {
        l.sources
            .iter()
            .filter(|(_, c)| c.load_errors + c.retries > 0)
            .max_by_key(|(_, c)| c.load_errors + c.retries)
            .map(|(label, _)| label.clone())
    })
}

/// Per-source cache behavior aggregated from the event window (used
/// when no attribution ledger is available, and to cross-check one).
#[derive(Debug, Default, Clone, Copy)]
struct CacheRow {
    hits: u64,
    misses: u64,
    warm: u64,
    bytes: u64,
    evictions: u64,
    load_errors: u64,
    retries: u64,
}

fn cache_rows(events: &Journal) -> BTreeMap<String, CacheRow> {
    let mut rows: BTreeMap<String, CacheRow> = BTreeMap::new();
    for e in &events.events {
        let row = || -> String {
            let l = e.label_str();
            if l.is_empty() { "(unlabeled)".to_string() } else { l }
        };
        match e.tag {
            Tag::CacheHit => rows.entry(row()).or_default().hits += e.a,
            Tag::CacheMiss => {
                let r = rows.entry(row()).or_default();
                r.misses += 1;
                r.bytes += e.a;
            }
            Tag::CacheWarm => {
                let r = rows.entry(row()).or_default();
                r.warm += 1;
                r.bytes += e.a;
            }
            Tag::CacheEvict => rows.entry(row()).or_default().evictions += e.a,
            Tag::CacheLoadError => rows.entry(row()).or_default().load_errors += 1,
            Tag::Retry => rows.entry(row()).or_default().retries += 1,
            _ => {}
        }
    }
    rows
}

fn push_timeline(out: &mut String, events: &Journal) {
    let interesting: Vec<_> = events
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.tag,
                Tag::Retry
                    | Tag::BreakerTrip
                    | Tag::BreakerProbe
                    | Tag::BreakerFastFail
                    | Tag::GovernorShed
                    | Tag::GovernorDeny
                    | Tag::CacheLoadError
                    | Tag::SlowQuery
            )
        })
        .collect();
    if interesting.is_empty() {
        out.push_str("timeline: no retries, breaker events, or governor pressure recorded\n");
        return;
    }
    out.push_str("timeline:\n");
    let t0 = interesting.first().map(|e| e.t_us).unwrap_or(0);
    for e in interesting {
        let dt = e.t_us.saturating_sub(t0);
        let label = e.label_str();
        let what = match e.tag {
            Tag::Retry => format!("retry attempt {} on `{label}`", e.a),
            Tag::BreakerTrip => format!("breaker TRIPPED open for `{label}`"),
            Tag::BreakerProbe => format!("breaker half-open probe on `{label}`"),
            Tag::BreakerFastFail => format!("fast-fail: breaker open for `{label}`"),
            Tag::GovernorShed => "governor shed a cached chunk".to_string(),
            Tag::GovernorDeny => format!("governor DENIED a {} B charge", e.a),
            Tag::CacheLoadError => format!("chunk load error on `{label}`"),
            Tag::SlowQuery => format!("slow-query threshold crossed ({:.1} ms)", e.b as f64 / 1e6),
            _ => continue,
        };
        out.push_str(&format!("  +{:>8} us  {what}\n", dt));
    }
}

/// Analyze a loaded incident file into a human-readable report.
pub fn diagnose(inc: &Incident) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "incident: {} (statement #{}, kind `{}`, hash {}, {:.3} ms)\n",
        inc.kind.name(),
        inc.seq,
        inc.stmt_kind,
        inc.stmt_hash,
        inc.dur_ns as f64 / 1e6
    ));
    if let Some(err) = &inc.error {
        out.push_str(&format!("error: {err}\n"));
    }
    out.push_str(&body(&inc.events, inc.attribution.as_ref(), Some(inc.kind), inc.error.as_deref()));
    if !inc.metrics_delta.is_empty() {
        out.push_str("metrics moved during the statement:\n");
        for (series, delta) in inc.metrics_delta.iter().take(12) {
            out.push_str(&format!("  {series}: +{delta}\n"));
        }
        if inc.metrics_delta.len() > 12 {
            out.push_str(&format!("  … {} more series\n", inc.metrics_delta.len() - 12));
        }
    }
    out
}

/// Analyze the live flight recorder (no incident file), with an
/// optional attribution ledger from the last statement.
pub fn diagnose_live(journal: &Journal, attribution: Option<&Ledger>) -> String {
    let mut out = format!(
        "live journal: {} events across {} thread(s)\n",
        journal.events.len(),
        {
            let mut threads: Vec<u64> = journal.events.iter().map(|e| e.thread).collect();
            threads.sort_unstable();
            threads.dedup();
            threads.len().max(1)
        }
    );
    out.push_str(&body(journal, attribution, None, None));
    out
}

/// Machine-readable counterpart of [`diagnose`]: one JSON object with
/// stable keys for scripts and the doctor CLI's `--json` mode. Keys
/// are part of the tool's contract — new keys may be added, existing
/// ones are never renamed or removed.
pub fn diagnose_json(inc: &Incident) -> String {
    let mut obj = vec![
        ("schema_version".to_string(), Json::Num(1.0)),
        ("incident_kind".to_string(), Json::Str(inc.kind.name().to_string())),
        ("seq".to_string(), Json::Num(inc.seq as f64)),
        ("stmt_kind".to_string(), Json::Str(inc.stmt_kind.clone())),
        ("stmt_hash".to_string(), Json::Str(inc.stmt_hash.clone())),
        ("dur_ns".to_string(), Json::Num(inc.dur_ns as f64)),
        ("error".to_string(), inc.error.clone().map(Json::Str).unwrap_or(Json::Null)),
    ];
    obj.extend(json_analysis(
        &inc.events,
        inc.attribution.as_ref(),
        Some(inc.kind),
        inc.error.as_deref(),
    ));
    obj.push((
        "metrics_delta".to_string(),
        Json::Obj(
            inc.metrics_delta
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        ),
    ));
    Json::Obj(obj).write()
}

/// Machine-readable counterpart of [`diagnose_live`]: same analysis
/// keys as [`diagnose_json`], minus the incident metadata.
pub fn diagnose_live_json(journal: &Journal, attribution: Option<&Ledger>) -> String {
    let mut obj = vec![
        ("schema_version".to_string(), Json::Num(1.0)),
        ("incident_kind".to_string(), Json::Null),
        ("events".to_string(), Json::Num(journal.events.len() as f64)),
    ];
    obj.extend(json_analysis(journal, attribution, None, None));
    Json::Obj(obj).write()
}

/// Analysis keys shared by [`diagnose_json`] and
/// [`diagnose_live_json`]: fault class, failing/dominant source,
/// governor counters, and the diagnosis sentence.
fn json_analysis(
    events: &Journal,
    attribution: Option<&Ledger>,
    kind: Option<IncidentKind>,
    error: Option<&str>,
) -> Vec<(String, Json)> {
    let class = classify(kind, error, events);
    let source = failing_source(events, attribution);
    let dominant = dominant_source(events, attribution);
    let subject = subject_for(source.as_deref());
    let mut out = vec![
        ("fault_class".to_string(), Json::Str(class.name().to_string())),
        ("failing_source".to_string(), source.map(Json::Str).unwrap_or(Json::Null)),
        (
            "dominant_source".to_string(),
            match &dominant {
                Some((label, bytes)) => Json::Obj(vec![
                    ("label".to_string(), Json::Str(label.clone())),
                    ("bytes".to_string(), Json::Num(*bytes as f64)),
                ]),
                None => Json::Null,
            },
        ),
        (
            "governor".to_string(),
            match attribution {
                Some(l) => Json::Obj(vec![
                    ("peak_bytes".to_string(), Json::Num(l.governor_peak_bytes as f64)),
                    ("sheds".to_string(), Json::Num(l.governor_sheds as f64)),
                    ("denials".to_string(), Json::Num(l.governor_denials as f64)),
                ]),
                None => Json::Null,
            },
        ),
    ];
    out.push(("diagnosis".to_string(), Json::Str(advice_for(class, &subject))));
    out
}

/// Dominant cost source: prefer the precise attribution ledger, fall
/// back to byte counts reconstructed from the event window.
fn dominant_source(
    events: &Journal,
    attribution: Option<&Ledger>,
) -> Option<(String, u64)> {
    attribution
        .and_then(|l| l.dominant_source().map(|(s, c)| (s.to_string(), c.total_bytes())))
        .or_else(|| {
            let rows = cache_rows(events);
            rows.iter()
                .filter(|(_, r)| r.bytes > 0)
                .max_by_key(|(_, r)| r.bytes)
                .map(|(l, r)| (l.clone(), r.bytes))
        })
}

/// The `diagnosis: …` sentence for a classified fault. `subject` is
/// either ``source `<label>` `` or "the statement".
fn advice_for(class: FaultClass, subject: &str) -> String {
    match class {
        FaultClass::TransientIo => format!(
            "diagnosis: {subject} hit transient I/O faults; retries were spent before the \
             outcome. If this recurs, raise the retry budget or investigate the backing store."
        ),
        FaultClass::Corruption => format!(
            "diagnosis: {subject} returned corrupt data (checksum mismatch). Retries cannot \
             fix corruption — verify the file on disk (`aqf`/NetCDF) and restore from a good copy."
        ),
        FaultClass::ResourceExhausted => format!(
            "diagnosis: {subject} exhausted the memory governor's budget. Raise the budget, \
             shrink the working set, or let eviction shed colder bindings first."
        ),
        FaultClass::Unavailable => format!(
            "diagnosis: {subject} is unavailable — its circuit breaker opened after repeated \
             failures. Calls fast-fail until the cooldown elapses; check the backing store's health."
        ),
        FaultClass::Deadline => format!(
            "diagnosis: {subject} exceeded its deadline. Narrow the subslab, raise the limit, \
             or check whether cold reads (see the cost source above) dominated the wall time."
        ),
        FaultClass::Cancelled => {
            "diagnosis: the statement was cancelled or interrupted before completing.".to_string()
        }
        FaultClass::SlowQuery => format!(
            "diagnosis: no failure — {subject} was just slow. The dominant cost source above \
             shows where the bytes went; consider prefetch, a larger cache budget, or a \
             narrower subslab."
        ),
        FaultClass::Healthy => {
            "diagnosis: nothing wrong — no errors, retries, breaker events, or governor \
             pressure recorded. The session is healthy; there is nothing to diagnose."
                .to_string()
        }
        FaultClass::Unknown => format!(
            "diagnosis: no specific fault signature recognized for {subject}; inspect the \
             timeline and metrics deltas above."
        ),
    }
}

/// ``source `<label>` `` when a failing source is known, else "the
/// statement".
fn subject_for(source: Option<&str>) -> String {
    source
        .filter(|s| !s.is_empty())
        .map(|s| format!("source `{s}`"))
        .unwrap_or_else(|| "the statement".to_string())
}

fn body(
    events: &Journal,
    attribution: Option<&Ledger>,
    kind: Option<IncidentKind>,
    error: Option<&str>,
) -> String {
    let mut out = String::new();

    let rows = cache_rows(events);
    let dominant = dominant_source(events, attribution);
    match &dominant {
        Some((label, bytes)) => out.push_str(&format!(
            "dominant cost source: `{label}` ({bytes} B moved)\n"
        )),
        None => out.push_str("dominant cost source: none (no chunk bytes moved)\n"),
    }

    // Cache behavior per source.
    if let Some(ledger) = attribution {
        if !ledger.sources.is_empty() {
            out.push_str("cache behavior (attributed):\n");
            for (label, c) in &ledger.sources {
                let shown = if label.is_empty() { "(unlabeled)" } else { label };
                let total = c.hits + c.chunks_loaded;
                let rate = if total > 0 { c.hits as f64 / total as f64 * 100.0 } else { 0.0 };
                out.push_str(&format!(
                    "  {shown}: {:.0}% hit rate ({} hits / {} loads), {} B read, {} B prefetched, \
                     {} evictions, {} load errors, {} retries\n",
                    rate,
                    c.hits,
                    c.chunks_loaded,
                    c.bytes_read,
                    c.prefetched_bytes,
                    c.evictions,
                    c.load_errors,
                    c.retries
                ));
            }
        }
        out.push_str(&format!(
            "governor: peak {} B in use, {} sheds, {} denials\n",
            ledger.governor_peak_bytes, ledger.governor_sheds, ledger.governor_denials
        ));
    } else if !rows.is_empty() {
        out.push_str("cache behavior (from events):\n");
        for (label, r) in &rows {
            let total = r.hits + r.misses + r.warm;
            let rate = if total > 0 { r.hits as f64 / total as f64 * 100.0 } else { 0.0 };
            out.push_str(&format!(
                "  {label}: {:.0}% hit rate ({} hits / {} misses / {} warm), {} B, \
                 {} evictions, {} load errors, {} retries\n",
                rate, r.hits, r.misses, r.warm, r.bytes, r.evictions, r.load_errors, r.retries
            ));
        }
    }

    push_timeline(&mut out, events);

    // Plain-language diagnosis.
    let class = classify(kind, error, events);
    let source = failing_source(events, attribution);
    out.push_str(&format!("fault class: {}\n", class.name()));
    let subject = subject_for(source.as_deref());
    out.push_str(&advice_for(class, &subject));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::SourceCounts;
    use crate::{intern, Event};

    fn ev(tag: Tag, label: u16, a: u64, b: u64, t_us: u64) -> Event {
        Event { thread: 1, epoch: t_us, t_us, tag, label, a, b }
    }

    fn incident_with(
        kind: IncidentKind,
        error: Option<&str>,
        events: Vec<Event>,
        ledger: Option<Ledger>,
    ) -> Incident {
        Incident {
            kind,
            seq: 3,
            stmt_hash: "deadbeefdeadbeef".to_string(),
            stmt_kind: "query".to_string(),
            dur_ns: 2_000_000,
            error: error.map(str::to_string),
            events: Journal { events },
            attribution: ledger,
            metrics_delta: vec![("aql_store_chunk_retries_total".to_string(), 2)],
        }
    }

    #[test]
    fn classifies_transient_io_with_failing_source() {
        let l = intern("netcdf:grid");
        let inc = incident_with(
            IncidentKind::Error,
            Some("storage: chunk read failed after 3 attempts: injected transient fault"),
            vec![ev(Tag::Retry, l, 1, 0, 10), ev(Tag::Retry, l, 2, 0, 20)],
            None,
        );
        let report = diagnose(&inc);
        assert!(report.contains("fault class: transient-io"), "{report}");
        assert!(report.contains("netcdf:grid"), "{report}");
        assert!(report.contains("retry attempt 2"), "{report}");
    }

    #[test]
    fn diagnose_json_golden() {
        let l = intern("netcdf:grid");
        let inc = incident_with(
            IncidentKind::Error,
            Some("storage: chunk read failed after 3 attempts: injected transient fault"),
            vec![ev(Tag::Retry, l, 1, 0, 10), ev(Tag::Retry, l, 2, 0, 20)],
            None,
        );
        let got = diagnose_json(&inc);
        let want = concat!(
            "{\"schema_version\":1,",
            "\"incident_kind\":\"error\",",
            "\"seq\":3,",
            "\"stmt_kind\":\"query\",",
            "\"stmt_hash\":\"deadbeefdeadbeef\",",
            "\"dur_ns\":2000000,",
            "\"error\":\"storage: chunk read failed after 3 attempts: injected transient fault\",",
            "\"fault_class\":\"transient-io\",",
            "\"failing_source\":\"netcdf:grid\",",
            "\"dominant_source\":null,",
            "\"governor\":null,",
            "\"diagnosis\":\"diagnosis: source `netcdf:grid` hit transient I/O faults; ",
            "retries were spent before the outcome. If this recurs, raise the retry ",
            "budget or investigate the backing store.\",",
            "\"metrics_delta\":{\"aql_store_chunk_retries_total\":2}}",
        );
        assert_eq!(got, want);
        // And it must be strict JSON our own parser accepts.
        let parsed = Json::parse(&got).expect("diagnose_json emits parseable JSON");
        assert_eq!(parsed.get("fault_class").and_then(Json::as_str), Some("transient-io"));
    }

    #[test]
    fn diagnose_json_reports_dominant_source_and_governor_from_ledger() {
        let counts = SourceCounts {
            chunks_loaded: 4,
            bytes_read: 4096,
            ..SourceCounts::default()
        };
        let ledger = Ledger {
            sources: vec![("aqf:sst".to_string(), counts)],
            governor_peak_bytes: 1 << 20,
            governor_sheds: 1,
            ..Ledger::default()
        };
        let inc = incident_with(IncidentKind::Slow, None, vec![], Some(ledger));
        let parsed = Json::parse(&diagnose_json(&inc)).expect("parseable");
        let dom = parsed.get("dominant_source").expect("dominant_source key");
        assert_eq!(dom.get("label").and_then(Json::as_str), Some("aqf:sst"));
        assert_eq!(dom.get("bytes").and_then(Json::as_u64), Some(4096));
        let gov = parsed.get("governor").expect("governor key");
        assert_eq!(gov.get("peak_bytes").and_then(Json::as_u64), Some(1 << 20));
        assert_eq!(gov.get("sheds").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("fault_class").and_then(Json::as_str), Some("slow-query"));
        assert_eq!(parsed.get("error"), Some(&Json::Null));
    }

    #[test]
    fn diagnose_live_json_has_stable_shape() {
        let journal = Journal { events: vec![] };
        let parsed = Json::parse(&diagnose_live_json(&journal, None)).expect("parseable");
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("incident_kind"), Some(&Json::Null));
        assert_eq!(parsed.get("events").and_then(Json::as_u64), Some(0));
        assert_eq!(parsed.get("fault_class").and_then(Json::as_str), Some("healthy"));
    }

    #[test]
    fn classifies_corruption_over_transient() {
        let inc = incident_with(
            IncidentKind::Error,
            Some("storage: chunk checksum mismatch at chunk 4"),
            vec![ev(Tag::Retry, intern("aqf:blob"), 1, 0, 10)],
            None,
        );
        let report = diagnose(&inc);
        assert!(report.contains("fault class: corruption"), "{report}");
        assert!(report.contains("verify the file on disk"), "{report}");
    }

    #[test]
    fn classifies_breaker_and_budget() {
        let l = intern("remote:s3");
        let trip = incident_with(
            IncidentKind::BreakerTrip,
            None,
            vec![ev(Tag::BreakerTrip, l, 0, 0, 10)],
            None,
        );
        assert!(diagnose(&trip).contains("fault class: unavailable"));
        assert!(diagnose(&trip).contains("remote:s3"));

        let deny = incident_with(
            IncidentKind::Error,
            Some("storage: budget exceeded: requested 4096 B, budget 1024 B"),
            vec![ev(Tag::GovernorDeny, 0, 4096, 0, 10)],
            None,
        );
        let report = diagnose(&deny);
        assert!(report.contains("fault class: resource-exhausted"), "{report}");
        assert!(report.contains("DENIED a 4096 B charge"), "{report}");
    }

    #[test]
    fn slow_incidents_report_dominant_source_from_attribution() {
        let mut ledger = Ledger::default();
        ledger.sources.push((
            "netcdf:tas".to_string(),
            SourceCounts { hits: 5, chunks_loaded: 20, bytes_read: 1 << 20, ..Default::default() },
        ));
        ledger.sources.push((
            "mem:small".to_string(),
            SourceCounts { hits: 100, chunks_loaded: 1, bytes_read: 64, ..Default::default() },
        ));
        let inc = incident_with(IncidentKind::Slow, None, vec![], Some(ledger));
        let report = diagnose(&inc);
        assert!(report.contains("fault class: slow-query"), "{report}");
        assert!(
            report.contains("dominant cost source: `netcdf:tas`"),
            "{report}"
        );
        assert!(report.contains("20% hit rate"), "{report}");
    }

    #[test]
    fn live_diagnosis_reconstructs_cache_rows_from_events() {
        let l = intern("t_doc:live");
        let journal = Journal {
            events: vec![
                ev(Tag::CacheHit, l, 9, 0, 1),
                ev(Tag::CacheMiss, l, 4096, 0, 2),
                ev(Tag::CacheWarm, l, 8192, 0, 3),
            ],
        };
        let report = diagnose_live(&journal, None);
        assert!(report.contains("live journal: 3 events"), "{report}");
        assert!(report.contains("t_doc:live"), "{report}");
        assert!(report.contains("12288 B"), "{report}");
        assert!(report.contains("dominant cost source: `t_doc:live`"), "{report}");
    }

    #[test]
    fn empty_journal_still_produces_a_report() {
        let report = diagnose_live(&Journal::default(), None);
        assert!(report.contains("dominant cost source: none"), "{report}");
        assert!(report.contains("timeline: no retries"), "{report}");
    }

    #[test]
    fn clean_session_is_diagnosed_healthy() {
        // A live window with only healthy traffic — cache hits and
        // warm loads, no retries/breakers/errors — must say "nothing
        // wrong", not "unrecognized fault".
        let l = intern("nc:clean");
        let journal = Journal {
            events: vec![
                ev(Tag::CacheHit, l, 40, 0, 1),
                ev(Tag::CacheWarm, l, 4096, 0, 2),
                ev(Tag::CacheHit, l, 12, 0, 3),
            ],
        };
        let report = diagnose_live(&journal, None);
        assert!(report.contains("fault class: healthy"), "{report}");
        assert!(report.contains("nothing wrong"), "{report}");
        assert!(report.contains("nothing to diagnose"), "{report}");
        // The empty journal is healthy too.
        let empty = diagnose_live(&Journal::default(), None);
        assert!(empty.contains("fault class: healthy"), "{empty}");

        // One retry in the window and the session is no longer clean.
        let journal = Journal { events: vec![ev(Tag::Retry, l, 1, 0, 1)] };
        let report = diagnose_live(&journal, None);
        assert!(!report.contains("fault class: healthy"), "{report}");
    }
}
