//! # aql-journal — the always-on flight recorder
//!
//! The third leg of the observability stack (DESIGN.md §14): where
//! `aql-trace` describes *one profiled query* in full detail and
//! `aql-metrics` keeps *process-lifetime aggregates*, this crate keeps
//! a bounded record of **recent activity** — always on, near-zero
//! cost, and readable after the fact. When a statement fails, trips a
//! breaker, or blows its latency budget, the journal is the black box
//! that explains what the engine was doing in the moments before.
//!
//! ## Design
//!
//! * **Per-thread ring buffers.** Each thread that records gets its
//!   own fixed-capacity ring of slots; the write path is single-writer
//!   and therefore lock-free — no CAS loop, no shared tail pointer.
//!   A process-wide registry of rings lets [`snapshot`] fold every
//!   thread's events into one [`Journal`], mirroring how
//!   `Trace::merge` folds worker-thread traces under a parent span.
//! * **Seqlock slots.** Every slot carries a sequence word (odd while
//!   a write is in flight, `2 × epoch` when stable). Readers copy the
//!   payload and re-check the sequence, so a concurrent snapshot can
//!   never observe a torn record — it simply skips slots that moved
//!   under it.
//! * **Epoch-stamped, variable-length records.** Each record is a
//!   varint-encoded `(tag, t_us, label, a, b)` tuple (3–35 bytes);
//!   the per-thread epoch is the slot sequence, so ordering within a
//!   thread is exact even when the wall clock ties.
//! * **Oldest-first overflow.** The ring overwrites the oldest record
//!   when full; every overwrite increments the per-ring drop counter
//!   and the exported `aql_journal_dropped_total` metric.
//! * **Interned labels.** Event labels (source labels, phase names,
//!   statement kinds, outcome classes) come from small closed sets and
//!   are interned once into a process-wide table; records carry a
//!   16-bit id. The same cardinality rules as `aql-metrics` apply:
//!   never intern query text or user-controlled strings.
//!
//! ## Overhead contract
//!
//! Recording is one relaxed flag read, a varint encode into a stack
//! buffer, and a handful of relaxed stores into this thread's own
//! ring — no locks, no allocation. Cache *hits* (the hottest call
//! site) are coalesced per thread and flushed as one `CacheHit`
//! record with a count, so the hit path pays only a `Cell` bump. The
//! `store_bench --journal-overhead` gate asserts the end-to-end cost
//! of recorder-on vs recorder-off stays under 1%.

#![warn(missing_docs)]

pub mod attr;
pub mod doctor;
pub mod incident;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use aql_trace::json::Json;

/// Words of payload per slot; bounds the encoded record size.
const WORDS: usize = 5;
/// Maximum encoded record length in bytes (tag + four varints).
const MAX_PAYLOAD: usize = WORDS * 8;
/// Hard cap on the interned-label table, enforcing the closed-set
/// cardinality rule; overflowing labels collapse to id 0 (`""`).
const MAX_LABELS: usize = 4096;

/// Default per-thread ring capacity, in records.
pub const DEFAULT_CAPACITY: usize = 4096;

static M_DROPPED: aql_metrics::LazyCounter = aql_metrics::LazyCounter::new(
    "aql_journal_dropped_total",
    "Journal records overwritten (oldest-first) before being read.",
);

// ---- enable switch ---------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is the recorder on? (One relaxed load; the default is on.)
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable recording. A disabled record is a single
/// flag read; used by the `--journal-overhead` gate.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---- event vocabulary ------------------------------------------------

/// What happened. Together with the generic `label`/`a`/`b` payload
/// this is the whole event vocabulary; see each variant for how the
/// payload fields are used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Tag {
    /// Statement started: `label` = statement kind, `a` = statement
    /// sequence number, `b` = FNV-1a statement hash.
    StmtBegin = 1,
    /// Statement finished: `label` = outcome (`ok` or an error
    /// class), `a` = statement sequence number, `b` = duration in ns.
    StmtEnd = 2,
    /// Pipeline phase completed: `label` = phase name, `a` = duration
    /// in ns.
    Phase = 3,
    /// Coalesced cache hits: `label` = source, `a` = hit count.
    CacheHit = 4,
    /// Cache miss served from the source: `label` = source,
    /// `a` = payload bytes read.
    CacheMiss = 5,
    /// Cache miss served from the prefetch warm pool: `label` =
    /// source, `a` = payload bytes handed over.
    CacheWarm = 6,
    /// Chunks evicted: `label` = source, `a` = eviction count.
    CacheEvict = 7,
    /// Chunk loader returned an error: `label` = source.
    CacheLoadError = 8,
    /// Governor shed a cache entry to fit the process budget.
    GovernorShed = 9,
    /// Governor denied a charge: `a` = requested bytes.
    GovernorDeny = 10,
    /// Chunk read retried: `label` = source, `a` = attempt number.
    Retry = 11,
    /// Circuit breaker tripped open: `label` = source.
    BreakerTrip = 12,
    /// Half-open probe admitted: `label` = source.
    BreakerProbe = 13,
    /// Call rejected while the breaker was open: `label` = source.
    BreakerFastFail = 14,
    /// Speculative loads queued: `label` = source, `a` = count.
    PrefetchIssued = 15,
    /// Prefetched chunks discarded unconsumed: `label` = source,
    /// `a` = count.
    PrefetchWasted = 16,
    /// Statement crossed the slow-query threshold: `a` = statement
    /// sequence number, `b` = duration in ns.
    SlowQuery = 17,
    /// An incident file was written: `a` = statement sequence number.
    Incident = 18,
}

impl Tag {
    /// The tag's stable wire/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Tag::StmtBegin => "stmt_begin",
            Tag::StmtEnd => "stmt_end",
            Tag::Phase => "phase",
            Tag::CacheHit => "cache_hit",
            Tag::CacheMiss => "cache_miss",
            Tag::CacheWarm => "cache_warm",
            Tag::CacheEvict => "cache_evict",
            Tag::CacheLoadError => "cache_load_error",
            Tag::GovernorShed => "governor_shed",
            Tag::GovernorDeny => "governor_deny",
            Tag::Retry => "retry",
            Tag::BreakerTrip => "breaker_trip",
            Tag::BreakerProbe => "breaker_probe",
            Tag::BreakerFastFail => "breaker_fast_fail",
            Tag::PrefetchIssued => "prefetch_issued",
            Tag::PrefetchWasted => "prefetch_wasted",
            Tag::SlowQuery => "slow_query",
            Tag::Incident => "incident",
        }
    }

    /// Decode a wire byte back into a tag.
    pub fn from_u8(v: u8) -> Option<Tag> {
        Some(match v {
            1 => Tag::StmtBegin,
            2 => Tag::StmtEnd,
            3 => Tag::Phase,
            4 => Tag::CacheHit,
            5 => Tag::CacheMiss,
            6 => Tag::CacheWarm,
            7 => Tag::CacheEvict,
            8 => Tag::CacheLoadError,
            9 => Tag::GovernorShed,
            10 => Tag::GovernorDeny,
            11 => Tag::Retry,
            12 => Tag::BreakerTrip,
            13 => Tag::BreakerProbe,
            14 => Tag::BreakerFastFail,
            15 => Tag::PrefetchIssued,
            16 => Tag::PrefetchWasted,
            17 => Tag::SlowQuery,
            18 => Tag::Incident,
            _ => return None,
        })
    }

    /// Parse a JSON name back into a tag.
    pub fn from_name(name: &str) -> Option<Tag> {
        (1..=18u8).filter_map(Tag::from_u8).find(|t| t.name() == name)
    }
}

// ---- label interning -------------------------------------------------

fn labels() -> MutexGuard<'static, Vec<String>> {
    static LABELS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    LABELS
        .get_or_init(|| Mutex::new(vec![String::new()]))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// Intern `label` into the process-wide table, returning its id. Id 0
/// is the empty label. The table is capped (4096 entries) to enforce
/// the closed-set cardinality rule; past the cap every new label
/// collapses to 0.
pub fn intern(label: &str) -> u16 {
    if label.is_empty() {
        return 0;
    }
    let mut table = labels();
    if let Some(i) = table.iter().position(|l| l == label) {
        return i as u16;
    }
    if table.len() >= MAX_LABELS {
        return 0;
    }
    table.push(label.to_string());
    (table.len() - 1) as u16
}

/// Resolve an interned label id back to its string (empty for 0 or an
/// unknown id).
pub fn label_name(id: u16) -> String {
    labels().get(id as usize).cloned().unwrap_or_default()
}

// ---- the per-thread ring ---------------------------------------------

struct Slot {
    /// 0 = never written; odd = write in flight; even = 2 × epoch.
    seq: AtomicU64,
    len: AtomicU32,
    words: [AtomicU64; WORDS],
}

struct Ring {
    thread: u64,
    slots: Box<[Slot]>,
    dropped: AtomicU64,
}

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Set the per-thread ring capacity for rings created *after* this
/// call (existing rings keep their size). Values are clamped to at
/// least 8 records. Intended for tests and memory-tight deployments.
pub fn set_capacity(records: usize) {
    CAPACITY.store(records.max(8), Ordering::Relaxed);
}

fn registry() -> MutexGuard<'static, Vec<Arc<Ring>>> {
    static REG: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds since the journal's process anchor (first use).
pub fn now_us() -> u64 {
    anchor().elapsed().as_micros() as u64
}

struct Writer {
    ring: Arc<Ring>,
    epoch: u64,
}

impl Writer {
    fn new() -> Writer {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
        let cap = CAPACITY.load(Ordering::Relaxed);
        let ring = Arc::new(Ring {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    len: AtomicU32::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            dropped: AtomicU64::new(0),
        });
        registry().push(Arc::clone(&ring));
        Writer { ring, epoch: 0 }
    }

    /// Encode and publish one record. Single-writer seqlock: mark the
    /// slot busy (odd sequence), store the payload with relaxed
    /// atomics, then publish the even sequence with release ordering.
    fn push(&mut self, tag: Tag, label: u16, a: u64, b: u64) {
        let mut buf = [0u8; MAX_PAYLOAD];
        buf[0] = tag as u8;
        let mut n = 1;
        n += put_varint(&mut buf[n..], now_us());
        n += put_varint(&mut buf[n..], label as u64);
        n += put_varint(&mut buf[n..], a);
        n += put_varint(&mut buf[n..], b);
        self.epoch += 1;
        let e = self.epoch;
        let cap = self.ring.slots.len();
        let slot = &self.ring.slots[(e - 1) as usize % cap];
        if slot.seq.load(Ordering::Relaxed) != 0 {
            // Overwriting a live record: the oldest drops.
            self.ring.dropped.fetch_add(1, Ordering::Relaxed);
            M_DROPPED.inc();
        }
        slot.seq.store(2 * e - 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.len.store(n as u32, Ordering::Relaxed);
        for (i, w) in slot.words.iter().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&buf[i * 8..i * 8 + 8]);
            w.store(u64::from_le_bytes(bytes), Ordering::Relaxed);
        }
        slot.seq.store(2 * e, Ordering::Release);
    }
}

thread_local! {
    static WRITER: RefCell<Option<Writer>> = const { RefCell::new(None) };
    /// Coalesced cache hits: `(label, count)` awaiting flush.
    static PENDING_HITS: Cell<(u16, u64)> = const { Cell::new((0, 0)) };
}

fn emit(tag: Tag, label: u16, a: u64, b: u64) {
    WRITER.with(|w| {
        let mut w = w.borrow_mut();
        w.get_or_insert_with(Writer::new).push(tag, label, a, b);
    });
}

/// Record one event. Coalesced cache hits pending on this thread are
/// flushed first, so event order within a thread stays faithful.
#[inline]
pub fn record(tag: Tag, label: u16, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    let (hl, hn) = PENDING_HITS.get();
    if hn > 0 {
        PENDING_HITS.set((0, 0));
        emit(Tag::CacheHit, hl, hn, 0);
    }
    emit(tag, label, a, b);
}

/// Record a cache hit for `label`, coalescing consecutive hits on the
/// same source into one record — the hit path pays a `Cell` bump, not
/// a ring write. Flushed by the next [`record`] on this thread (every
/// statement ends with one) or by a hit on a different source.
#[inline]
pub fn cache_hit(label: u16) {
    if !enabled() {
        return;
    }
    let (hl, hn) = PENDING_HITS.get();
    if hn > 0 && hl != label {
        PENDING_HITS.set((0, 0));
        emit(Tag::CacheHit, hl, hn, 0);
        PENDING_HITS.set((label, 1));
        return;
    }
    PENDING_HITS.set((label, hn + 1));
}

/// Records dropped oldest-first across every ring since process start.
pub fn dropped_total() -> u64 {
    registry().iter().map(|r| r.dropped.load(Ordering::Relaxed)).sum()
}

// ---- snapshot and the merged journal ---------------------------------

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The recording thread's registration id (1-based).
    pub thread: u64,
    /// Per-thread monotonic epoch (1-based); total order within a
    /// thread even when timestamps tie.
    pub epoch: u64,
    /// Microseconds since the journal anchor.
    pub t_us: u64,
    /// What happened.
    pub tag: Tag,
    /// Interned label id (see [`label_name`]); 0 = none.
    pub label: u16,
    /// First payload field (meaning per [`Tag`]).
    pub a: u64,
    /// Second payload field (meaning per [`Tag`]).
    pub b: u64,
}

impl Event {
    /// The event's label, resolved to its string.
    pub fn label_str(&self) -> String {
        label_name(self.label)
    }
}

/// A merged, time-ordered view of recent events across threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    /// Events sorted by `(t_us, thread, epoch)`.
    pub events: Vec<Event>,
}

impl Journal {
    /// Fold `other`'s events into this journal, keeping the global
    /// time order — the journal counterpart of `Trace::merge`, so a
    /// worker thread's record folds cleanly into its parent's view.
    pub fn merge(&mut self, other: Journal) {
        self.events.extend(other.events);
        self.sort();
    }

    fn sort(&mut self) {
        self.events.sort_by_key(|e| (e.t_us, e.thread, e.epoch));
    }

    /// The last `n` events (the incident pipeline's window).
    pub fn tail(&self, n: usize) -> Journal {
        let start = self.events.len().saturating_sub(n);
        Journal { events: self.events[start..].to_vec() }
    }

    /// The journal as a JSON value: an array of event objects with
    /// labels resolved to strings.
    pub fn to_json_value(&self) -> Json {
        Json::Arr(
            self.events
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("t_us".to_string(), Json::Num(e.t_us as f64)),
                        ("thread".to_string(), Json::Num(e.thread as f64)),
                        ("epoch".to_string(), Json::Num(e.epoch as f64)),
                        ("tag".to_string(), Json::Str(e.tag.name().to_string())),
                        ("label".to_string(), Json::Str(e.label_str())),
                        ("a".to_string(), Json::Num(e.a as f64)),
                        ("b".to_string(), Json::Num(e.b as f64)),
                    ])
                })
                .collect(),
        )
    }

    /// Rebuild a journal from [`Journal::to_json_value`] output.
    /// Labels are re-interned, so ids may differ from the writer's.
    pub fn from_json_value(j: &Json) -> Result<Journal, String> {
        let items = j.as_arr().ok_or("journal: expected an event array")?;
        let mut events = Vec::with_capacity(items.len());
        for it in items {
            let tag = it
                .get("tag")
                .and_then(Json::as_str)
                .and_then(Tag::from_name)
                .ok_or("journal event: bad tag")?;
            let label = intern(it.get("label").and_then(Json::as_str).unwrap_or(""));
            let num = |k: &str| it.get(k).and_then(Json::as_u64).unwrap_or(0);
            events.push(Event {
                thread: num("thread"),
                epoch: num("epoch"),
                t_us: num("t_us"),
                tag,
                label,
                a: num("a"),
                b: num("b"),
            });
        }
        let mut journal = Journal { events };
        journal.sort();
        Ok(journal)
    }
}

/// Merge every thread's ring into one time-ordered [`Journal`].
/// Concurrent writers are safe: slots that move under the reader fail
/// their seqlock validation and are skipped, never torn.
pub fn snapshot() -> Journal {
    // Clone the ring handles out so recording threads never block on
    // the registry lock longer than a Vec clone.
    let rings: Vec<Arc<Ring>> = registry().iter().map(Arc::clone).collect();
    let mut journal = Journal::default();
    for ring in rings {
        for slot in ring.slots.iter() {
            // Bounded retries: a slot being rewritten faster than we
            // can copy it holds no stable record worth waiting for.
            for _ in 0..3 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 % 2 == 1 {
                    break;
                }
                let len = slot.len.load(Ordering::Relaxed) as usize;
                let mut buf = [0u8; MAX_PAYLOAD];
                for (i, w) in slot.words.iter().enumerate() {
                    buf[i * 8..i * 8 + 8]
                        .copy_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
                }
                fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) != s1 {
                    continue; // torn: the writer lapped us, retry
                }
                if let Some(ev) = decode(&buf, len, ring.thread, s1 / 2) {
                    journal.events.push(ev);
                }
                break;
            }
        }
    }
    journal.sort();
    journal
}

fn decode(buf: &[u8; MAX_PAYLOAD], len: usize, thread: u64, epoch: u64) -> Option<Event> {
    if len == 0 || len > MAX_PAYLOAD {
        return None;
    }
    let tag = Tag::from_u8(buf[0])?;
    let mut i = 1;
    let t_us = get_varint(buf, len, &mut i)?;
    let label = get_varint(buf, len, &mut i)?;
    let a = get_varint(buf, len, &mut i)?;
    let b = get_varint(buf, len, &mut i)?;
    Some(Event { thread, epoch, t_us, tag, label: label.min(u16::MAX as u64) as u16, a, b })
}

// ---- varint coding ---------------------------------------------------

/// LEB128-encode `v` into `out`, returning the bytes written.
fn put_varint(out: &mut [u8], mut v: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out[n] = byte;
            return n + 1;
        }
        out[n] = byte | 0x80;
        n += 1;
    }
}

/// Decode one LEB128 varint from `buf[*i..len]`, advancing `i`.
fn get_varint(buf: &[u8], len: usize, i: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if *i >= len || shift >= 64 {
            return None;
        }
        let byte = buf[*i];
        *i += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = [0u8; 10];
            let n = put_varint(&mut buf, v);
            let mut i = 0;
            assert_eq!(get_varint(&buf, n, &mut i), Some(v), "{v}");
            assert_eq!(i, n);
        }
    }

    #[test]
    fn tags_round_trip_through_names_and_bytes() {
        for v in 1..=18u8 {
            let t = Tag::from_u8(v).expect("dense tag space");
            assert_eq!(t as u8, v);
            assert_eq!(Tag::from_name(t.name()), Some(t));
        }
        assert_eq!(Tag::from_u8(0), None);
        assert_eq!(Tag::from_u8(99), None);
        assert_eq!(Tag::from_name("nope"), None);
    }

    #[test]
    fn labels_intern_stably() {
        let a = intern("t_lib:alpha");
        let b = intern("t_lib:beta");
        assert_ne!(a, b);
        assert_eq!(intern("t_lib:alpha"), a);
        assert_eq!(label_name(a), "t_lib:alpha");
        assert_eq!(intern(""), 0);
        assert_eq!(label_name(0), "");
        assert_eq!(label_name(u16::MAX), "");
    }

    #[test]
    fn recorded_events_appear_in_snapshot() {
        let label = intern("t_lib:snap");
        record(Tag::CacheMiss, label, 4096, 0);
        record(Tag::StmtEnd, intern("ok"), 7, 1234);
        let j = snapshot();
        let mine: Vec<&Event> =
            j.events.iter().filter(|e| e.tag == Tag::CacheMiss && e.label == label).collect();
        assert!(!mine.is_empty(), "own event visible");
        assert_eq!(mine[0].a, 4096);
    }

    #[test]
    fn hits_coalesce_until_flushed() {
        let l1 = intern("t_lib:hits1");
        let l2 = intern("t_lib:hits2");
        for _ in 0..5 {
            cache_hit(l1);
        }
        cache_hit(l2); // different source flushes the l1 run
        record(Tag::GovernorShed, 0, 0, 0); // flushes the l2 run
        let j = snapshot();
        let h1: Vec<&Event> =
            j.events.iter().filter(|e| e.tag == Tag::CacheHit && e.label == l1).collect();
        let h2: Vec<&Event> =
            j.events.iter().filter(|e| e.tag == Tag::CacheHit && e.label == l2).collect();
        assert_eq!(h1.len(), 1, "five hits, one record");
        assert_eq!(h1[0].a, 5);
        assert_eq!(h2.len(), 1);
        assert_eq!(h2[0].a, 1);
    }

    #[test]
    fn disabled_records_nothing() {
        let label = intern("t_lib:disabled");
        set_enabled(false);
        record(Tag::CacheMiss, label, 1, 0);
        cache_hit(label);
        set_enabled(true);
        let j = snapshot();
        assert!(
            !j.events.iter().any(|e| e.label == label),
            "no events while disabled"
        );
    }

    #[test]
    fn merge_keeps_time_order() {
        let mk = |t_us, thread, epoch| Event {
            thread,
            epoch,
            t_us,
            tag: Tag::Phase,
            label: 0,
            a: 0,
            b: 0,
        };
        let mut a = Journal { events: vec![mk(10, 1, 1), mk(30, 1, 2)] };
        let b = Journal { events: vec![mk(20, 2, 1), mk(30, 0, 5)] };
        a.merge(b);
        let ts: Vec<u64> = a.events.iter().map(|e| e.t_us).collect();
        assert_eq!(ts, vec![10, 20, 30, 30]);
        assert_eq!(a.events[2].thread, 0, "ties break by thread then epoch");
    }

    #[test]
    fn json_round_trips() {
        let label = intern("t_lib:json");
        let j = Journal {
            events: vec![Event {
                thread: 3,
                epoch: 9,
                t_us: 777,
                tag: Tag::Retry,
                label,
                a: 2,
                b: 0,
            }],
        };
        let back = Journal::from_json_value(&j.to_json_value()).expect("parse");
        assert_eq!(back.events.len(), 1);
        let e = back.events[0];
        assert_eq!((e.thread, e.epoch, e.t_us, e.tag, e.a), (3, 9, 777, Tag::Retry, 2));
        assert_eq!(e.label_str(), "t_lib:json");
    }

    #[test]
    fn tail_keeps_the_newest() {
        let mk = |t_us| Event {
            thread: 1,
            epoch: t_us,
            t_us,
            tag: Tag::Phase,
            label: 0,
            a: 0,
            b: 0,
        };
        let j = Journal { events: (1..=10).map(mk).collect() };
        let t = j.tail(3);
        assert_eq!(t.events.iter().map(|e| e.t_us).collect::<Vec<_>>(), vec![8, 9, 10]);
        assert_eq!(j.tail(99).events.len(), 10);
    }
}
