//! Incident dump pipeline.
//!
//! When a statement errs, exhausts its resource budget, trips a
//! circuit breaker, or crosses the slow-query threshold, the session
//! freezes the flight recorder's recent window plus the statement's
//! attribution ledger and the process metrics deltas into one
//! self-contained JSON file. The file carries everything `\doctor`
//! needs — no live process required.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use aql_trace::json::Json;

use crate::attr::Ledger;
use crate::Journal;

/// Incident file schema version. Bump on breaking layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Why an incident was dumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// The statement returned an error.
    Error,
    /// The statement failed on a governor/limits resource budget.
    ResourceExhausted,
    /// A circuit breaker tripped open during the statement.
    BreakerTrip,
    /// The statement crossed the slow-query threshold.
    Slow,
}

impl IncidentKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::Error => "error",
            IncidentKind::ResourceExhausted => "resource_exhausted",
            IncidentKind::BreakerTrip => "breaker_trip",
            IncidentKind::Slow => "slow",
        }
    }

    /// Parse a wire name.
    pub fn from_name(name: &str) -> Option<IncidentKind> {
        Some(match name {
            "error" => IncidentKind::Error,
            "resource_exhausted" => IncidentKind::ResourceExhausted,
            "breaker_trip" => IncidentKind::BreakerTrip,
            "slow" => IncidentKind::Slow,
            _ => return None,
        })
    }
}

/// One self-contained incident dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Why the dump fired.
    pub kind: IncidentKind,
    /// Session statement sequence number.
    pub seq: u64,
    /// FNV-1a statement hash, rendered `{:016x}` (matches the slow
    /// log's `stmt_hash`).
    pub stmt_hash: String,
    /// Statement kind (`query`, `let`, …).
    pub stmt_kind: String,
    /// Statement wall time in nanoseconds.
    pub dur_ns: u64,
    /// The error message, when the outcome was an error.
    pub error: Option<String>,
    /// The flight recorder's last-N-events window at dump time.
    pub events: Journal,
    /// The statement's resource attribution ledger.
    pub attribution: Option<Ledger>,
    /// Process metrics that moved during the statement:
    /// `(series, delta)` pairs from the `aql-metrics` snapshot.
    pub metrics_delta: Vec<(String, u64)>,
}

impl Incident {
    /// The incident as a JSON value.
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            (
                "schema_version".to_string(),
                Json::Num(SCHEMA_VERSION as f64),
            ),
            ("kind".to_string(), Json::Str(self.kind.name().to_string())),
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("stmt_hash".to_string(), Json::Str(self.stmt_hash.clone())),
            ("stmt_kind".to_string(), Json::Str(self.stmt_kind.clone())),
            ("dur_ns".to_string(), Json::Num(self.dur_ns as f64)),
            (
                "error".to_string(),
                match &self.error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
            ("events".to_string(), self.events.to_json_value()),
        ];
        fields.push((
            "attribution".to_string(),
            match &self.attribution {
                Some(l) => l.to_json_value(),
                None => Json::Null,
            },
        ));
        fields.push((
            "metrics_delta".to_string(),
            Json::Obj(
                self.metrics_delta
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ));
        Json::Obj(fields)
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().write()
    }

    /// Rebuild an incident from [`Incident::to_json_value`] output.
    pub fn from_json_value(j: &Json) -> Result<Incident, String> {
        let version = j
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("incident: missing schema_version")?;
        if version > SCHEMA_VERSION {
            return Err(format!(
                "incident: schema_version {version} is newer than supported {SCHEMA_VERSION}"
            ));
        }
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .and_then(IncidentKind::from_name)
            .ok_or("incident: bad kind")?;
        let events = match j.get("events") {
            Some(ev) => Journal::from_json_value(ev)?,
            None => Journal::default(),
        };
        let attribution = match j.get("attribution") {
            Some(Json::Null) | None => None,
            Some(a) => Some(Ledger::from_json_value(a)?),
        };
        let mut metrics_delta = Vec::new();
        if let Some(Json::Obj(fields)) = j.get("metrics_delta") {
            for (k, v) in fields {
                metrics_delta.push((k.clone(), v.as_u64().unwrap_or(0)));
            }
        }
        Ok(Incident {
            kind,
            seq: j.get("seq").and_then(Json::as_u64).unwrap_or(0),
            stmt_hash: j
                .get("stmt_hash")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            stmt_kind: j
                .get("stmt_kind")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            dur_ns: j.get("dur_ns").and_then(Json::as_u64).unwrap_or(0),
            error: j.get("error").and_then(Json::as_str).map(str::to_string),
            events,
            attribution,
            metrics_delta,
        })
    }

    /// Parse an incident from a JSON string.
    pub fn from_json(text: &str) -> Result<Incident, String> {
        Incident::from_json_value(&Json::parse(text)?)
    }

    /// Load an incident file from disk.
    pub fn load(path: &Path) -> Result<Incident, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("incident: read {}: {e}", path.display()))?;
        Incident::from_json(&text)
    }

    /// The incident's canonical file name:
    /// `incident-<seq>-<stmt_hash>-<kind>.json`.
    pub fn file_name(&self) -> String {
        format!(
            "incident-{:06}-{}-{}.json",
            self.seq,
            self.stmt_hash,
            self.kind.name()
        )
    }

    /// Write the incident into `dir` (created if missing), returning
    /// the file path.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("incident: mkdir {}: {e}", dir.display()))?;
        let path = dir.join(self.file_name());
        let mut file = std::fs::File::create(&path)
            .map_err(|e| format!("incident: create {}: {e}", path.display()))?;
        file.write_all(self.to_json().as_bytes())
            .map_err(|e| format!("incident: write {}: {e}", path.display()))?;
        Ok(path)
    }
}

/// List incident files in `dir`, newest first (by file name, which
/// sorts by statement sequence). Missing directory → empty list.
pub fn list_incidents(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.extension().and_then(|x| x.to_str()) == Some("json")
                        && p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("incident-"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files.reverse();
    files
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{Ledger, SourceCounts};
    use crate::{Event, Tag};

    fn sample() -> Incident {
        let mut ledger = Ledger::default();
        ledger.sources.push((
            "netcdf:tas".to_string(),
            SourceCounts { chunks_loaded: 2, bytes_read: 8192, retries: 3, ..Default::default() },
        ));
        Incident {
            kind: IncidentKind::Error,
            seq: 7,
            stmt_hash: "00c0ffee00c0ffee".to_string(),
            stmt_kind: "query".to_string(),
            dur_ns: 1_000_000,
            error: Some("storage: injected transient fault".to_string()),
            events: Journal {
                events: vec![Event {
                    thread: 1,
                    epoch: 1,
                    t_us: 5,
                    tag: Tag::Retry,
                    label: crate::intern("netcdf:tas"),
                    a: 1,
                    b: 0,
                }],
            },
            attribution: Some(ledger),
            metrics_delta: vec![("aql_store_chunk_retries_total".to_string(), 3)],
        }
    }

    #[test]
    fn kinds_round_trip() {
        for k in [
            IncidentKind::Error,
            IncidentKind::ResourceExhausted,
            IncidentKind::BreakerTrip,
            IncidentKind::Slow,
        ] {
            assert_eq!(IncidentKind::from_name(k.name()), Some(k));
        }
        assert_eq!(IncidentKind::from_name("nope"), None);
    }

    #[test]
    fn json_round_trips() {
        let inc = sample();
        let back = Incident::from_json(&inc.to_json()).expect("parse");
        assert_eq!(back, inc);
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let text = sample()
            .to_json()
            .replacen("\"schema_version\":1", "\"schema_version\":999", 1);
        let err = Incident::from_json(&text).expect_err("must reject");
        assert!(err.contains("newer than supported"), "{err}");
    }

    #[test]
    fn write_load_and_list() {
        let dir = std::env::temp_dir().join(format!(
            "aql-incident-test-{}-{}",
            std::process::id(),
            "write_load_and_list"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let inc = sample();
        let path = inc.write_to(&dir).expect("write");
        assert!(path.file_name().is_some_and(|n| n
            .to_str()
            .is_some_and(|n| n.starts_with("incident-000007-") && n.ends_with("-error.json"))));
        let back = Incident::load(&path).expect("load");
        assert_eq!(back, inc);
        let mut slow = sample();
        slow.kind = IncidentKind::Slow;
        slow.seq = 9;
        slow.write_to(&dir).expect("write slow");
        let listed = list_incidents(&dir);
        assert_eq!(listed.len(), 2);
        assert!(listed[0]
            .file_name()
            .is_some_and(|n| n.to_str().is_some_and(|n| n.contains("-000009-"))));
        assert!(list_incidents(&dir.join("missing")).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
