//! Per-query resource attribution.
//!
//! While a statement runs, the session opens a thread-local ledger
//! ([`begin`]); every store-layer call site that already funnels
//! counters through `CacheStats` also calls [`note`] with its interned
//! source label, charging hits/misses/bytes/evictions/retries to the
//! query *and* the source that actually moved them. [`finish`] closes
//! the ledger and resolves labels to strings.
//!
//! The hot path is one `Cell<bool>` read when no ledger is open —
//! attribution costs nothing outside a session statement — and a
//! linear probe over a handful of sources when one is. Background
//! threads (the prefetcher's worker) never open a ledger, so their
//! loads are *not* charged to whichever statement happens to be
//! running; warm-pool handovers are charged at consumption time to the
//! owning binding's label as `prefetched_bytes`.

use std::cell::{Cell, RefCell};

use aql_trace::json::Json;

use crate::label_name;

/// Per-source tallies for one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCounts {
    /// Cache hits served from memory.
    pub hits: u64,
    /// Chunks loaded (cache misses, including warm-pool handovers).
    pub chunks_loaded: u64,
    /// Bytes pulled from the source by this statement's own misses.
    pub bytes_read: u64,
    /// Bytes handed over from the prefetcher's warm pool.
    pub prefetched_bytes: u64,
    /// Chunks evicted from this source's cache during the statement.
    pub evictions: u64,
    /// Chunk loads that returned an error.
    pub load_errors: u64,
    /// Read retries spent on this source.
    pub retries: u64,
}

impl SourceCounts {
    /// Total bytes this source moved for the statement.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.prefetched_bytes
    }
}

/// A closed per-statement attribution ledger, labels resolved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// Per-source tallies, in first-touch order.
    pub sources: Vec<(String, SourceCounts)>,
    /// Per-phase wall time in nanoseconds, in pipeline order.
    pub phases: Vec<(String, u64)>,
    /// Governor charge high-water mark during the statement, bytes.
    pub governor_peak_bytes: u64,
    /// Governor sheds observed during the statement.
    pub governor_sheds: u64,
    /// Governor denials observed during the statement.
    pub governor_denials: u64,
}

impl Ledger {
    /// The source that moved the most bytes, if any moved at all.
    pub fn dominant_source(&self) -> Option<(&str, &SourceCounts)> {
        self.sources
            .iter()
            .filter(|(_, c)| c.total_bytes() > 0)
            .max_by_key(|(_, c)| c.total_bytes())
            .map(|(l, c)| (l.as_str(), c))
    }

    /// Sum of retries across sources.
    pub fn total_retries(&self) -> u64 {
        self.sources.iter().map(|(_, c)| c.retries).sum()
    }

    /// The ledger as a JSON object (incident files, `QueryReport`).
    pub fn to_json_value(&self) -> Json {
        let sources = Json::Arr(
            self.sources
                .iter()
                .map(|(label, c)| {
                    Json::Obj(vec![
                        ("label".to_string(), Json::Str(label.clone())),
                        ("hits".to_string(), Json::Num(c.hits as f64)),
                        ("chunks_loaded".to_string(), Json::Num(c.chunks_loaded as f64)),
                        ("bytes_read".to_string(), Json::Num(c.bytes_read as f64)),
                        (
                            "prefetched_bytes".to_string(),
                            Json::Num(c.prefetched_bytes as f64),
                        ),
                        ("evictions".to_string(), Json::Num(c.evictions as f64)),
                        ("load_errors".to_string(), Json::Num(c.load_errors as f64)),
                        ("retries".to_string(), Json::Num(c.retries as f64)),
                    ])
                })
                .collect(),
        );
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|(name, ns)| {
                    Json::Obj(vec![
                        ("phase".to_string(), Json::Str(name.clone())),
                        ("wall_ns".to_string(), Json::Num(*ns as f64)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("sources".to_string(), sources),
            ("phases".to_string(), phases),
            (
                "governor_peak_bytes".to_string(),
                Json::Num(self.governor_peak_bytes as f64),
            ),
            ("governor_sheds".to_string(), Json::Num(self.governor_sheds as f64)),
            (
                "governor_denials".to_string(),
                Json::Num(self.governor_denials as f64),
            ),
        ])
    }

    /// Rebuild a ledger from [`Ledger::to_json_value`] output.
    pub fn from_json_value(j: &Json) -> Result<Ledger, String> {
        let num = |o: &Json, k: &str| o.get(k).and_then(Json::as_u64).unwrap_or(0);
        let mut ledger = Ledger {
            governor_peak_bytes: num(j, "governor_peak_bytes"),
            governor_sheds: num(j, "governor_sheds"),
            governor_denials: num(j, "governor_denials"),
            ..Ledger::default()
        };
        for s in j.get("sources").and_then(Json::as_arr).unwrap_or(&[]) {
            let label = s
                .get("label")
                .and_then(Json::as_str)
                .ok_or("attribution source: missing label")?
                .to_string();
            ledger.sources.push((
                label,
                SourceCounts {
                    hits: num(s, "hits"),
                    chunks_loaded: num(s, "chunks_loaded"),
                    bytes_read: num(s, "bytes_read"),
                    prefetched_bytes: num(s, "prefetched_bytes"),
                    evictions: num(s, "evictions"),
                    load_errors: num(s, "load_errors"),
                    retries: num(s, "retries"),
                },
            ));
        }
        for p in j.get("phases").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = p
                .get("phase")
                .and_then(Json::as_str)
                .ok_or("attribution phase: missing name")?
                .to_string();
            ledger.phases.push((name, num(p, "wall_ns")));
        }
        Ok(ledger)
    }

    /// Human-readable rendering (the REPL `\attr;` body).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.sources.is_empty() {
            out.push_str("sources: (no chunk traffic)\n");
        } else {
            out.push_str("sources:\n");
            for (label, c) in &self.sources {
                let shown = if label.is_empty() { "(unlabeled)" } else { label };
                out.push_str(&format!(
                    "  {shown}: {} hits, {} loaded ({} B read, {} B prefetched), \
                     {} evicted, {} load errors, {} retries\n",
                    c.hits,
                    c.chunks_loaded,
                    c.bytes_read,
                    c.prefetched_bytes,
                    c.evictions,
                    c.load_errors,
                    c.retries
                ));
            }
        }
        if !self.phases.is_empty() {
            out.push_str("phases:\n");
            for (name, ns) in &self.phases {
                out.push_str(&format!("  {name}: {:.3} ms\n", *ns as f64 / 1e6));
            }
        }
        out.push_str(&format!(
            "governor: peak {} B in use, {} sheds, {} denials\n",
            self.governor_peak_bytes, self.governor_sheds, self.governor_denials
        ));
        out
    }
}

/// The open ledger's per-source rows, keyed by interned label id.
#[derive(Default)]
struct OpenLedger {
    sources: Vec<(u16, SourceCounts)>,
    sheds: u64,
    denials: u64,
}

thread_local! {
    /// Fast flag: is a ledger open on this thread?
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static OPEN: RefCell<OpenLedger> = RefCell::new(OpenLedger::default());
}

/// Is a ledger open on this thread? One `Cell` read.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Open a fresh ledger on this thread, discarding any previous one.
pub fn begin() {
    OPEN.with(|o| *o.borrow_mut() = OpenLedger::default());
    ACTIVE.with(|a| a.set(true));
}

/// Charge the open ledger's row for `label` (no-op when closed).
#[inline]
pub fn note(label: u16, f: impl FnOnce(&mut SourceCounts)) {
    if !active() {
        return;
    }
    OPEN.with(|o| {
        let mut o = o.borrow_mut();
        if let Some((_, c)) = o.sources.iter_mut().find(|(l, _)| *l == label) {
            f(c);
            return;
        }
        let mut c = SourceCounts::default();
        f(&mut c);
        o.sources.push((label, c));
    });
}

/// Count a governor shed against the open ledger (no-op when closed).
#[inline]
pub fn note_shed() {
    if !active() {
        return;
    }
    OPEN.with(|o| o.borrow_mut().sheds += 1);
}

/// Count a governor denial against the open ledger (no-op when closed).
#[inline]
pub fn note_denial() {
    if !active() {
        return;
    }
    OPEN.with(|o| o.borrow_mut().denials += 1);
}

/// Close this thread's ledger and return it with labels resolved. The
/// caller (the session) fills in phases and the governor high-water
/// mark, which it alone can see.
pub fn finish() -> Ledger {
    ACTIVE.with(|a| a.set(false));
    OPEN.with(|o| {
        let open = std::mem::take(&mut *o.borrow_mut());
        Ledger {
            sources: open
                .sources
                .into_iter()
                .map(|(id, c)| (label_name(id), c))
                .collect(),
            phases: Vec::new(),
            governor_peak_bytes: 0,
            governor_sheds: open.sheds,
            governor_denials: open.denials,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern;

    #[test]
    fn notes_are_dropped_when_no_ledger_is_open() {
        let l = intern("t_attr:closed");
        assert!(!active());
        note(l, |c| c.bytes_read += 100);
        begin();
        let ledger = finish();
        assert!(ledger.sources.is_empty(), "closed-ledger notes vanish");
    }

    #[test]
    fn ledger_accumulates_per_source() {
        let a = intern("t_attr:a");
        let b = intern("t_attr:b");
        begin();
        note(a, |c| {
            c.chunks_loaded += 1;
            c.bytes_read += 4096;
        });
        note(b, |c| c.hits += 3);
        note(a, |c| c.retries += 2);
        note_shed();
        note_denial();
        let ledger = finish();
        assert_eq!(ledger.sources.len(), 2);
        assert_eq!(ledger.sources[0].0, "t_attr:a");
        assert_eq!(ledger.sources[0].1.bytes_read, 4096);
        assert_eq!(ledger.sources[0].1.retries, 2);
        assert_eq!(ledger.sources[1].1.hits, 3);
        assert_eq!(ledger.governor_sheds, 1);
        assert_eq!(ledger.governor_denials, 1);
        assert_eq!(ledger.total_retries(), 2);
        assert_eq!(ledger.dominant_source().map(|(l, _)| l), Some("t_attr:a"));
        assert!(!active(), "finish closes the ledger");
    }

    #[test]
    fn json_round_trips() {
        let mut ledger = Ledger::default();
        ledger.sources.push((
            "netcdf:tas".to_string(),
            SourceCounts {
                hits: 10,
                chunks_loaded: 4,
                bytes_read: 1 << 16,
                prefetched_bytes: 1 << 14,
                evictions: 1,
                load_errors: 0,
                retries: 2,
            },
        ));
        ledger.phases.push(("eval".to_string(), 1_500_000));
        ledger.governor_peak_bytes = 1 << 20;
        let back = Ledger::from_json_value(&ledger.to_json_value()).expect("parse");
        assert_eq!(back, ledger);
    }

    #[test]
    fn render_mentions_every_source_and_phase() {
        let mut ledger = Ledger::default();
        ledger
            .sources
            .push(("mem:x".to_string(), SourceCounts { hits: 1, ..Default::default() }));
        ledger.phases.push(("eval".to_string(), 2_000_000));
        let text = ledger.render();
        assert!(text.contains("mem:x"));
        assert!(text.contains("eval: 2.000 ms"));
        assert!(text.contains("governor: peak 0 B"));
    }
}
