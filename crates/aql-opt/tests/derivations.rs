//! The §5 derivations, mechanically checked.
//!
//! The paper claims its three array rules (plus the NRC rules) derive
//! the rewrites one would otherwise add per-primitive:
//!
//! * `transpose([[e | i<m, j<n]]) ⤳ [[e | j<n, i<m]]` — derived via
//!   β, δ^p, π, β^p and the redundant-check rules (shown step by step
//!   in §5);
//! * `zip ∘ (subseq, subseq)` and `subseq ∘ zip` normalize "to the
//!   same query, up to extra constant-time bound checks" (§1, §5).

use aql_core::derived;
use aql_core::eval::eval_closed;
use aql_core::expr::builder::*;
use aql_core::expr::free::alpha_eq;
use aql_core::expr::Expr;
use aql_opt::{normalize_and_eliminate, normalizer, optimize, optimize_traced};

fn count_tabs(e: &Expr) -> usize {
    let mut n = 0;
    e.walk(&mut |x| {
        if matches!(x, Expr::Tab { .. }) {
            n += 1;
        }
    });
    n
}

fn count_ifs(e: &Expr) -> usize {
    let mut n = 0;
    e.walk(&mut |x| {
        if matches!(x, Expr::If(..)) {
            n += 1;
        }
    });
    n
}

#[test]
fn transpose_rule_is_derivable() {
    // transpose([[ i*10 + j | i < m, j < n ]])
    let body = add(mul(var("i"), nat(10)), var("j"));
    let tabbed = tab(vec![("i", var("m")), ("j", var("n"))], body.clone());
    let e = derived::transpose(tabbed);

    let opt = normalize_and_eliminate().optimize(&e);

    // Expected: [[ i*10 + j | j < n, i < m ]] (up to renaming).
    let expect = tab(vec![("j", var("n")), ("i", var("m"))], body);
    assert!(
        alpha_eq(&opt, &expect),
        "derived transpose rule failed:\n got    {opt}\n expect {expect}"
    );
}

#[test]
fn transpose_derivation_uses_the_paper_rules() {
    let tabbed = tab(vec![("i", var("m")), ("j", var("n"))], var("i"));
    let e = derived::transpose(tabbed);
    let (_, trace) = optimize_traced(&e);
    // The §5 derivation applies β (via let-inline here), δ^p, π, β^p,
    // and then the redundant-check machinery.
    assert!(trace.count("let-inline") >= 1, "β step missing");
    assert!(trace.count("delta-p") >= 1, "δ^p step missing");
    assert!(trace.count("pi") >= 2, "π steps missing");
    assert!(trace.count("beta-p") >= 1, "β^p step missing");
    assert!(trace.count("tab-body-bound") >= 1, "check elimination missing");
}

#[test]
fn transpose_of_concrete_matrix_still_correct() {
    let m = array_lit(
        vec![nat(2), nat(3)],
        vec![nat(1), nat(2), nat(3), nat(4), nat(5), nat(6)],
    );
    let e = derived::transpose(m);
    let opt = optimize(&e);
    assert_eq!(eval_closed(&e).unwrap(), eval_closed(&opt).unwrap());
}

#[test]
fn zip_subseq_commute_to_one_tabulation() {
    // Both pipelines over free A, B, constant slice bounds.
    let lhs = derived::zip(
        derived::subseq(var("A"), nat(2), nat(9)),
        derived::subseq(var("B"), nat(2), nat(9)),
    );
    let rhs = derived::subseq(derived::zip(var("A"), var("B")), nat(2), nat(9));

    let nl = normalize_and_eliminate().optimize(&lhs);
    let nr = normalize_and_eliminate().optimize(&rhs);

    // Fusion: no intermediate arrays remain — a single tabulation each.
    assert_eq!(count_tabs(&nl), 1, "lhs kept an intermediate array: {nl}");
    assert_eq!(count_tabs(&nr), 1, "rhs kept an intermediate array: {nr}");

    // "…up to extra constant-time bound checks": the residue is at
    // most a couple of ifs per element.
    assert!(count_ifs(&nl) <= 2, "lhs residue too large: {nl}");
    assert!(count_ifs(&nr) <= 2, "rhs residue too large: {nr}");
}

#[test]
fn zip_subseq_semantics_agree_after_optimization() {
    let arr_a = array1_lit((0..12).map(|v| nat(v * 3)).collect());
    let arr_b = array1_lit((0..15).map(|v| nat(v * 5)).collect());
    let lhs = derived::zip(
        derived::subseq(arr_a.clone(), nat(2), nat(9)),
        derived::subseq(arr_b.clone(), nat(2), nat(9)),
    );
    let rhs = derived::subseq(derived::zip(arr_a, arr_b), nat(2), nat(9));
    let vl = eval_closed(&lhs).unwrap();
    let vr = eval_closed(&rhs).unwrap();
    assert_eq!(vl, vr, "unoptimized pipelines must already agree");
    let ol = eval_closed(&optimize(&lhs)).unwrap();
    let or = eval_closed(&optimize(&rhs)).unwrap();
    assert_eq!(ol, vl);
    assert_eq!(or, vr);
}

#[test]
fn beta_p_avoids_materialisation() {
    // [[ i*i | i < 1000 ]][17] — optimized form evaluates no loop.
    let e = sub(tab1("i", nat(1000), mul(var("i"), var("i"))), vec![nat(17)]);
    let opt = optimize(&e);
    assert_eq!(count_tabs(&opt), 0, "tabulation must be eliminated: {opt}");
    assert_eq!(eval_closed(&opt).unwrap(), eval_closed(&e).unwrap());
    // After constant folding the whole thing is a literal.
    assert_eq!(opt, nat(289));
}

#[test]
fn delta_p_computes_length_without_tabulating() {
    let e = len(tab1("i", var("n"), mul(var("i"), var("i"))));
    let opt = optimize(&e);
    assert_eq!(opt, var("n"));
}

#[test]
fn eta_p_collapses_identity_copy() {
    let e = tab1("i", len(var("A")), sub(var("A"), vec![var("i")]));
    assert_eq!(optimize(&e), var("A"));
}

#[test]
fn reverse_of_reverse_normalizes_small() {
    // reverse(reverse A) does not η-contract to A (the double monus
    // defeats syntactic matching — bound-check elimination is
    // undecidable, Prop. 5.1), but it must still normalize to a single
    // tabulation over A and evaluate correctly.
    let e = derived::reverse(derived::reverse(var("A")));
    let opt = optimize(&e);
    assert_eq!(count_tabs(&opt), 1, "intermediate reversal array must fuse");

    let arr = array1_lit(vec![nat(4), nat(7), nat(9)]);
    let concrete = derived::reverse(derived::reverse(arr.clone()));
    assert_eq!(
        eval_closed(&optimize(&concrete)).unwrap(),
        eval_closed(&arr).unwrap()
    );
}

#[test]
fn evenpos_projcol_pipeline_fuses() {
    // The §1 pipeline fragment: evenpos(proj_col(WS, 0)).
    let e = derived::evenpos(derived::proj_col(var("WS"), nat(0)));
    let opt = normalize_and_eliminate().optimize(&e);
    assert_eq!(
        count_tabs(&opt),
        1,
        "column projection must fuse into the evenpos tabulation: {opt}"
    );
}

#[test]
fn optimizer_is_idempotent_on_normal_forms() {
    let cases = vec![
        derived::zip(var("A"), var("B")),
        derived::transpose(var("M")),
        derived::evenpos(var("A")),
        sub(tab1("i", nat(100), var("i")), vec![nat(3)]),
    ];
    for e in cases {
        let once = optimize(&e);
        let twice = optimize(&once);
        assert!(
            alpha_eq(&once, &twice),
            "optimizer not idempotent on {e}:\n once  {once}\n twice {twice}"
        );
    }
}

#[test]
fn normalizer_alone_leaves_redundant_checks() {
    // Without the check-elimination phase, β^p residue remains; with
    // it, the checks disappear. This isolates the two phases.
    let tabbed = tab(vec![("i", var("m")), ("j", var("n"))], var("i"));
    let e = derived::transpose(tabbed);
    let normal = normalizer().optimize(&e);
    assert!(count_ifs(&normal) >= 2, "expected residual checks: {normal}");
    let clean = normalize_and_eliminate().optimize(&e);
    assert_eq!(count_ifs(&clean), 0, "checks must be eliminated: {clean}");
}
