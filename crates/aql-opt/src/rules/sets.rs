//! Set-monad rewrite rules from the equational theory of NRC (the
//! paper's citations 7 and 34):
//! source simplification, union splitting, vertical/horizontal loop
//! fusion, filter promotion, and the singleton-η law.
//!
//! Soundness caveats (the paper's conventions): rules that *discard* a
//! subexpression — [`EmptyHead`] drops the loop source — are sound for
//! error-free programs, exactly like the paper's `δ^p`.

use aql_core::expr::free::{fresh, is_free_in, subst};
use aql_core::expr::Expr;

use crate::engine::Rule;

/// `e ∪ {} ⤳ e` and `{} ∪ e ⤳ e`.
pub struct UnionEmpty;

impl Rule for UnionEmpty {
    fn name(&self) -> &'static str {
        "union-empty"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Union(a, b) if **a == Expr::Empty => Some((**b).clone()),
            Expr::Union(a, b) if **b == Expr::Empty => Some((**a).clone()),
            _ => None,
        }
    }
}

/// `⋃{e | x ∈ {}} ⤳ {}`.
pub struct BigUnionEmptySrc;

impl Rule for BigUnionEmptySrc {
    fn name(&self) -> &'static str {
        "bigunion-empty-src"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BigUnion { src, .. } if **src == Expr::Empty => Some(Expr::Empty),
            _ => None,
        }
    }
}

/// `⋃{e1 | x ∈ {e2}} ⤳ e1{x := e2}` — the monad unit law.
pub struct BigUnionSingletonSrc;

impl Rule for BigUnionSingletonSrc {
    fn name(&self) -> &'static str {
        "bigunion-singleton-src"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BigUnion { head, var, src } => match &**src {
                Expr::Single(x) => Some(subst(head, var, x)),
                _ => None,
            },
            _ => None,
        }
    }
}

/// `⋃{e | x ∈ e1 ∪ e2} ⤳ ⋃{e | x ∈ e1} ∪ ⋃{e | x ∈ e2}`.
pub struct BigUnionUnionSrc;

impl Rule for BigUnionUnionSrc {
    fn name(&self) -> &'static str {
        "bigunion-union-src"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BigUnion { head, var, src } => match &**src {
                Expr::Union(a, b) => Some(Expr::Union(
                    Expr::BigUnion {
                        head: head.clone(),
                        var: var.clone(),
                        src: a.clone(),
                    }
                    .boxed(),
                    Expr::BigUnion {
                        head: head.clone(),
                        var: var.clone(),
                        src: b.clone(),
                    }
                    .boxed(),
                )),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Vertical fusion (the monad associativity law):
/// `⋃{e1 | x ∈ ⋃{e2 | y ∈ e3}} ⤳ ⋃{⋃{e1 | x ∈ e2} | y ∈ e3}`,
/// α-renaming `y` when it is free in `e1`.
pub struct VerticalFusion;

impl Rule for VerticalFusion {
    fn name(&self) -> &'static str {
        "vertical-fusion"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BigUnion { head: h1, var: x, src } => match &**src {
                Expr::BigUnion { head: h2, var: y, src: s3 } => {
                    let (y2, h2b) = if is_free_in(y, h1) {
                        let ny = fresh(y);
                        (ny.clone(), subst(h2, y, &Expr::Var(ny)))
                    } else {
                        (y.clone(), (**h2).clone())
                    };
                    Some(Expr::BigUnion {
                        head: Expr::BigUnion {
                            head: h1.clone(),
                            var: x.clone(),
                            src: h2b.boxed(),
                        }
                        .boxed(),
                        var: y2,
                        src: s3.clone(),
                    })
                }
                _ => None,
            },
            _ => None,
        }
    }
}

/// Horizontal fusion: `⋃{e1 | x ∈ S} ∪ ⋃{e2 | x ∈ S} ⤳
/// ⋃{e1 ∪ e2 | x ∈ S}` when both loops range over the *same* source.
/// Sound for sets: both sides union `e1(s) ∪ e2(s)` over `s ∈ S`.
pub struct HorizontalFusion;

impl Rule for HorizontalFusion {
    fn name(&self) -> &'static str {
        "horizontal-fusion"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Union(a, b) => match (&**a, &**b) {
                (
                    Expr::BigUnion { head: h1, var: x1, src: s1 },
                    Expr::BigUnion { head: h2, var: x2, src: s2 },
                ) if s1 == s2 => {
                    let h2b = if x1 == x2 {
                        (**h2).clone()
                    } else {
                        subst(h2, x2, &Expr::Var(x1.clone()))
                    };
                    Some(Expr::BigUnion {
                        head: Expr::Union(h1.clone(), h2b.boxed()).boxed(),
                        var: x1.clone(),
                        src: s1.clone(),
                    })
                }
                _ => None,
            },
            _ => None,
        }
    }
}

/// Filter promotion: `⋃{if p then e else {} | x ∈ S} ⤳
/// if p then ⋃{e | x ∈ S} else {}` when `x` is not free in `p`.
pub struct FilterPromotion;

impl Rule for FilterPromotion {
    fn name(&self) -> &'static str {
        "filter-promotion"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BigUnion { head, var, src } => match &**head {
                Expr::If(p, t, f) if **f == Expr::Empty && !is_free_in(var, p) => {
                    Some(Expr::If(
                        p.clone(),
                        Expr::BigUnion {
                            head: t.clone(),
                            var: var.clone(),
                            src: src.clone(),
                        }
                        .boxed(),
                        Expr::Empty.boxed(),
                    ))
                }
                _ => None,
            },
            _ => None,
        }
    }
}

/// Singleton-η: `⋃{{x} | x ∈ S} ⤳ S`.
pub struct SingletonEta;

impl Rule for SingletonEta {
    fn name(&self) -> &'static str {
        "singleton-eta"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BigUnion { head, var, src } => match &**head {
                Expr::Single(x) => match &**x {
                    Expr::Var(v) if v == var => Some((**src).clone()),
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        }
    }
}

/// Union idempotence: `e ∪ e ⤳ e` (syntactic match).
pub struct UnionIdem;

impl Rule for UnionIdem {
    fn name(&self) -> &'static str {
        "union-idem"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Union(a, b) if a == b => Some((**a).clone()),
            _ => None,
        }
    }
}

/// `min({e}) ⤳ e`, `max({e}) ⤳ e`, `min({}) ⤳ ⊥`, `max({}) ⤳ ⊥`.
/// Together with [`UnionIdem`] this collapses the
/// `min{len A, len A}` bounds produced by self-`zip`s.
pub struct MinMaxSingleton;

impl Rule for MinMaxSingleton {
    fn name(&self) -> &'static str {
        "minmax-singleton"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        use aql_core::expr::Prim;
        match e {
            Expr::Prim(p @ (Prim::MinSet | Prim::MaxSet), args) => {
                let _ = p;
                match &args[0] {
                    Expr::Single(x) => Some((**x).clone()),
                    Expr::Empty => Some(Expr::Bottom),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// `⋃{{} | x ∈ S} ⤳ {}` — discards `S`, so (like `δ^p`) sound for
/// error-free programs.
pub struct EmptyHead;

impl Rule for EmptyHead {
    fn name(&self) -> &'static str {
        "empty-head"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BigUnion { head, .. } if **head == Expr::Empty => Some(Expr::Empty),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Bag (NBC) analogues. Additive union makes these laws, if anything,
// *more* robustly sound than the set versions: there is no implicit
// deduplication to worry about.
// ---------------------------------------------------------------------

/// `e ⊎ {||} ⤳ e` and `{||} ⊎ e ⤳ e`.
pub struct BagUnionEmpty;

impl Rule for BagUnionEmpty {
    fn name(&self) -> &'static str {
        "bag-union-empty"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BagUnion(a, b) if **a == Expr::BagEmpty => Some((**b).clone()),
            Expr::BagUnion(a, b) if **b == Expr::BagEmpty => Some((**a).clone()),
            _ => None,
        }
    }
}

/// `⨄{|e | x ∈ {||}|} ⤳ {||}` and `⨄{|e1 | x ∈ {|e2|}|} ⤳ e1{x := e2}`
/// and union splitting — the monad laws for bags.
pub struct BigBagUnionLaws;

impl Rule for BigBagUnionLaws {
    fn name(&self) -> &'static str {
        "bigbagunion-laws"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::BigBagUnion { head, var, src } = e else { return None };
        match &**src {
            Expr::BagEmpty => Some(Expr::BagEmpty),
            Expr::BagSingle(x) => Some(subst(head, var, x)),
            Expr::BagUnion(a, b) => Some(Expr::BagUnion(
                Expr::BigBagUnion {
                    head: head.clone(),
                    var: var.clone(),
                    src: a.clone(),
                }
                .boxed(),
                Expr::BigBagUnion {
                    head: head.clone(),
                    var: var.clone(),
                    src: b.clone(),
                }
                .boxed(),
            )),
            Expr::BigBagUnion { head: h2, var: y, src: s3 } => {
                // Vertical fusion, α-renaming on capture.
                let (y2, h2b) = if is_free_in(y, head) {
                    let ny = fresh(y);
                    (ny.clone(), subst(h2, y, &Expr::Var(ny)))
                } else {
                    (y.clone(), (**h2).clone())
                };
                Some(Expr::BigBagUnion {
                    head: Expr::BigBagUnion {
                        head: head.clone(),
                        var: var.clone(),
                        src: h2b.boxed(),
                    }
                    .boxed(),
                    var: y2,
                    src: s3.clone(),
                })
            }
            _ => None,
        }
    }
}

/// Filter promotion and singleton-η for bags:
/// `⨄{|if p then e else {||} | x ∈ S|} ⤳ if p then ⨄{…} else {||}`
/// (x ∉ FV(p)), and `⨄{|{|x|} | x ∈ S|} ⤳ S`.
pub struct BagFilterEta;

impl Rule for BagFilterEta {
    fn name(&self) -> &'static str {
        "bag-filter-eta"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::BigBagUnion { head, var, src } = e else { return None };
        match &**head {
            Expr::If(p, t, f) if **f == Expr::BagEmpty && !is_free_in(var, p) => {
                Some(Expr::If(
                    p.clone(),
                    Expr::BigBagUnion {
                        head: t.clone(),
                        var: var.clone(),
                        src: src.clone(),
                    }
                    .boxed(),
                    Expr::BagEmpty.boxed(),
                ))
            }
            Expr::BagSingle(x) => match &**x {
                Expr::Var(v) if v == var => Some((**src).clone()),
                _ => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::eval::eval_closed;
    use aql_core::expr::builder::*;

    #[test]
    fn unit_laws() {
        let e = big_union("x", single(nat(3)), single(mul(var("x"), nat(2))));
        assert_eq!(
            BigUnionSingletonSrc.apply(&e).unwrap(),
            single(mul(nat(3), nat(2)))
        );
        let e = big_union("x", empty(), single(var("x")));
        assert_eq!(BigUnionEmptySrc.apply(&e).unwrap(), empty());
    }

    #[test]
    fn union_splitting_preserves_semantics() {
        let e = big_union(
            "x",
            union(single(nat(1)), single(nat(2))),
            single(mul(var("x"), nat(10))),
        );
        let split = BigUnionUnionSrc.apply(&e).unwrap();
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&split).unwrap());
    }

    #[test]
    fn vertical_fusion_preserves_semantics() {
        // ⋃{ {x+1} | x ∈ ⋃{ {y*2} | y ∈ gen 4 } }
        let inner = big_union("y", gen(nat(4)), single(mul(var("y"), nat(2))));
        let e = big_union("x", inner, single(add(var("x"), nat(1))));
        let fused = VerticalFusion.apply(&e).unwrap();
        // Fused form is a BigUnion whose source is gen 4.
        match &fused {
            Expr::BigUnion { src, .. } => assert_eq!(**src, gen(nat(4))),
            other => panic!("unexpected {other}"),
        }
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&fused).unwrap());
    }

    #[test]
    fn vertical_fusion_renames_on_capture() {
        // ⋃{ {(x, y)} | x ∈ ⋃{ {y} | y ∈ S } } with free outer y… here
        // the head h1 = {(x,y)} mentions y free, so fusion must rename.
        let inner = big_union("y", gen(nat(2)), single(var("y")));
        let e = big_union("x", inner, single(tuple(vec![var("x"), var("y")])));
        let fused = VerticalFusion.apply(&e).unwrap();
        // The free y must still be free in the fused expression.
        assert!(aql_core::expr::free::is_free_in("y", &fused));
    }

    #[test]
    fn horizontal_fusion_merges_same_source() {
        let a = big_union("x", gen(nat(5)), single(mul(var("x"), nat(2))));
        let b = big_union("z", gen(nat(5)), single(add(var("z"), nat(1))));
        let e = union(a, b);
        let fused = HorizontalFusion.apply(&e).unwrap();
        match &fused {
            Expr::BigUnion { .. } => {}
            other => panic!("expected fused loop, got {other}"),
        }
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&fused).unwrap());
        // Different sources do not fuse.
        let a = big_union("x", gen(nat(5)), single(var("x")));
        let b = big_union("x", gen(nat(6)), single(var("x")));
        assert!(HorizontalFusion.apply(&union(a, b)).is_none());
    }

    #[test]
    fn filter_promotion_hoists_invariant_predicates() {
        let e = big_union(
            "x",
            gen(nat(4)),
            iff(lt(var("n"), nat(10)), single(var("x")), empty()),
        );
        let got = FilterPromotion.apply(&e).unwrap();
        match &got {
            Expr::If(p, _, _) => assert_eq!(**p, lt(var("n"), nat(10))),
            other => panic!("unexpected {other}"),
        }
        // Dependent predicates stay put.
        let e = big_union(
            "x",
            gen(nat(4)),
            iff(lt(var("x"), nat(2)), single(var("x")), empty()),
        );
        assert!(FilterPromotion.apply(&e).is_none());
    }

    #[test]
    fn eta_and_empty_head() {
        let e = big_union("x", gen(nat(9)), single(var("x")));
        assert_eq!(SingletonEta.apply(&e).unwrap(), gen(nat(9)));
        let e = big_union("x", gen(nat(9)), empty());
        assert_eq!(EmptyHead.apply(&e).unwrap(), empty());
        // {y} for a different variable does not η-contract.
        let e = big_union("x", gen(nat(9)), single(var("y")));
        assert!(SingletonEta.apply(&e).is_none());
    }

    #[test]
    fn bag_monad_laws() {
        // Unit.
        let e = big_bag_union("x", bag_single(nat(3)), bag_single(mul(var("x"), nat(2))));
        assert_eq!(
            BigBagUnionLaws.apply(&e).unwrap(),
            bag_single(mul(nat(3), nat(2)))
        );
        // Empty source.
        let e = big_bag_union("x", Expr::BagEmpty, bag_single(var("x")));
        assert_eq!(BigBagUnionLaws.apply(&e).unwrap(), Expr::BagEmpty);
        // Union splitting preserves multiplicities.
        let src = bag_union(bag_single(nat(1)), bag_single(nat(1)));
        let e = big_bag_union("x", src, bag_union(bag_single(var("x")), bag_single(var("x"))));
        let split = BigBagUnionLaws.apply(&e).unwrap();
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&split).unwrap());
        // Vertical fusion.
        let inner = big_bag_union("y", bag_single(nat(2)), bag_single(mul(var("y"), nat(3))));
        let e = big_bag_union("x", inner, bag_single(add(var("x"), nat(1))));
        let fused = BigBagUnionLaws.apply(&e).unwrap();
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&fused).unwrap());
        // Unit union laws.
        assert_eq!(
            BagUnionEmpty.apply(&bag_union(Expr::BagEmpty, var("b"))).unwrap(),
            var("b")
        );
    }

    #[test]
    fn bag_filter_and_eta() {
        let e = big_bag_union(
            "x",
            var("B"),
            iff(lt(var("n"), nat(5)), bag_single(var("x")), Expr::BagEmpty),
        );
        assert!(matches!(BagFilterEta.apply(&e).unwrap(), Expr::If(..)));
        let e = big_bag_union("x", var("B"), bag_single(var("x")));
        assert_eq!(BagFilterEta.apply(&e).unwrap(), var("B"));
        // Dependent predicate stays.
        let e = big_bag_union(
            "x",
            var("B"),
            iff(lt(var("x"), nat(5)), bag_single(var("x")), Expr::BagEmpty),
        );
        assert!(BagFilterEta.apply(&e).is_none());
    }

    #[test]
    fn union_unit_laws() {
        assert_eq!(
            UnionEmpty.apply(&union(empty(), var("s"))).unwrap(),
            var("s")
        );
        assert_eq!(
            UnionEmpty.apply(&union(var("s"), empty())).unwrap(),
            var("s")
        );
    }
}
