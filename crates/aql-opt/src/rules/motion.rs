//! Loop-invariant code motion — one of the paper's "later phases".
//!
//! Normalization inlines β-redexes and `let`s fully, which can leave
//! the same expensive subexpression evaluated on every loop iteration.
//! This phase runs *last* and hoists maximal loop-invariant
//! subexpressions of loop bodies into `let` bindings outside the loop:
//!
//! ```text
//! ⋃{ …E… | x ∈ S }   ⤳   let t = E in ⋃{ …t… | x ∈ S }
//! ```
//!
//! when `E` does not mention `x` (nor any variable bound inside the
//! body around the occurrence) and is big enough to be worth naming.
//! Like `δ^p`, hoisting assumes error-free loop-invariant code (a `⊥`
//! that was previously evaluated zero times may now be evaluated once).

use std::collections::HashSet;

use aql_core::expr::free::{free_vars, fresh};
use aql_core::expr::{Expr, Name};

use crate::engine::Rule;
use super::{binders_of, replace_capture_aware};

/// Hoist loop-invariant subexpressions out of `⋃`/`Σ`/tabulation
/// bodies.
pub struct HoistInvariant {
    /// Minimum AST size of a subexpression worth hoisting.
    pub min_size: usize,
}

impl Default for HoistInvariant {
    fn default() -> Self {
        HoistInvariant { min_size: 3 }
    }
}

/// Expression kinds that are never worth naming.
fn trivial(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Var(_)
            | Expr::Global(_)
            | Expr::Ext(_)
            | Expr::Nat(_)
            | Expr::Real(_)
            | Expr::Str(_)
            | Expr::Bool(_)
            | Expr::Empty
            | Expr::BagEmpty
            | Expr::Bottom
    )
}

impl HoistInvariant {
    /// Find a maximal subexpression of `e` whose free variables avoid
    /// `forbidden` (the loop variables plus any binder on the path).
    fn find_candidate(&self, e: &Expr, forbidden: &HashSet<Name>) -> Option<Expr> {
        if !trivial(e) && e.size() >= self.min_size {
            let fv = free_vars(e);
            if fv.is_disjoint(forbidden) {
                return Some(e.clone());
            }
        }
        // Descend, extending the forbidden set with this node's binders.
        let inner_binders = binders_of(e);
        let mut found = None;
        let extended: HashSet<Name>;
        let forb: &HashSet<Name> = if inner_binders.is_empty() {
            forbidden
        } else {
            extended = forbidden
                .iter()
                .cloned()
                .chain(inner_binders)
                .collect();
            &extended
        };
        e.walk_children(&mut |c| {
            if found.is_none() {
                found = self.find_candidate(c, forb);
            }
        });
        found
    }

    fn hoist(&self, head: &Expr, loop_vars: &[Name], rebuild: impl FnOnce(Expr) -> Expr) -> Option<Expr> {
        let forbidden: HashSet<Name> = loop_vars.iter().cloned().collect();
        // Only search *inside* the head: hoisting the entire head would
        // still be sound, but candidates must avoid the loop variables
        // anyway, so the whole head qualifies only when fully invariant
        // — in which case hoisting it evaluates it once. Allow it.
        let cand = self.find_candidate(head, &forbidden)?;
        let t = fresh("hoist");
        let (new_head, n) = replace_capture_aware(head, &cand, &Expr::Var(t.clone()));
        debug_assert!(n >= 1);
        Some(Expr::Let(t, cand.boxed(), rebuild(new_head).boxed()))
    }
}

impl Rule for HoistInvariant {
    fn name(&self) -> &'static str {
        "hoist-invariant"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::BigUnion { head, var, src } => {
                let (var2, src2) = (var.clone(), src.clone());
                self.hoist(head, std::slice::from_ref(var), move |h| Expr::BigUnion {
                    head: h.boxed(),
                    var: var2,
                    src: src2,
                })
            }
            Expr::BigBagUnion { head, var, src } => {
                let (var2, src2) = (var.clone(), src.clone());
                self.hoist(head, std::slice::from_ref(var), move |h| Expr::BigBagUnion {
                    head: h.boxed(),
                    var: var2,
                    src: src2,
                })
            }
            Expr::Sum { head, var, src } => {
                let (var2, src2) = (var.clone(), src.clone());
                self.hoist(head, std::slice::from_ref(var), move |h| Expr::Sum {
                    head: h.boxed(),
                    var: var2,
                    src: src2,
                })
            }
            Expr::Tab { head, idx } => {
                let vars: Vec<Name> = idx.iter().map(|(n, _)| n.clone()).collect();
                let idx2 = idx.clone();
                self.hoist(head, &vars, move |h| Expr::Tab { head: h.boxed(), idx: idx2 })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::eval::eval_closed;
    use aql_core::expr::builder::*;

    #[test]
    fn hoists_invariant_subexpression() {
        // [[ i + max(gen 100) | i < 4 ]]: max(gen 100) is invariant.
        let e = tab1("i", nat(4), add(var("i"), set_max(gen(nat(100)))));
        let got = HoistInvariant::default().apply(&e).unwrap();
        match &got {
            Expr::Let(_, bound, body) => {
                assert_eq!(**bound, set_max(gen(nat(100))));
                assert!(matches!(**body, Expr::Tab { .. }));
            }
            other => panic!("expected let, got {other}"),
        }
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&got).unwrap());
    }

    #[test]
    fn does_not_hoist_dependent_code() {
        let e = tab1("i", nat(4), set_max(gen(add(var("i"), nat(1)))));
        assert!(HoistInvariant::default().apply(&e).is_none());
    }

    #[test]
    fn does_not_hoist_trivia() {
        let e = tab1("i", nat(4), add(var("i"), var("n")));
        assert!(HoistInvariant::default().apply(&e).is_none());
    }

    #[test]
    fn respects_inner_binders() {
        // Σ{ x*x | x ∈ S } inside the loop over i mentions only x —
        // but S is a free variable, so the whole sum is invariant and
        // hoistable. Conversely an inner expression using an inner
        // binder must not be hoisted by itself.
        let e = tab1(
            "i",
            nat(3),
            add(var("i"), sum("x", var("S"), mul(var("x"), var("x")))),
        );
        let got = HoistInvariant::default().apply(&e).unwrap();
        match &got {
            Expr::Let(_, bound, _) => {
                assert!(matches!(**bound, Expr::Sum { .. }));
            }
            other => panic!("expected let, got {other}"),
        }
    }

    #[test]
    fn replaces_all_occurrences() {
        // Two separated occurrences of the same invariant expression:
        // both are replaced by one let binding.
        let inv = set_max(gen(nat(50)));
        let e = sum(
            "x",
            gen(nat(3)),
            add(mul(var("x"), inv.clone()), add(inv.clone(), nat(1))),
        );
        let got = HoistInvariant::default().apply(&e).unwrap();
        let mut count = 0;
        got.walk(&mut |n| {
            if *n == inv {
                count += 1;
            }
        });
        assert_eq!(count, 1, "only the let-bound copy remains");
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&got).unwrap());
    }

    #[test]
    fn fully_invariant_head_hoists_whole_head() {
        let inv = set_max(gen(nat(50)));
        let e = sum("x", gen(nat(3)), add(inv.clone(), inv.clone()));
        let got = HoistInvariant::default().apply(&e).unwrap();
        match &got {
            Expr::Let(_, bound, body) => {
                assert_eq!(**bound, add(inv.clone(), inv.clone()));
                match &**body {
                    Expr::Sum { head, .. } => assert!(matches!(&**head, Expr::Var(_))),
                    other => panic!("expected sum, got {other}"),
                }
            }
            other => panic!("expected let, got {other}"),
        }
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&got).unwrap());
    }

    #[test]
    fn fixpoint_terminates() {
        // Run the motion phase (not just the single rule) on a nested
        // loop and ensure it terminates with preserved semantics.
        let e = tab1(
            "i",
            nat(3),
            add(
                add(var("i"), set_max(gen(nat(10)))),
                set_min(gen(nat(20))),
            ),
        );
        let opt = crate::rules::motion_phase().run(&e, None);
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&opt).unwrap());
    }
}
