//! Conditional rules: constant conditions, equal branches, and the
//! §5 "if-propagation" rules
//!
//! ```text
//! if e then (…e…) else e'  ⤳  if e then (…true…) else e'
//! if e then e' else (…e…)  ⤳  if e then e' else (…false…)
//! ```
//!
//! which, combined with the bound-check rules of [`super::checks`],
//! remove the redundant constraint checks `β^p` introduces.

use aql_core::expr::Expr;

use crate::engine::Rule;
use super::replace_capture_aware;

/// `if true then t else f ⤳ t`, `if false then t else f ⤳ f`,
/// `if ⊥ then t else f ⤳ ⊥`.
pub struct IfConst;

impl Rule for IfConst {
    fn name(&self) -> &'static str {
        "if-const"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::If(c, t, f) => match &**c {
                Expr::Bool(true) => Some((**t).clone()),
                Expr::Bool(false) => Some((**f).clone()),
                Expr::Bottom => Some(Expr::Bottom),
                _ => None,
            },
            _ => None,
        }
    }
}

/// `if c then e else e ⤳ e` — discards `c`, so (like `δ^p`) sound for
/// error-free conditions.
pub struct IfSameBranches;

impl Rule for IfSameBranches {
    fn name(&self) -> &'static str {
        "if-same-branches"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::If(_, t, f) if t == f => Some((**t).clone()),
            _ => None,
        }
    }
}

/// The §5 if-propagation rules: within the *then* branch the condition
/// is known `true`; within the *else* branch it is known `false`.
/// Occurrences are replaced capture-awarely (free variables of the
/// condition must not be shadowed at the occurrence).
pub struct IfPropagate;

impl Rule for IfPropagate {
    fn name(&self) -> &'static str {
        "if-propagate"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::If(c, t, f) = e else { return None };
        // Propagating a literal is pointless; IfConst handles those.
        if matches!(&**c, Expr::Bool(_) | Expr::Bottom) {
            return None;
        }
        let (t2, n1) = replace_capture_aware(t, c, &Expr::Bool(true));
        let (f2, n2) = replace_capture_aware(f, c, &Expr::Bool(false));
        if n1 + n2 == 0 {
            return None;
        }
        Some(Expr::If(c.clone(), t2.boxed(), f2.boxed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::builder::*;

    #[test]
    fn constant_conditions() {
        assert_eq!(
            IfConst.apply(&iff(Expr::Bool(true), nat(1), nat(2))).unwrap(),
            nat(1)
        );
        assert_eq!(
            IfConst.apply(&iff(Expr::Bool(false), nat(1), nat(2))).unwrap(),
            nat(2)
        );
        assert_eq!(
            IfConst.apply(&iff(bottom(), nat(1), nat(2))).unwrap(),
            bottom()
        );
        assert!(IfConst.apply(&iff(var("c"), nat(1), nat(2))).is_none());
    }

    #[test]
    fn equal_branches_collapse() {
        let e = iff(var("c"), nat(5), nat(5));
        assert_eq!(IfSameBranches.apply(&e).unwrap(), nat(5));
        assert!(IfSameBranches.apply(&iff(var("c"), nat(5), nat(6))).is_none());
    }

    #[test]
    fn propagation_rewrites_nested_occurrences() {
        // if (i < n) then (if (i < n) then x else y) else z
        //   ⤳ if (i < n) then (if true then x else y) else z
        let c = lt(var("i"), var("n"));
        let e = iff(c.clone(), iff(c.clone(), var("x"), var("y")), var("z"));
        let got = IfPropagate.apply(&e).unwrap();
        let expect = iff(
            c.clone(),
            iff(Expr::Bool(true), var("x"), var("y")),
            var("z"),
        );
        assert_eq!(got, expect);
        // And in the else branch the condition becomes false.
        let e = iff(c.clone(), var("x"), iff(c.clone(), var("y"), var("z")));
        let got = IfPropagate.apply(&e).unwrap();
        let expect = iff(
            c.clone(),
            var("x"),
            iff(Expr::Bool(false), var("y"), var("z")),
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn propagation_respects_shadowing() {
        // The occurrence under a binder for `i` is a different i.
        let c = lt(var("i"), var("n"));
        let shadowed = big_union("i", gen(nat(3)), single(iff(c.clone(), nat(1), nat(0))));
        let e = iff(c.clone(), shadowed.clone(), var("z"));
        assert!(IfPropagate.apply(&e).is_none());
    }

    #[test]
    fn propagation_fires_once() {
        let c = lt(var("i"), var("n"));
        let e = iff(c.clone(), iff(c.clone(), var("x"), var("y")), var("z"));
        let once = IfPropagate.apply(&e).unwrap();
        assert!(IfPropagate.apply(&once).is_none(), "must reach fixpoint");
    }
}
