//! The λ-calculus fragment: β, `let`-inlining, π, and `get` laws.
//!
//! Normalization performs *full* β/`let` inlining, as in the paper's
//! derivations (§5 uses β freely, e.g. in the transpose derivation).
//! Inlining can duplicate argument expressions; the code-motion phase
//! that runs last re-introduces sharing where it pays.

use aql_core::expr::free::subst;
use aql_core::expr::Expr;

use crate::engine::Rule;

/// β for functions: `(λx.e1)(e2) ⤳ e1{x := e2}`.
pub struct BetaFun;

impl Rule for BetaFun {
    fn name(&self) -> &'static str {
        "beta"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::App(f, a) => match &**f {
                Expr::Lam(x, body) => Some(subst(body, x, a)),
                _ => None,
            },
            _ => None,
        }
    }
}

/// `let x = e1 in e2 ⤳ e2{x := e1}` — `let` is β-redex sugar at the
/// core level.
pub struct LetInline;

impl Rule for LetInline {
    fn name(&self) -> &'static str {
        "let-inline"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Let(x, bound, body) => Some(subst(body, x, bound)),
            _ => None,
        }
    }
}

/// π for products: `π_{i,k}(e1, …, ek) ⤳ e_i`.
pub struct PiTuple;

impl Rule for PiTuple {
    fn name(&self) -> &'static str {
        "pi"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Proj(i, k, t) => match &**t {
                Expr::Tuple(items) if items.len() == *k => Some(items[*i - 1].clone()),
                _ => None,
            },
            _ => None,
        }
    }
}

/// `get({e}) ⤳ e` and `get({}) ⤳ ⊥`.
pub struct GetSingleton;

impl Rule for GetSingleton {
    fn name(&self) -> &'static str {
        "get"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Get(inner) => match &**inner {
                Expr::Single(x) => Some((**x).clone()),
                Expr::Empty => Some(Expr::Bottom),
                _ => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::builder::*;

    #[test]
    fn beta_substitutes() {
        let e = app(lam("x", add(var("x"), var("x"))), nat(3));
        assert_eq!(BetaFun.apply(&e).unwrap(), add(nat(3), nat(3)));
        assert!(BetaFun.apply(&app(var("f"), nat(1))).is_none());
    }

    #[test]
    fn let_inlines() {
        let e = let_("y", nat(2), mul(var("y"), var("z")));
        assert_eq!(LetInline.apply(&e).unwrap(), mul(nat(2), var("z")));
    }

    #[test]
    fn pi_projects() {
        let e = proj(2, 3, tuple(vec![nat(1), nat(2), nat(3)]));
        assert_eq!(PiTuple.apply(&e).unwrap(), nat(2));
        // Arity mismatch (ill-typed anyway) does not fire.
        let e = proj(1, 2, tuple(vec![nat(1), nat(2), nat(3)]));
        assert!(PiTuple.apply(&e).is_none());
    }

    #[test]
    fn get_laws() {
        assert_eq!(GetSingleton.apply(&get(single(nat(7)))).unwrap(), nat(7));
        assert_eq!(GetSingleton.apply(&get(empty())).unwrap(), bottom());
        assert!(GetSingleton.apply(&get(var("s"))).is_none());
    }
}
