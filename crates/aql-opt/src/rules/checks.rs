//! Bound-check elimination (§5).
//!
//! `β^p` introduces checks `if e3 < e2 then … else ⊥` that are
//! redundant whenever the subscript is itself a tabulation index bound
//! by the same bound, or a `gen` variable. Proposition 5.1 shows full
//! bound-check elimination is undecidable; these rules remove the
//! common redundant checks:
//!
//! ```text
//! [[ (…(i_j < e_j)…) | i1 < e1, …, ik < ek ]] ⤳ [[ (…true…) | … ]]
//! ⋃{ (…(i < e)…) | i ∈ gen(e) }               ⤳ ⋃{ (…true…) | … }
//! ```
//!
//! (and likewise for `Σ` over `gen`), with the capture side-conditions
//! the paper notes.

use aql_core::expr::builder::lt;
use aql_core::expr::Expr;

use crate::engine::Rule;
use super::replace_capture_aware;

/// Inside a tabulation body, `i_j < e_j` is always true for each index
/// binder `i_j` with bound `e_j`.
pub struct TabBodyBound;

impl Rule for TabBodyBound {
    fn name(&self) -> &'static str {
        "tab-body-bound"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::Tab { head, idx } = e else { return None };
        let mut body = (**head).clone();
        let mut total = 0usize;
        for (n, bound) in idx {
            // The pattern `i_j < e_j`. replace_capture_aware refuses to
            // rewrite under binders that shadow `i_j` or the free
            // variables of `e_j`, which is exactly the paper's side
            // condition.
            let pattern = lt(Expr::Var(n.clone()), bound.clone());
            let (nb, cnt) = replace_capture_aware(&body, &pattern, &Expr::Bool(true));
            body = nb;
            total += cnt;
        }
        if total == 0 {
            return None;
        }
        Some(Expr::Tab { head: body.boxed(), idx: idx.clone() })
    }
}

/// Inside a loop over `gen(e)`, the test `x < e` is always true. Fires
/// for `⋃`, `Σ`, and their ranked/bag analogues.
pub struct GenBodyBound;

impl Rule for GenBodyBound {
    fn name(&self) -> &'static str {
        "gen-body-bound"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        // Destructure any of the loop shapes over gen(e).
        let (head, var, gen_arg) = match e {
            Expr::BigUnion { head, var, src }
            | Expr::Sum { head, var, src }
            | Expr::BigBagUnion { head, var, src } => match &**src {
                Expr::Gen(g) => (head, var, g),
                _ => return None,
            },
            _ => return None,
        };
        let pattern = lt(Expr::Var(var.clone()), (**gen_arg).clone());
        let (body, cnt) = replace_capture_aware(head, &pattern, &Expr::Bool(true));
        if cnt == 0 {
            return None;
        }
        Some(match e {
            Expr::BigUnion { var, src, .. } => Expr::BigUnion {
                head: body.boxed(),
                var: var.clone(),
                src: src.clone(),
            },
            Expr::Sum { var, src, .. } => Expr::Sum {
                head: body.boxed(),
                var: var.clone(),
                src: src.clone(),
            },
            Expr::BigBagUnion { var, src, .. } => Expr::BigBagUnion {
                head: body.boxed(),
                var: var.clone(),
                src: src.clone(),
            },
            _ => unreachable!("matched above"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::eval::eval_closed;
    use aql_core::expr::builder::*;

    #[test]
    fn tab_body_bound_removes_redundant_check() {
        // [[ if i < n then i else ⊥ | i < n ]] ⤳ [[ if true then i else ⊥ | … ]]
        let e = tab1("i", var("n"), iff(lt(var("i"), var("n")), var("i"), bottom()));
        let got = TabBodyBound.apply(&e).unwrap();
        let expect = tab1("i", var("n"), iff(Expr::Bool(true), var("i"), bottom()));
        assert_eq!(got, expect);
    }

    #[test]
    fn tab_body_bound_multi_dim() {
        let c1 = lt(var("i"), var("m"));
        let c2 = lt(var("j"), var("n"));
        let e = tab(
            vec![("i", var("m")), ("j", var("n"))],
            iff(c1, iff(c2, var("i"), bottom()), bottom()),
        );
        let got = TabBodyBound.apply(&e).unwrap();
        let expect = tab(
            vec![("i", var("m")), ("j", var("n"))],
            iff(
                Expr::Bool(true),
                iff(Expr::Bool(true), var("i"), bottom()),
                bottom(),
            ),
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn tab_body_bound_non_matching_bound_untouched() {
        // i < m with a different bound than the binder's n: not redundant.
        let e = tab1("i", var("n"), iff(lt(var("i"), var("m")), var("i"), bottom()));
        assert!(TabBodyBound.apply(&e).is_none());
    }

    #[test]
    fn gen_body_bound_for_union_and_sum() {
        let e = big_union(
            "x",
            gen(var("n")),
            iff(lt(var("x"), var("n")), single(var("x")), empty()),
        );
        let got = GenBodyBound.apply(&e).unwrap();
        match &got {
            Expr::BigUnion { head, .. } => {
                assert_eq!(
                    **head,
                    iff(Expr::Bool(true), single(var("x")), empty())
                );
            }
            other => panic!("unexpected {other}"),
        }
        let e = sum(
            "x",
            gen(nat(5)),
            iff(lt(var("x"), nat(5)), var("x"), nat(0)),
        );
        let got = GenBodyBound.apply(&e).unwrap();
        // Semantics preserved.
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&got).unwrap());
    }

    #[test]
    fn gen_body_bound_needs_gen_source() {
        let e = big_union(
            "x",
            var("S"),
            iff(lt(var("x"), var("n")), single(var("x")), empty()),
        );
        assert!(GenBodyBound.apply(&e).is_none());
    }
}
