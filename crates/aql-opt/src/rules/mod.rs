//! The rule library: every rewrite of §5, organised by family.
//!
//! * [`beta`] — β for functions, `let`-inlining, π for products,
//!   `get` laws (the λ-calculus fragment);
//! * [`sets`] — the set-monad laws: unit/empty sources, union
//!   splitting, vertical and horizontal fusion, filter promotion,
//!   singleton-η (from the equational theory of NRC, citations 7 and 34);
//! * [`arith`] — summation laws and constant folding (from the
//!   arithmetic extension of NRC, the paper's citation 18);
//! * [`arrays`] — the three array rules `β^p`, `η^p`, `δ^p` of §5,
//!   generalised to k dimensions;
//! * [`cond`] — standard conditional rules plus the §5
//!   "if-propagation" redundant-check rules;
//! * [`checks`] — the §5 bound-check elimination rules for
//!   tabulations and `gen` loops;
//! * [`motion`] — loop-invariant code motion (the paper's "later
//!   phases include … code motion").

pub mod arith;
pub mod arrays;
pub mod beta;
pub mod checks;
pub mod cond;
pub mod motion;
pub mod sets;

use std::collections::HashSet;
use std::rc::Rc;

use aql_core::expr::free::free_vars;
use aql_core::expr::{Expr, Name};

use crate::engine::{map_children, Optimizer, Phase};

/// Build the standard three-phase optimizer of §5: normalization,
/// constraint (bound-check) elimination, and code motion.
pub fn standard() -> Optimizer {
    let mut opt = Optimizer::empty();
    opt.add_phase(normalize_phase());
    opt.add_phase(checks_phase());
    opt.add_phase(motion_phase());
    opt
}

/// The normalization phase only (used by convergence tests that want
/// to inspect the normal form before check elimination).
pub fn normalizer() -> Optimizer {
    let mut opt = Optimizer::empty();
    opt.add_phase(normalize_phase());
    opt
}

/// Normalization + constraint elimination, without code motion — the
/// two phases the paper describes in detail.
pub fn normalize_and_eliminate() -> Optimizer {
    let mut opt = Optimizer::empty();
    opt.add_phase(normalize_phase());
    opt.add_phase(checks_phase());
    opt
}

/// The "normalize" phase with the full §5 rule complement.
pub fn normalize_phase() -> Phase {
    let mut p = Phase::new("normalize");
    p.add_rule(Rc::new(beta::BetaFun));
    p.add_rule(Rc::new(beta::LetInline));
    p.add_rule(Rc::new(beta::PiTuple));
    p.add_rule(Rc::new(beta::GetSingleton));
    p.add_rule(Rc::new(cond::IfConst));
    p.add_rule(Rc::new(sets::UnionEmpty));
    p.add_rule(Rc::new(sets::BigUnionEmptySrc));
    p.add_rule(Rc::new(sets::BigUnionSingletonSrc));
    p.add_rule(Rc::new(sets::BigUnionUnionSrc));
    p.add_rule(Rc::new(sets::VerticalFusion));
    p.add_rule(Rc::new(sets::HorizontalFusion));
    p.add_rule(Rc::new(sets::FilterPromotion));
    p.add_rule(Rc::new(sets::SingletonEta));
    p.add_rule(Rc::new(sets::EmptyHead));
    p.add_rule(Rc::new(sets::UnionIdem));
    p.add_rule(Rc::new(sets::MinMaxSingleton));
    p.add_rule(Rc::new(sets::BagUnionEmpty));
    p.add_rule(Rc::new(sets::BigBagUnionLaws));
    p.add_rule(Rc::new(sets::BagFilterEta));
    p.add_rule(Rc::new(arith::SumEmptySrc));
    p.add_rule(Rc::new(arith::SumSingletonSrc));
    p.add_rule(Rc::new(arith::SumFilterPromotion));
    p.add_rule(Rc::new(arith::ConstFold));
    p.add_rule(Rc::new(arrays::BetaPartial));
    p.add_rule(Rc::new(arrays::EtaPartial));
    p.add_rule(Rc::new(arrays::DeltaPartial));
    p.add_rule(Rc::new(arrays::SubOfLiteral));
    p.add_rule(Rc::new(arrays::DimOfLiteral));
    p
}

/// The constraint (bound-check) elimination phase.
pub fn checks_phase() -> Phase {
    let mut p = Phase::new("check-elim");
    p.add_rule(Rc::new(checks::TabBodyBound));
    p.add_rule(Rc::new(checks::GenBodyBound));
    p.add_rule(Rc::new(cond::IfPropagate));
    p.add_rule(Rc::new(cond::IfConst));
    p.add_rule(Rc::new(cond::IfSameBranches));
    p
}

/// The code-motion phase.
pub fn motion_phase() -> Phase {
    let mut p = Phase::new("code-motion");
    p.add_rule(Rc::new(motion::HoistInvariant::default()));
    p
}

// ---------------------------------------------------------------------
// Shared helpers for capture-aware replacement.
// ---------------------------------------------------------------------

/// Which names does a node bind, and over which children?
/// Returns the binder names in scope for the `head` position(s).
fn binders_of(e: &Expr) -> Vec<Name> {
    match e {
        Expr::Lam(x, _) | Expr::Let(x, _, _) => vec![x.clone()],
        Expr::BigUnion { var, .. }
        | Expr::BigBagUnion { var, .. }
        | Expr::Sum { var, .. } => vec![var.clone()],
        Expr::BigUnionRank { var, rank, .. } | Expr::BigBagUnionRank { var, rank, .. } => {
            vec![var.clone(), rank.clone()]
        }
        Expr::Tab { idx, .. } => idx.iter().map(|(n, _)| n.clone()).collect(),
        _ => Vec::new(),
    }
}

/// Replace every occurrence of `pattern` (syntactic equality) inside
/// `e` with `replacement`, without descending into subtrees whose
/// binders shadow a free variable of the pattern (the "extra
/// conditions guaranteeing free variables … are not captured" of §5).
/// Returns the rewritten expression and the replacement count.
pub fn replace_capture_aware(e: &Expr, pattern: &Expr, replacement: &Expr) -> (Expr, usize) {
    let pat_free: HashSet<Name> = free_vars(pattern);
    let mut count = 0usize;
    let out = go(e, pattern, replacement, &pat_free, &mut count);
    return (out, count);

    fn go(
        e: &Expr,
        pattern: &Expr,
        replacement: &Expr,
        pat_free: &HashSet<Name>,
        count: &mut usize,
    ) -> Expr {
        if e == pattern {
            *count += 1;
            return replacement.clone();
        }
        let shadowing = binders_of(e).iter().any(|b| pat_free.contains(b));
        if shadowing {
            // Conservatively leave the whole subtree alone: a shadowed
            // occurrence would no longer denote the same value.
            //
            // (Non-head children of binding nodes are actually safe,
            // but the conservative cut keeps the logic obviously
            // correct; the fixpoint loop recovers most opportunities.)
            return e.clone();
        }
        map_children(e, |c| go(c, pattern, replacement, pat_free, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::builder::*;

    #[test]
    fn replace_plain_occurrences() {
        let e = add(var("c"), add(var("c"), nat(1)));
        let (got, n) = replace_capture_aware(&e, &var("c"), &nat(9));
        assert_eq!(n, 2);
        assert_eq!(got, add(nat(9), add(nat(9), nat(1))));
    }

    #[test]
    fn replacement_stops_at_shadowing_binders() {
        // Replace x inside λx.x must not happen.
        let e = tuple(vec![var("x"), lam("x", var("x"))]);
        let (got, n) = replace_capture_aware(&e, &var("x"), &nat(5));
        assert_eq!(n, 1);
        assert_eq!(got, tuple(vec![nat(5), lam("x", var("x"))]));
    }

    #[test]
    fn compound_patterns() {
        let pat = lt(var("i"), var("n"));
        let e = iff(lt(var("i"), var("n")), nat(1), nat(0));
        let (got, n) = replace_capture_aware(&e, &pat, &Expr::Bool(true));
        assert_eq!(n, 1);
        assert_eq!(got, iff(Expr::Bool(true), nat(1), nat(0)));
        // A binder shadowing `n` blocks the replacement under it.
        let e = big_union("n", gen(nat(3)), single(iff(lt(var("i"), var("n")), nat(1), nat(0))));
        let (_, n2) = replace_capture_aware(&e, &pat, &Expr::Bool(true));
        assert_eq!(n2, 0);
    }
}
