//! Summation and arithmetic rules, following the aggregate-aware
//! extension of NRC (citation 18 of the paper).
//!
//! Because `Σ` ranges over the *distinct* elements of a set, the
//! union-splitting law that is valid for `⋃` (`Σ` over `e1 ∪ e2` ≠
//! `Σ e1 + Σ e2` when the sets overlap) is **not** included — this is
//! precisely the subtlety that citation addresses. Only sound laws appear here.

use aql_core::expr::free::{is_free_in, subst};
use aql_core::expr::{ArithOp, CmpOp, Expr};

use crate::engine::Rule;

/// `Σ{e | x ∈ {}} ⤳ 0`.
pub struct SumEmptySrc;

impl Rule for SumEmptySrc {
    fn name(&self) -> &'static str {
        "sum-empty-src"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Sum { src, .. } if **src == Expr::Empty => Some(Expr::Nat(0)),
            _ => None,
        }
    }
}

/// `Σ{e1 | x ∈ {e2}} ⤳ e1{x := e2}`.
pub struct SumSingletonSrc;

impl Rule for SumSingletonSrc {
    fn name(&self) -> &'static str {
        "sum-singleton-src"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Sum { head, var, src } => match &**src {
                Expr::Single(x) => Some(subst(head, var, x)),
                _ => None,
            },
            _ => None,
        }
    }
}

/// `Σ{if p then e else 0 | x ∈ S} ⤳ if p then Σ{e | x ∈ S} else 0`
/// when `x` is not free in `p`.
pub struct SumFilterPromotion;

impl Rule for SumFilterPromotion {
    fn name(&self) -> &'static str {
        "sum-filter-promotion"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Sum { head, var, src } => match &**head {
                Expr::If(p, t, f) if **f == Expr::Nat(0) && !is_free_in(var, p) => {
                    Some(Expr::If(
                        p.clone(),
                        Expr::Sum {
                            head: t.clone(),
                            var: var.clone(),
                            src: src.clone(),
                        }
                        .boxed(),
                        Expr::Nat(0).boxed(),
                    ))
                }
                _ => None,
            },
            _ => None,
        }
    }
}

/// Constant folding on natural literals: arithmetic (respecting monus,
/// `⊥` for zero divisors, and leaving overflow alone) and comparisons
/// at `nat`, `bool` and `string` literals. Also the additive/
/// multiplicative unit laws `e+0`, `0+e`, `e*1`, `1*e`, `e∸0`.
pub struct ConstFold;

impl Rule for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Arith(op, a, b) => match (&**a, &**b) {
                (Expr::Nat(x), Expr::Nat(y)) => Some(match op {
                    ArithOp::Add => Expr::Nat(x.checked_add(*y)?),
                    ArithOp::Monus => Expr::Nat(x.saturating_sub(*y)),
                    ArithOp::Mul => Expr::Nat(x.checked_mul(*y)?),
                    ArithOp::Div => {
                        if *y == 0 {
                            Expr::Bottom
                        } else {
                            Expr::Nat(x / y)
                        }
                    }
                    ArithOp::Mod => {
                        if *y == 0 {
                            Expr::Bottom
                        } else {
                            Expr::Nat(x % y)
                        }
                    }
                }),
                // Unit laws (sound without evaluating the operand —
                // except that they do not discard anything).
                (Expr::Nat(0), _) if *op == ArithOp::Add => Some((**b).clone()),
                (_, Expr::Nat(0)) if matches!(op, ArithOp::Add | ArithOp::Monus) => {
                    Some((**a).clone())
                }
                (Expr::Nat(1), _) if *op == ArithOp::Mul => Some((**b).clone()),
                (_, Expr::Nat(1)) if matches!(op, ArithOp::Mul | ArithOp::Div) => {
                    Some((**a).clone())
                }
                _ => None,
            },
            Expr::Cmp(op, a, b) => {
                let ord = match (&**a, &**b) {
                    (Expr::Nat(x), Expr::Nat(y)) => x.cmp(y),
                    (Expr::Bool(x), Expr::Bool(y)) => x.cmp(y),
                    (Expr::Str(x), Expr::Str(y)) => x.cmp(y),
                    _ => return None,
                };
                Some(Expr::Bool(match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::expr::builder::*;

    #[test]
    fn sum_unit_laws() {
        let e = sum("x", empty(), var("x"));
        assert_eq!(SumEmptySrc.apply(&e).unwrap(), nat(0));
        let e = sum("x", single(nat(5)), mul(var("x"), var("x")));
        assert_eq!(SumSingletonSrc.apply(&e).unwrap(), mul(nat(5), nat(5)));
    }

    #[test]
    fn sum_filter_promotion() {
        let e = sum(
            "x",
            gen(nat(4)),
            iff(gt(var("n"), nat(0)), var("x"), nat(0)),
        );
        let got = SumFilterPromotion.apply(&e).unwrap();
        assert!(matches!(got, Expr::If(..)));
        // x-dependent predicate does not promote.
        let e = sum(
            "x",
            gen(nat(4)),
            iff(gt(var("x"), nat(0)), var("x"), nat(0)),
        );
        assert!(SumFilterPromotion.apply(&e).is_none());
    }

    #[test]
    fn folding_arithmetic() {
        assert_eq!(ConstFold.apply(&add(nat(2), nat(3))).unwrap(), nat(5));
        assert_eq!(ConstFold.apply(&monus(nat(2), nat(5))).unwrap(), nat(0));
        assert_eq!(ConstFold.apply(&div(nat(7), nat(0))).unwrap(), bottom());
        assert_eq!(ConstFold.apply(&modulo(nat(9), nat(4))).unwrap(), nat(1));
        // Overflow is left for the evaluator to report.
        assert!(ConstFold.apply(&mul(nat(u64::MAX), nat(2))).is_none());
    }

    #[test]
    fn unit_laws() {
        assert_eq!(ConstFold.apply(&add(var("e"), nat(0))).unwrap(), var("e"));
        assert_eq!(ConstFold.apply(&add(nat(0), var("e"))).unwrap(), var("e"));
        assert_eq!(ConstFold.apply(&mul(var("e"), nat(1))).unwrap(), var("e"));
        assert_eq!(ConstFold.apply(&mul(nat(1), var("e"))).unwrap(), var("e"));
        assert_eq!(ConstFold.apply(&monus(var("e"), nat(0))).unwrap(), var("e"));
        assert_eq!(ConstFold.apply(&div(var("e"), nat(1))).unwrap(), var("e"));
        // e*0 is NOT folded: it would discard a possibly-erroneous e.
        assert!(ConstFold.apply(&mul(var("e"), nat(0))).is_none());
    }

    #[test]
    fn folding_comparisons() {
        assert_eq!(
            ConstFold.apply(&lt(nat(1), nat(2))).unwrap(),
            Expr::Bool(true)
        );
        assert_eq!(
            ConstFold.apply(&eq(strlit("a"), strlit("b"))).unwrap(),
            Expr::Bool(false)
        );
        assert!(ConstFold.apply(&lt(var("x"), nat(2))).is_none());
    }
}
