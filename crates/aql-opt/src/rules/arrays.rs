//! The three array rules of §5 — the heart of the paper's optimizer —
//! generalised to k dimensions, plus literal-array counterparts.
//!
//! ```text
//! (β^p)  [[e1 | i < e2]][e3]      ⤳  if e3 < e2 then e1{i := e3} else ⊥
//! (η^p)  [[e[i] | i < len(e)]]    ⤳  e
//! (δ^p)  len([[e1 | i < e2]])     ⤳  e2
//! ```
//!
//! `β^p` avoids *materialising* the tabulated array when only some
//! elements are demanded; `η^p` avoids retabulating an existing array;
//! `δ^p` computes dimensions without tabulating (sound for error-free
//! bodies, as the paper notes). Experiments E3, E5 and E6 measure
//! exactly these effects.

use aql_core::expr::free::{fresh, is_free_in, subst};
use aql_core::expr::{Expr, Name};

use crate::engine::Rule;

/// Extract the per-dimension index expressions of a subscript whose
/// tabulated array has `k` index binders: either `k` separate index
/// expressions or a single literal k-tuple.
fn subscript_components(indices: &[Expr], k: usize) -> Option<Vec<Expr>> {
    if indices.len() == k {
        return Some(indices.to_vec());
    }
    if indices.len() == 1 && k > 1 {
        if let Expr::Tuple(comps) = &indices[0] {
            if comps.len() == k {
                return Some(comps.clone());
            }
        }
    }
    None
}

/// `β^p`: subscripting a tabulation becomes a bound-checked
/// substitution, element by element — no intermediate array.
pub struct BetaPartial;

impl Rule for BetaPartial {
    fn name(&self) -> &'static str {
        "beta-p"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::Sub(arr, indices) = e else { return None };
        let Expr::Tab { head, idx } = &**arr else { return None };
        let comps = subscript_components(indices, idx.len())?;

        // α-rename the index binders to fresh names first, so index
        // expressions that happen to mention variables with the same
        // names as later binders cannot be confused during the
        // sequential substitution.
        let mut body = (**head).clone();
        let mut fresh_names: Vec<Name> = Vec::with_capacity(idx.len());
        for (n, _) in idx {
            let f = fresh(n);
            body = subst(&body, n, &Expr::Var(f.clone()));
            fresh_names.push(f);
        }
        for (f, c) in fresh_names.iter().zip(comps.iter()) {
            body = subst(&body, f, c);
        }
        // Wrap in bound checks, outermost dimension first:
        // if e1 < b1 then (… body …) else ⊥.
        let mut out = body;
        for ((_, bound), c) in idx.iter().zip(comps.iter()).rev() {
            out = Expr::If(
                Expr::Cmp(aql_core::expr::CmpOp::Lt, c.clone().boxed(), bound.clone().boxed())
                    .boxed(),
                out.boxed(),
                Expr::Bottom.boxed(),
            );
        }
        Some(out)
    }
}

/// `η^p`: a tabulation that copies an existing array verbatim *is*
/// that array. Matches `[[e[i1,…,ik] | i1 < dim_{1,k}(e), …]]` where
/// `e` does not mention the index variables.
pub struct EtaPartial;

impl Rule for EtaPartial {
    fn name(&self) -> &'static str {
        "eta-p"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::Tab { head, idx } = e else { return None };
        let k = idx.len();
        let Expr::Sub(arr, indices) = &**head else { return None };
        // The subscript must be exactly the index variables in order.
        let comps = subscript_components(indices, k)?;
        for ((n, _), c) in idx.iter().zip(comps.iter()) {
            match c {
                Expr::Var(v) if v == n => {}
                _ => return None,
            }
        }
        // The source array must be index-variable-free.
        for (n, _) in idx {
            if is_free_in(n, arr) {
                return None;
            }
        }
        // Each bound must be the corresponding dimension of the array.
        for (j, (_, bound)) in idx.iter().enumerate() {
            let expect = if k == 1 {
                Expr::Dim(1, arr.clone())
            } else {
                Expr::Proj(j + 1, k, Expr::Dim(k, arr.clone()).boxed())
            };
            if *bound != expect {
                return None;
            }
        }
        Some((**arr).clone())
    }
}

/// `δ^p`: the dimensions of a tabulation are its bounds — no
/// tabulation needed. Sound when the body is error-free (§5).
pub struct DeltaPartial;

impl Rule for DeltaPartial {
    fn name(&self) -> &'static str {
        "delta-p"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::Dim(k, arr) = e else { return None };
        let Expr::Tab { idx, .. } = &**arr else { return None };
        if idx.len() != *k {
            return None;
        }
        if *k == 1 {
            Some(idx[0].1.clone())
        } else {
            Some(Expr::Tuple(idx.iter().map(|(_, b)| b.clone()).collect()))
        }
    }
}

/// Subscripting a *literal* array at literal indices selects the item
/// statically (`⊥` when out of bounds). The literal analogue of `β^p`.
pub struct SubOfLiteral;

impl Rule for SubOfLiteral {
    fn name(&self) -> &'static str {
        "sub-of-literal"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::Sub(arr, indices) = e else { return None };
        let Expr::ArrayLit { dims, items } = &**arr else { return None };
        let dim_vals: Option<Vec<u64>> = dims
            .iter()
            .map(|d| match d {
                Expr::Nat(n) => Some(*n),
                _ => None,
            })
            .collect();
        let dim_vals = dim_vals?;
        let comps = subscript_components(indices, dims.len())?;
        let idx_vals: Option<Vec<u64>> = comps
            .iter()
            .map(|c| match c {
                Expr::Nat(n) => Some(*n),
                _ => None,
            })
            .collect();
        let idx_vals = idx_vals?;
        // Only fire on shape-consistent literals (others are ⊥ at
        // run time and are left to the evaluator).
        let total: u64 = dim_vals.iter().product();
        if total != items.len() as u64 {
            return None;
        }
        let mut off: u64 = 0;
        for (i, d) in idx_vals.iter().zip(dim_vals.iter()) {
            if i >= d {
                return Some(Expr::Bottom);
            }
            off = off * d + i;
        }
        Some(items[off as usize].clone())
    }
}

/// `dim_k` of a literal array reads the dimension expressions directly.
pub struct DimOfLiteral;

impl Rule for DimOfLiteral {
    fn name(&self) -> &'static str {
        "dim-of-literal"
    }
    fn apply(&self, e: &Expr) -> Option<Expr> {
        let Expr::Dim(k, arr) = e else { return None };
        let Expr::ArrayLit { dims, items } = &**arr else { return None };
        if dims.len() != *k {
            return None;
        }
        // Only when the static shape is consistent (otherwise the
        // literal is ⊥ and dim of ⊥ is ⊥).
        let dim_vals: Option<Vec<u64>> = dims
            .iter()
            .map(|d| match d {
                Expr::Nat(n) => Some(*n),
                _ => None,
            })
            .collect();
        if let Some(ds) = dim_vals {
            let total: u64 = ds.iter().product();
            if total != items.len() as u64 {
                return None;
            }
        }
        if *k == 1 {
            Some(dims[0].clone())
        } else {
            Some(Expr::Tuple(dims.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aql_core::eval::eval_closed;
    use aql_core::expr::builder::*;
    use aql_core::expr::free::alpha_eq;
    use aql_core::value::Value;

    #[test]
    fn beta_p_one_dim() {
        // [[ i*2 | i < 10 ]][3] ⤳ if 3 < 10 then 3*2 else ⊥
        let e = sub(tab1("i", nat(10), mul(var("i"), nat(2))), vec![nat(3)]);
        let got = BetaPartial.apply(&e).unwrap();
        let expect = iff(lt(nat(3), nat(10)), mul(nat(3), nat(2)), bottom());
        assert!(alpha_eq(&got, &expect), "got {got}");
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&got).unwrap());
    }

    #[test]
    fn beta_p_multi_dim() {
        let e = sub(
            tab(
                vec![("i", nat(2)), ("j", nat(3))],
                add(mul(var("i"), nat(10)), var("j")),
            ),
            vec![nat(1), nat(2)],
        );
        let got = BetaPartial.apply(&e).unwrap();
        assert_eq!(eval_closed(&got).unwrap(), Value::Nat(12));
        // Out-of-bounds also agrees (both ⊥).
        let e = sub(
            tab(vec![("i", nat(2)), ("j", nat(3))], var("i")),
            vec![nat(5), nat(0)],
        );
        let got = BetaPartial.apply(&e).unwrap();
        assert_eq!(eval_closed(&got).unwrap(), Value::Bottom);
    }

    #[test]
    fn beta_p_via_tuple_subscript() {
        let e = sub(
            tab(vec![("i", nat(2)), ("j", nat(2))], var("j")),
            vec![tuple(vec![nat(1), nat(0)])],
        );
        let got = BetaPartial.apply(&e).unwrap();
        assert_eq!(eval_closed(&got).unwrap(), Value::Nat(0));
    }

    #[test]
    fn beta_p_name_collision_is_safe() {
        // [[ i + j | i < 5, j < 5 ]][j, 0] where the outer `j` is a
        // different variable: substitution must not confuse them.
        // Build with an outer binding j = 2.
        let inner = sub(
            tab(
                vec![("i", nat(5)), ("j", nat(5))],
                add(var("i"), var("j")),
            ),
            vec![var("j"), nat(0)],
        );
        let e = let_("j", nat(2), inner);
        // Rewrite the subscript inside the let.
        let rewritten = match &e {
            Expr::Let(x, b, body) => Expr::Let(
                x.clone(),
                b.clone(),
                BetaPartial.apply(body).unwrap().boxed(),
            ),
            _ => unreachable!(),
        };
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&rewritten).unwrap());
        assert_eq!(eval_closed(&rewritten).unwrap(), Value::Nat(2));
    }

    #[test]
    fn eta_p_contracts_copy() {
        // [[ A[i] | i < len A ]] ⤳ A
        let e = tab1("i", len(var("A")), sub(var("A"), vec![var("i")]));
        assert_eq!(EtaPartial.apply(&e).unwrap(), var("A"));
        // 2-d: [[ M[i,j] | i < dim_{1,2} M, j < dim_{2,2} M ]] ⤳ M
        let e = tab(
            vec![
                ("i", dim_ik(1, 2, var("M"))),
                ("j", dim_ik(2, 2, var("M"))),
            ],
            sub(var("M"), vec![var("i"), var("j")]),
        );
        assert_eq!(EtaPartial.apply(&e).unwrap(), var("M"));
    }

    #[test]
    fn eta_p_rejects_non_copies() {
        // Transposed indices are not a copy.
        let e = tab(
            vec![
                ("i", dim_ik(1, 2, var("M"))),
                ("j", dim_ik(2, 2, var("M"))),
            ],
            sub(var("M"), vec![var("j"), var("i")]),
        );
        assert!(EtaPartial.apply(&e).is_none());
        // Wrong bound.
        let e = tab1("i", nat(5), sub(var("A"), vec![var("i")]));
        assert!(EtaPartial.apply(&e).is_none());
        // Source depends on the index variable.
        let e = tab1(
            "i",
            len(var("A")),
            sub(sub(var("A"), vec![var("i")]), vec![var("i")]),
        );
        assert!(EtaPartial.apply(&e).is_none());
    }

    #[test]
    fn delta_p_reads_bounds() {
        let e = len(tab1("i", add(var("n"), nat(1)), mul(var("i"), var("i"))));
        assert_eq!(DeltaPartial.apply(&e).unwrap(), add(var("n"), nat(1)));
        let e = dim(
            2,
            tab(vec![("i", var("m")), ("j", var("n"))], var("i")),
        );
        assert_eq!(
            DeltaPartial.apply(&e).unwrap(),
            tuple(vec![var("m"), var("n")])
        );
    }

    #[test]
    fn literal_rules() {
        let lit = array1_lit(vec![nat(10), nat(20), nat(30)]);
        let e = sub(lit.clone(), vec![nat(2)]);
        assert_eq!(SubOfLiteral.apply(&e).unwrap(), nat(30));
        let e = sub(lit.clone(), vec![nat(9)]);
        assert_eq!(SubOfLiteral.apply(&e).unwrap(), bottom());
        assert_eq!(DimOfLiteral.apply(&len(lit)).unwrap(), nat(3));
        // 2-d literal.
        let m = array_lit(vec![nat(2), nat(2)], vec![nat(1), nat(2), nat(3), nat(4)]);
        let e = sub(m.clone(), vec![nat(1), nat(1)]);
        assert_eq!(SubOfLiteral.apply(&e).unwrap(), nat(4));
        assert_eq!(
            DimOfLiteral.apply(&dim(2, m)).unwrap(),
            tuple(vec![nat(2), nat(2)])
        );
        // Inconsistent static shape: leave for the evaluator.
        let bad = array_lit(vec![nat(2)], vec![nat(1), nat(2), nat(3)]);
        assert!(SubOfLiteral.apply(&sub(bad.clone(), vec![nat(0)])).is_none());
        assert!(DimOfLiteral.apply(&len(bad)).is_none());
    }
}
