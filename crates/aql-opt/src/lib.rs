//! # aql-opt — the AQL optimizer
//!
//! The rewrite optimizer of §5 of *Libkin, Machlin & Wong (SIGMOD
//! 1996)*: an extensible multi-phase engine over the NRCA equational
//! theory.
//!
//! The standard pipeline ([`standard`]) has three phases:
//!
//! 1. **normalize** — β/π/`let`, the set-monad laws (unit laws, union
//!    splitting, vertical & horizontal fusion, filter promotion,
//!    singleton-η), the sound Σ laws, constant folding, and the three
//!    array rules `β^p`, `η^p`, `δ^p`;
//! 2. **check-elim** — the §5 bound-check elimination rules (inside a
//!    tabulation `i_j < e_j` is true; inside a `gen(e)` loop `x < e`
//!    is true; `if`-propagation), then constant-`if` cleanup;
//! 3. **code-motion** — loop-invariant hoisting into `let` bindings,
//!    recovering sharing that full normalization inlined away.
//!
//! Phases and rules are dynamically extensible
//! ([`engine::Optimizer::add_phase`], [`engine::Phase::add_rule`]),
//! mirroring the paper's open architecture. Every rule carries its own
//! unit tests; the crate-level tests in `tests/` verify the paper's
//! §5 derivations (transpose derivability, `zip`/`subseq`
//! commutation).
//!
//! Soundness conventions follow the paper: rules that discard
//! subexpressions (`δ^p`, empty-head, equal-branch collapse, hoisting)
//! are sound for error-free programs — exactly the caveat §5 states
//! for `δ^p`.

#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod rules;

pub use engine::{
    map_children, map_children_scoped, try_map_children, try_map_children_scoped, Gate, OptError,
    Optimizer, Phase, PhaseCheck, Rule, RulePanic, SoundnessViolation, Trace, TraceStep,
};
pub use rules::{normalize_and_eliminate, normalizer, standard};

/// Optimize with the standard §5 pipeline.
pub fn optimize(e: &aql_core::Expr) -> aql_core::Expr {
    standard().optimize(e)
}

/// Optimize with the standard pipeline, returning the rewrite trace.
pub fn optimize_traced(e: &aql_core::Expr) -> (aql_core::Expr, Trace) {
    standard().optimize_traced(e)
}
